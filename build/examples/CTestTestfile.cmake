# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--seed=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_drill "/root/repo/build/examples/failure_drill" "--topo=geant" "--trials=2")
set_tests_properties(example_failure_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_load_balancing "/root/repo/build/examples/load_balancing" "--topo=geant")
set_tests_properties(example_load_balancing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_overlay_splicing "/root/repo/build/examples/overlay_splicing" "--overlay-size=8")
set_tests_properties(example_overlay_splicing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interdomain_splicing "/root/repo/build/examples/interdomain_splicing")
set_tests_properties(example_interdomain_splicing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multipath_transfer "/root/repo/build/examples/multipath_transfer")
set_tests_properties(example_multipath_transfer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mtr_deployment "/root/repo/build/examples/mtr_deployment" "--topo=abilene" "--slices=3")
set_tests_properties(example_mtr_deployment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_topology_study "/root/repo/build/examples/custom_topology_study" "--topo=abilene" "--trials=20")
set_tests_properties(example_custom_topology_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_debugging "/root/repo/build/examples/network_debugging")
set_tests_properties(example_network_debugging PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
