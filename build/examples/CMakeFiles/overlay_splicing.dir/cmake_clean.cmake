file(REMOVE_RECURSE
  "CMakeFiles/overlay_splicing.dir/overlay_splicing.cpp.o"
  "CMakeFiles/overlay_splicing.dir/overlay_splicing.cpp.o.d"
  "overlay_splicing"
  "overlay_splicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_splicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
