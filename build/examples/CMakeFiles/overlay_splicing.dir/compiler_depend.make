# Empty compiler generated dependencies file for overlay_splicing.
# This may be replaced when dependencies are built.
