file(REMOVE_RECURSE
  "CMakeFiles/custom_topology_study.dir/custom_topology_study.cpp.o"
  "CMakeFiles/custom_topology_study.dir/custom_topology_study.cpp.o.d"
  "custom_topology_study"
  "custom_topology_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_topology_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
