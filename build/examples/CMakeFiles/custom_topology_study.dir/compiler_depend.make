# Empty compiler generated dependencies file for custom_topology_study.
# This may be replaced when dependencies are built.
