file(REMOVE_RECURSE
  "CMakeFiles/mtr_deployment.dir/mtr_deployment.cpp.o"
  "CMakeFiles/mtr_deployment.dir/mtr_deployment.cpp.o.d"
  "mtr_deployment"
  "mtr_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtr_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
