# Empty compiler generated dependencies file for mtr_deployment.
# This may be replaced when dependencies are built.
