# Empty compiler generated dependencies file for network_debugging.
# This may be replaced when dependencies are built.
