file(REMOVE_RECURSE
  "CMakeFiles/network_debugging.dir/network_debugging.cpp.o"
  "CMakeFiles/network_debugging.dir/network_debugging.cpp.o.d"
  "network_debugging"
  "network_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
