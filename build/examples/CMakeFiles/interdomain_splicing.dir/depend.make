# Empty dependencies file for interdomain_splicing.
# This may be replaced when dependencies are built.
