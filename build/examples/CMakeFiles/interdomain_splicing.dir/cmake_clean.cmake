file(REMOVE_RECURSE
  "CMakeFiles/interdomain_splicing.dir/interdomain_splicing.cpp.o"
  "CMakeFiles/interdomain_splicing.dir/interdomain_splicing.cpp.o.d"
  "interdomain_splicing"
  "interdomain_splicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interdomain_splicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
