# Empty dependencies file for multipath_transfer.
# This may be replaced when dependencies are built.
