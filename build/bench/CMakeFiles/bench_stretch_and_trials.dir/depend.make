# Empty dependencies file for bench_stretch_and_trials.
# This may be replaced when dependencies are built.
