file(REMOVE_RECURSE
  "CMakeFiles/bench_stretch_and_trials.dir/bench_stretch_and_trials.cpp.o"
  "CMakeFiles/bench_stretch_and_trials.dir/bench_stretch_and_trials.cpp.o.d"
  "bench_stretch_and_trials"
  "bench_stretch_and_trials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stretch_and_trials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
