file(REMOVE_RECURSE
  "CMakeFiles/bench_transient_convergence.dir/bench_transient_convergence.cpp.o"
  "CMakeFiles/bench_transient_convergence.dir/bench_transient_convergence.cpp.o.d"
  "bench_transient_convergence"
  "bench_transient_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transient_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
