# Empty dependencies file for bench_transient_convergence.
# This may be replaced when dependencies are built.
