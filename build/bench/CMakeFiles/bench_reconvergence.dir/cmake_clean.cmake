file(REMOVE_RECURSE
  "CMakeFiles/bench_reconvergence.dir/bench_reconvergence.cpp.o"
  "CMakeFiles/bench_reconvergence.dir/bench_reconvergence.cpp.o.d"
  "bench_reconvergence"
  "bench_reconvergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconvergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
