# Empty compiler generated dependencies file for bench_reconvergence.
# This may be replaced when dependencies are built.
