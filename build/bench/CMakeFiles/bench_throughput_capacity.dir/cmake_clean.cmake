file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_capacity.dir/bench_throughput_capacity.cpp.o"
  "CMakeFiles/bench_throughput_capacity.dir/bench_throughput_capacity.cpp.o.d"
  "bench_throughput_capacity"
  "bench_throughput_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
