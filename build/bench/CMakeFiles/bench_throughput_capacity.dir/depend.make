# Empty dependencies file for bench_throughput_capacity.
# This may be replaced when dependencies are built.
