# Empty dependencies file for bench_fig4_end_system_recovery.
# This may be replaced when dependencies are built.
