file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_control.dir/bench_micro_control.cpp.o"
  "CMakeFiles/bench_micro_control.dir/bench_micro_control.cpp.o.d"
  "bench_micro_control"
  "bench_micro_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
