# Empty compiler generated dependencies file for bench_micro_control.
# This may be replaced when dependencies are built.
