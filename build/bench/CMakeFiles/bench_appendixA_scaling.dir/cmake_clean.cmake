file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixA_scaling.dir/bench_appendixA_scaling.cpp.o"
  "CMakeFiles/bench_appendixA_scaling.dir/bench_appendixA_scaling.cpp.o.d"
  "bench_appendixA_scaling"
  "bench_appendixA_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixA_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
