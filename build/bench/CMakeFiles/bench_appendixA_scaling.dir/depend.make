# Empty dependencies file for bench_appendixA_scaling.
# This may be replaced when dependencies are built.
