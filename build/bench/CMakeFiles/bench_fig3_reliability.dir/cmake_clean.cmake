file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_reliability.dir/bench_fig3_reliability.cpp.o"
  "CMakeFiles/bench_fig3_reliability.dir/bench_fig3_reliability.cpp.o.d"
  "bench_fig3_reliability"
  "bench_fig3_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
