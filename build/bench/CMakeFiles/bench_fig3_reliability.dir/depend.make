# Empty dependencies file for bench_fig3_reliability.
# This may be replaced when dependencies are built.
