# Empty compiler generated dependencies file for bench_traffic_balance.
# This may be replaced when dependencies are built.
