file(REMOVE_RECURSE
  "CMakeFiles/bench_traffic_balance.dir/bench_traffic_balance.cpp.o"
  "CMakeFiles/bench_traffic_balance.dir/bench_traffic_balance.cpp.o.d"
  "bench_traffic_balance"
  "bench_traffic_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
