file(REMOVE_RECURSE
  "CMakeFiles/bench_control_messages.dir/bench_control_messages.cpp.o"
  "CMakeFiles/bench_control_messages.dir/bench_control_messages.cpp.o.d"
  "bench_control_messages"
  "bench_control_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
