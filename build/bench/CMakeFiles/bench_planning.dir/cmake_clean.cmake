file(REMOVE_RECURSE
  "CMakeFiles/bench_planning.dir/bench_planning.cpp.o"
  "CMakeFiles/bench_planning.dir/bench_planning.cpp.o.d"
  "bench_planning"
  "bench_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
