file(REMOVE_RECURSE
  "CMakeFiles/bench_loop_frequency.dir/bench_loop_frequency.cpp.o"
  "CMakeFiles/bench_loop_frequency.dir/bench_loop_frequency.cpp.o.d"
  "bench_loop_frequency"
  "bench_loop_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loop_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
