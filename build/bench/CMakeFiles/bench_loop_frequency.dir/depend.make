# Empty dependencies file for bench_loop_frequency.
# This may be replaced when dependencies are built.
