file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixB_stretch_bound.dir/bench_appendixB_stretch_bound.cpp.o"
  "CMakeFiles/bench_appendixB_stretch_bound.dir/bench_appendixB_stretch_bound.cpp.o.d"
  "bench_appendixB_stretch_bound"
  "bench_appendixB_stretch_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixB_stretch_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
