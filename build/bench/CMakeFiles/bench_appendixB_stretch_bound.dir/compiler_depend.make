# Empty compiler generated dependencies file for bench_appendixB_stretch_bound.
# This may be replaced when dependencies are built.
