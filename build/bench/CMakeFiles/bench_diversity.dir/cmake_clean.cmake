file(REMOVE_RECURSE
  "CMakeFiles/bench_diversity.dir/bench_diversity.cpp.o"
  "CMakeFiles/bench_diversity.dir/bench_diversity.cpp.o.d"
  "bench_diversity"
  "bench_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
