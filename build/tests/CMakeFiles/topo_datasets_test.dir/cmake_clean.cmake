file(REMOVE_RECURSE
  "CMakeFiles/topo_datasets_test.dir/topo_datasets_test.cpp.o"
  "CMakeFiles/topo_datasets_test.dir/topo_datasets_test.cpp.o.d"
  "topo_datasets_test"
  "topo_datasets_test.pdb"
  "topo_datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
