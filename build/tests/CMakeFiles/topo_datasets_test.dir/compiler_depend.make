# Empty compiler generated dependencies file for topo_datasets_test.
# This may be replaced when dependencies are built.
