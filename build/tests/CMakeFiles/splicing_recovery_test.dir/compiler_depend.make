# Empty compiler generated dependencies file for splicing_recovery_test.
# This may be replaced when dependencies are built.
