file(REMOVE_RECURSE
  "CMakeFiles/splicing_recovery_test.dir/splicing_recovery_test.cpp.o"
  "CMakeFiles/splicing_recovery_test.dir/splicing_recovery_test.cpp.o.d"
  "splicing_recovery_test"
  "splicing_recovery_test.pdb"
  "splicing_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splicing_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
