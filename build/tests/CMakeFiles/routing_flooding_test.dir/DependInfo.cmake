
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/routing_flooding_test.cpp" "tests/CMakeFiles/routing_flooding_test.dir/routing_flooding_test.cpp.o" "gcc" "tests/CMakeFiles/routing_flooding_test.dir/routing_flooding_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/splice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/splicing/CMakeFiles/splice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/splice_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/splice_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/splice_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/splice_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/splice_util.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/splice_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/interdomain/CMakeFiles/splice_interdomain.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/splice_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/splice_overlay.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
