file(REMOVE_RECURSE
  "CMakeFiles/routing_flooding_test.dir/routing_flooding_test.cpp.o"
  "CMakeFiles/routing_flooding_test.dir/routing_flooding_test.cpp.o.d"
  "routing_flooding_test"
  "routing_flooding_test.pdb"
  "routing_flooding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_flooding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
