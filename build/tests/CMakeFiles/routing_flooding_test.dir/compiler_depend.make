# Empty compiler generated dependencies file for routing_flooding_test.
# This may be replaced when dependencies are built.
