# Empty dependencies file for graph_shortest_path_test.
# This may be replaced when dependencies are built.
