file(REMOVE_RECURSE
  "CMakeFiles/graph_shortest_path_test.dir/graph_shortest_path_test.cpp.o"
  "CMakeFiles/graph_shortest_path_test.dir/graph_shortest_path_test.cpp.o.d"
  "graph_shortest_path_test"
  "graph_shortest_path_test.pdb"
  "graph_shortest_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_shortest_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
