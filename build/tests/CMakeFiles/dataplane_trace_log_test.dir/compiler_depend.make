# Empty compiler generated dependencies file for dataplane_trace_log_test.
# This may be replaced when dependencies are built.
