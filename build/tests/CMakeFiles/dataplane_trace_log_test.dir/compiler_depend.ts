# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dataplane_trace_log_test.
