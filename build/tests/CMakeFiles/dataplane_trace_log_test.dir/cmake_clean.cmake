file(REMOVE_RECURSE
  "CMakeFiles/dataplane_trace_log_test.dir/dataplane_trace_log_test.cpp.o"
  "CMakeFiles/dataplane_trace_log_test.dir/dataplane_trace_log_test.cpp.o.d"
  "dataplane_trace_log_test"
  "dataplane_trace_log_test.pdb"
  "dataplane_trace_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataplane_trace_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
