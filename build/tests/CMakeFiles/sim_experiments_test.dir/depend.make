# Empty dependencies file for sim_experiments_test.
# This may be replaced when dependencies are built.
