file(REMOVE_RECURSE
  "CMakeFiles/sim_experiments_test.dir/sim_experiments_test.cpp.o"
  "CMakeFiles/sim_experiments_test.dir/sim_experiments_test.cpp.o.d"
  "sim_experiments_test"
  "sim_experiments_test.pdb"
  "sim_experiments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
