file(REMOVE_RECURSE
  "CMakeFiles/routing_perturbation_test.dir/routing_perturbation_test.cpp.o"
  "CMakeFiles/routing_perturbation_test.dir/routing_perturbation_test.cpp.o.d"
  "routing_perturbation_test"
  "routing_perturbation_test.pdb"
  "routing_perturbation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_perturbation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
