# Empty compiler generated dependencies file for routing_perturbation_test.
# This may be replaced when dependencies are built.
