# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for routing_mtr_config_test.
