# Empty compiler generated dependencies file for routing_mtr_config_test.
# This may be replaced when dependencies are built.
