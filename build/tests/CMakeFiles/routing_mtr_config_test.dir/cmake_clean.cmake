file(REMOVE_RECURSE
  "CMakeFiles/routing_mtr_config_test.dir/routing_mtr_config_test.cpp.o"
  "CMakeFiles/routing_mtr_config_test.dir/routing_mtr_config_test.cpp.o.d"
  "routing_mtr_config_test"
  "routing_mtr_config_test.pdb"
  "routing_mtr_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_mtr_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
