# Empty dependencies file for splicing_reliability_test.
# This may be replaced when dependencies are built.
