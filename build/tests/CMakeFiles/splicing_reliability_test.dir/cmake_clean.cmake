file(REMOVE_RECURSE
  "CMakeFiles/splicing_reliability_test.dir/splicing_reliability_test.cpp.o"
  "CMakeFiles/splicing_reliability_test.dir/splicing_reliability_test.cpp.o.d"
  "splicing_reliability_test"
  "splicing_reliability_test.pdb"
  "splicing_reliability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splicing_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
