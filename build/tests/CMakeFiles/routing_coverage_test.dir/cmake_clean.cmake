file(REMOVE_RECURSE
  "CMakeFiles/routing_coverage_test.dir/routing_coverage_test.cpp.o"
  "CMakeFiles/routing_coverage_test.dir/routing_coverage_test.cpp.o.d"
  "routing_coverage_test"
  "routing_coverage_test.pdb"
  "routing_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
