# Empty compiler generated dependencies file for routing_coverage_test.
# This may be replaced when dependencies are built.
