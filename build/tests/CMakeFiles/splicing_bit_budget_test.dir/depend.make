# Empty dependencies file for splicing_bit_budget_test.
# This may be replaced when dependencies are built.
