file(REMOVE_RECURSE
  "CMakeFiles/splicing_bit_budget_test.dir/splicing_bit_budget_test.cpp.o"
  "CMakeFiles/splicing_bit_budget_test.dir/splicing_bit_budget_test.cpp.o.d"
  "splicing_bit_budget_test"
  "splicing_bit_budget_test.pdb"
  "splicing_bit_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splicing_bit_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
