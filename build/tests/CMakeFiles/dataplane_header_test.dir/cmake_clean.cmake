file(REMOVE_RECURSE
  "CMakeFiles/dataplane_header_test.dir/dataplane_header_test.cpp.o"
  "CMakeFiles/dataplane_header_test.dir/dataplane_header_test.cpp.o.d"
  "dataplane_header_test"
  "dataplane_header_test.pdb"
  "dataplane_header_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataplane_header_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
