# Empty dependencies file for dataplane_header_test.
# This may be replaced when dependencies are built.
