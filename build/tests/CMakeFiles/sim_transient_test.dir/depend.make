# Empty dependencies file for sim_transient_test.
# This may be replaced when dependencies are built.
