file(REMOVE_RECURSE
  "CMakeFiles/dataplane_network_test.dir/dataplane_network_test.cpp.o"
  "CMakeFiles/dataplane_network_test.dir/dataplane_network_test.cpp.o.d"
  "dataplane_network_test"
  "dataplane_network_test.pdb"
  "dataplane_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataplane_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
