# Empty dependencies file for dataplane_network_test.
# This may be replaced when dependencies are built.
