file(REMOVE_RECURSE
  "CMakeFiles/splicing_path_enum_test.dir/splicing_path_enum_test.cpp.o"
  "CMakeFiles/splicing_path_enum_test.dir/splicing_path_enum_test.cpp.o.d"
  "splicing_path_enum_test"
  "splicing_path_enum_test.pdb"
  "splicing_path_enum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splicing_path_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
