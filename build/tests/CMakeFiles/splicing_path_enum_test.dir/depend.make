# Empty dependencies file for splicing_path_enum_test.
# This may be replaced when dependencies are built.
