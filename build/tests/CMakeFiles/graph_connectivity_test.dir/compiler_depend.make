# Empty compiler generated dependencies file for graph_connectivity_test.
# This may be replaced when dependencies are built.
