file(REMOVE_RECURSE
  "CMakeFiles/graph_connectivity_test.dir/graph_connectivity_test.cpp.o"
  "CMakeFiles/graph_connectivity_test.dir/graph_connectivity_test.cpp.o.d"
  "graph_connectivity_test"
  "graph_connectivity_test.pdb"
  "graph_connectivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_connectivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
