# Empty dependencies file for interdomain_dynamics_test.
# This may be replaced when dependencies are built.
