file(REMOVE_RECURSE
  "CMakeFiles/interdomain_dynamics_test.dir/interdomain_dynamics_test.cpp.o"
  "CMakeFiles/interdomain_dynamics_test.dir/interdomain_dynamics_test.cpp.o.d"
  "interdomain_dynamics_test"
  "interdomain_dynamics_test.pdb"
  "interdomain_dynamics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interdomain_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
