file(REMOVE_RECURSE
  "CMakeFiles/splicing_splicer_test.dir/splicing_splicer_test.cpp.o"
  "CMakeFiles/splicing_splicer_test.dir/splicing_splicer_test.cpp.o.d"
  "splicing_splicer_test"
  "splicing_splicer_test.pdb"
  "splicing_splicer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splicing_splicer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
