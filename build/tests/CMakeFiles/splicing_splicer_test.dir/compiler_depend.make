# Empty compiler generated dependencies file for splicing_splicer_test.
# This may be replaced when dependencies are built.
