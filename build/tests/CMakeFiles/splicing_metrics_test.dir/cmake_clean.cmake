file(REMOVE_RECURSE
  "CMakeFiles/splicing_metrics_test.dir/splicing_metrics_test.cpp.o"
  "CMakeFiles/splicing_metrics_test.dir/splicing_metrics_test.cpp.o.d"
  "splicing_metrics_test"
  "splicing_metrics_test.pdb"
  "splicing_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splicing_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
