# Empty dependencies file for splicing_metrics_test.
# This may be replaced when dependencies are built.
