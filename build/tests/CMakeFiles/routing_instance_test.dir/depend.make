# Empty dependencies file for routing_instance_test.
# This may be replaced when dependencies are built.
