file(REMOVE_RECURSE
  "CMakeFiles/traffic_capacity_test.dir/traffic_capacity_test.cpp.o"
  "CMakeFiles/traffic_capacity_test.dir/traffic_capacity_test.cpp.o.d"
  "traffic_capacity_test"
  "traffic_capacity_test.pdb"
  "traffic_capacity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_capacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
