# Empty dependencies file for traffic_capacity_test.
# This may be replaced when dependencies are built.
