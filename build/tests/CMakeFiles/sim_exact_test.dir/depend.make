# Empty dependencies file for sim_exact_test.
# This may be replaced when dependencies are built.
