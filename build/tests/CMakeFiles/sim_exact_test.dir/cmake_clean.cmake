file(REMOVE_RECURSE
  "CMakeFiles/sim_exact_test.dir/sim_exact_test.cpp.o"
  "CMakeFiles/sim_exact_test.dir/sim_exact_test.cpp.o.d"
  "sim_exact_test"
  "sim_exact_test.pdb"
  "sim_exact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
