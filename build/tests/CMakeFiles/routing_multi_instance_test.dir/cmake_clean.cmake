file(REMOVE_RECURSE
  "CMakeFiles/routing_multi_instance_test.dir/routing_multi_instance_test.cpp.o"
  "CMakeFiles/routing_multi_instance_test.dir/routing_multi_instance_test.cpp.o.d"
  "routing_multi_instance_test"
  "routing_multi_instance_test.pdb"
  "routing_multi_instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_multi_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
