# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for routing_multi_instance_test.
