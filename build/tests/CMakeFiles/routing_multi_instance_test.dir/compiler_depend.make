# Empty compiler generated dependencies file for routing_multi_instance_test.
# This may be replaced when dependencies are built.
