# Empty dependencies file for graph_cut_flow_test.
# This may be replaced when dependencies are built.
