file(REMOVE_RECURSE
  "CMakeFiles/graph_cut_flow_test.dir/graph_cut_flow_test.cpp.o"
  "CMakeFiles/graph_cut_flow_test.dir/graph_cut_flow_test.cpp.o.d"
  "graph_cut_flow_test"
  "graph_cut_flow_test.pdb"
  "graph_cut_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_cut_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
