# Empty compiler generated dependencies file for splice_graph.
# This may be replaced when dependencies are built.
