file(REMOVE_RECURSE
  "libsplice_graph.a"
)
