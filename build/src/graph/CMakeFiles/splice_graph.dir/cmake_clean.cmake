file(REMOVE_RECURSE
  "CMakeFiles/splice_graph.dir/bellman_ford.cpp.o"
  "CMakeFiles/splice_graph.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/splice_graph.dir/connectivity.cpp.o"
  "CMakeFiles/splice_graph.dir/connectivity.cpp.o.d"
  "CMakeFiles/splice_graph.dir/digraph.cpp.o"
  "CMakeFiles/splice_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/splice_graph.dir/dijkstra.cpp.o"
  "CMakeFiles/splice_graph.dir/dijkstra.cpp.o.d"
  "CMakeFiles/splice_graph.dir/generators.cpp.o"
  "CMakeFiles/splice_graph.dir/generators.cpp.o.d"
  "CMakeFiles/splice_graph.dir/graph.cpp.o"
  "CMakeFiles/splice_graph.dir/graph.cpp.o.d"
  "CMakeFiles/splice_graph.dir/io.cpp.o"
  "CMakeFiles/splice_graph.dir/io.cpp.o.d"
  "CMakeFiles/splice_graph.dir/maxflow.cpp.o"
  "CMakeFiles/splice_graph.dir/maxflow.cpp.o.d"
  "CMakeFiles/splice_graph.dir/mincut.cpp.o"
  "CMakeFiles/splice_graph.dir/mincut.cpp.o.d"
  "CMakeFiles/splice_graph.dir/properties.cpp.o"
  "CMakeFiles/splice_graph.dir/properties.cpp.o.d"
  "libsplice_graph.a"
  "libsplice_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
