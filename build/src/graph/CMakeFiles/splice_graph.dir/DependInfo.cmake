
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bellman_ford.cpp" "src/graph/CMakeFiles/splice_graph.dir/bellman_ford.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/graph/CMakeFiles/splice_graph.dir/connectivity.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/connectivity.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/splice_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/graph/CMakeFiles/splice_graph.dir/dijkstra.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/dijkstra.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/splice_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/splice_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/splice_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/maxflow.cpp" "src/graph/CMakeFiles/splice_graph.dir/maxflow.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/maxflow.cpp.o.d"
  "/root/repo/src/graph/mincut.cpp" "src/graph/CMakeFiles/splice_graph.dir/mincut.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/mincut.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/graph/CMakeFiles/splice_graph.dir/properties.cpp.o" "gcc" "src/graph/CMakeFiles/splice_graph.dir/properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/splice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
