
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/splicing/bit_budget.cpp" "src/splicing/CMakeFiles/splice_core.dir/bit_budget.cpp.o" "gcc" "src/splicing/CMakeFiles/splice_core.dir/bit_budget.cpp.o.d"
  "/root/repo/src/splicing/metrics.cpp" "src/splicing/CMakeFiles/splice_core.dir/metrics.cpp.o" "gcc" "src/splicing/CMakeFiles/splice_core.dir/metrics.cpp.o.d"
  "/root/repo/src/splicing/path_enum.cpp" "src/splicing/CMakeFiles/splice_core.dir/path_enum.cpp.o" "gcc" "src/splicing/CMakeFiles/splice_core.dir/path_enum.cpp.o.d"
  "/root/repo/src/splicing/recovery.cpp" "src/splicing/CMakeFiles/splice_core.dir/recovery.cpp.o" "gcc" "src/splicing/CMakeFiles/splice_core.dir/recovery.cpp.o.d"
  "/root/repo/src/splicing/reliability.cpp" "src/splicing/CMakeFiles/splice_core.dir/reliability.cpp.o" "gcc" "src/splicing/CMakeFiles/splice_core.dir/reliability.cpp.o.d"
  "/root/repo/src/splicing/splicer.cpp" "src/splicing/CMakeFiles/splice_core.dir/splicer.cpp.o" "gcc" "src/splicing/CMakeFiles/splice_core.dir/splicer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/splice_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/splice_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/splice_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/splice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
