# Empty dependencies file for splice_core.
# This may be replaced when dependencies are built.
