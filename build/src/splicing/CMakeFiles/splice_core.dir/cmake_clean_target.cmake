file(REMOVE_RECURSE
  "libsplice_core.a"
)
