file(REMOVE_RECURSE
  "CMakeFiles/splice_core.dir/bit_budget.cpp.o"
  "CMakeFiles/splice_core.dir/bit_budget.cpp.o.d"
  "CMakeFiles/splice_core.dir/metrics.cpp.o"
  "CMakeFiles/splice_core.dir/metrics.cpp.o.d"
  "CMakeFiles/splice_core.dir/path_enum.cpp.o"
  "CMakeFiles/splice_core.dir/path_enum.cpp.o.d"
  "CMakeFiles/splice_core.dir/recovery.cpp.o"
  "CMakeFiles/splice_core.dir/recovery.cpp.o.d"
  "CMakeFiles/splice_core.dir/reliability.cpp.o"
  "CMakeFiles/splice_core.dir/reliability.cpp.o.d"
  "CMakeFiles/splice_core.dir/splicer.cpp.o"
  "CMakeFiles/splice_core.dir/splicer.cpp.o.d"
  "libsplice_core.a"
  "libsplice_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
