file(REMOVE_RECURSE
  "CMakeFiles/splice_traffic.dir/capacity.cpp.o"
  "CMakeFiles/splice_traffic.dir/capacity.cpp.o.d"
  "CMakeFiles/splice_traffic.dir/demand.cpp.o"
  "CMakeFiles/splice_traffic.dir/demand.cpp.o.d"
  "CMakeFiles/splice_traffic.dir/load.cpp.o"
  "CMakeFiles/splice_traffic.dir/load.cpp.o.d"
  "libsplice_traffic.a"
  "libsplice_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
