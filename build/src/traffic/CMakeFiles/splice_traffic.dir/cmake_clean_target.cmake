file(REMOVE_RECURSE
  "libsplice_traffic.a"
)
