# Empty compiler generated dependencies file for splice_traffic.
# This may be replaced when dependencies are built.
