# Empty dependencies file for splice_overlay.
# This may be replaced when dependencies are built.
