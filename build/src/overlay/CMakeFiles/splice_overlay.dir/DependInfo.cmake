
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/overlay.cpp" "src/overlay/CMakeFiles/splice_overlay.dir/overlay.cpp.o" "gcc" "src/overlay/CMakeFiles/splice_overlay.dir/overlay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/splice_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/splice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
