file(REMOVE_RECURSE
  "libsplice_overlay.a"
)
