file(REMOVE_RECURSE
  "CMakeFiles/splice_overlay.dir/overlay.cpp.o"
  "CMakeFiles/splice_overlay.dir/overlay.cpp.o.d"
  "libsplice_overlay.a"
  "libsplice_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
