file(REMOVE_RECURSE
  "libsplice_analysis.a"
)
