# Empty compiler generated dependencies file for splice_analysis.
# This may be replaced when dependencies are built.
