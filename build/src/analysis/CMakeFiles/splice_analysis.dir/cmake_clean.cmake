file(REMOVE_RECURSE
  "CMakeFiles/splice_analysis.dir/advisor.cpp.o"
  "CMakeFiles/splice_analysis.dir/advisor.cpp.o.d"
  "libsplice_analysis.a"
  "libsplice_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
