# Empty dependencies file for splice_topo.
# This may be replaced when dependencies are built.
