file(REMOVE_RECURSE
  "CMakeFiles/splice_topo.dir/datasets.cpp.o"
  "CMakeFiles/splice_topo.dir/datasets.cpp.o.d"
  "libsplice_topo.a"
  "libsplice_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
