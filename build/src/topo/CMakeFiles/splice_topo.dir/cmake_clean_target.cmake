file(REMOVE_RECURSE
  "libsplice_topo.a"
)
