file(REMOVE_RECURSE
  "CMakeFiles/splice_sim.dir/event_sim.cpp.o"
  "CMakeFiles/splice_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/splice_sim.dir/exact.cpp.o"
  "CMakeFiles/splice_sim.dir/exact.cpp.o.d"
  "CMakeFiles/splice_sim.dir/experiments.cpp.o"
  "CMakeFiles/splice_sim.dir/experiments.cpp.o.d"
  "CMakeFiles/splice_sim.dir/extensions.cpp.o"
  "CMakeFiles/splice_sim.dir/extensions.cpp.o.d"
  "CMakeFiles/splice_sim.dir/failure.cpp.o"
  "CMakeFiles/splice_sim.dir/failure.cpp.o.d"
  "CMakeFiles/splice_sim.dir/transient.cpp.o"
  "CMakeFiles/splice_sim.dir/transient.cpp.o.d"
  "libsplice_sim.a"
  "libsplice_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
