# Empty compiler generated dependencies file for splice_sim.
# This may be replaced when dependencies are built.
