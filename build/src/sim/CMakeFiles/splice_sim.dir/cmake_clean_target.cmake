file(REMOVE_RECURSE
  "libsplice_sim.a"
)
