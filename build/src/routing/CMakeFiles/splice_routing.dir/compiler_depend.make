# Empty compiler generated dependencies file for splice_routing.
# This may be replaced when dependencies are built.
