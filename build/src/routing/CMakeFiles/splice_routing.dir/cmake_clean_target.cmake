file(REMOVE_RECURSE
  "libsplice_routing.a"
)
