file(REMOVE_RECURSE
  "CMakeFiles/splice_routing.dir/coverage.cpp.o"
  "CMakeFiles/splice_routing.dir/coverage.cpp.o.d"
  "CMakeFiles/splice_routing.dir/flooding.cpp.o"
  "CMakeFiles/splice_routing.dir/flooding.cpp.o.d"
  "CMakeFiles/splice_routing.dir/mtr_config.cpp.o"
  "CMakeFiles/splice_routing.dir/mtr_config.cpp.o.d"
  "CMakeFiles/splice_routing.dir/multi_instance.cpp.o"
  "CMakeFiles/splice_routing.dir/multi_instance.cpp.o.d"
  "CMakeFiles/splice_routing.dir/perturbation.cpp.o"
  "CMakeFiles/splice_routing.dir/perturbation.cpp.o.d"
  "CMakeFiles/splice_routing.dir/routing_instance.cpp.o"
  "CMakeFiles/splice_routing.dir/routing_instance.cpp.o.d"
  "libsplice_routing.a"
  "libsplice_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
