
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/coverage.cpp" "src/routing/CMakeFiles/splice_routing.dir/coverage.cpp.o" "gcc" "src/routing/CMakeFiles/splice_routing.dir/coverage.cpp.o.d"
  "/root/repo/src/routing/flooding.cpp" "src/routing/CMakeFiles/splice_routing.dir/flooding.cpp.o" "gcc" "src/routing/CMakeFiles/splice_routing.dir/flooding.cpp.o.d"
  "/root/repo/src/routing/mtr_config.cpp" "src/routing/CMakeFiles/splice_routing.dir/mtr_config.cpp.o" "gcc" "src/routing/CMakeFiles/splice_routing.dir/mtr_config.cpp.o.d"
  "/root/repo/src/routing/multi_instance.cpp" "src/routing/CMakeFiles/splice_routing.dir/multi_instance.cpp.o" "gcc" "src/routing/CMakeFiles/splice_routing.dir/multi_instance.cpp.o.d"
  "/root/repo/src/routing/perturbation.cpp" "src/routing/CMakeFiles/splice_routing.dir/perturbation.cpp.o" "gcc" "src/routing/CMakeFiles/splice_routing.dir/perturbation.cpp.o.d"
  "/root/repo/src/routing/routing_instance.cpp" "src/routing/CMakeFiles/splice_routing.dir/routing_instance.cpp.o" "gcc" "src/routing/CMakeFiles/splice_routing.dir/routing_instance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/splice_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/splice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
