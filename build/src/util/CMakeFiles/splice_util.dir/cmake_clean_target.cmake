file(REMOVE_RECURSE
  "libsplice_util.a"
)
