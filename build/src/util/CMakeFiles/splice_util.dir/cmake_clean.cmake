file(REMOVE_RECURSE
  "CMakeFiles/splice_util.dir/flags.cpp.o"
  "CMakeFiles/splice_util.dir/flags.cpp.o.d"
  "CMakeFiles/splice_util.dir/stats.cpp.o"
  "CMakeFiles/splice_util.dir/stats.cpp.o.d"
  "CMakeFiles/splice_util.dir/table.cpp.o"
  "CMakeFiles/splice_util.dir/table.cpp.o.d"
  "libsplice_util.a"
  "libsplice_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
