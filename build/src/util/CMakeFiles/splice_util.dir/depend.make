# Empty dependencies file for splice_util.
# This may be replaced when dependencies are built.
