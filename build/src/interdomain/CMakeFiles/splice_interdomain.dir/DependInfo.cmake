
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interdomain/as_graph.cpp" "src/interdomain/CMakeFiles/splice_interdomain.dir/as_graph.cpp.o" "gcc" "src/interdomain/CMakeFiles/splice_interdomain.dir/as_graph.cpp.o.d"
  "/root/repo/src/interdomain/bgp.cpp" "src/interdomain/CMakeFiles/splice_interdomain.dir/bgp.cpp.o" "gcc" "src/interdomain/CMakeFiles/splice_interdomain.dir/bgp.cpp.o.d"
  "/root/repo/src/interdomain/bgp_dynamics.cpp" "src/interdomain/CMakeFiles/splice_interdomain.dir/bgp_dynamics.cpp.o" "gcc" "src/interdomain/CMakeFiles/splice_interdomain.dir/bgp_dynamics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/splice_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/splice_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/splice_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/splice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
