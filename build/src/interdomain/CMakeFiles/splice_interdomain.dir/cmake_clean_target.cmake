file(REMOVE_RECURSE
  "libsplice_interdomain.a"
)
