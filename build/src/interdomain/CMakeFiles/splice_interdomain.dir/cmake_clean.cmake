file(REMOVE_RECURSE
  "CMakeFiles/splice_interdomain.dir/as_graph.cpp.o"
  "CMakeFiles/splice_interdomain.dir/as_graph.cpp.o.d"
  "CMakeFiles/splice_interdomain.dir/bgp.cpp.o"
  "CMakeFiles/splice_interdomain.dir/bgp.cpp.o.d"
  "CMakeFiles/splice_interdomain.dir/bgp_dynamics.cpp.o"
  "CMakeFiles/splice_interdomain.dir/bgp_dynamics.cpp.o.d"
  "libsplice_interdomain.a"
  "libsplice_interdomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_interdomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
