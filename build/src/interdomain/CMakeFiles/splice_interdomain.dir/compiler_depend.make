# Empty compiler generated dependencies file for splice_interdomain.
# This may be replaced when dependencies are built.
