file(REMOVE_RECURSE
  "CMakeFiles/splice_dataplane.dir/network.cpp.o"
  "CMakeFiles/splice_dataplane.dir/network.cpp.o.d"
  "CMakeFiles/splice_dataplane.dir/splice_header.cpp.o"
  "CMakeFiles/splice_dataplane.dir/splice_header.cpp.o.d"
  "CMakeFiles/splice_dataplane.dir/trace_log.cpp.o"
  "CMakeFiles/splice_dataplane.dir/trace_log.cpp.o.d"
  "libsplice_dataplane.a"
  "libsplice_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
