# Empty dependencies file for splice_dataplane.
# This may be replaced when dependencies are built.
