file(REMOVE_RECURSE
  "libsplice_dataplane.a"
)
