// splice_top: live view of route health — the operator's first screen when
// a churn storm hits. Reads the health/SLO state written by any bench or
// daemon running with --health-snapshot=PATH (or a full --trace dump; both
// carry the same spliceHealth/spliceSlo keys) and renders:
//
//   * SLO budget state: per SLO, ok/warn/page, fast + slow burn rates and
//     the fraction of the slow window's error budget still unspent;
//   * epoch-publish latency percentiles (p50/p99/p99.9) over the window's
//     reconvergence-latency and publish-work histograms;
//   * global traffic sparklines (sent / delivered / anomalies / publishes
//     per window bucket, oldest first);
//   * the top-N unhealthiest destinations with per-destination delivery
//     sparklines — worst score first, ties broken by traffic.
//
//   splice_top FILE [--once] [--json] [--n=15]
//   splice_top FILE links [--json] [--n=15]
//       the network heatmap: top-N hot links (traversal share, per-slice
//       split, §4.3 deflections, rolling sparkline) and top-N lossy links
//       (dead-end drops attributed to the dead primary edge). Reads the
//       spliceLinks section a producer running with --links writes into
//       its --health-snapshot / --trace output, or a standalone
//       --links-snapshot file.
//   splice_top FILE [links] --follow [--interval-ms=500] [--ticks=N]
//       re-reads FILE each tick and redraws in place; a half-written file
//       (the producer rewrites it wholesale) skips the tick. --ticks bounds
//       the number of ticks (0 = until Ctrl-C).
//   splice_top attach SEGMENT [links] [--follow] ...
//       zero-copy live attach: maps the shared-memory telemetry segment a
//       process running with --telemetry=shm:PATH publishes into and does
//       generation-gated seqlock reads instead of file polling — no torn
//       frames, no rewrite races, and a freshness/liveness line (segment
//       generation, heartbeat age vs publish period, writer pid probe).
//       If SEGMENT turns out to be a plain JSON snapshot file, falls back
//       to today's file-polling mode with a note on stderr.
//
// In --follow (and attach) mode SIGINT/SIGTERM restore the terminal state
// (cursor visibility) before exiting, so Ctrl-C mid-frame cannot leave the
// operator's shell with a hidden cursor.
//
// --json prints a machine-readable digest of the same view (one object per
// invocation; in --follow mode one object per tick, newline-delimited) —
// the schema scripts/check.sh --health-smoke/--attrib-smoke validates.
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/export.h"
#include "obs/shm_segment.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/json.h"
#include "util/table.h"

namespace splice {
namespace {

int usage() {
  std::cerr << "usage: splice_top FILE [links] [--once|--follow] [--json]\n"
               "                  [--n=15] [--interval-ms=500] [--ticks=N]\n"
               "       splice_top attach SEGMENT [links] [same flags]\n"
               "  FILE: a --health-snapshot file or a --trace dump (both\n"
               "  carry spliceHealth/spliceSlo)\n"
               "  SEGMENT: a --telemetry=shm:PATH shared-memory segment;\n"
               "  live seqlock reads replace file polling (a plain JSON\n"
               "  snapshot file falls back to polling)\n"
               "  links: per-link heatmap view — needs the spliceLinks\n"
               "  section (producer ran with --links) or a --links-snapshot\n"
               "  file\n";
  return EXIT_FAILURE;
}

// ---------------------------------------------------------------------------
// Signal handling + terminal state.
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_cursor_hidden = 0;

void on_stop_signal(int /*signo*/) {
  if (g_cursor_hidden != 0) {
    // Restore the cursor with a raw write(2) — the only terminal repair
    // that is async-signal-safe. Without this, Ctrl-C between the hide
    // escape and the guard's destructor leaves the shell cursorless.
    constexpr char kShowCursor[] = "\033[?25h\n";
    [[maybe_unused]] const ssize_t w =
        ::write(STDOUT_FILENO, kShowCursor, sizeof(kShowCursor) - 1);
    g_cursor_hidden = 0;
  }
  g_stop = 1;
}

/// SIGINT/SIGTERM end the follow loop cleanly. No SA_RESTART: the tick
/// sleep must come back early so the loop notices the flag.
void install_stop_handlers() {
  struct sigaction sa {};
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

/// Hides the cursor for flicker-free in-place redraws and shows it again
/// on every exit path (normal return via the destructor, signal via the
/// handler above — whichever runs first clears the flag).
class TerminalGuard {
 public:
  explicit TerminalGuard(bool active) : active_(active) {
    if (!active_) return;
    std::cout << "\033[?25l" << std::flush;
    g_cursor_hidden = 1;
  }
  ~TerminalGuard() {
    if (!active_ || g_cursor_hidden == 0) return;
    std::cout << "\033[?25h" << std::flush;
    g_cursor_hidden = 0;
  }
  TerminalGuard(const TerminalGuard&) = delete;
  TerminalGuard& operator=(const TerminalGuard&) = delete;

 private:
  bool active_;
};

/// Naps in short slices so a stop signal ends the tick wait promptly
/// (sleep_for retries EINTR internally and would otherwise absorb it).
void sleep_interruptible_ms(long long ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (g_stop == 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::this_thread::sleep_for(
        std::min(left, std::chrono::milliseconds(25)));
  }
}

// ---------------------------------------------------------------------------
// Segment freshness/liveness status (attach mode).
// ---------------------------------------------------------------------------

struct SegmentStatus {
  obs::ShmSegmentInfo info;
  std::uint64_t read_ns = 0;  ///< reader's monotonic clock at the read
  bool writer_alive = false;
  bool stale = false;

  std::uint64_t heartbeat_age_ns() const {
    return read_ns > info.heartbeat_ns ? read_ns - info.heartbeat_ns : 0;
  }
};

SegmentStatus make_segment_status(const obs::ShmSegmentInfo& info) {
  SegmentStatus st;
  st.info = info;
  // MonotonicClock directly (not global_clock): heartbeat age math only
  // works against the writer's CLOCK_MONOTONIC timebase.
  static const obs::MonotonicClock kClock;
  st.read_ns = kClock.now_ns();
  st.writer_alive = obs::shm_writer_alive(info);
  // Stale = the writer missed several beats: heartbeat age well past the
  // advertised period (or past 2 s when the writer never advertised one).
  const std::uint64_t age = st.heartbeat_age_ns();
  st.stale = info.period_ns > 0 ? age > 5 * info.period_ns
                                : age > 2'000'000'000ULL;
  return st;
}

std::string segment_status_json(const SegmentStatus& st) {
  std::string out = ", \"segment\": {\"generation\": " +
                    std::to_string(st.info.generation) +
                    ", \"heartbeat_age_ns\": " +
                    std::to_string(st.heartbeat_age_ns()) +
                    ", \"period_ns\": " + std::to_string(st.info.period_ns) +
                    ", \"writer_alive\": " +
                    (st.writer_alive ? "true" : "false") +
                    ", \"stale\": " + (st.stale ? "true" : "false") +
                    ", \"flushes\": " + std::to_string(st.info.flushes) +
                    ", \"dropped\": " + std::to_string(st.info.dropped) +
                    ", \"scrape_port\": " +
                    std::to_string(st.info.scrape_port) + "}";
  return out;
}

void print_segment_status(const SegmentStatus& st) {
  std::cout << "segment    gen " << st.info.generation << ", heartbeat age "
            << fmt_double(static_cast<double>(st.heartbeat_age_ns()) / 1e6, 0)
            << " ms (period "
            << fmt_double(static_cast<double>(st.info.period_ns) / 1e6, 0)
            << " ms), writer pid " << st.info.writer_pid << " "
            << (st.writer_alive ? "alive" : "gone")
            << (st.stale ? " [STALE]" : "");
  if (st.info.dropped > 0) {
    std::cout << ", dropped " << st.info.dropped;
  }
  if (st.info.scrape_port > 0) {
    std::cout << ", scrape :" << st.info.scrape_port;
  }
  std::cout << "\n";
}

// ---------------------------------------------------------------------------
// Snapshot model, decoded from JSON.
// ---------------------------------------------------------------------------

struct DstRow {
  long long dst = 0;
  long long score = 100;
  long long sent = 0;
  long long delivered = 0;
  long long anomalies = 0;
  long long churn = 0;
  std::vector<long long> sent_buckets;
  std::vector<long long> delivered_buckets;
};

struct SloRow {
  std::string name;
  std::string state;
  double objective = 0.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  double budget_remaining = 1.0;
  long long fast_total = 0;
  long long fast_errors = 0;
  long long slow_total = 0;
  long long slow_errors = 0;
};

struct TopView {
  std::string now_ns;
  long long bucket_ns = 0;
  long long buckets = 0;
  long long publishes = 0;
  long long active_dsts = 0;
  std::vector<long long> sent_buckets;
  std::vector<long long> delivered_buckets;
  std::vector<long long> anomaly_buckets;
  std::vector<long long> publish_buckets;
  Histogram reconv_latency_us{0.0, 1.0, 1};
  Histogram publish_work_us{0.0, 1.0, 1};
  std::vector<DstRow> dsts;  ///< worst first
  std::vector<SloRow> slos;
};

long long get_int(const JsonValue& obj, const char* key, long long fb = 0) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fb;
  if (v->is_integer()) return v->as_int();
  if (v->is_number()) return static_cast<long long>(v->as_double());
  if (v->is_string()) {
    try {
      return std::stoll(v->as_string());
    } catch (const std::exception&) {
      return fb;
    }
  }
  return fb;
}

double get_double(const JsonValue& obj, const char* key, double fb = 0.0) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fb;
}

std::string get_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : "";
}

std::vector<long long> get_buckets(const JsonValue& obj, const char* key) {
  std::vector<long long> out;
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_array()) return out;
  for (const JsonValue& b : v->as_array()) {
    out.push_back(b.is_integer() ? b.as_int() : 0);
  }
  return out;
}

Histogram get_hist(const JsonValue& obj, const char* key) {
  const JsonValue* h = obj.find(key);
  if (h == nullptr || !h->is_object()) return Histogram(0.0, 1.0, 1);
  const double lo = get_double(*h, "lo", 0.0);
  const double hi = get_double(*h, "hi", 1.0);
  std::vector<long long> counts;
  if (const JsonValue* c = h->find("counts"); c != nullptr && c->is_array()) {
    for (const JsonValue& b : c->as_array()) {
      counts.push_back(b.is_integer() ? b.as_int() : 0);
    }
  }
  if (counts.empty() || hi <= lo) return Histogram(0.0, 1.0, 1);
  return Histogram::from_counts(lo, hi, std::move(counts), 0.0);
}

bool decode(const JsonValue& doc, TopView& view, std::string& error) {
  const JsonValue* health = doc.find("spliceHealth");
  if (health == nullptr || !health->is_object()) {
    error = "no spliceHealth section (run the producer with --health)";
    return false;
  }
  view = TopView{};
  view.now_ns = get_string(*health, "now_ns");
  if (const JsonValue* w = health->find("window");
      w != nullptr && w->is_object()) {
    view.bucket_ns = get_int(*w, "bucket_ns");
    view.buckets = get_int(*w, "buckets");
  }
  view.publishes = get_int(*health, "publishes");
  view.sent_buckets = get_buckets(*health, "sent_buckets");
  view.delivered_buckets = get_buckets(*health, "delivered_buckets");
  view.anomaly_buckets = get_buckets(*health, "anomaly_buckets");
  view.publish_buckets = get_buckets(*health, "publish_buckets");
  view.reconv_latency_us = get_hist(*health, "reconv_latency_us");
  view.publish_work_us = get_hist(*health, "publish_work_us");

  if (const JsonValue* dsts = health->find("dsts");
      dsts != nullptr && dsts->is_array()) {
    view.active_dsts = static_cast<long long>(dsts->as_array().size());
    for (const JsonValue& d : dsts->as_array()) {
      if (!d.is_object()) continue;
      DstRow row;
      row.dst = get_int(d, "dst");
      row.score = get_int(d, "score", 100);
      row.sent = get_int(d, "sent");
      row.delivered = get_int(d, "delivered");
      row.anomalies = get_int(d, "anomalies");
      row.churn = get_int(d, "churn");
      row.sent_buckets = get_buckets(d, "sent_buckets");
      row.delivered_buckets = get_buckets(d, "delivered_buckets");
      view.dsts.push_back(std::move(row));
    }
  }
  // Worst first; ties by traffic so a busy sick destination outranks an
  // idle one, then by id for a stable display.
  std::stable_sort(view.dsts.begin(), view.dsts.end(),
                   [](const DstRow& a, const DstRow& b) {
                     if (a.score != b.score) return a.score < b.score;
                     if (a.sent != b.sent) return a.sent > b.sent;
                     return a.dst < b.dst;
                   });

  if (const JsonValue* slo = doc.find("spliceSlo");
      slo != nullptr && slo->is_object()) {
    if (const JsonValue* slos = slo->find("slos");
        slos != nullptr && slos->is_array()) {
      for (const JsonValue& s : slos->as_array()) {
        if (!s.is_object()) continue;
        SloRow row;
        row.name = get_string(s, "name");
        row.state = get_string(s, "state");
        row.objective = get_double(s, "objective");
        row.fast_burn = get_double(s, "fast_burn");
        row.slow_burn = get_double(s, "slow_burn");
        row.budget_remaining = get_double(s, "budget_remaining", 1.0);
        row.fast_total = get_int(s, "fast_total");
        row.fast_errors = get_int(s, "fast_errors");
        row.slow_total = get_int(s, "slow_total");
        row.slow_errors = get_int(s, "slow_errors");
        view.slos.push_back(std::move(row));
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Links (heatmap) view model.
// ---------------------------------------------------------------------------

struct LinkViewRow {
  long long edge = 0;
  long long src = -1;
  long long dst = -1;
  double weight = 0.0;
  long long traversals = 0;
  long long deflections = 0;
  long long drops = 0;
  double cost = 0.0;
  std::vector<long long> slice_traversals;
  std::vector<long long> trav_buckets;
  std::vector<long long> drop_buckets;
};

struct LinksView {
  std::string now_ns;
  long long bucket_ns = 0;
  long long buckets = 0;
  long long k = 0;
  long long links_total = 0;
  long long total_traversals = 0;
  long long total_deflections = 0;
  long long total_drops = 0;
  std::vector<LinkViewRow> links;  ///< hottest first
};

bool decode_links(const JsonValue& doc, LinksView& view, std::string& error) {
  // The section lives under "spliceLinks" in a health snapshot or trace
  // dump; a standalone --links-snapshot file IS the section.
  const JsonValue* links = doc.find("spliceLinks");
  if (links == nullptr || !links->is_object()) {
    links = doc.find("links") != nullptr ? &doc : nullptr;
  }
  if (links == nullptr) {
    error = "no spliceLinks section (run the producer with --links)";
    return false;
  }
  view = LinksView{};
  view.now_ns = get_string(*links, "now_ns");
  if (const JsonValue* w = links->find("window");
      w != nullptr && w->is_object()) {
    view.bucket_ns = get_int(*w, "bucket_ns");
    view.buckets = get_int(*w, "buckets");
  }
  view.k = get_int(*links, "k");
  view.links_total = get_int(*links, "links_total");
  if (const JsonValue* t = links->find("totals");
      t != nullptr && t->is_object()) {
    view.total_traversals = get_int(*t, "traversals");
    view.total_deflections = get_int(*t, "deflections");
    view.total_drops = get_int(*t, "drops");
  }
  if (const JsonValue* rows = links->find("links");
      rows != nullptr && rows->is_array()) {
    for (const JsonValue& r : rows->as_array()) {
      if (!r.is_object()) continue;
      LinkViewRow row;
      row.edge = get_int(r, "edge");
      row.src = get_int(r, "src", -1);
      row.dst = get_int(r, "dst", -1);
      row.weight = get_double(r, "weight");
      row.traversals = get_int(r, "traversals");
      row.deflections = get_int(r, "deflections");
      row.drops = get_int(r, "drops");
      row.cost = get_double(r, "cost");
      row.slice_traversals = get_buckets(r, "slice_traversals");
      row.trav_buckets = get_buckets(r, "trav_buckets");
      row.drop_buckets = get_buckets(r, "drop_buckets");
      view.links.push_back(std::move(row));
    }
  }
  // Hottest first; ties by drops then edge id for a stable display.
  std::stable_sort(view.links.begin(), view.links.end(),
                   [](const LinkViewRow& a, const LinkViewRow& b) {
                     if (a.traversals != b.traversals)
                       return a.traversals > b.traversals;
                     if (a.drops != b.drops) return a.drops > b.drops;
                     return a.edge < b.edge;
                   });
  return true;
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

/// Eight-level block sparkline, oldest bucket first. Zero renders as the
/// lowest block so the window shape stays visible; an empty series is "-".
std::string sparkline(const std::vector<long long>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) return "-";
  long long max = 0;
  for (const long long v : values) max = std::max(max, v);
  std::string out;
  for (const long long v : values) {
    const int level =
        max == 0 ? 0
                 : static_cast<int>((v * 7 + max - 1) / max);  // ceil to 1..7
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

/// Per-bucket delivery-rate sparkline: full block = all delivered, low
/// block = all lost; buckets without traffic render as '.'.
std::string delivery_sparkline(const std::vector<long long>& sent,
                               const std::vector<long long>& delivered) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (sent.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    if (sent[i] == 0) {
      out += ".";
      continue;
    }
    const long long d = i < delivered.size() ? delivered[i] : 0;
    const auto level = static_cast<int>((d * 7) / sent[i]);
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

double loss_pct(long long sent, long long delivered) {
  if (sent <= 0) return 0.0;
  return 100.0 * static_cast<double>(sent - delivered) /
         static_cast<double>(sent);
}

void render_text(const TopView& view, std::size_t n) {
  const double window_s = static_cast<double>(view.bucket_ns) *
                          static_cast<double>(view.buckets) / 1e9;
  std::cout << "splice_top — window " << view.buckets << " x "
            << fmt_double(static_cast<double>(view.bucket_ns) / 1e6, 0)
            << " ms (" << fmt_double(window_s, 1) << " s), now_ns="
            << (view.now_ns.empty() ? "?" : view.now_ns) << "\n\n";

  if (!view.slos.empty()) {
    Table slo({"slo", "state", "budget_left", "fast_burn", "slow_burn",
               "fast_err/total", "slow_err/total"});
    for (const SloRow& s : view.slos) {
      slo.add_row({s.name, s.state,
                   fmt_double(s.budget_remaining * 100.0, 1) + "%",
                   fmt_double(s.fast_burn, 2), fmt_double(s.slow_burn, 2),
                   fmt_int(s.fast_errors) + "/" + fmt_int(s.fast_total),
                   fmt_int(s.slow_errors) + "/" + fmt_int(s.slow_total)});
    }
    slo.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "traffic    sent " << sparkline(view.sent_buckets)
            << "  delivered " << sparkline(view.delivered_buckets)
            << "  anomalies " << sparkline(view.anomaly_buckets)
            << "  publishes " << sparkline(view.publish_buckets) << "\n";
  if (view.reconv_latency_us.total() > 0) {
    const Histogram& lat = view.reconv_latency_us;
    const Histogram& work = view.publish_work_us;
    std::cout << "publishes  " << view.publishes << " in window; reconv p50 "
              << fmt_double(lat.quantile_edge(0.50), 1) << " us, p99 "
              << fmt_double(lat.quantile_edge(0.99), 1) << " us, p99.9 "
              << fmt_double(lat.quantile_edge(0.999), 1) << " us; work p50 "
              << fmt_double(work.quantile_edge(0.50), 1) << " us, p99 "
              << fmt_double(work.quantile_edge(0.99), 1) << " us\n";
  } else {
    std::cout << "publishes  none in window\n";
  }
  std::cout << "\n";

  Table top({"dst", "score", "loss_pct", "sent", "delivered", "anomalies",
             "churn", "delivery"});
  std::size_t shown = 0;
  for (const DstRow& d : view.dsts) {
    if (shown++ >= n) break;
    top.add_row({fmt_int(d.dst), fmt_int(d.score),
                 fmt_double(loss_pct(d.sent, d.delivered), 2),
                 fmt_int(d.sent), fmt_int(d.delivered), fmt_int(d.anomalies),
                 fmt_int(d.churn),
                 delivery_sparkline(d.sent_buckets, d.delivered_buckets)});
  }
  top.print(std::cout);
  if (view.active_dsts > static_cast<long long>(n)) {
    std::cout << "(showing " << n << " of " << view.active_dsts
              << " active destinations; --n=N for more)\n";
  }
}

void render_json(const TopView& view, std::size_t n,
                 const std::string& extra = std::string()) {
  std::string out = "{\"now_ns\": " + obs::json_quote(view.now_ns) +
                    ", \"window\": {\"bucket_ns\": " +
                    std::to_string(view.bucket_ns) +
                    ", \"buckets\": " + std::to_string(view.buckets) +
                    "}, \"publishes\": " + std::to_string(view.publishes) +
                    ", \"active_dsts\": " + std::to_string(view.active_dsts);
  // An empty histogram's quantile_edge degenerates to the hi bound; report
  // zeros so "no publishes in window" is unambiguous downstream.
  const Histogram& lat = view.reconv_latency_us;
  const auto pct = [&lat](double q) {
    return lat.total() > 0 ? lat.quantile_edge(q) : 0.0;
  };
  out += ", \"reconv_latency_us\": {\"p50\": " + obs::json_double(pct(0.50)) +
         ", \"p99\": " + obs::json_double(pct(0.99)) +
         ", \"p999\": " + obs::json_double(pct(0.999)) + "}";
  out += ", \"slos\": [";
  for (std::size_t i = 0; i < view.slos.size(); ++i) {
    const SloRow& s = view.slos[i];
    if (i != 0) out += ", ";
    out += "{\"name\": " + obs::json_quote(s.name) + ", \"state\": " +
           obs::json_quote(s.state) + ", \"fast_burn\": " +
           obs::json_double(s.fast_burn) + ", \"slow_burn\": " +
           obs::json_double(s.slow_burn) + ", \"budget_remaining\": " +
           obs::json_double(s.budget_remaining) + "}";
  }
  out += "], \"top\": [";
  for (std::size_t i = 0; i < view.dsts.size() && i < n; ++i) {
    const DstRow& d = view.dsts[i];
    if (i != 0) out += ", ";
    out += "{\"dst\": " + std::to_string(d.dst) + ", \"score\": " +
           std::to_string(d.score) + ", \"sent\": " + std::to_string(d.sent) +
           ", \"delivered\": " + std::to_string(d.delivered) +
           ", \"anomalies\": " + std::to_string(d.anomalies) +
           ", \"churn\": " + std::to_string(d.churn) + "}";
  }
  out += "]";
  out += extra;
  out += "}";
  std::cout << out << "\n";
}

double share_pct(long long part, long long whole) {
  if (whole <= 0) return 0.0;
  return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

/// "s0 27/s1 12/..." per-slice share of this link's traversals, percent.
std::string slice_share_cell(const LinkViewRow& row) {
  if (row.slice_traversals.empty() || row.traversals <= 0) return "-";
  std::string out;
  for (std::size_t s = 0; s < row.slice_traversals.size(); ++s) {
    if (s != 0) out += "/";
    out += fmt_double(share_pct(row.slice_traversals[s], row.traversals), 0);
  }
  return out;
}

std::string endpoints_cell(const LinkViewRow& row) {
  if (row.src < 0 || row.dst < 0) return "-";
  return fmt_int(row.src) + "->" + fmt_int(row.dst);
}

void render_links_text(const LinksView& view, std::size_t n) {
  const double window_s = static_cast<double>(view.bucket_ns) *
                          static_cast<double>(view.buckets) / 1e9;
  std::cout << "splice_top links — k=" << view.k << ", "
            << view.links.size() << " of " << view.links_total
            << " links active, window " << view.buckets << " x "
            << fmt_double(static_cast<double>(view.bucket_ns) / 1e6, 0)
            << " ms (" << fmt_double(window_s, 1) << " s), now_ns="
            << (view.now_ns.empty() ? "?" : view.now_ns) << "\n";
  std::cout << "totals     traversals " << fmt_int(view.total_traversals)
            << "  deflections " << fmt_int(view.total_deflections)
            << "  drops " << fmt_int(view.total_drops) << "\n\n";

  Table hot({"edge", "link", "trav", "share_pct", "defl", "drops", "cost",
             "slice_pct", "traffic"});
  std::size_t shown = 0;
  for (const LinkViewRow& r : view.links) {
    if (shown++ >= n) break;
    hot.add_row({fmt_int(r.edge), endpoints_cell(r), fmt_int(r.traversals),
                 fmt_double(share_pct(r.traversals, view.total_traversals), 2),
                 fmt_int(r.deflections), fmt_int(r.drops),
                 fmt_double(r.cost, 1), slice_share_cell(r),
                 sparkline(r.trav_buckets)});
  }
  std::cout << "hot links (by traversals)\n";
  hot.print(std::cout);

  std::vector<const LinkViewRow*> lossy;
  for (const LinkViewRow& r : view.links) {
    if (r.drops > 0 || r.deflections > 0) lossy.push_back(&r);
  }
  std::stable_sort(lossy.begin(), lossy.end(),
                   [](const LinkViewRow* a, const LinkViewRow* b) {
                     if (a->drops != b->drops) return a->drops > b->drops;
                     if (a->deflections != b->deflections)
                       return a->deflections > b->deflections;
                     return a->edge < b->edge;
                   });
  std::cout << "\nlossy links (by attributed drops, then deflections)\n";
  if (lossy.empty()) {
    std::cout << "(none in window)\n";
  } else {
    Table bad({"edge", "link", "drops", "drop_share_pct", "defl", "trav",
               "drops_spark"});
    shown = 0;
    for (const LinkViewRow* r : lossy) {
      if (shown++ >= n) break;
      bad.add_row({fmt_int(r->edge), endpoints_cell(*r), fmt_int(r->drops),
                   fmt_double(share_pct(r->drops, view.total_drops), 2),
                   fmt_int(r->deflections), fmt_int(r->traversals),
                   sparkline(r->drop_buckets)});
    }
    bad.print(std::cout);
  }
  if (view.links_total > static_cast<long long>(view.links.size())) {
    std::cout << "(" << view.links_total - static_cast<long long>(
                            view.links.size())
              << " links had no recorded activity)\n";
  }
}

void render_links_json(const LinksView& view, std::size_t n,
                       const std::string& extra = std::string()) {
  std::string out =
      "{\"now_ns\": " + obs::json_quote(view.now_ns) +
      ", \"window\": {\"bucket_ns\": " + std::to_string(view.bucket_ns) +
      ", \"buckets\": " + std::to_string(view.buckets) +
      "}, \"k\": " + std::to_string(view.k) +
      ", \"links_total\": " + std::to_string(view.links_total) +
      ", \"links_active\": " + std::to_string(view.links.size()) +
      ", \"totals\": {\"traversals\": " +
      std::to_string(view.total_traversals) +
      ", \"deflections\": " + std::to_string(view.total_deflections) +
      ", \"drops\": " + std::to_string(view.total_drops) + "}";
  const auto emit_row = [](const LinkViewRow& r) {
    std::string o = "{\"edge\": " + std::to_string(r.edge) +
                    ", \"src\": " + std::to_string(r.src) +
                    ", \"dst\": " + std::to_string(r.dst) +
                    ", \"traversals\": " + std::to_string(r.traversals) +
                    ", \"deflections\": " + std::to_string(r.deflections) +
                    ", \"drops\": " + std::to_string(r.drops) +
                    ", \"cost\": " + obs::json_double(r.cost) +
                    ", \"slice_traversals\": [";
    for (std::size_t s = 0; s < r.slice_traversals.size(); ++s) {
      if (s != 0) o += ", ";
      o += std::to_string(r.slice_traversals[s]);
    }
    o += "]}";
    return o;
  };
  out += ", \"hot\": [";
  for (std::size_t i = 0; i < view.links.size() && i < n; ++i) {
    if (i != 0) out += ", ";
    out += emit_row(view.links[i]);
  }
  out += "], \"lossy\": [";
  std::vector<const LinkViewRow*> lossy;
  for (const LinkViewRow& r : view.links) {
    if (r.drops > 0) lossy.push_back(&r);
  }
  std::stable_sort(lossy.begin(), lossy.end(),
                   [](const LinkViewRow* a, const LinkViewRow* b) {
                     if (a->drops != b->drops) return a->drops > b->drops;
                     return a->edge < b->edge;
                   });
  for (std::size_t i = 0; i < lossy.size() && i < n; ++i) {
    if (i != 0) out += ", ";
    out += emit_row(*lossy[i]);
  }
  out += "]";
  out += extra;
  out += "}";
  std::cout << out << "\n";
}

int run(const Flags& flags) {
  const auto& pos = flags.positional();
  bool attach_mode = !pos.empty() && pos[0] == "attach";
  const std::size_t base = attach_mode ? 1 : 0;
  if (pos.size() <= base || pos.size() > base + 2) return usage();
  const std::string& path = pos[base];
  const bool links_view = pos.size() == base + 2 && pos[base + 1] == "links";
  if (pos.size() == base + 2 && !links_view) return usage();
  const bool follow = flags.has("follow");
  const bool json = flags.has("json");
  const auto n = static_cast<std::size_t>(flags.get_int("n", 15));
  const auto interval_ms = flags.get_int("interval-ms", 500);
  const long long ticks = flags.get_int("ticks", 0);  // 0 = unbounded

  obs::ShmSegmentReader reader;
  if (attach_mode) {
    std::string error;
    if (!reader.attach(path, &error)) {
      // A plain JSON snapshot (or trace) file is not an error: fall back
      // to file polling so `attach` also works on --health-snapshot output.
      JsonParseResult probe = parse_json_file(path);
      if (!probe.ok) {
        std::cerr << "splice_top: attach " << path << ": " << error << "\n";
        return EXIT_FAILURE;
      }
      std::cerr << "splice_top: " << path
                << ": not a telemetry segment; falling back to "
                   "snapshot-file polling\n";
      attach_mode = false;
    }
  }

  if (follow) install_stop_handlers();
  TerminalGuard cursor(follow && !json);

  std::string payload;
  bool ever_rendered = false;
  std::uint64_t last_generation = 0;
  for (long long tick = 0; g_stop == 0; ++tick) {
    std::string error;
    bool ok = false;
    JsonParseResult parsed;
    SegmentStatus seg;
    bool have_segment = false;
    if (attach_mode) {
      obs::ShmSegmentInfo info;
      const obs::ShmReadResult r = reader.read(payload, &info);
      if (r == obs::ShmReadResult::kOk) {
        seg = make_segment_status(info);
        have_segment = true;
        parsed = parse_json(payload);
        ok = parsed.ok;
        if (!ok) error = parsed.error;
      } else if (r == obs::ShmReadResult::kEmpty) {
        error = "segment attached, nothing published yet";
      } else {
        error = std::string("segment read ") + shm_read_result_name(r) +
                " (writer wedged mid-publish?)";
      }
    } else {
      parsed = parse_json_file(path);
      ok = parsed.ok;
      if (!ok) error = parsed.error;
    }
    TopView view;
    LinksView links;
    if (ok) {
      ok = links_view ? decode_links(parsed.value, links, error)
                      : decode(parsed.value, view, error);
    }
    if (!ok) {
      // In follow mode the producer rewrites the file wholesale (or the
      // segment is mid-publish / not yet published), so a transient
      // failure just skips the tick.
      if (!follow) {
        std::cerr << "splice_top: " << path << ": " << error << "\n";
        return EXIT_FAILURE;
      }
    } else if (attach_mode && follow && !json && ever_rendered &&
               seg.info.generation == last_generation) {
      // Generation-gated redraw: nothing new was published; leave the
      // frame (and its heartbeat line) as-is instead of flickering.
    } else {
      std::string extra;
      if (have_segment) extra = segment_status_json(seg);
      if (!json && follow) std::cout << "\033[H\033[2J";  // home + clear
      if (!json && have_segment) print_segment_status(seg);
      if (links_view) {
        json ? render_links_json(links, n, extra)
             : render_links_text(links, n);
      } else {
        json ? render_json(view, n, extra) : render_text(view, n);
      }
      ever_rendered = true;
      last_generation = seg.info.generation;
    }
    if (!follow) break;
    if (ticks > 0 && tick + 1 >= ticks) break;
    sleep_interruptible_ms(interval_ms);
  }
  return ever_rendered ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  try {
    return splice::run(splice::Flags(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "splice_top: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
