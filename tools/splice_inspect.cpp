// splice_inspect: reads the telemetry artifacts the benches write — trace
// dumps (--trace), bench tables (--json) and RunReports (--metrics) — and
// answers the questions a run raises, without a browser or Python:
//
//   splice_inspect validate FILE
//       structural check of a trace dump: parses, B/E balance per lane,
//       anomaly/run cross-references, drop counters. Exit 1 on violation.
//   splice_inspect top FILE [--n=10]
//       top-N slowest phases from the exact span aggregates.
//   splice_inspect anomalies FILE [--n=10] [--check]
//       per-kind anomaly summary plus a runnable `splice_inspect replay`
//       command line per record; --check re-runs the first loop anomaly
//       through sim/replay and verifies the loop reproduces.
//   splice_inspect replay --topo=.. --p=.. --trial=.. --k=.. --src=..
//                         --dst=.. [config flags]
//       replays one recovery episode (exact failure set, exact RNG) and
//       prints the hop-by-hop walk. Config flags default to the
//       RecoveryExperimentConfig defaults and use the ledger's run-param
//       names (--scheme, --k_values, --p_values, --trials, --pair_sample,
//       --perturb, --perturb_a, --perturb_b, --perturb_first_slice,
//       --failure, --max_trials, --header_hops, --flip_probability,
//       --max_switches, --ttl).
//   splice_inspect diff BASELINE CURRENT [--tolerance=0.10] [--gate-time]
//       scripts/perf_gate.py's comparison, self-contained: higher-better
//       metrics (speedup/mhops/throughput/per_s) gate at tolerance, time
//       metrics (ms/_ns/_us/wall/seconds) only with --gate-time, noisy
//       resource metrics (rss/ipc/cache-miss/cycles/faults/alloc bytes)
//       two-sided at tolerance, alloc *counts* and everything else must
//       match exactly. Exit 1 on regression.
//   splice_inspect profile FILE [--n=10] [--folded=PATH]
//       resource-attribution report from a profiled RunReport (--metrics
//       with --profile) or trace dump: top spans by self time, allocated
//       bytes and cache misses; --folded also validates and summarizes a
//       folded-stack flamegraph file (--profile=PATH output).
//   splice_inspect epochs FILE [--n=10] [--json]
//       FIB epoch-swap ledger from the live publication pipeline's
//       recorder events: per-publish edge, patched-destination count,
//       reconvergence latency and reader adoptions, plus a p50/p99/max
//       latency summary. --json emits every row machine-readably; an
//       empty or absent ledger is {"count": 0} and exit 0.
//   splice_inspect why FILE [IDX] [--check]
//       root-cause chain for anomaly IDX (default: the first one that
//       resolves): anomaly -> FIB epoch forwarded under -> the publish
//       row (edge, down/restore, timestamp) that created it -> the
//       generating churn event -> observation lag and the exposure
//       window until the repairing epoch. Prints a runnable replay
//       command; --check re-runs the exact batch against the rebuilt
//       epoch and verifies the outcome reproduces. Exit 1 when the
//       anomaly cannot be resolved to a causing publish.
//   splice_inspect scrape URL [--out=PATH]
//       pulls one Prometheus text exposition from a running process's
//       --telemetry=tcp:PORT scrape endpoint (plain HTTP/1.0 GET, no
//       third-party client) and validates it against the exposition-format
//       rules obs_export_test enforces (every sample typed, histogram
//       buckets cumulative and +Inf-terminated). URL forms: a bare port,
//       HOST:PORT, or http://HOST:PORT/path. --out saves the body. Exit 1
//       on connect failure, non-200 status or lint violation.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dataplane/fib_publisher.h"
#include "dataplane/network.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "obs/anomaly.h"
#include "obs/causal.h"
#include "obs/export.h"
#include "routing/multi_instance.h"
#include "sim/batch_feed.h"
#include "sim/churn.h"
#include "sim/experiments.h"
#include "sim/replay.h"
#include "splicing/recovery.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/table.h"

namespace splice {
namespace {

int usage() {
  std::cerr
      << "usage: splice_inspect <command> [args]\n"
         "  validate FILE                 check a --trace dump's structure\n"
         "  top FILE [--n=10]             slowest phases by total time\n"
         "  anomalies FILE [--n] [--check]  anomaly summary + replay lines\n"
         "  replay --topo=.. --p=.. --trial=.. --k=.. --src=.. --dst=.. ...\n"
         "                                replay one recovery episode\n"
         "  diff BASE CURRENT [--tolerance=0.10] [--gate-time]\n"
         "                                perf-gate two telemetry files\n"
         "  profile FILE [--n=10] [--folded=PATH]\n"
         "                                resource attribution: top spans by\n"
         "                                self time / alloc bytes / cache\n"
         "                                misses; --folded checks a\n"
         "                                flamegraph file\n"
         "  epochs FILE [--n=10] [--json] FIB epoch-swap ledger: per-publish\n"
         "                                edge/patch counts, reconvergence\n"
         "                                latency with p50/p99/max summary\n"
         "  why FILE [IDX] [--check]      root-cause chain for one anomaly:\n"
         "                                causing publish + churn event, lag\n"
         "                                and exposure window; --check\n"
         "                                replays the batch and verifies\n"
         "  scrape URL [--out=PATH]       GET one Prometheus exposition from\n"
         "                                a --telemetry=tcp:PORT endpoint and\n"
         "                                lint it (URL: PORT, HOST:PORT or\n"
         "                                http://HOST:PORT/path)\n";
  return EXIT_FAILURE;
}

Graph load_topo(const std::string& name) {
  for (const auto& known : topo::registry_names()) {
    if (name == known) return topo::by_name(name);
  }
  return load_topology(name);
}

// ---------------------------------------------------------------------------
// Shared config plumbing: the replay command line and the ledger's run
// params use the same key names, so one reader serves both.
// ---------------------------------------------------------------------------

using KvReader = std::map<std::string, std::string>;

std::vector<double> parse_double_csv(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= csv.size() && !csv.empty()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) out.push_back(std::strtod(item.c_str(), nullptr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<SliceId> parse_slice_csv(const std::string& csv) {
  std::vector<SliceId> out;
  for (const double v : parse_double_csv(csv)) {
    out.push_back(static_cast<SliceId>(v));
  }
  return out;
}

FailureKind parse_failure(const std::string& name) {
  if (name == "node") return FailureKind::kNode;
  if (name == "length-weighted") return FailureKind::kLengthWeighted;
  return FailureKind::kLink;
}

/// Builds the experiment config from run params / replay flags; keys absent
/// from `kv` keep the RecoveryExperimentConfig defaults.
RecoveryExperimentConfig config_from_kv(const KvReader& kv) {
  RecoveryExperimentConfig cfg;
  const auto get = [&](const char* key) -> std::optional<std::string> {
    const auto it = kv.find(key);
    if (it == kv.end()) return std::nullopt;
    return it->second;
  };
  if (const auto v = get("seed"))
    cfg.seed = std::strtoull(v->c_str(), nullptr, 10);
  if (const auto v = get("scheme"))
    cfg.recovery.scheme = parse_recovery_scheme(*v);
  if (const auto v = get("k_values")) cfg.k_values = parse_slice_csv(*v);
  if (const auto v = get("p_values")) cfg.p_values = parse_double_csv(*v);
  if (const auto v = get("trials"))
    cfg.trials = static_cast<int>(std::strtol(v->c_str(), nullptr, 10));
  if (const auto v = get("pair_sample"))
    cfg.pair_sample = static_cast<int>(std::strtol(v->c_str(), nullptr, 10));
  if (const auto v = get("perturb"))
    cfg.perturbation.kind = parse_perturbation_kind(*v);
  if (const auto v = get("perturb_a"))
    cfg.perturbation.a = std::strtod(v->c_str(), nullptr);
  if (const auto v = get("perturb_b"))
    cfg.perturbation.b = std::strtod(v->c_str(), nullptr);
  if (const auto v = get("perturb_first_slice"))
    cfg.perturb_first_slice = *v == "1" || *v == "true";
  if (const auto v = get("semantics")) {
    cfg.semantics = *v == "directed" ? UnionSemantics::kDirectedForwarding
                                     : UnionSemantics::kUndirectedLinks;
  }
  if (const auto v = get("failure")) cfg.failure = parse_failure(*v);
  if (const auto v = get("max_trials"))
    cfg.recovery.max_trials =
        static_cast<int>(std::strtol(v->c_str(), nullptr, 10));
  if (const auto v = get("header_hops"))
    cfg.recovery.header_hops =
        static_cast<int>(std::strtol(v->c_str(), nullptr, 10));
  if (const auto v = get("flip_probability"))
    cfg.recovery.flip_probability = std::strtod(v->c_str(), nullptr);
  if (const auto v = get("max_switches"))
    cfg.recovery.max_switches =
        static_cast<int>(std::strtol(v->c_str(), nullptr, 10));
  if (const auto v = get("ttl"))
    cfg.recovery.ttl = static_cast<int>(std::strtol(v->c_str(), nullptr, 10));
  return cfg;
}

// ---------------------------------------------------------------------------
// Trace-dump access.
// ---------------------------------------------------------------------------

std::optional<JsonValue> load_json(const std::string& path) {
  JsonParseResult parsed = parse_json_file(path);
  if (!parsed.ok) {
    std::cerr << "splice_inspect: " << path << ": " << parsed.error << "\n";
    return std::nullopt;
  }
  return std::move(parsed.value);
}

std::string meta_string(const JsonValue& doc, const std::string& key) {
  const JsonValue* meta = doc.find("spliceMeta");
  if (meta == nullptr) return "";
  const JsonValue* v = meta->find(key);
  if (v == nullptr || !v->is_string()) return "";
  return v->as_string();
}

/// Integer field that may arrive as a JSON number, a quoted u64 decimal
/// string (the exporter's >2^53 convention) or a bool.
long long tolerant_int(const JsonValue& obj, const char* key,
                       long long fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->is_integer()) return v->as_int();
  if (v->is_bool()) return v->as_bool() ? 1 : 0;
  if (v->is_string()) {
    try {
      return std::stoll(v->as_string());
    } catch (const std::exception&) {
      return fallback;
    }
  }
  return fallback;
}

KvReader run_params(const JsonValue& doc, long long run_index) {
  KvReader out;
  const JsonValue* runs = doc.find("spliceRuns");
  if (runs == nullptr || !runs->is_array()) return out;
  for (const JsonValue& run : runs->as_array()) {
    const JsonValue* idx = run.find("index");
    if (idx == nullptr || !idx->is_integer() || idx->as_int() != run_index)
      continue;
    const JsonValue* params = run.find("params");
    if (params == nullptr || !params->is_object()) return out;
    for (const auto& [k, v] : params->as_object()) {
      if (v.is_string()) out[k] = v.as_string();
    }
    return out;
  }
  return out;
}

// ---------------------------------------------------------------------------
// validate
// ---------------------------------------------------------------------------

int cmd_validate(const std::string& path) {
  const auto doc = load_json(path);
  if (!doc) return EXIT_FAILURE;
  std::vector<std::string> violations;
  const auto require = [&](bool ok, const std::string& what) {
    if (!ok) violations.push_back(what);
    return ok;
  };

  const JsonValue* events = doc->find("traceEvents");
  std::size_t event_count = 0;
  if (require(events != nullptr && events->is_array(),
              "traceEvents missing or not an array")) {
    event_count = events->as_array().size();
    // Durations must balance: per (pid, tid), every "B" needs its "E".
    std::map<std::pair<long long, long long>, long long> depth;
    for (const JsonValue& ev : events->as_array()) {
      const JsonValue* ph = ev.find("ph");
      const JsonValue* pid = ev.find("pid");
      const JsonValue* tid = ev.find("tid");
      if (!require(ph != nullptr && ph->is_string() && pid != nullptr &&
                       tid != nullptr,
                   "event without ph/pid/tid")) {
        break;
      }
      const JsonValue* name = ev.find("name");
      if (!require(name != nullptr && name->is_string(),
                   "event without a name")) {
        break;
      }
      const auto lane = std::make_pair(pid->as_int(), tid->as_int());
      if (ph->as_string() == "B") {
        ++depth[lane];
      } else if (ph->as_string() == "E") {
        if (--depth[lane] < 0) {
          violations.push_back("unbalanced E on pid " +
                               std::to_string(lane.first) + " tid " +
                               std::to_string(lane.second));
          depth[lane] = 0;
        }
      }
    }
    for (const auto& [lane, d] : depth) {
      require(d == 0, "unclosed B events on pid " +
                          std::to_string(lane.first) + " tid " +
                          std::to_string(lane.second) + " (" +
                          std::to_string(d) + " open)");
    }
  }

  const JsonValue* spans = doc->find("spliceSpans");
  if (require(spans != nullptr && spans->is_array(),
              "spliceSpans missing or not an array")) {
    for (const JsonValue& s : spans->as_array()) {
      require(s.find("path") != nullptr && s.find("depth") != nullptr &&
                  s.find("count") != nullptr && s.find("total_ns") != nullptr,
              "span row missing path/depth/count/total_ns");
    }
  }

  long long max_run = -1;
  const JsonValue* runs = doc->find("spliceRuns");
  if (require(runs != nullptr && runs->is_array(),
              "spliceRuns missing or not an array")) {
    for (const JsonValue& run : runs->as_array()) {
      const JsonValue* idx = run.find("index");
      if (require(idx != nullptr && idx->is_integer(),
                  "run without integer index")) {
        max_run = std::max(max_run, idx->as_int());
      }
    }
  }

  const JsonValue* anomalies = doc->find("spliceAnomalies");
  std::size_t anomaly_count = 0;
  if (require(anomalies != nullptr && anomalies->is_array(),
              "spliceAnomalies missing or not an array")) {
    anomaly_count = anomalies->as_array().size();
    for (const JsonValue& a : anomalies->as_array()) {
      const JsonValue* kind = a.find("kind");
      if (!require(kind != nullptr && kind->is_string(),
                   "anomaly without kind")) {
        break;
      }
      const JsonValue* run = a.find("run");
      require(run != nullptr && run->is_integer() &&
                  run->as_int() <= std::max(max_run, 0LL),
              "anomaly references unknown run");
      require(a.find("seed") != nullptr && a.find("p") != nullptr &&
                  a.find("trial") != nullptr && a.find("k") != nullptr &&
                  a.find("src") != nullptr && a.find("dst") != nullptr,
              "anomaly missing replay coordinates");
    }
  }

  const JsonValue* meta = doc->find("spliceMeta");
  require(meta != nullptr && meta->is_object(),
          "spliceMeta missing or not an object");
  long long dropped = 0;
  if (meta != nullptr) {
    if (const JsonValue* d = meta->find("recorder_dropped");
        d != nullptr && d->is_integer()) {
      dropped = d->as_int();
    }
  }

  std::cout << path << ": " << event_count << " trace events, "
            << anomaly_count << " anomalies, " << dropped
            << " recorder drops\n";
  if (!violations.empty()) {
    for (const auto& v : violations) std::cout << "  INVALID: " << v << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "  structure OK\n";
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// top
// ---------------------------------------------------------------------------

int cmd_top(const std::string& path, const Flags& flags) {
  const auto doc = load_json(path);
  if (!doc) return EXIT_FAILURE;
  const JsonValue* spans = doc->find("spliceSpans");
  if (spans == nullptr || !spans->is_array()) {
    std::cerr << "splice_inspect: " << path << " carries no spliceSpans\n";
    return EXIT_FAILURE;
  }
  struct Row {
    std::string path;
    long long count = 0;
    long long total_ns = 0;
  };
  std::vector<Row> rows;
  for (const JsonValue& s : spans->as_array()) {
    Row r;
    if (const JsonValue* v = s.find("path"); v != nullptr && v->is_string())
      r.path = v->as_string();
    if (const JsonValue* v = s.find("count"); v != nullptr && v->is_integer())
      r.count = v->as_int();
    if (const JsonValue* v = s.find("total_ns");
        v != nullptr && v->is_integer())
      r.total_ns = v->as_int();
    rows.push_back(std::move(r));
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.total_ns > b.total_ns;
  });
  const auto n = static_cast<std::size_t>(flags.get_int("n", 10));
  if (rows.size() > n) rows.resize(n);

  Table table({"phase", "count", "total_ms", "mean_us"});
  for (const Row& r : rows) {
    const double total_ms = static_cast<double>(r.total_ns) / 1e6;
    const double mean_us = r.count > 0 ? static_cast<double>(r.total_ns) /
                                             (1e3 * static_cast<double>(
                                                        r.count))
                                       : 0.0;
    table.add_row({r.path, fmt_int(r.count), fmt_double(total_ms, 3),
                   fmt_double(mean_us, 2)});
  }
  table.print(std::cout);
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// anomalies
// ---------------------------------------------------------------------------

struct AnomalyRow {
  std::string kind;
  long long run = 0;
  std::string seed;
  double p = 0.0;
  long long trial = 0;
  long long k = 0;
  long long src = 0;
  long long dst = 0;
  long long attempts = 0;
  long long hops = 0;
  double stretch = 0.0;
  long long variant = 0;
  long long aux = 0;
  long long t_ns = 0;      ///< record() timestamp (0 = unknown)
  long long fib_epoch = 0; ///< FIB snapshot forwarded under (0 = n/a)
};

std::vector<AnomalyRow> anomaly_rows(const JsonValue& doc) {
  std::vector<AnomalyRow> out;
  const JsonValue* anomalies = doc.find("spliceAnomalies");
  if (anomalies == nullptr || !anomalies->is_array()) return out;
  for (const JsonValue& a : anomalies->as_array()) {
    AnomalyRow r;
    const auto ints = [&](const char* key, long long& field) {
      if (const JsonValue* v = a.find(key); v != nullptr && v->is_integer())
        field = v->as_int();
    };
    if (const JsonValue* v = a.find("kind"); v != nullptr && v->is_string())
      r.kind = v->as_string();
    if (const JsonValue* v = a.find("seed"); v != nullptr && v->is_string())
      r.seed = v->as_string();
    if (const JsonValue* v = a.find("p"); v != nullptr && v->is_number())
      r.p = v->as_double();
    if (const JsonValue* v = a.find("stretch");
        v != nullptr && v->is_number())
      r.stretch = v->as_double();
    ints("run", r.run);
    ints("trial", r.trial);
    ints("k", r.k);
    ints("src", r.src);
    ints("dst", r.dst);
    ints("attempts", r.attempts);
    ints("hops", r.hops);
    ints("variant", r.variant);
    // u64s exported as quoted decimal strings.
    r.aux = tolerant_int(a, "aux", 0);
    r.t_ns = tolerant_int(a, "t_ns", 0);
    r.fib_epoch = tolerant_int(a, "fib_epoch", 0);
    out.push_back(std::move(r));
  }
  return out;
}

bool is_recovery_run(const KvReader& params) {
  const auto it = params.find("experiment");
  return it != params.end() && it->second == "recovery";
}

std::string replay_command(const JsonValue& doc, const AnomalyRow& a) {
  const KvReader params = run_params(doc, a.run);
  if (!is_recovery_run(params)) return "";
  std::string topo = meta_string(doc, "topo");
  if (topo.empty()) topo = meta_string(doc, "context.topo");
  std::string cmd = "splice_inspect replay";
  cmd += " --topo=" + (topo.empty() ? std::string("sprint") : topo);
  cmd += " --p=" + obs::json_double(a.p);
  cmd += " --trial=" + std::to_string(a.trial);
  cmd += " --k=" + std::to_string(a.k);
  cmd += " --src=" + std::to_string(a.src);
  cmd += " --dst=" + std::to_string(a.dst);
  for (const auto& [key, value] : params) {
    if (key == "experiment") continue;
    cmd += " --" + key + "=" + value;
  }
  return cmd;
}

int cmd_anomalies(const std::string& path, const Flags& flags) {
  const auto doc = load_json(path);
  if (!doc) return EXIT_FAILURE;
  const std::vector<AnomalyRow> rows = anomaly_rows(*doc);

  std::map<std::string, long long> by_kind;
  for (const AnomalyRow& r : rows) ++by_kind[r.kind];
  std::cout << rows.size() << " anomalies";
  if (!by_kind.empty()) {
    std::cout << " (";
    bool first = true;
    for (const auto& [kind, count] : by_kind) {
      if (!first) std::cout << ", ";
      first = false;
      std::cout << kind << ": " << count;
    }
    std::cout << ")";
  }
  std::cout << "\n";

  const auto n = static_cast<std::size_t>(flags.get_int("n", 10));
  for (std::size_t i = 0; i < rows.size() && i < n; ++i) {
    const AnomalyRow& a = rows[i];
    std::cout << "\n[" << i << "] " << a.kind << " run=" << a.run
              << " p=" << obs::json_double(a.p) << " trial=" << a.trial
              << " k=" << a.k << " " << a.src << "->" << a.dst
              << " attempts=" << a.attempts << " hops=" << a.hops;
    if (a.stretch > 0.0)
      std::cout << " stretch=" << fmt_double(a.stretch, 3);
    std::cout << "\n";
    const std::string cmd = replay_command(*doc, a);
    if (!cmd.empty()) std::cout << "    " << cmd << "\n";
  }
  if (rows.size() > n) {
    std::cout << "\n(" << rows.size() - n << " more; raise --n to list)\n";
  }

  if (!flags.has("check")) return EXIT_SUCCESS;

  // --check: replay the first loop anomaly and confirm it reproduces.
  for (const AnomalyRow& a : rows) {
    if (a.kind != "two_hop_loop" && a.kind != "revisit_loop") continue;
    const KvReader params = run_params(*doc, a.run);
    if (!is_recovery_run(params)) continue;
    std::string topo = meta_string(*doc, "topo");
    if (topo.empty()) topo = meta_string(*doc, "context.topo");
    if (topo.empty()) {
      std::cerr << "check: trace carries no topology name\n";
      return EXIT_FAILURE;
    }
    const Graph g = load_topo(topo);
    const RecoveryExperimentConfig cfg = config_from_kv(params);
    ReplayRequest req;
    req.p = a.p;
    req.trial = static_cast<int>(a.trial);
    req.k = static_cast<SliceId>(a.k);
    req.src = static_cast<NodeId>(a.src);
    req.dst = static_cast<NodeId>(a.dst);
    const ReplayResult res = replay_recovery_episode(g, cfg, req);
    if (!res.found) {
      std::cout << "\ncheck: FAILED — episode not found in replay\n";
      return EXIT_FAILURE;
    }
    const bool reproduced =
        a.kind == "two_hop_loop" ? res.two_hop_loop : res.revisits > 0;
    std::cout << "\ncheck: " << a.kind << " " << a.src << "->" << a.dst
              << " p=" << obs::json_double(a.p) << " trial=" << a.trial
              << " k=" << a.k << ": "
              << (reproduced ? "reproduced" : "NOT reproduced") << " ("
              << res.hops.size() << " hops, revisits=" << res.revisits
              << ")\n";
    return reproduced ? EXIT_SUCCESS : EXIT_FAILURE;
  }
  std::cout << "\ncheck: no loop anomaly with a recovery run to replay\n";
  return EXIT_FAILURE;
}

// ---------------------------------------------------------------------------
// replay
// ---------------------------------------------------------------------------

int cmd_replay(const Flags& flags) {
  const auto topo = flags.get("topo");
  if (!topo) {
    std::cerr << "replay: --topo is required\n";
    return EXIT_FAILURE;
  }
  KvReader kv;
  for (const char* key :
       {"seed", "scheme", "k_values", "p_values", "trials", "pair_sample",
        "perturb", "perturb_a", "perturb_b", "perturb_first_slice",
        "semantics", "failure", "max_trials", "header_hops",
        "flip_probability", "max_switches", "ttl"}) {
    if (const auto v = flags.get(key)) kv[key] = *v;
  }
  const RecoveryExperimentConfig cfg = config_from_kv(kv);
  ReplayRequest req;
  req.p = flags.get_double("p", 0.0);
  req.trial = static_cast<int>(flags.get_int("trial", 0));
  req.k = static_cast<SliceId>(flags.get_int("k", 1));
  req.src = static_cast<NodeId>(flags.get_int("src", 0));
  req.dst = static_cast<NodeId>(flags.get_int("dst", 0));

  const Graph g = load_topo(*topo);
  const ReplayResult res = replay_recovery_episode(g, cfg, req);
  if (!res.found) {
    std::cerr << "replay: episode not found — p off the grid, trial/k out "
                 "of range, or pair not evaluated by this config\n";
    return EXIT_FAILURE;
  }

  std::cout << "episode " << req.src << "->" << req.dst << " p="
            << obs::json_double(req.p) << " trial=" << req.trial
            << " k=" << req.k << " scheme="
            << to_string(cfg.recovery.scheme) << "\n"
            << "  failed links: " << res.failed_edges.size() << " of "
            << g.edge_count() << "\n"
            << "  initially connected: "
            << (res.recovery.initially_connected ? "yes" : "no") << "\n"
            << "  delivered: " << (res.recovery.delivered ? "yes" : "no")
            << " after " << res.recovery.trials_used << " retrials\n";
  if (res.recovery.delivered) {
    std::cout << "  cost: " << fmt_double(res.recovery.summary.cost, 3);
    if (res.stretch > 0.0)
      std::cout << "  stretch: " << fmt_double(res.stretch, 3);
    std::cout << "\n";
  }
  std::cout << "  two-hop loop: " << (res.two_hop_loop ? "yes" : "no")
            << "  node revisits: " << res.revisits << "\n";
  if (!res.hops.empty()) {
    std::cout << "  walk (" << res.hops.size() << " hops):\n";
    for (const HopRecord& h : res.hops) {
      std::cout << "    " << h.node << " -> " << h.next << "  slice "
                << h.slice << "  edge " << h.edge
                << (h.deflected ? "  (deflected)" : "") << "\n";
    }
  }
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// diff — scripts/perf_gate.py's comparison, ported 1:1.
// ---------------------------------------------------------------------------

enum class MetricClass { kExact, kTime, kHigherBetter, kNoisy };

MetricClass classify(const std::string& name) {
  std::string low = name;
  std::transform(low.begin(), low.end(), low.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  // Order matters: "Mhops_s" contains "hops" and "_s"; higher-better
  // markers win over everything else. Allocation *counts* are exact — the
  // zero-alloc paths must stay zero-alloc — while byte totals, hardware
  // counters and process rusage wobble run-to-run, so they gate two-sided
  // at tolerance (kNoisy) and must be classified before the time markers
  // ("cpu_user_seconds" would otherwise read as TIME).
  for (const char* m : {"allocs", "frees"}) {
    if (low.find(m) != std::string::npos) return MetricClass::kExact;
  }
  for (const char* m : {"speedup", "mhops", "throughput", "per_s"}) {
    if (low.find(m) != std::string::npos) return MetricClass::kHigherBetter;
  }
  for (const char* m : {"alloc_bytes", "heap_peak", "rss", "ipc",
                        "cache_miss", "branch_miss", "cycles", "instruction",
                        "fault", "cpu_user", "cpu_sys"}) {
    if (low.find(m) != std::string::npos) return MetricClass::kNoisy;
  }
  for (const char* m : {"ms", "_ns", "_us", "wall", "seconds"}) {
    if (low.find(m) != std::string::npos) return MetricClass::kTime;
  }
  return MetricClass::kExact;
}

struct Metric {
  MetricClass cls = MetricClass::kExact;
  JsonValue value;
};

using MetricMap = std::map<std::string, Metric>;

std::string value_repr(const JsonValue& v) {
  if (v.is_integer()) return std::to_string(v.as_int());
  if (v.is_number()) return obs::json_double(v.as_double());
  if (v.is_string()) return v.as_string();
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  return "null";
}

bool values_equal(const JsonValue& a, const JsonValue& b) {
  if (a.is_number() && b.is_number()) {
    if (a.is_integer() && b.is_integer()) return a.as_int() == b.as_int();
    return a.as_double() == b.as_double();
  }
  if (a.is_string() && b.is_string()) return a.as_string() == b.as_string();
  if (a.is_bool() && b.is_bool()) return a.as_bool() == b.as_bool();
  return a.is_null() && b.is_null();
}

bool is_run_report(const JsonValue& doc) {
  return doc.find("counters") != nullptr || doc.find("report") != nullptr;
}

MetricMap flatten_run_report(const JsonValue& doc) {
  MetricMap out;
  if (const JsonValue* counters = doc.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->as_object()) {
      out["counter:" + name] = {MetricClass::kExact, value};
    }
  }
  if (const JsonValue* gauges = doc.find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->as_object()) {
      out["gauge:" + name] = {classify(name), value};
    }
  }
  if (const JsonValue* hists = doc.find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [name, hist] : hists->as_object()) {
      if (const JsonValue* v = hist.find("total"); v != nullptr)
        out["hist:" + name + ":total"] = {MetricClass::kExact, *v};
      if (const JsonValue* v = hist.find("sum"); v != nullptr)
        out["hist:" + name + ":sum"] = {classify(name), *v};
      if (const JsonValue* counts = hist.find("counts");
          counts != nullptr && counts->is_array()) {
        const JsonArray& arr = counts->as_array();
        for (std::size_t i = 0; i < arr.size(); ++i) {
          out["hist:" + name + ":bin" + std::to_string(i)] = {
              MetricClass::kExact, arr[i]};
        }
      }
    }
  }
  // Span counts vary with worker count and span times are wall-clock:
  // only total_ns is diffable, as TIME. Resource deltas from --profile are
  // diffable too: alloc/free counts exactly (the zero-alloc contract),
  // bytes and hardware counters as NOISY.
  if (const JsonValue* spans = doc.find("spans");
      spans != nullptr && spans->is_array()) {
    for (const JsonValue& span : spans->as_array()) {
      const JsonValue* p = span.find("path");
      if (p == nullptr || !p->is_string()) continue;
      if (const JsonValue* t = span.find("total_ns"); t != nullptr) {
        out["span:" + p->as_string() + ":total_ns"] = {MetricClass::kTime,
                                                       *t};
      }
      for (const char* field :
           {"allocs", "frees", "alloc_bytes", "heap_peak_bytes", "cycles",
            "instructions", "cache_misses", "branch_misses", "ipc"}) {
        if (const JsonValue* v = span.find(field); v != nullptr) {
          out["span:" + p->as_string() + ":" + field] = {classify(field),
                                                         *v};
        }
      }
    }
  }
  // Process-wide rusage summary ("resources" block): numeric rows diff as
  // NOISY, string rows (tier, alloc_hooks) are environment annotations and
  // are skipped.
  if (const JsonValue* res = doc.find("resources");
      res != nullptr && res->is_object()) {
    for (const auto& [name, value] : res->as_object()) {
      if (!value.is_string()) continue;
      const std::string& s = value.as_string();
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      if (s.empty() || end != s.c_str() + s.size()) continue;
      out["res:" + name] = {MetricClass::kNoisy, JsonValue::make_number(v)};
    }
  }
  return out;
}

MetricMap flatten_bench_rows(const JsonValue& doc) {
  MetricMap out;
  std::map<std::string, int> seen;
  if (const JsonValue* rows = doc.find("rows");
      rows != nullptr && rows->is_array()) {
    for (const JsonValue& row : rows->as_array()) {
      if (!row.is_object()) continue;
      std::string key;
      for (const auto& [col, value] : row.as_object()) {
        if (value.is_string() && !value.as_string().empty()) {
          if (!key.empty()) key += "|";
          key += value.as_string();
        }
      }
      if (key.empty()) key = "row";
      const int n = seen[key]++;
      if (n != 0) key += "#" + std::to_string(n);
      for (const auto& [col, value] : row.as_object()) {
        if (value.is_string()) continue;  // part of the key
        out[key + ":" + col] = {classify(col), value};
      }
    }
  }
  if (const JsonValue* wall = doc.find("wall_ms"); wall != nullptr) {
    out["wall_ms"] = {MetricClass::kTime, *wall};
  }
  return out;
}

MetricMap flatten(const JsonValue& doc) {
  return is_run_report(doc) ? flatten_run_report(doc)
                            : flatten_bench_rows(doc);
}

int cmd_diff(const std::string& base_path, const std::string& cur_path,
             const Flags& flags) {
  const auto base = load_json(base_path);
  const auto cur = load_json(cur_path);
  if (!base || !cur) return EXIT_FAILURE;
  const double tolerance = flags.get_double("tolerance", 0.10);
  const bool gate_time = flags.has("gate-time");

  const MetricMap base_m = flatten(*base);
  const MetricMap cur_m = flatten(*cur);
  std::vector<std::string> failures;
  for (const auto& [key, bm] : base_m) {
    const auto it = cur_m.find(key);
    if (it == cur_m.end()) {
      failures.push_back("MISSING  " + key + " (present in baseline)");
      continue;
    }
    const JsonValue& bv = bm.value;
    const JsonValue& cv = it->second.value;
    if (bv.is_null() || cv.is_null()) continue;
    if (bm.cls == MetricClass::kExact || !bv.is_number() ||
        !cv.is_number()) {
      if (!values_equal(bv, cv)) {
        failures.push_back("CHANGED  " + key + ": " + value_repr(bv) +
                           " -> " + value_repr(cv));
      }
      continue;
    }
    const double b = bv.as_double();
    const double c = cv.as_double();
    if (bm.cls == MetricClass::kTime) {
      if (!gate_time) continue;
      if (b > 0 && c > b * (1.0 + tolerance)) {
        failures.push_back("SLOWER   " + key + ": " + value_repr(bv) +
                           " -> " + value_repr(cv) + " (+" +
                           fmt_double((c / b - 1.0) * 100.0, 1) + "% > " +
                           fmt_double(tolerance * 100.0, 0) + "%)");
      }
      continue;
    }
    if (bm.cls == MetricClass::kNoisy) {
      // Two-sided: a cache-miss or RSS drop this large is as suspicious as
      // a rise — it usually means the workload changed, not that it got
      // better.
      if (b > 0 && (c > b * (1.0 + tolerance) || c < b * (1.0 - tolerance))) {
        failures.push_back("DRIFTED  " + key + ": " + value_repr(bv) +
                           " -> " + value_repr(cv) + " (" +
                           fmt_double((c / b - 1.0) * 100.0, 1) + "% vs ±" +
                           fmt_double(tolerance * 100.0, 0) + "%)");
      }
      continue;
    }
    if (b > 0 && c < b * (1.0 - tolerance)) {
      failures.push_back("REGRESSED " + key + ": " + value_repr(bv) +
                         " -> " + value_repr(cv) + " (-" +
                         fmt_double((1.0 - c / b) * 100.0, 1) + "% > " +
                         fmt_double(tolerance * 100.0, 0) + "%)");
    }
  }
  for (const auto& [key, cm] : cur_m) {
    if (base_m.find(key) == base_m.end()) {
      std::cout << "note: new metric not in baseline: " << key << "\n";
    }
  }
  if (!failures.empty()) {
    std::cout << "diff: FAIL (" << base_path << " -> " << cur_path << ")\n";
    for (const auto& f : failures) std::cout << "  " << f << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "diff: OK (" << base_path << " -> " << cur_path
            << ", tolerance=" << fmt_double(tolerance * 100.0, 0)
            << "%, gate_time=" << (gate_time ? "true" : "false") << ")\n";
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// profile — resource attribution from a profiled RunReport or trace dump.
// ---------------------------------------------------------------------------

struct ProfileRow {
  std::string path;
  long long count = 0;
  long long total_ns = 0;
  long long self_ns = 0;  ///< total_ns minus direct children's total_ns
  long long allocs = 0;
  long long frees = 0;
  long long alloc_bytes = 0;
  long long heap_peak = 0;
  long long cycles = 0;
  long long instructions = 0;
  long long cache_misses = 0;
  bool hw = false;
  bool res = false;
};

long long json_int(const JsonValue& v) {
  if (v.is_integer()) return v.as_int();
  if (v.is_number()) return static_cast<long long>(v.as_double());
  return 0;
}

/// Validates and summarizes a folded-stack file (`--profile=PATH` output):
/// every line must be "frame;frame;... count". Prints the top-n stacks.
int check_folded(const std::string& path, std::size_t n) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "profile: cannot read folded stacks: " << path << "\n";
    return EXIT_FAILURE;
  }
  std::vector<std::pair<std::string, long long>> stacks;
  long long total = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    char* end = nullptr;
    const long long count =
        space == std::string::npos
            ? 0
            : std::strtoll(line.c_str() + space + 1, &end, 10);
    if (space == std::string::npos || space == 0 || count <= 0 ||
        end != line.c_str() + line.size()) {
      std::cerr << "profile: " << path << ":" << lineno
                << ": not a \"stack count\" line: " << line << "\n";
      return EXIT_FAILURE;
    }
    stacks.emplace_back(line.substr(0, space), count);
    total += count;
  }
  if (stacks.empty()) {
    std::cerr << "profile: " << path
              << " holds no samples — was the sampler on (--profile-hz>0) "
                 "and the run long enough?\n";
    return EXIT_FAILURE;
  }
  std::stable_sort(stacks.begin(), stacks.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::cout << "\n-- sampled stacks (" << path << ": " << stacks.size()
            << " stacks, " << total << " samples) --\n";
  for (std::size_t i = 0; i < stacks.size() && i < n; ++i) {
    const auto& [stack, count] = stacks[i];
    // Print leaf-first: the hot frame is what the reader scans for.
    std::string display = stack;
    const std::size_t leaf = display.rfind(';');
    if (leaf != std::string::npos) {
      display = display.substr(leaf + 1) + "  [" +
                display.substr(0, leaf) + "]";
    }
    std::cout << "  " << fmt_double(100.0 * static_cast<double>(count) /
                                        static_cast<double>(total),
                                    1)
              << "%  " << count << "  " << display << "\n";
  }
  return EXIT_SUCCESS;
}

int cmd_profile(const std::string& path, const Flags& flags) {
  const auto doc = load_json(path);
  if (!doc) return EXIT_FAILURE;
  const JsonValue* spans = doc->find("spans");
  if (spans == nullptr || !spans->is_array())
    spans = doc->find("spliceSpans");
  if (spans == nullptr || !spans->is_array()) {
    std::cerr << "splice_inspect: " << path
              << " carries no spans (write it with --metrics or --trace "
                 "plus --profile)\n";
    return EXIT_FAILURE;
  }

  std::vector<ProfileRow> rows;
  std::map<std::string, std::size_t> index;
  for (const JsonValue& s : spans->as_array()) {
    ProfileRow r;
    if (const JsonValue* v = s.find("path"); v != nullptr && v->is_string())
      r.path = v->as_string();
    const auto geti = [&](const char* key, long long& field) {
      if (const JsonValue* v = s.find(key); v != nullptr && v->is_number()) {
        field = json_int(*v);
        return true;
      }
      return false;
    };
    geti("count", r.count);
    geti("total_ns", r.total_ns);
    r.res |= geti("allocs", r.allocs);
    r.res |= geti("frees", r.frees);
    r.res |= geti("alloc_bytes", r.alloc_bytes);
    r.res |= geti("heap_peak_bytes", r.heap_peak);
    r.hw |= geti("cycles", r.cycles);
    r.hw |= geti("instructions", r.instructions);
    r.hw |= geti("cache_misses", r.cache_misses);
    r.self_ns = r.total_ns;
    index[r.path] = rows.size();
    rows.push_back(std::move(r));
  }
  // Self time: subtract each span's total from its parent ("a/b" rolls up
  // into "a"). Paths are unique in both span tables, so one pass suffices.
  for (const ProfileRow& r : rows) {
    const std::size_t slash = r.path.rfind('/');
    if (slash == std::string::npos) continue;
    const auto parent = index.find(r.path.substr(0, slash));
    if (parent != index.end()) rows[parent->second].self_ns -= r.total_ns;
  }

  const bool any_res =
      std::any_of(rows.begin(), rows.end(),
                  [](const ProfileRow& r) { return r.res; });
  const bool any_hw = std::any_of(rows.begin(), rows.end(),
                                  [](const ProfileRow& r) { return r.hw; });
  if (!any_res) {
    std::cerr << "splice_inspect: " << path
              << " has spans but no resource deltas — was --profile on?\n";
    return EXIT_FAILURE;
  }

  // Tier annotation (RunReport provenance carries it).
  if (const JsonValue* prov = doc->find("provenance");
      prov != nullptr && prov->is_object()) {
    if (const JsonValue* tier = prov->find("resource_tier");
        tier != nullptr && tier->is_string()) {
      std::cout << "resource tier: " << tier->as_string() << "\n";
    }
  }

  const auto n = static_cast<std::size_t>(flags.get_int("n", 10));
  const auto top = [&](const char* title,
                       auto key, auto keep,
                       const std::vector<std::string>& header,
                       auto to_cells) {
    std::vector<const ProfileRow*> picked;
    for (const ProfileRow& r : rows)
      if (keep(r)) picked.push_back(&r);
    if (picked.empty()) return;
    std::stable_sort(picked.begin(), picked.end(),
                     [&](const ProfileRow* a, const ProfileRow* b) {
                       return key(*a) > key(*b);
                     });
    if (picked.size() > n) picked.resize(n);
    std::cout << "\n-- " << title << " --\n";
    Table table(header);
    for (const ProfileRow* r : picked) table.add_row(to_cells(*r));
    table.print(std::cout);
  };

  top("hot spans (self time)",
      [](const ProfileRow& r) { return r.self_ns; },
      [](const ProfileRow& r) { return r.total_ns > 0; },
      {"phase", "count", "self_ms", "total_ms"},
      [](const ProfileRow& r) {
        return std::vector<std::string>{
            r.path, fmt_int(r.count),
            fmt_double(static_cast<double>(r.self_ns) / 1e6, 3),
            fmt_double(static_cast<double>(r.total_ns) / 1e6, 3)};
      });
  top("allocators (alloc bytes)",
      [](const ProfileRow& r) { return r.alloc_bytes; },
      [](const ProfileRow& r) {
        return r.res && (r.allocs | r.frees | r.alloc_bytes) != 0;
      },
      {"phase", "allocs", "frees", "alloc_bytes", "heap_peak"},
      [](const ProfileRow& r) {
        return std::vector<std::string>{
            r.path, fmt_int(r.allocs), fmt_int(r.frees),
            fmt_int(r.alloc_bytes), fmt_int(r.heap_peak)};
      });
  if (any_hw) {
    top("cache misses",
        [](const ProfileRow& r) { return r.cache_misses; },
        [](const ProfileRow& r) { return r.hw; },
        {"phase", "cycles", "instructions", "cache_misses", "ipc"},
        [](const ProfileRow& r) {
          const double ipc =
              r.cycles > 0 ? static_cast<double>(r.instructions) /
                                 static_cast<double>(r.cycles)
                           : 0.0;
          return std::vector<std::string>{
              r.path, fmt_int(r.cycles), fmt_int(r.instructions),
              fmt_int(r.cache_misses), fmt_double(ipc, 2)};
        });
  }

  // Process-wide rusage summary, when the file is a profiled RunReport.
  if (const JsonValue* res = doc->find("resources");
      res != nullptr && res->is_object() && !res->as_object().empty()) {
    std::cout << "\n-- process --\n";
    for (const auto& [k, v] : res->as_object()) {
      if (v.is_string())
        std::cout << "  " << k << " = " << v.as_string() << "\n";
    }
  }

  if (const auto folded = flags.get("folded")) {
    return check_folded(*folded, n);
  }
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// epochs: per-publish ledger of the live FIB publication pipeline, from the
// spliceEpochs array the trace exporter assembles out of kEpochPublish /
// kEpochGrace / kEpochAdopt recorder events.
// ---------------------------------------------------------------------------

int cmd_epochs(const std::string& path, const Flags& flags) {
  const auto doc = load_json(path);
  if (!doc) return EXIT_FAILURE;
  const bool json = flags.has("json");
  const JsonValue* epochs = doc->find("spliceEpochs");
  if (epochs == nullptr || !epochs->is_array() ||
      epochs->as_array().empty()) {
    if (json) {
      std::cout << "{\"count\": 0, \"epochs\": []}\n";
    } else {
      std::cout << "no epoch events in " << path
                << " (trace predates the publisher, or no publishes ran)\n";
    }
    return EXIT_SUCCESS;
  }

  struct Row {
    long long epoch = 0;
    long long edge = -1;
    long long alive = 1;
    long long dsts = 0;
    long long trees = 0;
    long long publish_ts_ns = -1;  ///< -1: no publish record for this epoch
    long long latency_ns = -1;     ///< -1: no grace record for this epoch
    long long work_ns = -1;        ///< -1: no work record for this epoch
    long long spins = 0;
    long long adopts = 0;
  };
  std::vector<Row> rows;
  std::vector<double> latencies_us;
  std::vector<double> works_us;
  for (const JsonValue& e : epochs->as_array()) {
    Row r;
    // uint64 fields (epoch, latency_ns, ...) are exported as JSON strings
    // to avoid double-precision truncation; small counts are plain numbers
    // and liveness is a bool. tolerant_int accepts all three.
    r.epoch = tolerant_int(e, "epoch", 0);
    r.edge = tolerant_int(e, "edge", -1);
    r.alive = tolerant_int(e, "alive", 1);
    r.dsts = tolerant_int(e, "dsts_patched", 0);
    r.trees = tolerant_int(e, "trees_touched", 0);
    r.publish_ts_ns = tolerant_int(e, "publish_ts_ns", -1);
    r.latency_ns = tolerant_int(e, "latency_ns", -1);
    r.work_ns = tolerant_int(e, "work_ns", -1);
    r.spins = tolerant_int(e, "grace_spins", 0);
    r.adopts = tolerant_int(e, "adopts", 0);
    if (r.latency_ns >= 0) {
      latencies_us.push_back(static_cast<double>(r.latency_ns) / 1e3);
    }
    if (r.work_ns >= 0) {
      works_us.push_back(static_cast<double>(r.work_ns) / 1e3);
    }
    rows.push_back(r);
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.epoch < b.epoch; });

  if (json) {
    // Machine-readable: every row (no --n truncation), u64-ish fields as
    // plain numbers (they fit: these are session-relative ids and counts).
    std::string out = "{\"count\": " + std::to_string(rows.size()) +
                      ", \"epochs\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      if (i != 0) out += ", ";
      out += "{\"epoch\": " + std::to_string(r.epoch) +
             ", \"edge\": " + std::to_string(r.edge) +
             ", \"alive\": " + (r.alive != 0 ? "true" : "false") +
             ", \"dsts_patched\": " + std::to_string(r.dsts) +
             ", \"trees_touched\": " + std::to_string(r.trees) +
             ", \"publish_ts_ns\": " + std::to_string(r.publish_ts_ns) +
             ", \"latency_ns\": " + std::to_string(r.latency_ns) +
             ", \"work_ns\": " + std::to_string(r.work_ns) +
             ", \"grace_spins\": " + std::to_string(r.spins) +
             ", \"adopts\": " + std::to_string(r.adopts) + "}";
    }
    out += "]";
    const auto pct_block = [](std::vector<double> us) {
      std::sort(us.begin(), us.end());
      const auto pct = [&us](double q) {
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(us.size() - 1) + 0.5);
        return us[std::min(idx, us.size() - 1)];
      };
      return "{\"p50\": " + obs::json_double(pct(0.50)) +
             ", \"p99\": " + obs::json_double(pct(0.99)) +
             ", \"max\": " + obs::json_double(us.back()) + "}";
    };
    if (!latencies_us.empty()) {
      out += ", \"reconv_latency_us\": " + pct_block(latencies_us);
    }
    if (!works_us.empty()) {
      out += ", \"publish_work_us\": " + pct_block(works_us);
    }
    out += "}";
    std::cout << out << "\n";
    return EXIT_SUCCESS;
  }

  const auto total = rows.size();
  const auto n = static_cast<std::size_t>(flags.get_int("n", 10));
  if (rows.size() > n) rows.resize(n);

  Table table({"epoch", "edge", "event", "dsts_patched", "trees_touched",
               "latency_us", "work_us", "grace_spins", "adopts"});
  for (const Row& r : rows) {
    table.add_row(
        {fmt_int(r.epoch), fmt_int(r.edge),
         r.alive != 0 ? "restore/scale" : "down", fmt_int(r.dsts),
         fmt_int(r.trees),
         r.latency_ns >= 0
             ? fmt_double(static_cast<double>(r.latency_ns) / 1e3, 2)
             : "-",
         r.work_ns >= 0
             ? fmt_double(static_cast<double>(r.work_ns) / 1e3, 2)
             : "-",
         fmt_int(r.spins), fmt_int(r.adopts)});
  }
  table.print(std::cout);
  if (total > rows.size()) {
    std::cout << "(showing " << rows.size() << " of " << total
              << " epochs; --n=N for more)\n";
  }

  const auto summarize = [](const char* label, std::vector<double>& us) {
    if (us.empty()) return;
    std::sort(us.begin(), us.end());
    const auto pct = [&us](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(us.size() - 1) + 0.5);
      return us[std::min(idx, us.size() - 1)];
    };
    std::cout << label << " over " << us.size() << " publishes: p50 "
              << fmt_double(pct(0.50), 2) << " us, p99 "
              << fmt_double(pct(0.99), 2) << " us, p99.9 "
              << fmt_double(pct(0.999), 2) << " us, max "
              << fmt_double(us.back(), 2) << " us\n";
  };
  std::cout << "\n";
  summarize("reconvergence latency", latencies_us);
  summarize("publish work", works_us);
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// why: churn -> anomaly root-cause chains, the obs/causal.h join rendered.
// ---------------------------------------------------------------------------

std::vector<obs::EpochRecord> epoch_records(const JsonValue& doc) {
  std::vector<obs::EpochRecord> out;
  const JsonValue* epochs = doc.find("spliceEpochs");
  if (epochs == nullptr || !epochs->is_array()) return out;
  for (const JsonValue& e : epochs->as_array()) {
    obs::EpochRecord r;
    r.epoch = static_cast<std::uint64_t>(tolerant_int(e, "epoch", 0));
    if (e.find("publish_ts_ns") != nullptr) {
      r.has_publish = true;
      r.publish_ts_ns =
          static_cast<std::uint64_t>(tolerant_int(e, "publish_ts_ns", 0));
      r.edge = tolerant_int(e, "edge", -1);
      r.alive = tolerant_int(e, "alive", 1) != 0;
      r.dsts_patched =
          static_cast<std::uint32_t>(tolerant_int(e, "dsts_patched", 0));
    }
    if (e.find("latency_ns") != nullptr) {
      r.has_latency = true;
      r.latency_ns =
          static_cast<std::uint64_t>(tolerant_int(e, "latency_ns", 0));
    }
    out.push_back(r);
  }
  return out;
}

/// The live_churn bench's deterministic inputs, rebuilt from a run's
/// params — enough to regenerate the churn trace (generate_churn_trace is
/// pure) and replay any recorded packet batch.
struct LiveChurnContext {
  bool ok = false;
  Graph g;
  SliceId k = 5;
  int events = 0;
  int packets = 0;
  std::uint64_t seed = 0;
  std::string target;
};

LiveChurnContext live_churn_context(const JsonValue& doc, long long run) {
  LiveChurnContext ctx;
  const KvReader params = run_params(doc, run);
  const auto it = params.find("experiment");
  if (it == params.end() || it->second != "live_churn") return ctx;
  const auto get = [&params](const char* key,
                             const char* fb) -> std::string {
    const auto p = params.find(key);
    return p == params.end() ? fb : p->second;
  };
  ctx.target = get("target", "");
  ctx.k = static_cast<SliceId>(std::strtol(get("k", "5").c_str(), nullptr, 10));
  ctx.events =
      static_cast<int>(std::strtol(get("events", "200").c_str(), nullptr, 10));
  ctx.packets =
      static_cast<int>(std::strtol(get("packets", "512").c_str(), nullptr, 10));
  ctx.seed = std::strtoull(get("seed", "7").c_str(), nullptr, 10);
  if (ctx.target == "expander") {
    const int n = static_cast<int>(
        std::strtol(get("expander_n", "900").c_str(), nullptr, 10));
    ctx.g = erdos_renyi(static_cast<NodeId>(n), 5.0 / std::max(1, n - 1),
                        ctx.seed ^ 0xb16ULL);
    make_connected(ctx.g, ctx.seed ^ 0xb17ULL);
  } else if (!ctx.target.empty()) {
    ctx.g = load_topo(ctx.target);
  } else {
    return ctx;
  }
  ctx.ok = true;
  return ctx;
}

const char* churn_kind_name(LinkEventKind kind) {
  switch (kind) {
    case LinkEventKind::kDown:
      return "down";
    case LinkEventKind::kUp:
      return "up";
    case LinkEventKind::kScale:
      return "weight-scale";
  }
  return "?";
}

int cmd_why(const std::string& path, long long want_idx, const Flags& flags) {
  const auto doc = load_json(path);
  if (!doc) return EXIT_FAILURE;
  const std::vector<AnomalyRow> rows = anomaly_rows(*doc);
  if (rows.empty()) {
    std::cerr << "why: no anomalies in " << path << "\n";
    return EXIT_FAILURE;
  }
  const std::vector<obs::EpochRecord> epochs = epoch_records(*doc);
  std::vector<obs::AnomalyRef> refs;
  refs.reserve(rows.size());
  for (const AnomalyRow& a : rows) {
    refs.push_back({static_cast<std::uint64_t>(a.t_ns),
                    static_cast<std::uint64_t>(a.fib_epoch)});
  }
  const std::vector<obs::CausalChain> chains = obs::correlate(epochs, refs);

  long long idx = want_idx;
  if (idx < 0) {
    for (const obs::CausalChain& c : chains) {
      if (c.cause_found) {
        idx = static_cast<long long>(c.anomaly_index);
        break;
      }
    }
    if (idx < 0) {
      std::cerr << "why: none of the " << rows.size()
                << " anomalies resolves to a publish row (no spliceEpochs, "
                   "or all were forwarded under the pre-churn FIB)\n";
      return EXIT_FAILURE;
    }
  }
  if (idx >= static_cast<long long>(rows.size())) {
    std::cerr << "why: anomaly index " << idx << " out of range (0.."
              << rows.size() - 1 << ")\n";
    return EXIT_FAILURE;
  }
  const AnomalyRow& a = rows[static_cast<std::size_t>(idx)];
  const obs::CausalChain& c = chains[static_cast<std::size_t>(idx)];

  std::cout << "[" << idx << "] " << a.kind << " " << a.src << "->" << a.dst
            << " run=" << a.run << " stream_seed=" << a.seed
            << " trial=" << a.trial << " packet=" << a.aux << " k=" << a.k
            << " hops=" << a.hops << "\n"
            << "    forwarded under FIB epoch " << a.fib_epoch
            << ", recorded at t_ns=" << a.t_ns << "\n";
  if (!c.cause_found) {
    std::cout << "    cause: UNRESOLVED — no publish row for epoch "
              << a.fib_epoch
              << " (pre-churn FIB, or the epoch ledger is absent)\n";
    return EXIT_FAILURE;
  }
  std::cout << "    cause: epoch " << c.fib_epoch << " published at t_ns="
            << c.publish_ts_ns << " — edge " << c.cause_edge
            << (c.cause_down ? " DOWN" : " restored/rescaled") << "\n";
  if (c.reconv_latency_ns > 0) {
    std::cout << "      reconvergence latency "
              << fmt_double(static_cast<double>(c.reconv_latency_ns) / 1e3, 2)
              << " us\n";
  }
  if (c.has_lag) {
    std::cout << "      observation lag (publish -> anomaly) "
              << fmt_double(static_cast<double>(c.lag_ns) / 1e3, 2)
              << " us\n";
  }
  if (c.repaired) {
    std::cout << "      repaired by epoch " << c.repair_epoch << " at t_ns="
              << c.repair_ts_ns;
    if (c.has_window) {
      std::cout << " (exposure window "
                << fmt_double(static_cast<double>(c.window_ns) / 1e3, 2)
                << " us)";
    }
    std::cout << "\n";
  } else {
    std::cout << "      no repairing publish for edge " << c.cause_edge
              << " within the trace\n";
  }

  // Resolve the generating churn event: the trace is a pure function of
  // (graph, config), and event i's publish lands as epoch i + 2 (the
  // initial build is epoch 1).
  const LiveChurnContext ctx = live_churn_context(*doc, a.run);
  std::vector<LinkEvent> trace;
  if (ctx.ok) {
    ChurnConfig ccfg;
    ccfg.incidents = ctx.events;
    ccfg.seed = ctx.seed;
    trace = generate_churn_trace(ctx.g, ccfg);
    const long long ev_idx = static_cast<long long>(c.fib_epoch) - 2;
    if (ev_idx >= 0 && ev_idx < static_cast<long long>(trace.size())) {
      const LinkEvent& ev = trace[static_cast<std::size_t>(ev_idx)];
      std::cout << "    churn event #" << ev_idx << ": edge " << ev.edge
                << " " << churn_kind_name(ev.kind) << " at t="
                << fmt_double(ev.at_ms, 3) << " ms"
                << (static_cast<long long>(ev.edge) == c.cause_edge
                        ? ""
                        : "  (WARNING: edge differs from publish row)")
                << "\n";
    }
  }
  std::cout << "    replay: splice_inspect why " << path << " " << idx
            << " --check\n";

  if (!flags.has("check")) return EXIT_SUCCESS;

  // --check: rebuild the publisher, replay churn up to the anomaly's
  // epoch, regenerate the exact packet batch and verify the outcome.
  if (!ctx.ok) {
    std::cerr << "check: run " << a.run
              << " is not a live_churn run — cannot replay\n";
    return EXIT_FAILURE;
  }
  const ControlPlaneConfig cp{
      ctx.k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false};
  FibPublisher pub(ctx.g, cp);
  for (const LinkEvent& ev : trace) {
    if (pub.published_version() >=
        static_cast<std::uint64_t>(a.fib_epoch)) {
      break;
    }
    apply_churn_event(pub, ev);
  }
  pub.quiesce();
  if (pub.published_version() != static_cast<std::uint64_t>(a.fib_epoch)) {
    std::cerr << "check: FAILED — cannot reach epoch " << a.fib_epoch
              << " by replaying the churn trace (reached "
              << pub.published_version() << ")\n";
    return EXIT_FAILURE;
  }
  BatchFeedConfig feed;
  feed.header_k = ctx.k;
  feed.packets_per_trial = ctx.packets;
  std::vector<char> mask;
  std::vector<Packet> batch;
  fill_trial_batch(ctx.g, feed,
                   std::strtoull(a.seed.c_str(), nullptr, 10),
                   static_cast<int>(a.trial), mask, batch);
  if (a.aux < 0 || a.aux >= static_cast<long long>(batch.size())) {
    std::cerr << "check: FAILED — packet index " << a.aux
              << " out of range for a " << batch.size() << "-packet batch\n";
    return EXIT_FAILURE;
  }
  const Packet& pkt = batch[static_cast<std::size_t>(a.aux)];
  if (static_cast<long long>(pkt.src) != a.src ||
      static_cast<long long>(pkt.dst) != a.dst) {
    std::cerr << "check: FAILED — regenerated packet is " << pkt.src << "->"
              << pkt.dst << ", anomaly recorded " << a.src << "->" << a.dst
              << "\n";
    return EXIT_FAILURE;
  }
  std::vector<ForwardSummary> out(batch.size());
  ForwardWorkspace ws;
  const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                LocalRecovery::kDeflect};
  pub.published_net().forward_stats_batch(batch, policy, out, ws);
  const ForwardSummary& s = out[static_cast<std::size_t>(a.aux)];
  const ForwardOutcome expected = a.kind == "ttl_expired"
                                      ? ForwardOutcome::kTtlExpired
                                      : ForwardOutcome::kDeadEnd;
  const bool reproduced = s.outcome == expected;
  std::cout << "\ncheck: " << a.kind << " " << a.src << "->" << a.dst
            << " under epoch " << a.fib_epoch << ": "
            << (reproduced ? "reproduced" : "NOT reproduced") << " (outcome "
            << (s.delivered()
                    ? "delivered"
                    : s.outcome == ForwardOutcome::kTtlExpired ? "ttl_expired"
                                                               : "dead_end")
            << ", " << s.hops << " hops)\n";
  return reproduced ? EXIT_SUCCESS : EXIT_FAILURE;
}

// ---------------------------------------------------------------------------
// scrape: pull one exposition from a live agent's endpoint and lint it.
// ---------------------------------------------------------------------------

struct ScrapeUrl {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string path = "/metrics";
};

/// Accepts "PORT", "HOST:PORT", "HOST:PORT/path" and the same with an
/// "http://" prefix. Only numeric IPv4 hosts (plus "localhost") — the
/// scrape server binds loopback, so a resolver would be dead weight.
bool parse_scrape_url(const std::string& url, ScrapeUrl& out,
                      std::string& error) {
  std::string rest = url;
  if (rest.rfind("http://", 0) == 0) rest = rest.substr(7);
  if (const std::size_t slash = rest.find('/'); slash != std::string::npos) {
    out.path = rest.substr(slash);
    rest = rest.substr(0, slash);
  }
  std::string port_str = rest;
  if (const std::size_t colon = rest.rfind(':'); colon != std::string::npos) {
    out.host = rest.substr(0, colon);
    port_str = rest.substr(colon + 1);
  }
  if (out.host == "localhost") out.host = "127.0.0.1";
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (port_str.empty() || end == port_str.c_str() || *end != '\0' ||
      port <= 0 || port > 65535) {
    error = "bad port in scrape URL '" + url + "'";
    return false;
  }
  out.port = static_cast<int>(port);
  return true;
}

/// One HTTP/1.0 GET: send the request, read to EOF (the server closes).
bool http_get(const ScrapeUrl& url, std::string& response,
              std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(url.port));
  if (::inet_pton(AF_INET, url.host.c_str(), &addr.sin_addr) != 1) {
    error = "bad host '" + url.host + "' (numeric IPv4 or localhost only)";
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    error = "connect " + url.host + ":" + std::to_string(url.port) + ": " +
            std::strerror(errno);
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + url.path +
                              " HTTP/1.0\r\nHost: " + url.host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t w = ::write(fd, request.data() + off, request.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      error = "write: " + std::string(std::strerror(errno));
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 5000);
    if (pr <= 0) {
      error = pr == 0 ? "scrape timed out after 5 s"
                      : "poll: " + std::string(std::strerror(errno));
      ::close(fd);
      return false;
    }
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      error = "read: " + std::string(std::strerror(errno));
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    response.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return true;
}

int cmd_scrape(const std::string& url_arg, const Flags& flags) {
  ScrapeUrl url;
  std::string error;
  if (!parse_scrape_url(url_arg, url, error)) {
    std::cerr << "scrape: " << error << "\n";
    return EXIT_FAILURE;
  }
  std::string response;
  if (!http_get(url, response, error)) {
    std::cerr << "scrape: " << error << "\n";
    return EXIT_FAILURE;
  }
  std::size_t header_end = response.find("\r\n\r\n");
  std::size_t body_at = header_end + 4;
  if (header_end == std::string::npos) {
    header_end = response.find("\n\n");
    body_at = header_end + 2;
  }
  if (header_end == std::string::npos) {
    std::cerr << "scrape: malformed HTTP response (no header terminator)\n";
    return EXIT_FAILURE;
  }
  const std::size_t eol = response.find('\n');
  std::string status_line = response.substr(0, eol);
  if (!status_line.empty() && status_line.back() == '\r')
    status_line.pop_back();
  if (status_line.find(" 200 ") == std::string::npos) {
    std::cerr << "scrape: " << status_line << "\n";
    return EXIT_FAILURE;
  }
  const std::string body = response.substr(body_at);
  std::string lint_error;
  if (!obs::prometheus_lint(body, &lint_error)) {
    std::cerr << "scrape: exposition INVALID: " << lint_error << "\n";
    return EXIT_FAILURE;
  }
  // Family/sample tallies so a "valid" verdict over an empty body is
  // visible for what it is.
  std::size_t families = 0;
  std::size_t samples = 0;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t line_end = body.find('\n', pos);
    if (line_end == std::string::npos) line_end = body.size();
    const std::string line = body.substr(pos, line_end - pos);
    pos = line_end + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      ++families;
    } else if (line[0] != '#') {
      ++samples;
    }
  }
  if (const std::string out_path = flags.get_string("out", "");
      !out_path.empty()) {
    if (!write_file_atomic(out_path, body)) {
      std::cerr << "scrape: cannot write " << out_path << "\n";
      return EXIT_FAILURE;
    }
  }
  std::cout << "scrape http://" << url.host << ":" << url.port << url.path
            << ": 200 OK, " << body.size() << " bytes\n"
            << "exposition: valid (" << families << " families, " << samples
            << " samples)\n";
  return EXIT_SUCCESS;
}

int dispatch(const Flags& flags) {
  const auto& pos = flags.positional();
  if (pos.empty()) return usage();
  const std::string& cmd = pos[0];
  if (cmd == "validate" && pos.size() == 2) return cmd_validate(pos[1]);
  if (cmd == "top" && pos.size() == 2) return cmd_top(pos[1], flags);
  if (cmd == "anomalies" && pos.size() == 2)
    return cmd_anomalies(pos[1], flags);
  if (cmd == "replay" && pos.size() == 1) return cmd_replay(flags);
  if (cmd == "diff" && pos.size() == 3)
    return cmd_diff(pos[1], pos[2], flags);
  if (cmd == "profile" && pos.size() == 2)
    return cmd_profile(pos[1], flags);
  if (cmd == "epochs" && pos.size() == 2) return cmd_epochs(pos[1], flags);
  if (cmd == "why" && (pos.size() == 2 || pos.size() == 3)) {
    const long long idx =
        pos.size() == 3 ? std::strtoll(pos[2].c_str(), nullptr, 10) : -1;
    return cmd_why(pos[1], idx, flags);
  }
  if (cmd == "scrape" && pos.size() == 2) return cmd_scrape(pos[1], flags);
  return usage();
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  try {
    return splice::dispatch(splice::Flags(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "splice_inspect: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
