#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace splice {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return num_;
}

long long JsonValue::as_int() const {
  if (!is_integer()) throw std::runtime_error("json: not an integer");
  return inum_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return str_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  return *arr_;
}

const JsonObject& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return *obj_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : *obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_integer(long long i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = static_cast<double>(i);
  v.inum_ = i;
  v.int_ = true;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::make_shared<JsonArray>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::make_shared<JsonObject>(std::move(o));
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult out;
    try {
      skip_ws();
      out.value = parse_value();
      skip_ws();
      if (pos_ != text_.size()) fail("trailing content");
      out.ok = true;
    } catch (const std::runtime_error& e) {
      out.error = e.what();
    }
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t i = 0;
    while (lit[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != lit[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our emitters; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string lit = text_.substr(start, pos_ - start);
    if (lit.empty() || lit == "-") fail("bad number");
    // Integral literal (no '.', no exponent): keep the exact value.
    if (lit.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      char* end = nullptr;
      const long long i = std::strtoll(lit.c_str(), &end, 10);
      if (errno == 0 && end == lit.c_str() + lit.size()) {
        return JsonValue::make_integer(i);
      }
    }
    char* end = nullptr;
    const double d = std::strtod(lit.c_str(), &end);
    if (end != lit.c_str() + lit.size()) fail("bad number");
    return JsonValue::make_number(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonParseResult parse_json(const std::string& text) {
  return Parser(text).run();
}

JsonParseResult parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    JsonParseResult out;
    out.error = "cannot open " + path;
    return out;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_json(ss.str());
}

}  // namespace splice
