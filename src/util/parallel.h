// Deterministic parallel trial runner for the Monte Carlo harnesses.
//
// Trials are striped across workers (worker w runs trials w, w+T, w+2T,
// ...), each worker accumulates into its own state, and the per-worker
// states are merged in worker-index order. Because every trial derives its
// randomness from its own trial index (all experiment code forks the RNG
// per trial), results are reproducible bit-for-bit for a fixed thread
// count, and statistically identical across thread counts.
#pragma once

#include <thread>
#include <vector>

#include "util/assert.h"

namespace splice {

/// A sensible worker count: hardware concurrency, at least 1.
inline int default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Runs `fn(trial, acc)` for trial in [0, trials) across `threads` workers.
/// `Acc` must be default-constructible; `merge(into, from)` combines two
/// accumulators. Returns the merged accumulator. With threads <= 1 the
/// loop runs inline (zero overhead, exact sequential semantics).
template <typename Acc, typename Fn, typename Merge>
Acc parallel_trials(int trials, int threads, Fn&& fn, Merge&& merge) {
  SPLICE_EXPECTS(trials >= 0);
  if (threads <= 1 || trials <= 1) {
    Acc acc{};
    for (int t = 0; t < trials; ++t) fn(t, acc);
    return acc;
  }
  const int workers = std::min(threads, trials);
  std::vector<Acc> accs(static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w]() {
      for (int t = w; t < trials; t += workers) {
        fn(t, accs[static_cast<std::size_t>(w)]);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  Acc result = std::move(accs.front());
  for (int w = 1; w < workers; ++w) {
    merge(result, accs[static_cast<std::size_t>(w)]);
  }
  return result;
}

}  // namespace splice
