// Deterministic parallel primitives: the Monte Carlo trial runner and a
// disjoint-slot parallel-for used by the control-plane builders.
//
// parallel_trials: trials are striped across workers (worker w runs trials
// w, w+T, w+2T, ...), each worker accumulates into its own state, and the
// per-worker states are merged in worker-index order. Because every trial
// derives its randomness from its own trial index (all experiment code
// forks the RNG per trial), results are reproducible bit-for-bit for a
// fixed thread count, and statistically identical across thread counts.
//
// Regression note (false sharing): per-worker accumulators used to live
// directly in a std::vector<Acc>, so small Acc types (counters, OnlineStats)
// shared cache lines between adjacent workers and every accumulation ping-
// ponged the line across cores. Each accumulator now lives in its own
// cache-line-aligned slot; keep it that way.
#pragma once

#include <algorithm>
#include <thread>
#include <vector>

#include "util/assert.h"

namespace splice {

/// A sensible worker count: hardware concurrency, at least 1.
inline int default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Runs `fn(trial, acc)` for trial in [0, trials) across `threads` workers.
/// `Acc` must be default-constructible; `merge(into, from)` combines two
/// accumulators. Returns the merged accumulator. With threads <= 1 the
/// loop runs inline (zero overhead, exact sequential semantics).
template <typename Acc, typename Fn, typename Merge>
Acc parallel_trials(int trials, int threads, Fn&& fn, Merge&& merge) {
  SPLICE_EXPECTS(trials >= 0);
  if (threads <= 1 || trials <= 1) {
    Acc acc{};
    for (int t = 0; t < trials; ++t) fn(t, acc);
    return acc;
  }
  const int workers = std::min(threads, trials);
  // Cache-line-aligned so adjacent workers never false-share an accumulator.
  struct alignas(64) Slot {
    Acc acc{};
  };
  std::vector<Slot> slots(static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w]() {
      for (int t = w; t < trials; t += workers) {
        fn(t, slots[static_cast<std::size_t>(w)].acc);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  Acc result = std::move(slots.front().acc);
  for (int w = 1; w < workers; ++w) {
    merge(result, slots[static_cast<std::size_t>(w)].acc);
  }
  return result;
}

/// Runs `fn(worker, i)` for i in [0, count) across up to `threads` workers.
/// Work is striped: worker w handles i = w, w+W, w+2W, ... The worker index
/// (in [0, workers)) lets callers keep per-worker scratch, e.g. a reusable
/// DijkstraWorkspace per worker.
///
/// Determinism contract: `fn` must write its results only to slots indexed
/// by `i` (disjoint across iterations) and must not read other iterations'
/// output; then the combined result is byte-identical for every thread
/// count. With threads <= 1 the loop runs inline.
template <typename Fn>
void parallel_for(int count, int threads, Fn&& fn) {
  SPLICE_EXPECTS(count >= 0);
  const int workers = std::max(1, std::min(threads, count));
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) fn(0, i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w]() {
      for (int i = w; i < count; i += workers) fn(w, i);
    });
  }
  for (std::thread& th : pool) th.join();
}

}  // namespace splice
