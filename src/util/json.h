// Minimal JSON reader for the inspection tooling.
//
// The telemetry subsystem *writes* JSON with hand-rolled emitters
// (obs/export.h, obs/trace_export.h); this is the matching reader used by
// tools/splice_inspect to load bench tables, RunReports and trace dumps
// back in. It is a strict recursive-descent parser over the JSON grammar —
// no extensions, no streaming — sized for telemetry documents (a few MB).
//
// Numbers keep both views: the double value and, when the literal was
// integral and fits, an exact long long (counters and histogram bins are
// gated exactly, so the integer path must not round-trip through a double).
// Object member order is preserved (vector of pairs, linear lookup): the
// documents this parses are small and key order carries meaning in reports.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace splice {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const;
  double as_double() const;
  /// True when the literal was an integer that fits a long long exactly.
  bool is_integer() const noexcept { return kind_ == Kind::kNumber && int_; }
  long long as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_integer(long long v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool int_ = false;
  double num_ = 0.0;
  long long inum_ = 0;
  std::string str_;
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;       ///< message with offset when !ok
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
JsonParseResult parse_json(const std::string& text);

/// Convenience: reads `path` and parses it. I/O failure reports via error.
JsonParseResult parse_json_file(const std::string& path);

}  // namespace splice
