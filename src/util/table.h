// Plain-text table and CSV writers used by the benchmark harnesses to print
// the rows/series of each paper table and figure.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace splice {

/// Accumulates rows of string cells and renders them as an aligned
/// fixed-width text table (for terminal output) or as CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }

  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::string>& row(std::size_t i) const noexcept {
    return rows_[i];
  }

  /// Renders with columns padded to their widest cell.
  std::string to_text() const;
  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helpers for formatting numeric cells consistently.
std::string fmt_double(double v, int precision = 4);
std::string fmt_percent(double fraction, int precision = 2);
std::string fmt_int(long long v);

/// Writes `content` to `path`, creating parent-less files only; returns
/// false (and leaves the filesystem untouched) on failure.
bool write_file(const std::string& path, std::string_view content);

/// Atomic variant for files with concurrent readers (live snapshot files a
/// `splice_top --follow` is polling): writes `path + ".tmp"` then
/// rename(2)s it over `path`, so a reader sees either the old or the new
/// complete document, never a torn prefix. The temp file is removed on
/// failure.
bool write_file_atomic(const std::string& path, std::string_view content);

}  // namespace splice
