// Minimal command-line flag parsing for the experiment binaries:
// `--name=value` / `--name value` / bare `--flag` booleans. No global state;
// each binary constructs a Flags from (argc, argv) and queries typed getters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace splice {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// Value of --name, if given.
  std::optional<std::string> get(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  bool has(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Name of the binary (argv[0]).
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace splice
