#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace splice {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_.emplace(std::string(arg.substr(0, eq)),
                      std::string(arg.substr(eq + 1)));
      continue;
    }
    // `--name value` if the next token isn't itself a flag, else boolean.
    if (i + 1 < argc) {
      std::string_view next = argv[i + 1];
      if (!next.starts_with("--")) {
        values_.emplace(std::string(arg), std::string(next));
        ++i;
        continue;
      }
    }
    values_.emplace(std::string(arg), "true");
  }
}

std::optional<std::string> Flags::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

bool Flags::has(const std::string& name) const {
  return values_.contains(name);
}

}  // namespace splice
