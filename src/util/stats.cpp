#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.h"

namespace splice {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::min() const noexcept { return min_; }

double OnlineStats::max() const noexcept { return max_; }

double OnlineStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::span<const double> samples, double q) {
  SPLICE_EXPECTS(q >= 0.0 && q <= 100.0);
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> samples) noexcept {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

SampleSummary summarize(std::span<const double> samples) {
  SampleSummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  OnlineStats acc;
  for (double x : samples) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p50 = percentile(samples, 50.0);
  s.p95 = percentile(samples, 95.0);
  s.p99 = percentile(samples, 99.0);
  return s;
}

std::string to_string(const SampleSummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4f sd=%.4f min=%.4f p50=%.4f p95=%.4f p99=%.4f "
                "max=%.4f",
                s.count, s.mean, s.stddev, s.min, s.p50, s.p95, s.p99, s.max);
  return buf;
}

}  // namespace splice
