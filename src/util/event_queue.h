// Minimal discrete-event engine: schedule callbacks at simulated times and
// run to quiescence. Shared by the recovery-timing simulator and the
// link-state flooding simulator. Header-only.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/assert.h"

namespace splice {

/// Simulation clock in milliseconds.
using SimTime = double;

class EventQueue {
 public:
  using Callback = std::function<void(SimTime now)>;

  void schedule(SimTime at, Callback cb) {
    SPLICE_EXPECTS(at >= now_);
    heap_.push(Event{at, next_seq_++, std::move(cb)});
  }

  /// Runs until no events remain or the horizon is reached; returns the
  /// time of the last executed event.
  SimTime run(SimTime horizon = 1e12) {
    while (!heap_.empty()) {
      Event ev = heap_.top();
      heap_.pop();
      if (ev.at > horizon) break;
      now_ = ev.at;
      ++executed_;
      ev.cb(now_);
    }
    return now_;
  }

  SimTime now() const noexcept { return now_; }
  std::size_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tiebreak for simultaneous events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace splice
