// Lightweight contract-checking macros in the spirit of the C++ Core
// Guidelines' Expects()/Ensures() (GSL). We keep them always-on: every check
// in this library guards an invariant whose violation would silently corrupt
// an experiment, and the checks are off the hot paths that matter.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace splice::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace splice::detail

#define SPLICE_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                            \
          : ::splice::detail::contract_violation("Precondition", #cond,     \
                                                 __FILE__, __LINE__))

#define SPLICE_ENSURES(cond)                                                \
  ((cond) ? static_cast<void>(0)                                            \
          : ::splice::detail::contract_violation("Postcondition", #cond,    \
                                                 __FILE__, __LINE__))

#define SPLICE_ASSERT(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                            \
          : ::splice::detail::contract_violation("Invariant", #cond,        \
                                                 __FILE__, __LINE__))
