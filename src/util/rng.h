// Deterministic, explicitly-seeded random number generation.
//
// Every randomized component of the library (link-weight perturbations,
// failure sampling, forwarding-bit generation) takes an explicit 64-bit seed
// so that experiments are reproducible bit-for-bit across runs and machines.
// We implement xoshiro256** seeded via SplitMix64 rather than relying on
// <random> engines whose streams are unspecified across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/assert.h"

namespace splice {

/// SplitMix64 step: used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of up to three values; used e.g. for the
/// Hash(src, dst) default-slice selection of Algorithm 1.
constexpr std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b = 0,
                                 std::uint64_t c = 0) noexcept {
  std::uint64_t s = a * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  std::uint64_t h = splitmix64(s);
  s ^= b + 0x632be59bd9b4e019ULL;
  h ^= splitmix64(s);
  s ^= c + 0xd1342543de82ef95ULL;
  h ^= splitmix64(s);
  return h;
}

/// xoshiro256** — small, fast, high-quality PRNG with a reproducible stream.
/// Satisfies UniformRandomBitGenerator, so it also works with <random> and
/// std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Matches the paper's Random(0, L(i,j)).
  double uniform(double lo, double hi) noexcept {
    SPLICE_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire reduction).
  std::uint64_t below(std::uint64_t n) noexcept {
    SPLICE_EXPECTS(n > 0);
    // Debiased multiply-shift.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    SPLICE_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Fair coin, as used by the paper's end-system recovery scheme.
  bool coin() noexcept { return ((*this)() >> 63) != 0; }

  /// Derive an independent child generator (for per-slice / per-trial
  /// streams) without correlating with the parent stream.
  Rng fork(std::uint64_t salt) noexcept {
    return Rng{hash_mix((*this)(), salt, 0x5deece66dULL)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace splice
