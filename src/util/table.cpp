#include "util/table.h"

// glibc's <fcntl.h> declares the splice(2) syscall under _GNU_SOURCE,
// which collides with `namespace splice`. We never call it; rename the
// declaration out of the way for this TU.
#define splice splice_glibc_syscall_
#include <fcntl.h>
#undef splice

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/assert.h"

namespace splice {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SPLICE_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SPLICE_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size())
        out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) rule.append(2, ' ');
  }
  out += rule;
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += csv_escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print(std::ostream& os) const { os << to_text(); }

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t w = ::write(fd, content.data() + off, content.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  // fsync before the rename: rename(2) is atomic with respect to readers,
  // but only a durable temp file guarantees the *new* content (not a
  // zero-length husk) is what survives a crash straight after the rename.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // fsync the parent directory so the rename itself (the name -> inode
  // update) is durable too. Best-effort: the data is already safe, and
  // some filesystems refuse directory fsync.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

}  // namespace splice
