// Small statistics toolkit used by the experiment harnesses: streaming
// moments (Welford), percentiles, and normal-approximation confidence
// intervals for the averaged reliability/recovery curves.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace splice {

/// Streaming mean/variance accumulator (Welford's algorithm). Numerically
/// stable; O(1) space regardless of sample count.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set with linear interpolation, q in [0, 100].
/// Copies and sorts; intended for end-of-run reporting, not hot loops.
double percentile(std::span<const double> samples, double q);

/// Arithmetic mean of a sample set (0 when empty).
double mean_of(std::span<const double> samples) noexcept;

/// Five-number-style summary used in EXPERIMENTS.md tables.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

SampleSummary summarize(std::span<const double> samples);

/// Render a summary as a one-line human-readable string.
std::string to_string(const SampleSummary& s);

}  // namespace splice
