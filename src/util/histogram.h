// Fixed-bin histogram with CDF rendering, used by the timing benches to
// print distribution rows (the recovery-time CDFs) without external
// plotting, and by the obs metrics registry as the merge target of sharded
// histogram cells. Header-only.
//
// Not thread-safe — including the const accessors, which refresh a cached
// prefix-sum on demand. Concurrent use goes through obs::HistogramMetric.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace splice {

class Histogram {
 public:
  /// `lo`/`hi` bound the binned range; samples outside are clamped into the
  /// first/last bin (they still count).
  Histogram(double lo, double hi, int bins)
      : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(bins), 0) {
    SPLICE_EXPECTS(bins >= 1);
    SPLICE_EXPECTS(hi > lo);
  }

  /// Rebuilds a histogram from externally accumulated bin counts (the obs
  /// registry merges per-thread shards this way). `sum` is the sum of the
  /// original samples; total is derived from the counts.
  static Histogram from_counts(double lo, double hi,
                               std::vector<long long> counts, double sum) {
    Histogram h(lo, hi, static_cast<int>(counts.size()));
    h.counts_ = std::move(counts);
    for (long long c : h.counts_) {
      SPLICE_EXPECTS(c >= 0);
      h.total_ += c;
    }
    h.sum_ = sum;
    return h;
  }

  /// Bin index sample `x` lands in — the single binning rule shared by
  /// add() and the lock-free obs cells (which must agree bit for bit).
  static int bin_index(double lo, double hi, int bins, double x) noexcept {
    const double t = (x - lo) / (hi - lo);
    auto idx = static_cast<long long>(std::floor(t * static_cast<double>(bins)));
    return static_cast<int>(std::clamp<long long>(idx, 0, bins - 1));
  }

  void add(double x) noexcept {
    ++counts_[static_cast<std::size_t>(
        bin_index(lo_, hi_, bins(), x))];
    ++total_;
    sum_ += x;
    prefix_valid_ = false;
  }

  /// Re-shapes in place to `bins` zeroed bins over [lo, hi), reusing the
  /// count storage — the allocation-free counterpart of constructing fresh.
  /// The telemetry agent's merged_into() paths rebuild snapshots through
  /// this so a steady-state publish never touches the heap.
  void reset_shape(double lo, double hi, int bins) {
    SPLICE_EXPECTS(bins >= 1);
    SPLICE_EXPECTS(hi > lo);
    lo_ = lo;
    hi_ = hi;
    counts_.assign(static_cast<std::size_t>(bins), 0);
    total_ = 0;
    sum_ = 0.0;
    prefix_valid_ = false;
  }

  /// Adds `c` externally accumulated observations into bin `i` (no sample
  /// sum; pair with set_sum()). The in-place analogue of from_counts().
  void add_count(int i, long long c) noexcept {
    SPLICE_EXPECTS(i >= 0 && i < bins());
    SPLICE_EXPECTS(c >= 0);
    counts_[static_cast<std::size_t>(i)] += c;
    total_ += c;
    prefix_valid_ = false;
  }

  /// Overwrites the sample sum (used with add_count() by in-place merges).
  void set_sum(double s) noexcept { sum_ = s; }

  /// Merges another histogram into this one. Bounds and bin counts must be
  /// identical — merging differently-binned histograms is a logic error.
  void merge(const Histogram& o) {
    SPLICE_EXPECTS(o.lo_ == lo_ && o.hi_ == hi_);
    SPLICE_EXPECTS(o.counts_.size() == counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    sum_ += o.sum_;
    prefix_valid_ = false;
  }

  long long total() const noexcept { return total_; }
  /// Sum of all samples as observed (not clamped). Exact for integer-valued
  /// samples; order-dependent in the last bits otherwise.
  double sum() const noexcept { return sum_; }
  int bins() const noexcept { return static_cast<int>(counts_.size()); }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// Lower edge of bin i.
  double bin_lo(int i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  double bin_hi(int i) const noexcept { return bin_lo(i + 1); }
  long long count(int i) const noexcept {
    SPLICE_EXPECTS(i >= 0 && i < bins());
    return counts_[static_cast<std::size_t>(i)];
  }

  /// Cumulative count of samples at or below bin i's upper edge.
  long long cumulative(int i) const noexcept {
    SPLICE_EXPECTS(i >= 0 && i < bins());
    ensure_prefix();
    return prefix_[static_cast<std::size_t>(i)];
  }

  /// Cumulative fraction of samples at or below bin i's upper edge. O(1)
  /// after the prefix sums are refreshed (once per batch of adds), so
  /// rendering a full CDF row is O(bins), not O(bins^2).
  double cdf_at(int i) const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(cumulative(i)) /
                             static_cast<double>(total_);
  }

  /// Smallest bin upper edge whose CDF reaches `q` in [0, 1]; hi_ if never.
  double quantile_edge(double q) const noexcept {
    SPLICE_EXPECTS(q >= 0.0 && q <= 1.0);
    for (int i = 0; i < bins(); ++i) {
      if (cdf_at(i) >= q) return bin_hi(i);
    }
    return hi_;
  }

  /// Renders "lo-hi count cdf" rows; `bar_width` adds an ASCII bar column.
  std::string render(int bar_width = 30) const {
    std::string out;
    long long max_count = 1;
    for (long long c : counts_) max_count = std::max(max_count, c);
    char buf[160];
    for (int i = 0; i < bins(); ++i) {
      const int bar = static_cast<int>(
          static_cast<double>(count(i)) / static_cast<double>(max_count) *
          bar_width);
      std::snprintf(buf, sizeof(buf), "%10.1f-%-10.1f %8lld  %5.1f%%  ",
                    bin_lo(i), bin_hi(i), count(i), cdf_at(i) * 100.0);
      out += buf;
      out.append(static_cast<std::size_t>(bar), '#');
      out += '\n';
    }
    return out;
  }

 private:
  void ensure_prefix() const noexcept {
    if (prefix_valid_) return;
    prefix_.resize(counts_.size());
    long long cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cum += counts_[i];
      prefix_[i] = cum;
    }
    prefix_valid_ = true;
  }

  double lo_;
  double hi_;
  std::vector<long long> counts_;
  long long total_ = 0;
  double sum_ = 0.0;
  mutable std::vector<long long> prefix_;
  mutable bool prefix_valid_ = false;
};

}  // namespace splice
