// Fixed-bin histogram with CDF rendering, used by the timing benches to
// print distribution rows (the recovery-time CDFs) without external
// plotting. Header-only.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/assert.h"

namespace splice {

class Histogram {
 public:
  /// `lo`/`hi` bound the binned range; samples outside are clamped into the
  /// first/last bin (they still count).
  Histogram(double lo, double hi, int bins)
      : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(bins), 0) {
    SPLICE_EXPECTS(bins >= 1);
    SPLICE_EXPECTS(hi > lo);
  }

  void add(double x) noexcept {
    const double t = (x - lo_) / (hi_ - lo_);
    const auto bins = static_cast<long long>(counts_.size());
    auto idx = static_cast<long long>(std::floor(t * static_cast<double>(bins)));
    idx = std::clamp<long long>(idx, 0, bins - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  long long total() const noexcept { return total_; }
  int bins() const noexcept { return static_cast<int>(counts_.size()); }

  /// Lower edge of bin i.
  double bin_lo(int i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  double bin_hi(int i) const noexcept { return bin_lo(i + 1); }
  long long count(int i) const noexcept {
    SPLICE_EXPECTS(i >= 0 && i < bins());
    return counts_[static_cast<std::size_t>(i)];
  }

  /// Cumulative fraction of samples at or below bin i's upper edge.
  double cdf_at(int i) const noexcept {
    SPLICE_EXPECTS(i >= 0 && i < bins());
    long long cum = 0;
    for (int b = 0; b <= i; ++b) cum += counts_[static_cast<std::size_t>(b)];
    return total_ == 0 ? 0.0
                       : static_cast<double>(cum) /
                             static_cast<double>(total_);
  }

  /// Smallest bin upper edge whose CDF reaches `q` in [0, 1]; hi_ if never.
  double quantile_edge(double q) const noexcept {
    SPLICE_EXPECTS(q >= 0.0 && q <= 1.0);
    for (int i = 0; i < bins(); ++i) {
      if (cdf_at(i) >= q) return bin_hi(i);
    }
    return hi_;
  }

  /// Renders "lo-hi count cdf" rows; `bar_width` adds an ASCII bar column.
  std::string render(int bar_width = 30) const {
    std::string out;
    long long max_count = 1;
    for (long long c : counts_) max_count = std::max(max_count, c);
    char buf[160];
    for (int i = 0; i < bins(); ++i) {
      const int bar = static_cast<int>(
          static_cast<double>(count(i)) / static_cast<double>(max_count) *
          bar_width);
      std::snprintf(buf, sizeof(buf), "%10.1f-%-10.1f %8lld  %5.1f%%  ",
                    bin_lo(i), bin_hi(i), count(i), cdf_at(i) * 100.0);
      out += buf;
      out.append(static_cast<std::size_t>(bar), '#');
      out += '\n';
    }
    return out;
  }

 private:
  double lo_;
  double hi_;
  std::vector<long long> counts_;
  long long total_ = 0;
};

}  // namespace splice
