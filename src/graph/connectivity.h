// Undirected connectivity queries: BFS reachability, connected components,
// and pairwise connectivity under a failed-edge mask. These implement the
// "best possible" reliability baseline of §4.2 — the connectivity of the
// underlying graph itself after failures.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace splice {

/// Membership vector of nodes reachable from `source` over alive edges.
/// An empty `edge_alive` mask means every edge is alive.
std::vector<char> reachable_nodes(const Graph& g, NodeId source,
                                  std::span<const char> edge_alive = {});

/// True iff u and v are connected over alive edges.
bool connected(const Graph& g, NodeId u, NodeId v,
               std::span<const char> edge_alive = {});

/// True iff all nodes are mutually connected over alive edges.
bool is_connected(const Graph& g, std::span<const char> edge_alive = {});

/// component[v] = dense component index; returns number of components.
int connected_components(const Graph& g, std::vector<int>& component,
                         std::span<const char> edge_alive = {});

/// Number of ordered (s, t), s != t, pairs that are *disconnected* over
/// alive edges. This is the quantity Figures 3–5 plot (as a fraction).
/// Computed per component in O(n + m).
long long disconnected_ordered_pairs(const Graph& g,
                                     std::span<const char> edge_alive = {});

/// Total number of ordered pairs, n * (n - 1).
long long total_ordered_pairs(const Graph& g) noexcept;

}  // namespace splice
