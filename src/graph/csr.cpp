#include "graph/csr.h"

namespace splice {

CsrGraph::CsrGraph(const Graph& g) : n_(g.node_count()) {
  edges_.assign(g.edges().begin(), g.edges().end());
  offsets_.resize(static_cast<std::size_t>(n_) + 1, 0);
  packed_.reserve(2 * edges_.size());
  for (NodeId v = 0; v < n_; ++v) {
    offsets_[static_cast<std::size_t>(v)] =
        static_cast<std::uint32_t>(packed_.size());
    const auto inc = g.neighbors(v);
    packed_.insert(packed_.end(), inc.begin(), inc.end());
  }
  offsets_[static_cast<std::size_t>(n_)] =
      static_cast<std::uint32_t>(packed_.size());
}

std::vector<Weight> CsrGraph::weights() const {
  std::vector<Weight> out;
  out.reserve(edges_.size());
  for (const Edge& e : edges_) out.push_back(e.weight);
  return out;
}

}  // namespace splice
