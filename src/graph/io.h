// Topology serialization.
//
// The native format is a line-oriented edge list:
//
//   # comment
//   node <name>                  (optional; declares nodes in id order)
//   edge <u> <v> <weight>        (u, v are node names or numeric ids)
//
// plus a compact whitespace form `u v w` per line for quick fixtures. This
// is the format the embedded GEANT/Sprint datasets use and what
// examples/custom_topology_study consumes.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/graph.h"

namespace splice {

/// Error thrown on malformed topology input.
class TopologyParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses the native topology format from a stream. Throws
/// TopologyParseError on malformed input.
Graph read_topology(std::istream& in);

/// Parses from a string (convenience for embedded datasets and tests).
Graph parse_topology(const std::string& text);

/// Loads from a file path; throws TopologyParseError if unreadable.
Graph load_topology(const std::string& path);

/// Serializes in the native format (stable round-trip with read_topology).
std::string write_topology(const Graph& g);

}  // namespace splice
