#include "graph/digraph.h"

#include <vector>

namespace splice {

std::vector<char> reachable_from(const Digraph& g, NodeId source) {
  SPLICE_EXPECTS(g.valid_node(source));
  std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
  std::vector<NodeId> stack{source};
  seen[static_cast<std::size_t>(source)] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : g.successors(u)) {
      auto& mark = seen[static_cast<std::size_t>(v)];
      if (!mark) {
        mark = 1;
        stack.push_back(v);
      }
    }
  }
  return seen;
}

bool has_directed_path(const Digraph& g, NodeId source, NodeId target) {
  SPLICE_EXPECTS(g.valid_node(target));
  if (source == target) return true;
  const auto seen = reachable_from(g, source);
  return seen[static_cast<std::size_t>(target)] != 0;
}

std::vector<char> can_reach(const Digraph& g, NodeId target) {
  SPLICE_EXPECTS(g.valid_node(target));
  // Build reverse adjacency once, then BFS from target.
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::vector<NodeId>> rev(n);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.successors(u)) rev[static_cast<std::size_t>(v)].push_back(u);
  }
  std::vector<char> seen(n, 0);
  std::vector<NodeId> stack{target};
  seen[static_cast<std::size_t>(target)] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId p : rev[static_cast<std::size_t>(u)]) {
      auto& mark = seen[static_cast<std::size_t>(p)];
      if (!mark) {
        mark = 1;
        stack.push_back(p);
      }
    }
  }
  return seen;
}

}  // namespace splice
