#include "graph/connectivity.h"

#include "util/assert.h"

namespace splice {

namespace {

bool edge_ok(std::span<const char> mask, EdgeId e) noexcept {
  return mask.empty() || mask[static_cast<std::size_t>(e)] != 0;
}

}  // namespace

std::vector<char> reachable_nodes(const Graph& g, NodeId source,
                                  std::span<const char> edge_alive) {
  SPLICE_EXPECTS(g.valid_node(source));
  SPLICE_EXPECTS(edge_alive.empty() ||
                 edge_alive.size() == static_cast<std::size_t>(g.edge_count()));
  std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
  std::vector<NodeId> stack{source};
  seen[static_cast<std::size_t>(source)] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Incidence& inc : g.neighbors(u)) {
      if (!edge_ok(edge_alive, inc.edge)) continue;
      auto& mark = seen[static_cast<std::size_t>(inc.neighbor)];
      if (!mark) {
        mark = 1;
        stack.push_back(inc.neighbor);
      }
    }
  }
  return seen;
}

bool connected(const Graph& g, NodeId u, NodeId v,
               std::span<const char> edge_alive) {
  SPLICE_EXPECTS(g.valid_node(v));
  if (u == v) return true;
  const auto seen = reachable_nodes(g, u, edge_alive);
  return seen[static_cast<std::size_t>(v)] != 0;
}

bool is_connected(const Graph& g, std::span<const char> edge_alive) {
  if (g.node_count() <= 1) return true;
  const auto seen = reachable_nodes(g, 0, edge_alive);
  for (char s : seen) {
    if (!s) return false;
  }
  return true;
}

int connected_components(const Graph& g, std::vector<int>& component,
                         std::span<const char> edge_alive) {
  const auto n = static_cast<std::size_t>(g.node_count());
  component.assign(n, -1);
  int next = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (component[static_cast<std::size_t>(start)] != -1) continue;
    const int id = next++;
    component[static_cast<std::size_t>(start)] = id;
    stack.assign(1, start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const Incidence& inc : g.neighbors(u)) {
        if (!edge_ok(edge_alive, inc.edge)) continue;
        auto& c = component[static_cast<std::size_t>(inc.neighbor)];
        if (c == -1) {
          c = id;
          stack.push_back(inc.neighbor);
        }
      }
    }
  }
  return next;
}

long long disconnected_ordered_pairs(const Graph& g,
                                     std::span<const char> edge_alive) {
  std::vector<int> component;
  const int k = connected_components(g, component, edge_alive);
  std::vector<long long> size(static_cast<std::size_t>(k), 0);
  for (int c : component) ++size[static_cast<std::size_t>(c)];
  const long long n = g.node_count();
  long long connected_pairs = 0;
  for (long long s : size) connected_pairs += s * (s - 1);
  return n * (n - 1) - connected_pairs;
}

long long total_ordered_pairs(const Graph& g) noexcept {
  const long long n = g.node_count();
  return n * (n - 1);
}

}  // namespace splice
