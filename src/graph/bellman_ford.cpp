#include "graph/bellman_ford.h"

#include "util/assert.h"

namespace splice {

std::vector<Weight> bellman_ford_distances(const Graph& g, NodeId source,
                                           std::span<const Weight> weight_override,
                                           std::span<const char> edge_alive) {
  SPLICE_EXPECTS(g.valid_node(source));
  const auto n = static_cast<std::size_t>(g.node_count());
  const auto m = static_cast<std::size_t>(g.edge_count());
  SPLICE_EXPECTS(weight_override.empty() || weight_override.size() == m);
  SPLICE_EXPECTS(edge_alive.empty() || edge_alive.size() == m);

  std::vector<Weight> dist(n, kInfiniteWeight);
  dist[static_cast<std::size_t>(source)] = 0.0;

  auto weight_of = [&](EdgeId e) -> Weight {
    return weight_override.empty()
               ? g.edge(e).weight
               : weight_override[static_cast<std::size_t>(e)];
  };
  auto alive = [&](EdgeId e) -> bool {
    return edge_alive.empty() || edge_alive[static_cast<std::size_t>(e)] != 0;
  };

  // Undirected relaxation; at most n-1 passes, early exit when stable.
  for (std::size_t pass = 0; pass + 1 < n || n == 1; ++pass) {
    bool changed = false;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (!alive(e)) continue;
      const Edge& edge = g.edge(e);
      const Weight w = weight_of(e);
      SPLICE_ASSERT(w >= 0.0);
      auto& du = dist[static_cast<std::size_t>(edge.u)];
      auto& dv = dist[static_cast<std::size_t>(edge.v)];
      if (du + w < dv) {
        dv = du + w;
        changed = true;
      }
      if (dv + w < du) {
        du = dv + w;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace splice
