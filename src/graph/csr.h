// Flat CSR (compressed sparse row) snapshot of a Graph's adjacency.
//
// The mutable Graph stores adjacency as vector<vector<Incidence>>, which is
// convenient while building a topology but pointer-chasing to traverse: each
// node's incidence list is a separate heap allocation. Hot paths that run
// many shortest-path computations over a fixed topology (the control plane's
// k × n SPT builds, incremental repair, the Monte Carlo harnesses) take a
// CsrGraph snapshot once and iterate packed arrays instead.
//
// The snapshot preserves the Graph's incidence order exactly (each per-node
// list is in edge-insertion order, i.e. ascending edge id), so algorithms
// with order-sensitive deterministic tie-breaking produce bit-identical
// results over either representation.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/assert.h"

namespace splice {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Snapshots `g`'s nodes, edges and adjacency. The snapshot is immutable
  /// and independent of the source graph's lifetime.
  explicit CsrGraph(const Graph& g);

  NodeId node_count() const noexcept { return n_; }
  EdgeId edge_count() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  bool valid_node(NodeId v) const noexcept { return v >= 0 && v < n_; }

  /// Incident edges (and neighbors) of `v`, in the same order as
  /// Graph::neighbors(v).
  std::span<const Incidence> neighbors(NodeId v) const noexcept {
    SPLICE_EXPECTS(valid_node(v));
    const auto lo = offsets_[static_cast<std::size_t>(v)];
    const auto hi = offsets_[static_cast<std::size_t>(v) + 1];
    return {packed_.data() + lo, packed_.data() + hi};
  }

  int degree(NodeId v) const noexcept {
    return static_cast<int>(neighbors(v).size());
  }

  const Edge& edge(EdgeId e) const noexcept {
    SPLICE_EXPECTS(e >= 0 && e < edge_count());
    return edges_[static_cast<std::size_t>(e)];
  }
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Weights of all edges in edge-id order (the snapshot's base weights).
  std::vector<Weight> weights() const;

 private:
  NodeId n_ = 0;
  std::vector<std::uint32_t> offsets_;  // n + 1 entries into packed_
  std::vector<Incidence> packed_;       // 2m incidences, grouped by node
  std::vector<Edge> edges_;             // endpoints + base weight, by edge id
};

}  // namespace splice
