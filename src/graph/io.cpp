#include "graph/io.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

namespace splice {

namespace {

bool is_number(const std::string& tok) {
  if (tok.empty()) return false;
  for (char c : tok) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

Graph read_topology(std::istream& in) {
  Graph g;
  std::map<std::string, NodeId> by_name;

  auto resolve = [&](const std::string& tok, int line_no) -> NodeId {
    if (const auto it = by_name.find(tok); it != by_name.end())
      return it->second;
    if (is_number(tok)) {
      const auto id = static_cast<NodeId>(std::stol(tok));
      if (id < 0)
        throw TopologyParseError("negative node id at line " +
                                 std::to_string(line_no));
      while (g.node_count() <= id) g.add_node();
      return id;
    }
    const NodeId id = g.add_node(tok);
    by_name.emplace(tok, id);
    return id;
  };

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank line

    if (first == "node") {
      std::string name;
      if (!(ls >> name))
        throw TopologyParseError("'node' without a name at line " +
                                 std::to_string(line_no));
      if (by_name.contains(name))
        throw TopologyParseError("duplicate node '" + name + "' at line " +
                                 std::to_string(line_no));
      by_name.emplace(name, g.add_node(name));
      continue;
    }

    std::string u_tok;
    std::string v_tok;
    double w = 1.0;
    if (first == "edge") {
      if (!(ls >> u_tok >> v_tok))
        throw TopologyParseError("'edge' needs two endpoints at line " +
                                 std::to_string(line_no));
    } else {
      u_tok = first;
      if (!(ls >> v_tok))
        throw TopologyParseError("edge line needs two endpoints at line " +
                                 std::to_string(line_no));
    }
    if (!(ls >> w)) w = 1.0;
    if (w <= 0.0)
      throw TopologyParseError("non-positive weight at line " +
                               std::to_string(line_no));
    const NodeId u = resolve(u_tok, line_no);
    const NodeId v = resolve(v_tok, line_no);
    if (u == v)
      throw TopologyParseError("self-loop at line " + std::to_string(line_no));
    g.add_edge(u, v, w);
  }
  return g;
}

Graph parse_topology(const std::string& text) {
  std::istringstream in(text);
  return read_topology(in);
}

Graph load_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TopologyParseError("cannot open topology file: " + path);
  return read_topology(in);
}

std::string write_topology(const Graph& g) {
  std::ostringstream out;
  out.precision(17);  // round-trip double precision
  out << "# nodes=" << g.node_count() << " edges=" << g.edge_count() << "\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!g.name(v).empty()) out << "node " << g.name(v) << "\n";
  }
  for (const Edge& e : g.edges()) {
    const std::string& nu = g.name(e.u);
    const std::string& nv = g.name(e.v);
    out << "edge " << (nu.empty() ? std::to_string(e.u) : nu) << ' '
        << (nv.empty() ? std::to_string(e.v) : nv) << ' ' << e.weight << "\n";
  }
  return out.str();
}

}  // namespace splice
