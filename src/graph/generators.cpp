#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/connectivity.h"
#include "util/assert.h"

namespace splice {

Graph erdos_renyi(NodeId n, double p, std::uint64_t seed) {
  SPLICE_EXPECTS(n >= 0);
  SPLICE_EXPECTS(p >= 0.0 && p <= 1.0);
  Graph g(n);
  Rng rng(seed);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) g.add_edge(u, v, 1.0);
    }
  }
  return g;
}

Graph waxman(NodeId n, double alpha, double beta, std::uint64_t seed) {
  SPLICE_EXPECTS(n >= 0);
  SPLICE_EXPECTS(alpha > 0.0 && beta > 0.0);
  Graph g(n);
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    x[static_cast<std::size_t>(v)] = rng.uniform();
    y[static_cast<std::size_t>(v)] = rng.uniform();
  }
  const double l_max = std::sqrt(2.0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)];
      const double dy = y[static_cast<std::size_t>(u)] - y[static_cast<std::size_t>(v)];
      const double d = std::sqrt(dx * dx + dy * dy);
      if (rng.bernoulli(alpha * std::exp(-d / (beta * l_max)))) {
        // Latency-like weight in ~[1, 10].
        g.add_edge(u, v, 1.0 + 9.0 * d / l_max);
      }
    }
  }
  return g;
}

Graph barabasi_albert(NodeId n, int m, std::uint64_t seed) {
  SPLICE_EXPECTS(m >= 1);
  SPLICE_EXPECTS(n > m);
  Graph g(n);
  Rng rng(seed);
  // Seed clique of m+1 nodes.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) g.add_edge(u, v, 1.0);
  }
  // Endpoint pool: each node appears once per incident edge, so sampling
  // uniformly from the pool is preferential attachment.
  std::vector<NodeId> pool;
  for (const Edge& e : g.edges()) {
    pool.push_back(e.u);
    pool.push_back(e.v);
  }
  for (NodeId v = static_cast<NodeId>(m) + 1; v < n; ++v) {
    std::vector<NodeId> targets;
    while (static_cast<int>(targets.size()) < m) {
      const NodeId t = pool[rng.below(pool.size())];
      if (t != v && std::find(targets.begin(), targets.end(), t) == targets.end())
        targets.push_back(t);
    }
    for (NodeId t : targets) {
      g.add_edge(v, t, 1.0);
      pool.push_back(v);
      pool.push_back(t);
    }
  }
  return g;
}

Graph ring(NodeId n) {
  SPLICE_EXPECTS(n >= 3);
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n, 1.0);
  return g;
}

Graph grid(NodeId rows, NodeId cols) {
  SPLICE_EXPECTS(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), 1.0);
    }
  }
  return g;
}

Graph complete(NodeId n) {
  SPLICE_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v, 1.0);
  }
  return g;
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  SPLICE_EXPECTS(n >= 1);
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1, 1.0);
    return g;
  }
  // Decode a random Prüfer sequence.
  Rng rng(seed);
  std::vector<NodeId> prufer(static_cast<std::size_t>(n - 2));
  for (auto& p : prufer) p = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  std::vector<int> degree(static_cast<std::size_t>(n), 1);
  for (NodeId p : prufer) ++degree[static_cast<std::size_t>(p)];
  // Repeatedly attach the smallest leaf to the next sequence element.
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  NodeId leaf_ptr = 0;
  auto next_leaf = [&]() {
    while (degree[static_cast<std::size_t>(leaf_ptr)] != 1 ||
           used[static_cast<std::size_t>(leaf_ptr)])
      ++leaf_ptr;
    return leaf_ptr;
  };
  NodeId leaf = next_leaf();
  for (NodeId p : prufer) {
    g.add_edge(leaf, p, 1.0);
    used[static_cast<std::size_t>(leaf)] = 1;
    if (--degree[static_cast<std::size_t>(p)] == 1 && p < leaf_ptr) {
      leaf = p;  // p became a leaf below the pointer; use it immediately
    } else {
      leaf = next_leaf();
    }
  }
  // Join the last two remaining leaves.
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  for (NodeId v = 0; v < n; ++v) {
    if (!used[static_cast<std::size_t>(v)] &&
        degree[static_cast<std::size_t>(v)] == 1) {
      (a == kInvalidNode ? a : b) = v;
    }
  }
  SPLICE_ASSERT(a != kInvalidNode && b != kInvalidNode);
  g.add_edge(a, b, 1.0);
  return g;
}

Graph figure1_two_paths(NodeId path_len) {
  SPLICE_EXPECTS(path_len >= 1);
  Graph g;
  const NodeId s = g.add_node("s");
  const NodeId t = g.add_node("t");
  for (int path = 0; path < 2; ++path) {
    NodeId prev = s;
    for (NodeId i = 0; i < path_len; ++i) {
      const NodeId mid = g.add_node();
      g.add_edge(prev, mid, 1.0);
      prev = mid;
    }
    g.add_edge(prev, t, 1.0);
  }
  return g;
}

int make_connected(Graph& g, std::uint64_t seed) {
  if (g.node_count() <= 1) return 0;
  Rng rng(seed);
  int added = 0;
  std::vector<int> component;
  while (connected_components(g, component) > 1) {
    // Join a random node of component 0 with a random node outside it.
    std::vector<NodeId> inside;
    std::vector<NodeId> outside;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      (component[static_cast<std::size_t>(v)] == 0 ? inside : outside)
          .push_back(v);
    }
    const NodeId u = inside[rng.below(inside.size())];
    const NodeId v = outside[rng.below(outside.size())];
    g.add_edge(u, v, 1.0);
    ++added;
  }
  return added;
}

}  // namespace splice
