// Dijkstra single-source shortest paths over a Graph, with support for
// (a) overriding edge weights with an external weight vector — this is how
//     routing slices evaluate perturbed weights without copying the graph —
// (b) masking out failed edges, for post-failure "best possible" analysis.
//
// Two entry points share one core:
//   * dijkstra()      — convenience wrapper returning a fresh ShortestPaths.
//   * dijkstra_into() — reuses a caller-owned DijkstraWorkspace (distance /
//     parent buffers and the heap), so the k × n SPT builds of the control
//     plane pay zero allocations after the first run. Overloads accept
//     either a Graph or a flat CsrGraph snapshot; results are bit-identical
//     across all entry points.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace splice {

/// Result of a single-source shortest-path computation.
struct ShortestPaths {
  NodeId source = kInvalidNode;
  /// dist[v] — shortest distance from source; kInfiniteWeight if unreachable.
  std::vector<Weight> dist;
  /// parent[v] — predecessor of v on a shortest path from source;
  /// kInvalidNode for the source and unreachable nodes.
  std::vector<NodeId> parent;
  /// parent_edge[v] — the edge used to enter v; kInvalidEdge as above.
  std::vector<EdgeId> parent_edge;

  bool reached(NodeId v) const noexcept {
    return dist[static_cast<std::size_t>(v)] < kInfiniteWeight;
  }

  /// Reconstructs the node sequence source..v (empty if unreachable).
  std::vector<NodeId> path_to(NodeId v) const;
};

struct DijkstraOptions {
  /// Per-edge weights overriding Graph weights; empty ⇒ use graph weights.
  std::span<const Weight> weight_override;
  /// Per-edge alive mask; empty ⇒ all edges alive. 0 means failed/removed.
  std::span<const char> edge_alive;
  /// Deterministic tie-breaking: among equal-distance relaxations prefer the
  /// lower predecessor id, making trees reproducible across platforms.
  bool deterministic_ties = true;
};

/// Reusable scratch space for dijkstra_into(): the result buffers plus the
/// binary heap's backing vector. Reusing one workspace across many runs
/// amortizes all allocation; buffers are (re)sized on each run.
struct DijkstraWorkspace {
  std::vector<Weight> dist;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
  /// (distance, node) min-heap storage; cleared at the start of each run.
  std::vector<std::pair<Weight, NodeId>> heap;

  bool reached(NodeId v) const noexcept {
    return dist[static_cast<std::size_t>(v)] < kInfiniteWeight;
  }
};

/// Runs Dijkstra from `source` into `ws` (dist/parent/parent_edge).
/// Weights must be non-negative. Bit-identical to dijkstra().
void dijkstra_into(const Graph& g, NodeId source, const DijkstraOptions& opts,
                   DijkstraWorkspace& ws);
void dijkstra_into(const CsrGraph& g, NodeId source,
                   const DijkstraOptions& opts, DijkstraWorkspace& ws);

/// Runs Dijkstra from `source`. Weights must be non-negative. Thin wrapper
/// over dijkstra_into() that allocates fresh result buffers.
ShortestPaths dijkstra(const Graph& g, NodeId source,
                       const DijkstraOptions& opts = {});

/// Convenience: shortest distance between two nodes (graph weights).
Weight shortest_distance(const Graph& g, NodeId s, NodeId t);

}  // namespace splice
