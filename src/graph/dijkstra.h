// Dijkstra single-source shortest paths over a Graph, with support for
// (a) overriding edge weights with an external weight vector — this is how
//     routing slices evaluate perturbed weights without copying the graph —
// (b) masking out failed edges, for post-failure "best possible" analysis.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace splice {

/// Result of a single-source shortest-path computation.
struct ShortestPaths {
  NodeId source = kInvalidNode;
  /// dist[v] — shortest distance from source; kInfiniteWeight if unreachable.
  std::vector<Weight> dist;
  /// parent[v] — predecessor of v on a shortest path from source;
  /// kInvalidNode for the source and unreachable nodes.
  std::vector<NodeId> parent;
  /// parent_edge[v] — the edge used to enter v; kInvalidEdge as above.
  std::vector<EdgeId> parent_edge;

  bool reached(NodeId v) const noexcept {
    return dist[static_cast<std::size_t>(v)] < kInfiniteWeight;
  }

  /// Reconstructs the node sequence source..v (empty if unreachable).
  std::vector<NodeId> path_to(NodeId v) const;
};

struct DijkstraOptions {
  /// Per-edge weights overriding Graph weights; empty ⇒ use graph weights.
  std::span<const Weight> weight_override;
  /// Per-edge alive mask; empty ⇒ all edges alive. 0 means failed/removed.
  std::span<const char> edge_alive;
  /// Deterministic tie-breaking: among equal-distance relaxations prefer the
  /// lower predecessor id, making trees reproducible across platforms.
  bool deterministic_ties = true;
};

/// Runs Dijkstra from `source`. Weights must be non-negative.
ShortestPaths dijkstra(const Graph& g, NodeId source,
                       const DijkstraOptions& opts = {});

/// Convenience: shortest distance between two nodes (graph weights).
Weight shortest_distance(const Graph& g, NodeId s, NodeId t);

}  // namespace splice
