// Weighted undirected graph: the "base" network topology of the paper.
//
// Nodes are dense 0-based ids with optional human-readable names (PoP
// names for the embedded ISP topologies). Edges are undirected with a
// strictly positive weight (the IGP link metric). Parallel edges are
// permitted (ISP topologies occasionally have them); self-loops are not.
//
// The graph is value-semantic and cheap to copy for topology sizes in this
// problem domain (tens to a few thousand nodes).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/types.h"
#include "util/assert.h"

namespace splice {

/// One undirected link of the topology.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Weight weight = 1.0;

  /// The endpoint that is not `from`. Precondition: `from` is an endpoint.
  NodeId other(NodeId from) const noexcept {
    SPLICE_EXPECTS(from == u || from == v);
    return from == u ? v : u;
  }
};

/// Adjacency record: an incident edge and the neighbor it leads to.
struct Incidence {
  EdgeId edge = kInvalidEdge;
  NodeId neighbor = kInvalidNode;
};

class Graph {
 public:
  Graph() = default;

  /// Creates a graph with `n` unnamed nodes and no edges.
  explicit Graph(NodeId n) { add_nodes(n); }

  /// Appends one node; returns its id.
  NodeId add_node(std::string name = {});

  /// Appends `count` unnamed nodes; returns the id of the first.
  NodeId add_nodes(NodeId count);

  /// Adds an undirected edge (u, v) with weight `w > 0`; returns its id.
  /// Self-loops are rejected.
  EdgeId add_edge(NodeId u, NodeId v, Weight w = 1.0);

  NodeId node_count() const noexcept {
    return static_cast<NodeId>(adjacency_.size());
  }
  EdgeId edge_count() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  const Edge& edge(EdgeId e) const noexcept {
    SPLICE_EXPECTS(e >= 0 && e < edge_count());
    return edges_[static_cast<std::size_t>(e)];
  }
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Incident edges (and neighbors) of `v`.
  std::span<const Incidence> neighbors(NodeId v) const noexcept {
    SPLICE_EXPECTS(valid_node(v));
    return adjacency_[static_cast<std::size_t>(v)];
  }

  /// Number of incident edges (counts parallel edges).
  int degree(NodeId v) const noexcept {
    return static_cast<int>(neighbors(v).size());
  }

  const std::string& name(NodeId v) const noexcept {
    SPLICE_EXPECTS(valid_node(v));
    return names_[static_cast<std::size_t>(v)];
  }
  void set_name(NodeId v, std::string name);

  /// Finds a node by name; kInvalidNode when absent. Linear scan — intended
  /// for topology construction and tests, not hot paths.
  NodeId find_node(std::string_view name) const noexcept;

  /// Finds some edge between u and v (kInvalidEdge when none exists).
  EdgeId find_edge(NodeId u, NodeId v) const noexcept;

  bool valid_node(NodeId v) const noexcept {
    return v >= 0 && v < node_count();
  }

  /// Weights of all edges in edge-id order (the "original" L of §3.1.1).
  std::vector<Weight> weights() const;

  /// Replaces the weight of one edge (used by topology loaders).
  void set_weight(EdgeId e, Weight w);

  /// Sum of all edge weights.
  Weight total_weight() const noexcept;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Incidence>> adjacency_;
  std::vector<std::string> names_;
};

}  // namespace splice
