#include "graph/maxflow.h"

#include <limits>
#include <queue>

#include "util/assert.h"

namespace splice {

FlowNetwork::FlowNetwork(NodeId n)
    : head_(static_cast<std::size_t>(n), -1) {
  SPLICE_EXPECTS(n >= 0);
}

void FlowNetwork::add_arc(NodeId u, NodeId v, int cap) {
  SPLICE_EXPECTS(u >= 0 && u < node_count());
  SPLICE_EXPECTS(v >= 0 && v < node_count());
  SPLICE_EXPECTS(cap >= 0);
  arcs_.push_back(Arc{v, cap, head_[static_cast<std::size_t>(u)]});
  head_[static_cast<std::size_t>(u)] = static_cast<int>(arcs_.size()) - 1;
  arcs_.push_back(Arc{u, 0, head_[static_cast<std::size_t>(v)]});
  head_[static_cast<std::size_t>(v)] = static_cast<int>(arcs_.size()) - 1;
}

void FlowNetwork::add_undirected_unit(NodeId u, NodeId v) {
  // For undirected unit-capacity flow, a pair of opposing arcs where each
  // serves as the other's residual models capacity 1 in each direction.
  SPLICE_EXPECTS(u >= 0 && u < node_count());
  SPLICE_EXPECTS(v >= 0 && v < node_count());
  arcs_.push_back(Arc{v, 1, head_[static_cast<std::size_t>(u)]});
  head_[static_cast<std::size_t>(u)] = static_cast<int>(arcs_.size()) - 1;
  arcs_.push_back(Arc{u, 1, head_[static_cast<std::size_t>(v)]});
  head_[static_cast<std::size_t>(v)] = static_cast<int>(arcs_.size()) - 1;
}

bool FlowNetwork::bfs_levels(NodeId s, NodeId t) {
  level_.assign(head_.size(), -1);
  std::queue<NodeId> q;
  level_[static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (int a = head_[static_cast<std::size_t>(u)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap > 0 && level_[static_cast<std::size_t>(arc.to)] == -1) {
        level_[static_cast<std::size_t>(arc.to)] =
            level_[static_cast<std::size_t>(u)] + 1;
        q.push(arc.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] != -1;
}

int FlowNetwork::dfs_augment(NodeId u, NodeId t, int pushed) {
  if (u == t) return pushed;
  for (int& a = iter_[static_cast<std::size_t>(u)]; a != -1;
       a = arcs_[static_cast<std::size_t>(a)].next) {
    Arc& arc = arcs_[static_cast<std::size_t>(a)];
    if (arc.cap <= 0 || level_[static_cast<std::size_t>(arc.to)] !=
                            level_[static_cast<std::size_t>(u)] + 1)
      continue;
    const int got = dfs_augment(arc.to, t, std::min(pushed, arc.cap));
    if (got > 0) {
      arc.cap -= got;
      arcs_[static_cast<std::size_t>(a ^ 1)].cap += got;
      return got;
    }
  }
  return 0;
}

long long FlowNetwork::max_flow(NodeId s, NodeId t) {
  SPLICE_EXPECTS(s >= 0 && s < node_count());
  SPLICE_EXPECTS(t >= 0 && t < node_count());
  SPLICE_EXPECTS(s != t);
  long long flow = 0;
  while (bfs_levels(s, t)) {
    iter_ = head_;
    while (true) {
      const int got = dfs_augment(s, t, std::numeric_limits<int>::max());
      if (got == 0) break;
      flow += got;
    }
  }
  return flow;
}

int pair_edge_connectivity(const Graph& g, NodeId s, NodeId t) {
  SPLICE_EXPECTS(g.valid_node(s));
  SPLICE_EXPECTS(g.valid_node(t));
  SPLICE_EXPECTS(s != t);
  FlowNetwork net(g.node_count());
  for (const Edge& e : g.edges()) net.add_undirected_unit(e.u, e.v);
  return static_cast<int>(net.max_flow(s, t));
}

int pair_arc_connectivity(const Digraph& g, NodeId s, NodeId t) {
  SPLICE_EXPECTS(g.valid_node(s));
  SPLICE_EXPECTS(g.valid_node(t));
  SPLICE_EXPECTS(s != t);
  FlowNetwork net(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.successors(u)) net.add_arc(u, v, 1);
  }
  return static_cast<int>(net.max_flow(s, t));
}

}  // namespace splice
