// Descriptive topology statistics reported by the analysis tools and used
// to sanity-check the embedded datasets against the paper's figures
// (GEANT: 23 nodes / 37 links, Sprint: 52 nodes / 84 links).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace splice {

struct TopologyStats {
  NodeId nodes = 0;
  EdgeId edges = 0;
  double avg_degree = 0.0;
  int min_degree = 0;
  int max_degree = 0;
  /// Weighted diameter (max pairwise shortest-path distance); infinite when
  /// disconnected.
  Weight diameter = 0.0;
  /// Hop diameter (max pairwise hop count of weighted shortest paths).
  int hop_diameter = 0;
  /// Global edge connectivity (min #edges whose removal disconnects).
  int edge_connectivity = 0;
  bool connected = false;
};

TopologyStats topology_stats(const Graph& g);

/// Degree of each node, indexed by node id.
std::vector<int> degree_sequence(const Graph& g);

}  // namespace splice
