// Global minimum cut (Stoer–Wagner). The size of the minimum cut of the
// underlying topology bounds the reliability any routing scheme can achieve
// (Figure 1's argument: splicing only disconnects s from t when a full cut
// fails), so the analysis tooling reports it alongside reliability curves.
#pragma once

#include "graph/graph.h"
#include "graph/types.h"

#include <vector>

namespace splice {

struct MinCutResult {
  /// Total weight of the minimum cut (sum of crossing edge weights).
  Weight weight = kInfiniteWeight;
  /// One side of the cut, as original node ids.
  std::vector<NodeId> partition;
};

/// Stoer–Wagner global min cut on the weighted graph. Precondition: at least
/// two nodes. For a disconnected graph the result has weight 0.
MinCutResult global_min_cut(const Graph& g);

/// Global *edge* connectivity: min cut with every edge counted as weight 1.
int edge_connectivity(const Graph& g);

}  // namespace splice
