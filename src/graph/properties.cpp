#include "graph/properties.h"

#include <algorithm>

#include "graph/connectivity.h"
#include "graph/dijkstra.h"
#include "graph/mincut.h"

namespace splice {

TopologyStats topology_stats(const Graph& g) {
  TopologyStats s;
  s.nodes = g.node_count();
  s.edges = g.edge_count();
  if (s.nodes == 0) return s;

  int min_deg = g.degree(0);
  int max_deg = g.degree(0);
  long long deg_sum = 0;
  for (NodeId v = 0; v < s.nodes; ++v) {
    const int d = g.degree(v);
    min_deg = std::min(min_deg, d);
    max_deg = std::max(max_deg, d);
    deg_sum += d;
  }
  s.min_degree = min_deg;
  s.max_degree = max_deg;
  s.avg_degree = static_cast<double>(deg_sum) / static_cast<double>(s.nodes);
  s.connected = is_connected(g);
  s.edge_connectivity = s.nodes >= 2 ? edge_connectivity(g) : 0;

  Weight diameter = 0.0;
  int hop_diameter = 0;
  for (NodeId src = 0; src < s.nodes; ++src) {
    const ShortestPaths sp = dijkstra(g, src);
    for (NodeId dst = 0; dst < s.nodes; ++dst) {
      if (dst == src) continue;
      const Weight d = sp.dist[static_cast<std::size_t>(dst)];
      diameter = std::max(diameter, d);
      if (d < kInfiniteWeight) {
        int hops = 0;
        for (NodeId cur = dst; cur != src;
             cur = sp.parent[static_cast<std::size_t>(cur)])
          ++hops;
        hop_diameter = std::max(hop_diameter, hops);
      }
    }
  }
  s.diameter = diameter;
  s.hop_diameter = hop_diameter;
  return s;
}

std::vector<int> degree_sequence(const Graph& g) {
  std::vector<int> deg(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v)
    deg[static_cast<std::size_t>(v)] = g.degree(v);
  return deg;
}

}  // namespace splice
