#include "graph/graph.h"

#include <algorithm>

namespace splice {

NodeId Graph::add_node(std::string name) {
  adjacency_.emplace_back();
  names_.push_back(std::move(name));
  return node_count() - 1;
}

NodeId Graph::add_nodes(NodeId count) {
  SPLICE_EXPECTS(count >= 0);
  const NodeId first = node_count();
  for (NodeId i = 0; i < count; ++i) add_node();
  return first;
}

EdgeId Graph::add_edge(NodeId u, NodeId v, Weight w) {
  SPLICE_EXPECTS(valid_node(u));
  SPLICE_EXPECTS(valid_node(v));
  SPLICE_EXPECTS(u != v);
  SPLICE_EXPECTS(w > 0.0);
  const auto e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, w});
  adjacency_[static_cast<std::size_t>(u)].push_back(Incidence{e, v});
  adjacency_[static_cast<std::size_t>(v)].push_back(Incidence{e, u});
  return e;
}

void Graph::set_name(NodeId v, std::string name) {
  SPLICE_EXPECTS(valid_node(v));
  names_[static_cast<std::size_t>(v)] = std::move(name);
}

NodeId Graph::find_node(std::string_view name) const noexcept {
  for (NodeId v = 0; v < node_count(); ++v) {
    if (names_[static_cast<std::size_t>(v)] == name) return v;
  }
  return kInvalidNode;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const noexcept {
  if (!valid_node(u) || !valid_node(v)) return kInvalidEdge;
  for (const Incidence& inc : neighbors(u)) {
    if (inc.neighbor == v) return inc.edge;
  }
  return kInvalidEdge;
}

std::vector<Weight> Graph::weights() const {
  std::vector<Weight> out;
  out.reserve(edges_.size());
  for (const Edge& e : edges_) out.push_back(e.weight);
  return out;
}

void Graph::set_weight(EdgeId e, Weight w) {
  SPLICE_EXPECTS(e >= 0 && e < edge_count());
  SPLICE_EXPECTS(w > 0.0);
  edges_[static_cast<std::size_t>(e)].weight = w;
}

Weight Graph::total_weight() const noexcept {
  Weight sum = 0.0;
  for (const Edge& e : edges_) sum += e.weight;
  return sum;
}

}  // namespace splice
