#include "graph/dijkstra.h"

#include <algorithm>

#include "util/assert.h"

namespace splice {

std::vector<NodeId> ShortestPaths::path_to(NodeId v) const {
  SPLICE_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < dist.size());
  if (!reached(v)) return {};
  std::vector<NodeId> path;
  for (NodeId cur = v; cur != kInvalidNode;
       cur = parent[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  SPLICE_ENSURES(path.front() == source);
  return path;
}

namespace {

// Shared core over either adjacency representation (Graph or CsrGraph —
// both expose node_count/edge_count/neighbors/edge with the same incidence
// order, so results are bit-identical across the two).
template <typename AnyGraph>
void dijkstra_core(const AnyGraph& g, NodeId source,
                   const DijkstraOptions& opts, DijkstraWorkspace& ws) {
  SPLICE_EXPECTS(g.valid_node(source));
  const auto n = static_cast<std::size_t>(g.node_count());
  const auto m = static_cast<std::size_t>(g.edge_count());
  SPLICE_EXPECTS(opts.weight_override.empty() ||
                 opts.weight_override.size() == m);
  SPLICE_EXPECTS(opts.edge_alive.empty() || opts.edge_alive.size() == m);

  ws.dist.assign(n, kInfiniteWeight);
  ws.parent.assign(n, kInvalidNode);
  ws.parent_edge.assign(n, kInvalidEdge);
  ws.heap.clear();

  auto weight_of = [&](EdgeId e) -> Weight {
    return opts.weight_override.empty()
               ? g.edge(e).weight
               : opts.weight_override[static_cast<std::size_t>(e)];
  };
  auto alive = [&](EdgeId e) -> bool {
    return opts.edge_alive.empty() ||
           opts.edge_alive[static_cast<std::size_t>(e)] != 0;
  };

  using Entry = std::pair<Weight, NodeId>;  // (distance, node)
  const auto cmp = std::greater<Entry>{};
  ws.dist[static_cast<std::size_t>(source)] = 0.0;
  ws.heap.emplace_back(0.0, source);

  while (!ws.heap.empty()) {
    const auto [d, u] = ws.heap.front();
    std::pop_heap(ws.heap.begin(), ws.heap.end(), cmp);
    ws.heap.pop_back();
    if (d > ws.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const Incidence& inc : g.neighbors(u)) {
      if (!alive(inc.edge)) continue;
      const Weight w = weight_of(inc.edge);
      SPLICE_ASSERT(w >= 0.0);
      const Weight nd = d + w;
      auto& dv = ws.dist[static_cast<std::size_t>(inc.neighbor)];
      const bool improves = nd < dv;
      const bool tie_break =
          opts.deterministic_ties && nd == dv &&
          ws.parent[static_cast<std::size_t>(inc.neighbor)] != kInvalidNode &&
          u < ws.parent[static_cast<std::size_t>(inc.neighbor)];
      if (improves || tie_break) {
        dv = nd;
        ws.parent[static_cast<std::size_t>(inc.neighbor)] = u;
        ws.parent_edge[static_cast<std::size_t>(inc.neighbor)] = inc.edge;
        if (improves) {
          ws.heap.emplace_back(nd, inc.neighbor);
          std::push_heap(ws.heap.begin(), ws.heap.end(), cmp);
        }
      }
    }
  }
}

}  // namespace

void dijkstra_into(const Graph& g, NodeId source, const DijkstraOptions& opts,
                   DijkstraWorkspace& ws) {
  dijkstra_core(g, source, opts, ws);
}

void dijkstra_into(const CsrGraph& g, NodeId source,
                   const DijkstraOptions& opts, DijkstraWorkspace& ws) {
  dijkstra_core(g, source, opts, ws);
}

ShortestPaths dijkstra(const Graph& g, NodeId source,
                       const DijkstraOptions& opts) {
  DijkstraWorkspace ws;
  dijkstra_into(g, source, opts, ws);
  ShortestPaths out;
  out.source = source;
  out.dist = std::move(ws.dist);
  out.parent = std::move(ws.parent);
  out.parent_edge = std::move(ws.parent_edge);
  return out;
}

Weight shortest_distance(const Graph& g, NodeId s, NodeId t) {
  SPLICE_EXPECTS(g.valid_node(t));
  const auto sp = dijkstra(g, s);
  return sp.dist[static_cast<std::size_t>(t)];
}

}  // namespace splice
