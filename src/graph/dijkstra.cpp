#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace splice {

std::vector<NodeId> ShortestPaths::path_to(NodeId v) const {
  SPLICE_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < dist.size());
  if (!reached(v)) return {};
  std::vector<NodeId> path;
  for (NodeId cur = v; cur != kInvalidNode;
       cur = parent[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  SPLICE_ENSURES(path.front() == source);
  return path;
}

ShortestPaths dijkstra(const Graph& g, NodeId source,
                       const DijkstraOptions& opts) {
  SPLICE_EXPECTS(g.valid_node(source));
  const auto n = static_cast<std::size_t>(g.node_count());
  const auto m = static_cast<std::size_t>(g.edge_count());
  SPLICE_EXPECTS(opts.weight_override.empty() ||
                 opts.weight_override.size() == m);
  SPLICE_EXPECTS(opts.edge_alive.empty() || opts.edge_alive.size() == m);

  ShortestPaths out;
  out.source = source;
  out.dist.assign(n, kInfiniteWeight);
  out.parent.assign(n, kInvalidNode);
  out.parent_edge.assign(n, kInvalidEdge);

  auto weight_of = [&](EdgeId e) -> Weight {
    return opts.weight_override.empty()
               ? g.edge(e).weight
               : opts.weight_override[static_cast<std::size_t>(e)];
  };
  auto alive = [&](EdgeId e) -> bool {
    return opts.edge_alive.empty() ||
           opts.edge_alive[static_cast<std::size_t>(e)] != 0;
  };

  using Entry = std::pair<Weight, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  out.dist[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > out.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const Incidence& inc : g.neighbors(u)) {
      if (!alive(inc.edge)) continue;
      const Weight w = weight_of(inc.edge);
      SPLICE_ASSERT(w >= 0.0);
      const Weight nd = d + w;
      auto& dv = out.dist[static_cast<std::size_t>(inc.neighbor)];
      const bool improves = nd < dv;
      const bool tie_break =
          opts.deterministic_ties && nd == dv &&
          out.parent[static_cast<std::size_t>(inc.neighbor)] != kInvalidNode &&
          u < out.parent[static_cast<std::size_t>(inc.neighbor)];
      if (improves || tie_break) {
        dv = nd;
        out.parent[static_cast<std::size_t>(inc.neighbor)] = u;
        out.parent_edge[static_cast<std::size_t>(inc.neighbor)] = inc.edge;
        if (improves) heap.emplace(nd, inc.neighbor);
      }
    }
  }
  return out;
}

Weight shortest_distance(const Graph& g, NodeId s, NodeId t) {
  SPLICE_EXPECTS(g.valid_node(t));
  const auto sp = dijkstra(g, s);
  return sp.dist[static_cast<std::size_t>(t)];
}

}  // namespace splice
