// Dinic max-flow, used for pairwise edge connectivity χ(s,t): the number of
// edge-disjoint paths between two nodes. This is the per-pair analogue of
// the min-cut bound and drives the Appendix A connectivity analysis — the
// connectivity of the spliced union is compared against χ of the underlying
// graph (optionally restricted to bounded-stretch subgraphs).
#pragma once

#include "graph/digraph.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace splice {

/// Max-flow network with integer capacities (sufficient for connectivity).
class FlowNetwork {
 public:
  explicit FlowNetwork(NodeId n);

  /// Adds a directed arc u->v with capacity `cap` (and a residual arc).
  void add_arc(NodeId u, NodeId v, int cap);

  /// Adds an undirected unit edge: capacity 1 in both directions.
  void add_undirected_unit(NodeId u, NodeId v);

  /// Computes max flow s->t (Dinic). Destroys current flow state; may be
  /// called once per instance.
  long long max_flow(NodeId s, NodeId t);

  NodeId node_count() const noexcept {
    return static_cast<NodeId>(head_.size());
  }

 private:
  struct Arc {
    NodeId to;
    int cap;
    int next;  // intrusive singly-linked adjacency
  };

  bool bfs_levels(NodeId s, NodeId t);
  int dfs_augment(NodeId u, NodeId t, int pushed);

  std::vector<Arc> arcs_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

/// Number of edge-disjoint undirected paths between s and t in g.
int pair_edge_connectivity(const Graph& g, NodeId s, NodeId t);

/// Number of arc-disjoint directed paths s -> t in a digraph (used to
/// measure the connectivity of spliced forwarding unions, Appendix A).
int pair_arc_connectivity(const Digraph& g, NodeId s, NodeId t);

}  // namespace splice
