// Fundamental identifier and weight types shared across the graph, routing
// and splicing layers.
#pragma once

#include <cstdint>
#include <limits>

namespace splice {

/// Index of a node within a Graph. Dense, 0-based.
using NodeId = std::int32_t;

/// Index of an (undirected) edge within a Graph. Dense, 0-based.
using EdgeId = std::int32_t;

/// Link weight (IGP metric / latency). Strictly positive for real links.
using Weight = double;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;
inline constexpr Weight kInfiniteWeight =
    std::numeric_limits<Weight>::infinity();

/// Index of a routing slice (one perturbed routing-protocol instance).
using SliceId = std::int32_t;

}  // namespace splice
