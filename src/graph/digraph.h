// Simple directed graph used for spliced forwarding unions: for a fixed
// destination, the union over slices of next-hop arcs forms a directed graph
// whose reachability determines spliced connectivity (§4.2 of the paper).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/assert.h"

namespace splice {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(NodeId n) : out_(static_cast<std::size_t>(n)) {}

  NodeId node_count() const noexcept {
    return static_cast<NodeId>(out_.size());
  }

  /// Adds arc u -> v. Duplicate arcs are allowed (callers dedup when needed).
  void add_arc(NodeId u, NodeId v) {
    SPLICE_EXPECTS(valid_node(u));
    SPLICE_EXPECTS(valid_node(v));
    out_[static_cast<std::size_t>(u)].push_back(v);
    ++arc_count_;
  }

  /// Adds arc u -> v only if not already present (linear in out-degree;
  /// out-degrees here are bounded by the slice count k, so this is cheap).
  bool add_arc_unique(NodeId u, NodeId v) {
    SPLICE_EXPECTS(valid_node(u));
    SPLICE_EXPECTS(valid_node(v));
    auto& arcs = out_[static_cast<std::size_t>(u)];
    for (NodeId w : arcs) {
      if (w == v) return false;
    }
    arcs.push_back(v);
    ++arc_count_;
    return true;
  }

  std::span<const NodeId> successors(NodeId u) const noexcept {
    SPLICE_EXPECTS(valid_node(u));
    return out_[static_cast<std::size_t>(u)];
  }

  std::size_t arc_count() const noexcept { return arc_count_; }

  bool valid_node(NodeId v) const noexcept {
    return v >= 0 && v < node_count();
  }

 private:
  std::vector<std::vector<NodeId>> out_;
  std::size_t arc_count_ = 0;
};

/// Set of nodes reachable from `source` following arcs forward. Returned as
/// a boolean membership vector indexed by node id.
std::vector<char> reachable_from(const Digraph& g, NodeId source);

/// True iff a directed path source -> target exists.
bool has_directed_path(const Digraph& g, NodeId source, NodeId target);

/// Set of nodes that can reach `target` (reverse reachability).
std::vector<char> can_reach(const Digraph& g, NodeId target);

}  // namespace splice
