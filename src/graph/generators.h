// Synthetic topology generators. Used for the Appendix A scaling experiment
// (slice count vs. graph size) and for property tests that need families of
// graphs with controlled structure. All generators are deterministic given
// the seed.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace splice {

/// G(n, p) Erdős–Rényi random graph; unit weights.
Graph erdos_renyi(NodeId n, double p, std::uint64_t seed);

/// Waxman random graph on uniformly random points in the unit square:
/// P(edge) = alpha * exp(-d / (beta * L_max)). Weights = Euclidean distance
/// scaled to ~[1, 10] (latency-like), mimicking ISP backbone geometry.
Graph waxman(NodeId n, double alpha, double beta, std::uint64_t seed);

/// Barabási–Albert preferential attachment with `m` edges per new node;
/// unit weights. Degree distribution is heavy-tailed like router graphs.
Graph barabasi_albert(NodeId n, int m, std::uint64_t seed);

/// Cycle of n nodes (unit weights). Edge connectivity exactly 2.
Graph ring(NodeId n);

/// rows x cols grid (unit weights).
Graph grid(NodeId rows, NodeId cols);

/// Complete graph on n nodes (unit weights).
Graph complete(NodeId n);

/// Uniform random spanning tree on n nodes (random Prüfer sequence);
/// unit weights. Edge connectivity exactly 1.
Graph random_tree(NodeId n, std::uint64_t seed);

/// The two-disjoint-paths example of the paper's Figure 1: s and t joined
/// by two vertex-disjoint paths of `path_len` intermediate nodes each.
/// Node 0 is s, node 1 is t.
Graph figure1_two_paths(NodeId path_len = 2);

/// Adds uniformly random extra edges until the graph is connected (used to
/// repair sparse random graphs so experiments always run on connected
/// topologies). Returns the number of edges added.
int make_connected(Graph& g, std::uint64_t seed);

}  // namespace splice
