// Bellman–Ford shortest paths. Asymptotically slower than Dijkstra; kept as
// an independent oracle so tests can cross-check Dijkstra (including under
// weight overrides and failed-edge masks) against a second implementation.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace splice {

/// Distances from `source` using Bellman–Ford relaxation. Same override /
/// mask semantics as DijkstraOptions. Weights must be non-negative (the
/// library never produces negative perturbed weights).
std::vector<Weight> bellman_ford_distances(
    const Graph& g, NodeId source,
    std::span<const Weight> weight_override = {},
    std::span<const char> edge_alive = {});

}  // namespace splice
