#include "graph/mincut.h"

#include <algorithm>
#include <vector>

#include "util/assert.h"

namespace splice {

namespace {

/// Stoer–Wagner over an adjacency-matrix copy of the graph. O(n^3) — ample
/// for ISP-scale topologies (tens to hundreds of nodes).
MinCutResult stoer_wagner(const Graph& g, bool unit_weights) {
  const int n = g.node_count();
  SPLICE_EXPECTS(n >= 2);

  std::vector<std::vector<Weight>> w(
      static_cast<std::size_t>(n),
      std::vector<Weight>(static_cast<std::size_t>(n), 0.0));
  for (const Edge& e : g.edges()) {
    const Weight c = unit_weights ? 1.0 : e.weight;
    w[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)] += c;
    w[static_cast<std::size_t>(e.v)][static_cast<std::size_t>(e.u)] += c;
  }

  // vertices[i] holds the set of original nodes merged into super-node i.
  std::vector<std::vector<NodeId>> vertices(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) vertices[static_cast<std::size_t>(i)] = {i};

  std::vector<int> active(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) active[static_cast<std::size_t>(i)] = i;

  MinCutResult best;
  while (active.size() > 1) {
    // Maximum-adjacency ordering.
    std::vector<Weight> conn(static_cast<std::size_t>(n), 0.0);
    std::vector<char> added(static_cast<std::size_t>(n), 0);
    int prev = -1;
    int last = -1;
    for (std::size_t step = 0; step < active.size(); ++step) {
      int pick = -1;
      for (int v : active) {
        if (added[static_cast<std::size_t>(v)]) continue;
        if (pick == -1 ||
            conn[static_cast<std::size_t>(v)] > conn[static_cast<std::size_t>(pick)])
          pick = v;
      }
      // `step` iterates exactly once per not-yet-added active vertex, so a
      // pick always exists; the assert also convinces the compiler.
      SPLICE_ASSERT(pick >= 0 && pick < n);
      added[static_cast<std::size_t>(pick)] = 1;
      prev = last;
      last = pick;
      for (int v : active) {
        if (!added[static_cast<std::size_t>(v)])
          conn[static_cast<std::size_t>(v)] +=
              w[static_cast<std::size_t>(pick)][static_cast<std::size_t>(v)];
      }
    }

    // Cut-of-the-phase: `last` alone against the rest.
    const Weight phase_cut = conn[static_cast<std::size_t>(last)];
    if (phase_cut < best.weight) {
      best.weight = phase_cut;
      best.partition = vertices[static_cast<std::size_t>(last)];
    }

    // Merge `last` into `prev`.
    SPLICE_ASSERT(prev != -1);
    for (int v : active) {
      if (v == last || v == prev) continue;
      w[static_cast<std::size_t>(prev)][static_cast<std::size_t>(v)] +=
          w[static_cast<std::size_t>(last)][static_cast<std::size_t>(v)];
      w[static_cast<std::size_t>(v)][static_cast<std::size_t>(prev)] =
          w[static_cast<std::size_t>(prev)][static_cast<std::size_t>(v)];
    }
    auto& keep = vertices[static_cast<std::size_t>(prev)];
    auto& gone = vertices[static_cast<std::size_t>(last)];
    keep.insert(keep.end(), gone.begin(), gone.end());
    gone.clear();
    active.erase(std::find(active.begin(), active.end(), last));
  }
  return best;
}

}  // namespace

MinCutResult global_min_cut(const Graph& g) { return stoer_wagner(g, false); }

int edge_connectivity(const Graph& g) {
  if (g.node_count() < 2) return 0;
  const MinCutResult r = stoer_wagner(g, true);
  // Unit weights sum to an integer; round defensively against FP drift.
  return static_cast<int>(r.weight + 0.5);
}

}  // namespace splice
