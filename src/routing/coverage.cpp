#include "routing/coverage.h"

#include <set>
#include <utility>

#include "util/assert.h"
#include "util/rng.h"

namespace splice {

namespace {

/// Key of one directed forwarding arc in the union toward a destination.
using ArcKey = std::uint64_t;

ArcKey arc_key(NodeId dst, NodeId from, NodeId to) noexcept {
  return (static_cast<ArcKey>(dst) << 40) |
         (static_cast<ArcKey>(from) << 20) | static_cast<ArcKey>(to);
}

/// Inserts every (dst, from->to) arc of `inst` into `covered`; returns how
/// many were new.
long long add_coverage(const Graph& g, const RoutingInstance& inst,
                       std::set<ArcKey>& covered) {
  long long added = 0;
  for (NodeId dst = 0; dst < g.node_count(); ++dst) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == dst) continue;
      const NodeId nh = inst.next_hop(v, dst);
      if (nh == kInvalidNode) continue;
      added += covered.insert(arc_key(dst, v, nh)).second ? 1 : 0;
    }
  }
  return added;
}

/// Counts how many (dst, arc) pairs of `inst` are NOT yet in `covered`,
/// without mutating it.
long long marginal_coverage(const Graph& g, const RoutingInstance& inst,
                            const std::set<ArcKey>& covered) {
  long long fresh = 0;
  for (NodeId dst = 0; dst < g.node_count(); ++dst) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == dst) continue;
      const NodeId nh = inst.next_hop(v, dst);
      if (nh == kInvalidNode) continue;
      fresh += covered.contains(arc_key(dst, v, nh)) ? 0 : 1;
    }
  }
  return fresh;
}

}  // namespace

std::vector<std::vector<Weight>> choose_coverage_aware_weights(
    const Graph& g, const CoverageSliceConfig& cfg) {
  SPLICE_EXPECTS(cfg.slices >= 1);
  SPLICE_EXPECTS(cfg.candidates_per_slice >= 1);

  std::vector<std::vector<Weight>> chosen;
  chosen.emplace_back();  // slice 0: original weights

  std::set<ArcKey> covered;
  {
    const RoutingInstance base(g, g.weights());
    add_coverage(g, base, covered);
  }

  Rng master(cfg.seed);
  for (SliceId s = 1; s < cfg.slices; ++s) {
    std::vector<Weight> best_weights;
    long long best_gain = -1;
    for (int c = 0; c < cfg.candidates_per_slice; ++c) {
      Rng cand_rng = master.fork(
          static_cast<std::uint64_t>(s) * 1000 + static_cast<std::uint64_t>(c));
      std::vector<Weight> weights =
          perturb_weights(g, cfg.perturbation, cand_rng);
      const RoutingInstance inst(g, weights);
      const long long gain = marginal_coverage(g, inst, covered);
      if (gain > best_gain) {
        best_gain = gain;
        best_weights = std::move(weights);
      }
    }
    SPLICE_ASSERT(!best_weights.empty());
    const RoutingInstance winner(g, best_weights);
    add_coverage(g, winner, covered);
    chosen.push_back(std::move(best_weights));
  }
  return chosen;
}

MultiInstanceRouting build_coverage_aware_control_plane(
    const Graph& g, const CoverageSliceConfig& cfg) {
  return MultiInstanceRouting(g, choose_coverage_aware_weights(g, cfg));
}

long long count_covered_arcs(const Graph& g, const MultiInstanceRouting& mir,
                             SliceId k) {
  SPLICE_EXPECTS(k >= 1 && k <= mir.slice_count());
  std::set<ArcKey> covered;
  long long total = 0;
  for (SliceId s = 0; s < k; ++s) {
    total += add_coverage(g, mir.slice(s), covered);
  }
  return total;
}

}  // namespace splice
