#include "routing/mtr_config.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/assert.h"

namespace splice {

namespace {

/// Interface naming: "<uName>--<vName>" with node ids as fallback for
/// unnamed nodes; stable per edge id.
std::string interface_name(const Graph& g, EdgeId e) {
  const Edge& edge = g.edge(e);
  const std::string u =
      g.name(edge.u).empty() ? "n" + std::to_string(edge.u) : g.name(edge.u);
  const std::string v =
      g.name(edge.v).empty() ? "n" + std::to_string(edge.v) : g.name(edge.v);
  return u + "--" + v;
}

}  // namespace

MtrDeployment extract_mtr_deployment(const Graph& g,
                                     const MultiInstanceRouting& mir,
                                     std::string domain) {
  MtrDeployment d;
  d.router_domain = std::move(domain);
  for (SliceId s = 0; s < mir.slice_count(); ++s) {
    MtrTopology topo;
    topo.slice = s;
    // Slice 0 on original weights maps to the default topology (MT-ID 0).
    const auto w = mir.slice(s).weights();
    bool is_default = true;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (w[static_cast<std::size_t>(e)] != g.edge(e).weight) {
        is_default = false;
        break;
      }
    }
    topo.mt_id = is_default && s == 0 ? 0 : kMtrBaseId + s;
    topo.cost.assign(w.begin(), w.end());
    d.topologies.push_back(std::move(topo));
  }
  return d;
}

std::string render_mtr_config(const Graph& g, const MtrDeployment& d) {
  std::ostringstream out;
  out.precision(17);
  out << "! path-splicing multi-topology deployment\n";
  out << "router-domain " << d.router_domain << "\n";
  for (const MtrTopology& topo : d.topologies) {
    SPLICE_EXPECTS(topo.cost.size() ==
                   static_cast<std::size_t>(g.edge_count()));
    out << "topology slice-" << topo.slice << " mt-id " << topo.mt_id << "\n";
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      out << " interface " << interface_name(g, e) << " cost "
          << topo.cost[static_cast<std::size_t>(e)] << "\n";
    }
  }
  return out.str();
}

MtrDeployment parse_mtr_config(const Graph& g, const std::string& text) {
  MtrDeployment d;
  std::istringstream in(text);
  std::string line;
  MtrTopology* current = nullptr;
  int line_no = 0;

  // Interface-name -> edge-id lookup built once.
  std::vector<std::string> names(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    names[static_cast<std::size_t>(e)] = interface_name(g, e);
  auto edge_of = [&](const std::string& name) -> EdgeId {
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (names[static_cast<std::size_t>(e)] == name) return e;
    }
    return kInvalidEdge;
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '!') continue;
    if (word == "router-domain") {
      ls >> d.router_domain;
      continue;
    }
    if (word == "topology") {
      std::string slice_label;
      std::string mt_kw;
      int mt_id = 0;
      if (!(ls >> slice_label >> mt_kw >> mt_id) || mt_kw != "mt-id" ||
          slice_label.rfind("slice-", 0) != 0) {
        throw std::invalid_argument("bad topology line " +
                                    std::to_string(line_no));
      }
      MtrTopology topo;
      topo.slice =
          static_cast<SliceId>(std::stol(slice_label.substr(6)));
      topo.mt_id = mt_id;
      topo.cost.assign(static_cast<std::size_t>(g.edge_count()), 0.0);
      d.topologies.push_back(std::move(topo));
      current = &d.topologies.back();
      continue;
    }
    if (word == "interface") {
      if (current == nullptr)
        throw std::invalid_argument("interface outside topology at line " +
                                    std::to_string(line_no));
      std::string name;
      std::string cost_kw;
      double cost = 0.0;
      if (!(ls >> name >> cost_kw >> cost) || cost_kw != "cost" ||
          cost <= 0.0) {
        throw std::invalid_argument("bad interface line " +
                                    std::to_string(line_no));
      }
      const EdgeId e = edge_of(name);
      if (e == kInvalidEdge)
        throw std::invalid_argument("unknown interface '" + name +
                                    "' at line " + std::to_string(line_no));
      current->cost[static_cast<std::size_t>(e)] = cost;
      continue;
    }
    throw std::invalid_argument("unknown directive '" + word + "' at line " +
                                std::to_string(line_no));
  }
  // Every topology must cover every interface.
  for (const MtrTopology& topo : d.topologies) {
    for (double c : topo.cost) {
      if (c <= 0.0)
        throw std::invalid_argument("topology slice-" +
                                    std::to_string(topo.slice) +
                                    " is missing interface costs");
    }
  }
  return d;
}

bool deployments_equivalent(const MtrDeployment& a, const MtrDeployment& b) {
  if (a.router_domain != b.router_domain) return false;
  if (a.topologies.size() != b.topologies.size()) return false;
  for (std::size_t i = 0; i < a.topologies.size(); ++i) {
    const MtrTopology& ta = a.topologies[i];
    const MtrTopology& tb = b.topologies[i];
    if (ta.slice != tb.slice || ta.mt_id != tb.mt_id ||
        ta.cost.size() != tb.cost.size())
      return false;
    for (std::size_t e = 0; e < ta.cost.size(); ++e) {
      const double scale = std::max({std::fabs(ta.cost[e]),
                                     std::fabs(tb.cost[e]), 1.0});
      if (std::fabs(ta.cost[e] - tb.cost[e]) > 1e-9 * scale) return false;
    }
  }
  return true;
}

}  // namespace splice
