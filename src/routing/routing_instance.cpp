#include "routing/routing_instance.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"
#include "util/parallel.h"

namespace splice {

RoutingInstance::RoutingInstance(const Graph& g, std::vector<Weight> weights)
    : RoutingInstance(std::make_shared<const CsrGraph>(g), std::move(weights),
                      1) {}

RoutingInstance::RoutingInstance(const Graph& g, std::vector<Weight> weights,
                                 int threads)
    : RoutingInstance(std::make_shared<const CsrGraph>(g), std::move(weights),
                      threads) {}

RoutingInstance::RoutingInstance(std::shared_ptr<const CsrGraph> csr,
                                 std::vector<Weight> weights, DeferBuildTag)
    : n_(csr->node_count()), csr_(std::move(csr)), weights_(std::move(weights)) {
  SPLICE_EXPECTS(weights_.empty() ||
                 weights_.size() ==
                     static_cast<std::size_t>(csr_->edge_count()));
  if (weights_.empty()) weights_ = csr_->weights();
  const auto cells =
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  next_hop_.assign(cells, kInvalidNode);
  next_edge_.assign(cells, kInvalidEdge);
  dist_.assign(cells, kInfiniteWeight);
}

RoutingInstance::RoutingInstance(std::shared_ptr<const CsrGraph> csr,
                                 std::vector<Weight> weights, int threads)
    : RoutingInstance(std::move(csr), std::move(weights), DeferBuildTag{}) {
  build_all(threads);
}

void RoutingInstance::build_all(int threads) {
  const int workers = std::max(1, std::min(threads, static_cast<int>(n_)));
  std::vector<DijkstraWorkspace> ws(static_cast<std::size_t>(workers));
  parallel_for(static_cast<int>(n_), threads, [&](int worker, int dst) {
    build_destination(static_cast<NodeId>(dst),
                      ws[static_cast<std::size_t>(worker)]);
  });
}

void RoutingInstance::build_destination(NodeId dst, DijkstraWorkspace& ws) {
  // Tree rooted at the destination; a node's next hop toward dst is its
  // parent in this tree (weights are symmetric).
  DijkstraOptions opts;
  opts.weight_override = weights_;
  dijkstra_into(*csr_, dst, opts, ws);
  const std::size_t col = index(0, dst);
  std::copy(ws.dist.begin(), ws.dist.end(), dist_.begin() + col);
  std::copy(ws.parent.begin(), ws.parent.end(), next_hop_.begin() + col);
  std::copy(ws.parent_edge.begin(), ws.parent_edge.end(),
            next_edge_.begin() + col);
}

std::vector<NodeId> RoutingInstance::path(NodeId src, NodeId dst) const {
  SPLICE_EXPECTS(src >= 0 && src < n_);
  SPLICE_EXPECTS(dst >= 0 && dst < n_);
  std::vector<NodeId> out;
  NodeId cur = src;
  out.push_back(cur);
  while (cur != dst) {
    cur = next_hop(cur, dst);
    if (cur == kInvalidNode) return {};
    out.push_back(cur);
    // Next-hop chains of a shortest-path tree cannot loop; cap defensively.
    SPLICE_ASSERT(out.size() <= static_cast<std::size_t>(n_));
  }
  return out;
}

Weight RoutingInstance::path_cost_original(const Graph& g, NodeId src,
                                           NodeId dst) const {
  const auto nodes = path(src, dst);
  if (nodes.empty() && src != dst) return kInfiniteWeight;
  Weight cost = 0.0;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const EdgeId e = next_hop_edge(nodes[i], dst);
    SPLICE_ASSERT(e != kInvalidEdge);
    cost += g.edge(e).weight;
  }
  return cost;
}

std::vector<EdgeId> RoutingInstance::tree_edges(NodeId dst) const {
  SPLICE_EXPECTS(dst >= 0 && dst < n_);
  std::vector<EdgeId> out;
  out.reserve(static_cast<std::size_t>(n_));
  for (NodeId v = 0; v < n_; ++v) {
    if (v == dst) continue;
    const EdgeId e = next_hop_edge(v, dst);
    if (e != kInvalidEdge) out.push_back(e);
  }
  return out;
}

void RoutingInstance::set_repair_rebuild_threshold(double fraction) {
  SPLICE_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  rebuild_threshold_ = fraction;
}

// ---------------------------------------------------------------------------
// Incremental SPT repair (Ramalingam–Reps-style dynamic Dijkstra).
//
// Invariant exploited throughout: with deterministic tie-breaking, the
// output of dijkstra() is a pure function of the settled distances — for a
// reached non-root node v, next_hop(v) is the lowest-id neighbor u with
// dist(u) + w(u,v) == dist(v), entered over the lowest-id such edge. So a
// repair only has to (a) fix the distances of nodes the event can affect
// and (b) re-derive parents from distances over the affected region with
// set_canonical_parent(); everything else is provably unchanged and the
// result matches a from-scratch rebuild bit for bit.
// ---------------------------------------------------------------------------

struct RoutingInstance::RepairScratch {
  /// Membership flags, always reset to zero after each tree's repair.
  std::vector<char> flag;
  /// Affected-subtree / renormalization node list.
  std::vector<NodeId> nodes;
  /// Decrease case: nodes whose distance actually changed.
  std::vector<NodeId> touched;
  /// (distance, node) min-heap storage.
  std::vector<std::pair<Weight, NodeId>> heap;

  explicit RepairScratch(NodeId n) : flag(static_cast<std::size_t>(n), 0) {}

  void heap_push(Weight d, NodeId v) {
    heap.emplace_back(d, v);
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  }
  std::pair<Weight, NodeId> heap_pop() {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto top = heap.back();
    heap.pop_back();
    return top;
  }
};

RepairStats RoutingInstance::recompute_edge(EdgeId e, Weight new_weight,
                                            std::vector<char>* touched_dsts) {
  SPLICE_EXPECTS(e >= 0 && e < csr_->edge_count());
  SPLICE_EXPECTS(new_weight >= 0.0);
  SPLICE_EXPECTS(!touched_dsts ||
                 touched_dsts->size() == static_cast<std::size_t>(n_));
  RepairStats stats;
  const Weight old_weight = weights_[static_cast<std::size_t>(e)];
  if (new_weight == old_weight) {
    stats.trees_untouched = n_;
    return stats;
  }
  weights_[static_cast<std::size_t>(e)] = new_weight;

  RepairScratch scratch(n_);
  DijkstraWorkspace ws;
  const bool increase = new_weight > old_weight;
  for (NodeId dst = 0; dst < n_; ++dst) {
    const bool changed =
        increase ? repair_tree_increase(dst, e, scratch, ws, stats)
                 : repair_tree_decrease(dst, e, scratch, stats);
    if (changed && touched_dsts) {
      (*touched_dsts)[static_cast<std::size_t>(dst)] = 1;
    }
  }
  return stats;
}

void RoutingInstance::set_canonical_parent(std::size_t col, NodeId v,
                                           NodeId dst) {
  auto& nh = next_hop_[col + static_cast<std::size_t>(v)];
  auto& ne = next_edge_[col + static_cast<std::size_t>(v)];
  nh = kInvalidNode;
  ne = kInvalidEdge;
  if (v == dst) return;
  const Weight dv = dist_[col + static_cast<std::size_t>(v)];
  if (!(dv < kInfiniteWeight)) return;
  for (const Incidence& inc : csr_->neighbors(v)) {
    const NodeId u = inc.neighbor;
    // Incidence lists are in ascending edge-id order, so the first
    // qualifying incidence per neighbor already has the lowest edge id.
    if (nh != kInvalidNode && u >= nh) continue;
    if (dist_[col + static_cast<std::size_t>(u)] +
            weights_[static_cast<std::size_t>(inc.edge)] ==
        dv) {
      nh = u;
      ne = inc.edge;
    }
  }
  SPLICE_ASSERT(nh != kInvalidNode);
}

bool RoutingInstance::repair_tree_increase(NodeId dst, EdgeId e,
                                           RepairScratch& scratch,
                                           DijkstraWorkspace& ws,
                                           RepairStats& stats) {
  const std::size_t col = index(0, dst);
  const Edge& ed = csr_->edge(e);

  // A weight increase on a non-tree edge cannot shorten anything and its
  // candidates were already losing; the tree is untouched.
  NodeId c = kInvalidNode;
  if (next_edge_[col + static_cast<std::size_t>(ed.u)] == e) {
    c = ed.u;
  } else if (next_edge_[col + static_cast<std::size_t>(ed.v)] == e) {
    c = ed.v;
  }
  if (c == kInvalidNode) {
    ++stats.trees_untouched;
    return false;
  }

  // Collect the affected region: the subtree hanging below the tree edge.
  // Children of x are exactly the neighbors whose next hop is x, so the
  // walk costs O(volume of the subtree), not O(n).
  auto& flag = scratch.flag;
  auto& sub = scratch.nodes;
  sub.clear();
  sub.push_back(c);
  flag[static_cast<std::size_t>(c)] = 1;
  for (std::size_t i = 0; i < sub.size(); ++i) {
    const NodeId x = sub[i];
    for (const Incidence& inc : csr_->neighbors(x)) {
      const NodeId t = inc.neighbor;
      if (flag[static_cast<std::size_t>(t)]) continue;
      if (next_hop_[col + static_cast<std::size_t>(t)] != x) continue;
      flag[static_cast<std::size_t>(t)] = 1;
      sub.push_back(t);
    }
  }

  // Large subtree: a full rooted Dijkstra is cheaper than repairing most of
  // the tree node by node.
  if (static_cast<double>(sub.size()) >
      rebuild_threshold_ * static_cast<double>(n_)) {
    for (const NodeId x : sub) flag[static_cast<std::size_t>(x)] = 0;
    build_destination(dst, ws);
    ++stats.trees_rebuilt;
    stats.nodes_touched += n_;
    return true;
  }

  // Seed every affected node with its best re-attachment through the
  // unaffected frontier, then settle the affected region with a Dijkstra
  // restricted to it. Distances outside the region are provably unchanged.
  for (const NodeId x : sub) {
    dist_[col + static_cast<std::size_t>(x)] = kInfiniteWeight;
  }
  scratch.heap.clear();
  for (const NodeId x : sub) {
    Weight best = kInfiniteWeight;
    for (const Incidence& inc : csr_->neighbors(x)) {
      if (flag[static_cast<std::size_t>(inc.neighbor)]) continue;
      const Weight nd =
          dist_[col + static_cast<std::size_t>(inc.neighbor)] +
          weights_[static_cast<std::size_t>(inc.edge)];
      if (nd < best) best = nd;
    }
    if (best < kInfiniteWeight) {
      dist_[col + static_cast<std::size_t>(x)] = best;
      scratch.heap_push(best, x);
    }
  }
  while (!scratch.heap.empty()) {
    const auto [d, x] = scratch.heap_pop();
    if (d > dist_[col + static_cast<std::size_t>(x)]) continue;  // stale
    for (const Incidence& inc : csr_->neighbors(x)) {
      const NodeId t = inc.neighbor;
      if (!flag[static_cast<std::size_t>(t)]) continue;
      const Weight nd = d + weights_[static_cast<std::size_t>(inc.edge)];
      if (nd < dist_[col + static_cast<std::size_t>(t)]) {
        dist_[col + static_cast<std::size_t>(t)] = nd;
        scratch.heap_push(nd, t);
      }
    }
  }

  for (const NodeId x : sub) set_canonical_parent(col, x, dst);
  for (const NodeId x : sub) flag[static_cast<std::size_t>(x)] = 0;
  ++stats.trees_repaired;
  stats.nodes_touched += static_cast<long long>(sub.size());
  return true;
}

bool RoutingInstance::repair_tree_decrease(NodeId dst, EdgeId e,
                                           RepairScratch& scratch,
                                           RepairStats& stats) {
  const std::size_t col = index(0, dst);
  const Edge& ed = csr_->edge(e);
  const Weight w = weights_[static_cast<std::size_t>(e)];
  const Weight da = dist_[col + static_cast<std::size_t>(ed.u)];
  const Weight db = dist_[col + static_cast<std::size_t>(ed.v)];

  scratch.heap.clear();
  auto& touched = scratch.touched;
  touched.clear();
  // At most one endpoint can improve (w >= 0); improvements then cascade.
  if (da + w < db) {
    dist_[col + static_cast<std::size_t>(ed.v)] = da + w;
    scratch.heap_push(da + w, ed.v);
  } else if (db + w < da) {
    dist_[col + static_cast<std::size_t>(ed.u)] = db + w;
    scratch.heap_push(db + w, ed.u);
  }

  if (scratch.heap.empty()) {
    // No distance changes — but the cheaper edge may create new equal-cost
    // parent candidates at its endpoints, so the endpoints' entries can
    // change even in the "untouched" case. Compare before/after so
    // touched-destination tracking catches exactly those flips.
    const auto iu = col + static_cast<std::size_t>(ed.u);
    const auto iv = col + static_cast<std::size_t>(ed.v);
    const NodeId old_nh_u = next_hop_[iu], old_nh_v = next_hop_[iv];
    const EdgeId old_ne_u = next_edge_[iu], old_ne_v = next_edge_[iv];
    set_canonical_parent(col, ed.u, dst);
    set_canonical_parent(col, ed.v, dst);
    ++stats.trees_untouched;
    return next_hop_[iu] != old_nh_u || next_edge_[iu] != old_ne_u ||
           next_hop_[iv] != old_nh_v || next_edge_[iv] != old_ne_v;
  }

  auto& flag = scratch.flag;
  while (!scratch.heap.empty()) {
    const auto [d, x] = scratch.heap_pop();
    if (d > dist_[col + static_cast<std::size_t>(x)]) continue;  // stale
    if (!flag[static_cast<std::size_t>(x)]) {
      flag[static_cast<std::size_t>(x)] = 1;
      touched.push_back(x);
    }
    for (const Incidence& inc : csr_->neighbors(x)) {
      const NodeId t = inc.neighbor;
      const Weight nd = d + weights_[static_cast<std::size_t>(inc.edge)];
      if (nd < dist_[col + static_cast<std::size_t>(t)]) {
        dist_[col + static_cast<std::size_t>(t)] = nd;
        scratch.heap_push(nd, t);
      }
    }
  }

  // Parents can change wherever an input of the canonical-parent rule
  // changed: the changed nodes, their neighbors, and the edge's endpoints.
  auto& renorm = scratch.nodes;
  renorm.clear();
  for (const NodeId x : touched) renorm.push_back(x);
  auto add = [&](NodeId v) {
    if (!flag[static_cast<std::size_t>(v)]) {
      flag[static_cast<std::size_t>(v)] = 1;
      renorm.push_back(v);
    }
  };
  add(ed.u);
  add(ed.v);
  for (const NodeId x : touched) {
    for (const Incidence& inc : csr_->neighbors(x)) add(inc.neighbor);
  }
  for (const NodeId v : renorm) set_canonical_parent(col, v, dst);
  for (const NodeId v : renorm) flag[static_cast<std::size_t>(v)] = 0;
  ++stats.trees_repaired;
  stats.nodes_touched += static_cast<long long>(renorm.size());
  return true;
}

}  // namespace splice
