#include "routing/routing_instance.h"

#include "util/assert.h"

namespace splice {

RoutingInstance::RoutingInstance(const Graph& g, std::vector<Weight> weights)
    : n_(g.node_count()), weights_(std::move(weights)) {
  SPLICE_EXPECTS(weights_.empty() ||
                 weights_.size() == static_cast<std::size_t>(g.edge_count()));
  if (weights_.empty()) weights_ = g.weights();

  const auto cells = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  next_hop_.assign(cells, kInvalidNode);
  next_edge_.assign(cells, kInvalidEdge);
  dist_.assign(cells, kInfiniteWeight);

  DijkstraOptions opts;
  opts.weight_override = weights_;
  for (NodeId dst = 0; dst < n_; ++dst) {
    // Tree rooted at the destination; a node's next hop toward dst is its
    // parent in this tree (weights are symmetric).
    const ShortestPaths sp = dijkstra(g, dst, opts);
    for (NodeId v = 0; v < n_; ++v) {
      const std::size_t cell = index(v, dst);
      dist_[cell] = sp.dist[static_cast<std::size_t>(v)];
      if (v != dst && sp.reached(v)) {
        next_hop_[cell] = sp.parent[static_cast<std::size_t>(v)];
        next_edge_[cell] = sp.parent_edge[static_cast<std::size_t>(v)];
      }
    }
  }
}

std::vector<NodeId> RoutingInstance::path(NodeId src, NodeId dst) const {
  SPLICE_EXPECTS(src >= 0 && src < n_);
  SPLICE_EXPECTS(dst >= 0 && dst < n_);
  std::vector<NodeId> out;
  NodeId cur = src;
  out.push_back(cur);
  while (cur != dst) {
    cur = next_hop(cur, dst);
    if (cur == kInvalidNode) return {};
    out.push_back(cur);
    // Next-hop chains of a shortest-path tree cannot loop; cap defensively.
    SPLICE_ASSERT(out.size() <= static_cast<std::size_t>(n_));
  }
  return out;
}

Weight RoutingInstance::path_cost_original(const Graph& g, NodeId src,
                                           NodeId dst) const {
  const auto nodes = path(src, dst);
  if (nodes.empty() && src != dst) return kInfiniteWeight;
  Weight cost = 0.0;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const EdgeId e = next_hop_edge(nodes[i], dst);
    SPLICE_ASSERT(e != kInvalidEdge);
    cost += g.edge(e).weight;
  }
  return cost;
}

std::vector<EdgeId> RoutingInstance::tree_edges(NodeId dst) const {
  SPLICE_EXPECTS(dst >= 0 && dst < n_);
  std::vector<EdgeId> out;
  out.reserve(static_cast<std::size_t>(n_));
  for (NodeId v = 0; v < n_; ++v) {
    if (v == dst) continue;
    const EdgeId e = next_hop_edge(v, dst);
    if (e != kInvalidEdge) out.push_back(e);
  }
  return out;
}

}  // namespace splice
