// One routing-protocol instance ("slice", §3.1.2): a link-state process
// that computes, for a fixed weight assignment over the shared topology, a
// shortest-path tree toward every destination, and exposes the resulting
// next hops — i.e. the contents of one forwarding table.
//
// Link weights are symmetric, so the tree toward destination t is obtained
// from a single Dijkstra rooted at t; next_hop(v, t) is v's parent-direction
// neighbor in that tree.
#pragma once

#include <span>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace splice {

class RoutingInstance {
 public:
  /// Computes all shortest-path trees eagerly (n Dijkstra runs).
  /// `weights` is indexed by edge id; empty means graph weights.
  RoutingInstance(const Graph& g, std::vector<Weight> weights);

  NodeId node_count() const noexcept { return n_; }

  /// Next hop of `node` toward `dst` (kInvalidNode when node == dst or dst
  /// unreachable in this slice).
  NodeId next_hop(NodeId node, NodeId dst) const noexcept {
    return next_hop_[index(node, dst)];
  }

  /// Underlying edge used for that next hop (kInvalidEdge as above).
  EdgeId next_hop_edge(NodeId node, NodeId dst) const noexcept {
    return next_edge_[index(node, dst)];
  }

  /// Distance from `node` to `dst` under this slice's perturbed weights.
  Weight distance(NodeId node, NodeId dst) const noexcept {
    return dist_[index(node, dst)];
  }

  /// The perturbed weight vector this slice routes on.
  std::span<const Weight> weights() const noexcept { return weights_; }

  /// Path node sequence src..dst following next hops (empty if unreachable).
  std::vector<NodeId> path(NodeId src, NodeId dst) const;

  /// Path length under the *original* graph weights (the paper's stretch
  /// numerator); kInfiniteWeight if unreachable.
  Weight path_cost_original(const Graph& g, NodeId src, NodeId dst) const;

  /// Edge ids of the tree toward `dst` (up to n-1 edges).
  std::vector<EdgeId> tree_edges(NodeId dst) const;

 private:
  std::size_t index(NodeId node, NodeId dst) const noexcept {
    SPLICE_EXPECTS(node >= 0 && node < n_);
    SPLICE_EXPECTS(dst >= 0 && dst < n_);
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  NodeId n_ = 0;
  std::vector<Weight> weights_;
  // Flattened [node][dst] tables.
  std::vector<NodeId> next_hop_;
  std::vector<EdgeId> next_edge_;
  std::vector<Weight> dist_;
};

}  // namespace splice
