// One routing-protocol instance ("slice", §3.1.2): a link-state process
// that computes, for a fixed weight assignment over the shared topology, a
// shortest-path tree toward every destination, and exposes the resulting
// next hops — i.e. the contents of one forwarding table.
//
// Link weights are symmetric, so the tree toward destination t is obtained
// from a single Dijkstra rooted at t; next_hop(v, t) is v's parent-direction
// neighbor in that tree.
//
// Performance notes:
//  * The instance snapshots the topology into a flat CsrGraph (shared across
//    slices when built by MultiInstanceRouting) and runs all SPT builds
//    through dijkstra_into() with reusable workspaces — no per-destination
//    allocation.
//  * Tables are destination-major: each destination's column is contiguous,
//    so per-tree construction and incremental repair touch consecutive
//    memory.
//  * recompute_edge() applies a single link event (weight change or death)
//    with Ramalingam–Reps-style incremental SPT repair per destination,
//    falling back to a full per-destination rebuild when the affected
//    subtree is large. Results are bit-identical to a from-scratch build.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace splice {

/// Telemetry from one recompute_edge() call, summed across destinations
/// (and, at the MultiInstanceRouting level, across slices).
struct RepairStats {
  /// Destination trees the event provably did not change.
  long long trees_untouched = 0;
  /// Trees repaired incrementally (only the affected region recomputed).
  long long trees_repaired = 0;
  /// Trees whose affected subtree exceeded the rebuild threshold and were
  /// recomputed with a full Dijkstra.
  long long trees_rebuilt = 0;
  /// Total table slots recomputed (nodes across all touched trees).
  long long nodes_touched = 0;

  void add(const RepairStats& o) noexcept {
    trees_untouched += o.trees_untouched;
    trees_repaired += o.trees_repaired;
    trees_rebuilt += o.trees_rebuilt;
    nodes_touched += o.nodes_touched;
  }
};

class RoutingInstance {
 public:
  /// Computes all shortest-path trees eagerly (n Dijkstra runs).
  /// `weights` is indexed by edge id; empty means graph weights.
  RoutingInstance(const Graph& g, std::vector<Weight> weights);

  /// Same, but the n per-destination builds run across `threads` workers
  /// (threads <= 1 ⇒ sequential; results are identical either way).
  RoutingInstance(const Graph& g, std::vector<Weight> weights, int threads);

  /// Builds over an existing topology snapshot (shared across the slices of
  /// one control plane).
  RoutingInstance(std::shared_ptr<const CsrGraph> csr,
                  std::vector<Weight> weights, int threads);

  NodeId node_count() const noexcept { return n_; }

  /// Next hop of `node` toward `dst` (kInvalidNode when node == dst or dst
  /// unreachable in this slice).
  NodeId next_hop(NodeId node, NodeId dst) const noexcept {
    return next_hop_[index(node, dst)];
  }

  /// Underlying edge used for that next hop (kInvalidEdge as above).
  EdgeId next_hop_edge(NodeId node, NodeId dst) const noexcept {
    return next_edge_[index(node, dst)];
  }

  /// Distance from `node` to `dst` under this slice's perturbed weights.
  Weight distance(NodeId node, NodeId dst) const noexcept {
    return dist_[index(node, dst)];
  }

  /// The perturbed weight vector this slice routes on.
  std::span<const Weight> weights() const noexcept { return weights_; }

  /// The shared topology snapshot this slice routes over.
  const CsrGraph& topology() const noexcept { return *csr_; }

  /// Path node sequence src..dst following next hops (empty if unreachable).
  std::vector<NodeId> path(NodeId src, NodeId dst) const;

  /// Path length under the *original* graph weights (the paper's stretch
  /// numerator); kInfiniteWeight if unreachable.
  Weight path_cost_original(const Graph& g, NodeId src, NodeId dst) const;

  /// Edge ids of the tree toward `dst` (up to n-1 edges).
  std::vector<EdgeId> tree_edges(NodeId dst) const;

  /// Applies one link event — edge `e` takes weight `new_weight`, where
  /// kInfiniteWeight (or any weight no path can afford) means the link is
  /// dead — and repairs every destination tree incrementally: only nodes in
  /// the affected region are recomputed. Falls back to a full per-tree
  /// Dijkstra when the affected subtree exceeds repair_rebuild_threshold()
  /// of the nodes. The repaired tables (next hops, next-hop edges and
  /// distances, including the deterministic tie-breaking rule) are
  /// bit-identical to rebuilding the instance from scratch with the updated
  /// weight vector.
  ///
  /// When `touched_dsts` is non-null it must have node_count() entries; the
  /// repair sets touched_dsts[dst] = 1 for every destination whose table
  /// column (next hop or next-hop edge anywhere in the column) may have
  /// changed, and leaves other entries alone (callers union across slices).
  /// The set is conservative but tight enough to drive incremental FIB
  /// republication: a destination left unmarked is guaranteed unchanged.
  RepairStats recompute_edge(EdgeId e, Weight new_weight,
                             std::vector<char>* touched_dsts = nullptr);

  /// Affected-subtree fraction above which recompute_edge() rebuilds a
  /// destination tree from scratch instead of repairing it.
  double repair_rebuild_threshold() const noexcept {
    return rebuild_threshold_;
  }
  void set_repair_rebuild_threshold(double fraction);

 private:
  friend class MultiInstanceRouting;

  struct DeferBuildTag {};
  /// Allocates tables without computing them; MultiInstanceRouting fills
  /// them via build_destination() from its own (slice × destination)
  /// parallel loop.
  RoutingInstance(std::shared_ptr<const CsrGraph> csr,
                  std::vector<Weight> weights, DeferBuildTag);

  void build_all(int threads);
  /// Runs one rooted Dijkstra and installs the destination's column.
  void build_destination(NodeId dst, DijkstraWorkspace& ws);

  /// Scratch buffers shared by the per-destination repairs of one event.
  /// The repair helpers return true when the destination's column may have
  /// changed (false ⇒ provably bit-identical to before the event).
  struct RepairScratch;
  bool repair_tree_increase(NodeId dst, EdgeId e, RepairScratch& scratch,
                            DijkstraWorkspace& ws, RepairStats& stats);
  bool repair_tree_decrease(NodeId dst, EdgeId e, RepairScratch& scratch,
                            RepairStats& stats);
  /// Recomputes next_hop/next_edge for `v` toward `dst` from the settled
  /// distance tables, applying the same deterministic tie-breaking rule as
  /// dijkstra() (lowest parent id, then lowest edge id).
  void set_canonical_parent(std::size_t col, NodeId v, NodeId dst);

  std::size_t index(NodeId node, NodeId dst) const noexcept {
    SPLICE_EXPECTS(node >= 0 && node < n_);
    SPLICE_EXPECTS(dst >= 0 && dst < n_);
    // Destination-major: column `dst` is contiguous.
    return static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(node);
  }

  NodeId n_ = 0;
  std::shared_ptr<const CsrGraph> csr_;
  std::vector<Weight> weights_;
  // Flattened [dst][node] tables (see index()).
  std::vector<NodeId> next_hop_;
  std::vector<EdgeId> next_edge_;
  std::vector<Weight> dist_;
  double rebuild_threshold_ = 0.25;
};

}  // namespace splice
