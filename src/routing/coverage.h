// Coverage-aware slice construction (§5 "alternate slicing mechanisms").
//
// "We expect that path splicing might perform even better if each slice
// were configured with some consideration of the edges in the underlying
// graph that were already covered by other slices."
//
// This module implements that idea as a greedy candidate search: slice 0
// routes on the original weights; each subsequent slice draws several
// independent perturbation candidates and keeps the one that adds the most
// *new* forwarding arcs to the per-destination spliced unions — i.e. the
// candidate with the least overlap with everything already deployed. The
// result plugs into MultiInstanceRouting like any other weight assignment,
// so every analyzer, data plane and experiment runs unchanged on top.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/multi_instance.h"
#include "routing/perturbation.h"

namespace splice {

struct CoverageSliceConfig {
  SliceId slices = 5;
  /// Perturbation candidates drawn per slice; the best-covering one wins.
  int candidates_per_slice = 8;
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::uint64_t seed = 1;
};

/// Chooses the per-slice weight vectors greedily by marginal coverage.
/// Element 0 is empty (original weights); elements 1..k-1 are the chosen
/// perturbed vectors. Feed the result to MultiInstanceRouting.
std::vector<std::vector<Weight>> choose_coverage_aware_weights(
    const Graph& g, const CoverageSliceConfig& cfg);

/// Convenience: the fully built control plane.
MultiInstanceRouting build_coverage_aware_control_plane(
    const Graph& g, const CoverageSliceConfig& cfg);

/// Diagnostic: the number of distinct (destination, forwarding-arc) pairs
/// covered by the union of the given instances' trees — the quantity the
/// greedy search maximizes marginally.
long long count_covered_arcs(const Graph& g, const MultiInstanceRouting& mir,
                             SliceId k);

}  // namespace splice
