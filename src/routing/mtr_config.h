// Multi-topology-routing deployment rendering (§3.1.2).
//
// "Cisco routers already support multi-topology routing [RFC 4915] ...
// Multi-topology routing provides much of the control-plane function that
// would be needed to support path splicing in practice."
//
// This module turns a splicing control plane into the per-router
// configuration an operator would push: one routing topology per slice
// (MT-ID), with that slice's perturbed cost on every interface. The format
// is a vendor-neutral, line-oriented config that round-trips through the
// parser below, so configurations can be generated, audited, diffed and
// re-ingested by tooling.
//
//   topology slice-3 mt-id 35
//    interface Atlanta--Chicago cost 9.42
//    ...
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "routing/multi_instance.h"

namespace splice {

/// Per-slice rendered topology configuration.
struct MtrTopology {
  SliceId slice = 0;
  int mt_id = 0;  ///< RFC 4915 MT-ID carried in the IGP
  /// cost[e] = this topology's cost for edge e (indexed by edge id).
  std::vector<Weight> cost;
};

struct MtrDeployment {
  std::string router_domain;  ///< free-form label, e.g. topology name
  std::vector<MtrTopology> topologies;
};

/// Base MT-ID for generated slices. MT-ID 0 is the standard topology;
/// RFC 4915 reserves 1-31, so generated slices start above that range.
inline constexpr int kMtrBaseId = 32;

/// Extracts the deployment from a built control plane: topology i carries
/// slice i's weight vector and MT-ID kMtrBaseId + i (slice 0, when
/// unperturbed, is rendered as MT-ID 0 — the default topology).
MtrDeployment extract_mtr_deployment(const Graph& g,
                                     const MultiInstanceRouting& mir,
                                     std::string domain = "splice");

/// Renders the deployment as the line-oriented config text.
std::string render_mtr_config(const Graph& g, const MtrDeployment& d);

/// Parses config text back into a deployment (interface names must match
/// the graph's node names). Throws std::invalid_argument on malformed
/// input or unknown interfaces.
MtrDeployment parse_mtr_config(const Graph& g, const std::string& text);

/// Structural equality check used by audit tooling (costs compared within
/// 1e-9 relative tolerance).
bool deployments_equivalent(const MtrDeployment& a, const MtrDeployment& b);

}  // namespace splice
