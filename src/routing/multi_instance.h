// The path-splicing control plane (§3.1): k routing-protocol instances over
// one topology, each with its own perturbed link weights, materialized into
// a FibSet the data plane can forward on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/fib.h"
#include "routing/perturbation.h"
#include "routing/routing_instance.h"

namespace splice {

struct ControlPlaneConfig {
  /// Number of slices k (>= 1).
  SliceId slices = 2;
  PerturbationConfig perturbation;
  /// Seed for all weight perturbations (slice i uses an independent stream
  /// forked from this).
  std::uint64_t seed = 1;
  /// When false (default, matching the paper's evaluation), slice 0 routes
  /// on the *original* weights so that k=1 is "normal" shortest-path
  /// routing; perturbed slices start at index 1.
  bool perturb_first_slice = false;
};

/// Builds and owns the k routing instances.
class MultiInstanceRouting {
 public:
  MultiInstanceRouting(const Graph& g, const ControlPlaneConfig& cfg);

  /// Builds from explicit per-slice weight vectors (each indexed by edge
  /// id; an empty vector means the graph's original weights). Used by
  /// alternate slicing mechanisms (§5) that choose weights deliberately
  /// rather than by independent random perturbation.
  MultiInstanceRouting(const Graph& g,
                       std::vector<std::vector<Weight>> slice_weights);

  SliceId slice_count() const noexcept {
    return static_cast<SliceId>(instances_.size());
  }

  const RoutingInstance& slice(SliceId s) const noexcept {
    SPLICE_EXPECTS(s >= 0 && s < slice_count());
    return instances_[static_cast<std::size_t>(s)];
  }

  const ControlPlaneConfig& config() const noexcept { return cfg_; }

  /// Flattens every slice's next hops into forwarding tables.
  FibSet build_fibs() const;

 private:
  ControlPlaneConfig cfg_;
  std::vector<RoutingInstance> instances_;
};

}  // namespace splice
