// The path-splicing control plane (§3.1): k routing-protocol instances over
// one topology, each with its own perturbed link weights, materialized into
// a FibSet the data plane can forward on.
//
// Construction is parallelized across (slice, destination) work items: the
// topology is snapshotted once into a shared CsrGraph, per-slice weight
// vectors are drawn sequentially from the seeded RNG (so the weights never
// depend on the thread count), and then every destination's SPT — a fully
// independent rooted Dijkstra writing to its own table column — is built by
// a worker pool. FIBs are bit-identical for every `threads` value.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "routing/fib.h"
#include "routing/perturbation.h"
#include "routing/routing_instance.h"

namespace splice {

struct ControlPlaneConfig {
  /// Number of slices k (>= 1).
  SliceId slices = 2;
  PerturbationConfig perturbation;
  /// Seed for all weight perturbations (slice i uses an independent stream
  /// forked from this).
  std::uint64_t seed = 1;
  /// When false (default, matching the paper's evaluation), slice 0 routes
  /// on the *original* weights so that k=1 is "normal" shortest-path
  /// routing; perturbed slices start at index 1.
  bool perturb_first_slice = false;
  /// Worker threads for SPT construction and repair; 0 (default) resolves
  /// to default_thread_count(). Results are identical for every value.
  int threads = 0;
};

/// Builds and owns the k routing instances.
class MultiInstanceRouting {
 public:
  MultiInstanceRouting(const Graph& g, const ControlPlaneConfig& cfg);

  /// Builds from explicit per-slice weight vectors (each indexed by edge
  /// id; an empty vector means the graph's original weights). Used by
  /// alternate slicing mechanisms (§5) that choose weights deliberately
  /// rather than by independent random perturbation. `threads` as in
  /// ControlPlaneConfig::threads.
  MultiInstanceRouting(const Graph& g,
                       std::vector<std::vector<Weight>> slice_weights,
                       int threads = 0);

  SliceId slice_count() const noexcept {
    return static_cast<SliceId>(instances_.size());
  }

  const RoutingInstance& slice(SliceId s) const noexcept {
    SPLICE_EXPECTS(s >= 0 && s < slice_count());
    return instances_[static_cast<std::size_t>(s)];
  }

  const ControlPlaneConfig& config() const noexcept { return cfg_; }

  /// Flattens every slice's next hops into forwarding tables.
  FibSet build_fibs() const;

  /// Rewrites destination `dst`'s column in every slice of an existing
  /// FibSet from the current routing state (including the (dst, dst)
  /// identity cell, reset to the invalid entry exactly as build_fibs()
  /// leaves it). After a repair that touched only a few destinations this
  /// patches k·n entries per destination instead of rebuilding k·n² — the
  /// incremental-republication path of the live publisher. `fibs` must have
  /// this control plane's geometry.
  void patch_destination(FibSet& fibs, NodeId dst) const;

  /// patch_destination() for every dst with touched_dsts[dst] != 0.
  /// Returns the number of destinations patched.
  int patch_fibs(FibSet& fibs, std::span<const char> touched_dsts) const;

  /// Applies one link event to every slice — edge `e` takes `new_weight`,
  /// kInfiniteWeight (or an inflated sentinel) meaning the link died — and
  /// returns the reconverged control plane, repairing each slice's SPTs
  /// incrementally instead of rebuilding k × n trees from scratch. The
  /// result is bit-identical to rebuilding with the updated weight vectors.
  /// Aggregated repair telemetry lands in `stats` when non-null.
  MultiInstanceRouting with_edge_event(EdgeId e, Weight new_weight,
                                       RepairStats* stats = nullptr) const;

  /// In-place variant of with_edge_event(). When `touched_dsts` is
  /// non-null (node_count() entries) the repair ORs in a 1 for every
  /// destination whose FIB column may differ in ANY slice — the exact set
  /// patch_fibs() needs to republish incrementally (see
  /// RoutingInstance::recompute_edge).
  RepairStats apply_edge_event(EdgeId e, Weight new_weight,
                               std::vector<char>* touched_dsts = nullptr);

  /// Per-slice-weight variant: slice s takes per_slice_weight[s] for edge
  /// `e`. This is how a repaired link comes back with its original
  /// *perturbed* weights — a uniform apply_edge_event() cannot express a
  /// restore, because every slice routes on its own draw.
  RepairStats apply_edge_weights(EdgeId e,
                                 std::span<const Weight> per_slice_weight,
                                 std::vector<char>* touched_dsts = nullptr);

 private:
  void build_instances(int threads);

  ControlPlaneConfig cfg_;
  std::vector<RoutingInstance> instances_;
};

}  // namespace splice
