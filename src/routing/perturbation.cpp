#include "routing/perturbation.h"

#include <algorithm>
#include <stdexcept>

#include "util/assert.h"

namespace splice {

PerturbationKind parse_perturbation_kind(const std::string& name) {
  if (name == "none") return PerturbationKind::kNone;
  if (name == "uniform") return PerturbationKind::kUniform;
  if (name == "degree" || name == "degree-based")
    return PerturbationKind::kDegreeBased;
  throw std::invalid_argument("unknown perturbation kind: " + name);
}

std::string to_string(PerturbationKind kind) {
  switch (kind) {
    case PerturbationKind::kNone:
      return "none";
    case PerturbationKind::kUniform:
      return "uniform";
    case PerturbationKind::kDegreeBased:
      return "degree";
  }
  return "?";
}

std::vector<double> perturbation_multipliers(const Graph& g,
                                             const PerturbationConfig& cfg) {
  const auto m = static_cast<std::size_t>(g.edge_count());
  std::vector<double> mult(m, 0.0);
  switch (cfg.kind) {
    case PerturbationKind::kNone:
      break;
    case PerturbationKind::kUniform:
      std::fill(mult.begin(), mult.end(), cfg.b);
      break;
    case PerturbationKind::kDegreeBased: {
      // f_ab: linear in degree(i)+degree(j), normalized over the observed
      // degree-sum range so the multipliers span exactly [a, b].
      int min_sum = 0;
      int max_sum = 0;
      bool first = true;
      std::vector<int> sums(m, 0);
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        const Edge& edge = g.edge(e);
        const int s = g.degree(edge.u) + g.degree(edge.v);
        sums[static_cast<std::size_t>(e)] = s;
        if (first || s < min_sum) min_sum = s;
        if (first || s > max_sum) max_sum = s;
        first = false;
      }
      for (std::size_t e = 0; e < m; ++e) {
        const double t =
            max_sum == min_sum
                ? 0.5
                : static_cast<double>(sums[e] - min_sum) /
                      static_cast<double>(max_sum - min_sum);
        mult[e] = cfg.a + (cfg.b - cfg.a) * t;
      }
      break;
    }
  }
  return mult;
}

std::vector<Weight> perturb_weights(const Graph& g,
                                    const PerturbationConfig& cfg, Rng& rng) {
  SPLICE_EXPECTS(cfg.a >= 0.0);
  SPLICE_EXPECTS(cfg.b >= cfg.a);
  const auto mult = perturbation_multipliers(g, cfg);
  std::vector<Weight> out(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Weight l = g.edge(e).weight;
    const double w = mult[static_cast<std::size_t>(e)];
    out[static_cast<std::size_t>(e)] = l + w * rng.uniform(0.0, l);
  }
  return out;
}

std::vector<Weight> perturb_weights_signed(const Graph& g, double c, Rng& rng) {
  SPLICE_EXPECTS(c >= 0.0 && c < 1.0);
  std::vector<Weight> out(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Weight l = g.edge(e).weight;
    out[static_cast<std::size_t>(e)] = l + rng.uniform(-c * l, c * l);
    SPLICE_ENSURES(out[static_cast<std::size_t>(e)] > 0.0);
  }
  return out;
}

}  // namespace splice
