#include "routing/multi_instance.h"

#include "util/assert.h"
#include "util/rng.h"

namespace splice {

MultiInstanceRouting::MultiInstanceRouting(const Graph& g,
                                           const ControlPlaneConfig& cfg)
    : cfg_(cfg) {
  SPLICE_EXPECTS(cfg.slices >= 1);
  instances_.reserve(static_cast<std::size_t>(cfg.slices));
  Rng master(cfg.seed);
  for (SliceId s = 0; s < cfg.slices; ++s) {
    Rng slice_rng = master.fork(static_cast<std::uint64_t>(s));
    const bool plain = s == 0 && !cfg.perturb_first_slice;
    std::vector<Weight> weights =
        plain ? g.weights() : perturb_weights(g, cfg.perturbation, slice_rng);
    instances_.emplace_back(g, std::move(weights));
  }
}

MultiInstanceRouting::MultiInstanceRouting(
    const Graph& g, std::vector<std::vector<Weight>> slice_weights) {
  SPLICE_EXPECTS(!slice_weights.empty());
  cfg_.slices = static_cast<SliceId>(slice_weights.size());
  instances_.reserve(slice_weights.size());
  for (auto& weights : slice_weights) {
    instances_.emplace_back(g, std::move(weights));
  }
}

FibSet MultiInstanceRouting::build_fibs() const {
  SPLICE_EXPECTS(!instances_.empty());
  const NodeId n = instances_.front().node_count();
  FibSet fibs(slice_count(), n);
  for (SliceId s = 0; s < slice_count(); ++s) {
    const RoutingInstance& inst = slice(s);
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (v == dst) continue;
        fibs.set(s, v, dst,
                 FibEntry{inst.next_hop(v, dst), inst.next_hop_edge(v, dst)});
      }
    }
  }
  return fibs;
}

}  // namespace splice
