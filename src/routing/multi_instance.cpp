#include "routing/multi_instance.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/assert.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace splice {

namespace {

int resolve_threads(int threads) {
  return threads > 0 ? threads : default_thread_count();
}

}  // namespace

MultiInstanceRouting::MultiInstanceRouting(const Graph& g,
                                           const ControlPlaneConfig& cfg)
    : cfg_(cfg) {
  SPLICE_EXPECTS(cfg.slices >= 1);
  const auto csr = std::make_shared<const CsrGraph>(g);
  instances_.reserve(static_cast<std::size_t>(cfg.slices));
  // Weight draws stay sequential and seed-derived, independent of threads.
  Rng master(cfg.seed);
  for (SliceId s = 0; s < cfg.slices; ++s) {
    Rng slice_rng = master.fork(static_cast<std::uint64_t>(s));
    const bool plain = s == 0 && !cfg.perturb_first_slice;
    std::vector<Weight> weights =
        plain ? g.weights() : perturb_weights(g, cfg.perturbation, slice_rng);
    instances_.push_back(RoutingInstance(csr, std::move(weights),
                                         RoutingInstance::DeferBuildTag{}));
  }
  build_instances(resolve_threads(cfg.threads));
}

MultiInstanceRouting::MultiInstanceRouting(
    const Graph& g, std::vector<std::vector<Weight>> slice_weights,
    int threads) {
  SPLICE_EXPECTS(!slice_weights.empty());
  cfg_.slices = static_cast<SliceId>(slice_weights.size());
  cfg_.threads = threads;
  const auto csr = std::make_shared<const CsrGraph>(g);
  instances_.reserve(slice_weights.size());
  for (auto& weights : slice_weights) {
    instances_.push_back(RoutingInstance(csr, std::move(weights),
                                         RoutingInstance::DeferBuildTag{}));
  }
  build_instances(resolve_threads(threads));
}

void MultiInstanceRouting::build_instances(int threads) {
  SPLICE_OBS_SPAN("control.build_slices");
  const int n = static_cast<int>(instances_.front().node_count());
  const int slices = static_cast<int>(instances_.size());
  const int jobs = slices * n;
  if (n == 0) return;
  SPLICE_OBS_COUNT("control.spt_builds", jobs);
  const int workers = std::max(1, std::min(threads, jobs));
  std::vector<DijkstraWorkspace> ws(static_cast<std::size_t>(workers));
  // Each (slice, destination) item writes only its own table column, so the
  // result is byte-identical for every worker count.
  parallel_for(jobs, threads, [&](int worker, int job) {
    instances_[static_cast<std::size_t>(job / n)].build_destination(
        static_cast<NodeId>(job % n), ws[static_cast<std::size_t>(worker)]);
  });
}

FibSet MultiInstanceRouting::build_fibs() const {
  SPLICE_OBS_SPAN("control.build_fibs");
  SPLICE_EXPECTS(!instances_.empty());
  const NodeId n = instances_.front().node_count();
  FibSet fibs(slice_count(), n);
  for (SliceId s = 0; s < slice_count(); ++s) {
    const RoutingInstance& inst = slice(s);
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (v == dst) continue;
        fibs.set(s, v, dst,
                 FibEntry{inst.next_hop(v, dst), inst.next_hop_edge(v, dst)});
      }
    }
  }
  return fibs;
}

void MultiInstanceRouting::patch_destination(FibSet& fibs, NodeId dst) const {
  SPLICE_EXPECTS(!instances_.empty());
  const NodeId n = instances_.front().node_count();
  SPLICE_EXPECTS(fibs.slice_count() == slice_count());
  SPLICE_EXPECTS(fibs.node_count() == n);
  SPLICE_EXPECTS(dst >= 0 && dst < n);
  for (SliceId s = 0; s < slice_count(); ++s) {
    const RoutingInstance& inst = slice(s);
    for (NodeId v = 0; v < n; ++v) {
      fibs.set(s, v, dst,
               v == dst ? FibEntry{}
                        : FibEntry{inst.next_hop(v, dst),
                                   inst.next_hop_edge(v, dst)});
    }
  }
}

int MultiInstanceRouting::patch_fibs(FibSet& fibs,
                                     std::span<const char> touched_dsts) const {
  SPLICE_EXPECTS(!instances_.empty());
  const NodeId n = instances_.front().node_count();
  SPLICE_EXPECTS(touched_dsts.size() == static_cast<std::size_t>(n));
  int patched = 0;
  for (NodeId dst = 0; dst < n; ++dst) {
    if (!touched_dsts[static_cast<std::size_t>(dst)]) continue;
    patch_destination(fibs, dst);
    ++patched;
  }
  return patched;
}

RepairStats MultiInstanceRouting::apply_edge_event(
    EdgeId e, Weight new_weight, std::vector<char>* touched_dsts) {
  const std::vector<Weight> uniform(instances_.size(), new_weight);
  return apply_edge_weights(e, uniform, touched_dsts);
}

RepairStats MultiInstanceRouting::apply_edge_weights(
    EdgeId e, std::span<const Weight> per_slice_weight,
    std::vector<char>* touched_dsts) {
  SPLICE_OBS_SPAN("control.repair_event");
  const int slices = static_cast<int>(instances_.size());
  SPLICE_EXPECTS(per_slice_weight.size() == static_cast<std::size_t>(slices));
  const auto n = static_cast<std::size_t>(instances_.front().node_count());
  SPLICE_EXPECTS(!touched_dsts || touched_dsts->size() == n);
  std::vector<RepairStats> per_slice(static_cast<std::size_t>(slices));
  // Slices are independent; repairs write only their own instance. Touched
  // bitmaps are per-slice too (concurrent writes to one shared byte array
  // would race) and unioned sequentially below.
  std::vector<std::vector<char>> per_slice_touched;
  if (touched_dsts) {
    per_slice_touched.assign(static_cast<std::size_t>(slices),
                             std::vector<char>(n, 0));
  }
  parallel_for(slices, resolve_threads(cfg_.threads), [&](int, int s) {
    const auto si = static_cast<std::size_t>(s);
    per_slice[si] = instances_[si].recompute_edge(
        e, per_slice_weight[si],
        touched_dsts ? &per_slice_touched[si] : nullptr);
  });
  if (touched_dsts) {
    for (const auto& t : per_slice_touched) {
      for (std::size_t i = 0; i < n; ++i) {
        if (t[i]) (*touched_dsts)[i] = 1;
      }
    }
  }
  RepairStats total;
  for (const RepairStats& st : per_slice) total.add(st);
  SPLICE_OBS_COUNT("control.repair.events", 1);
  SPLICE_OBS_COUNT("control.repair.trees_untouched", total.trees_untouched);
  SPLICE_OBS_COUNT("control.repair.trees_repaired", total.trees_repaired);
  SPLICE_OBS_COUNT("control.repair.trees_rebuilt", total.trees_rebuilt);
  SPLICE_OBS_COUNT("control.repair.nodes_touched", total.nodes_touched);
#if SPLICE_OBS
  if (obs::FlightRecorder::enabled()) {
    obs::FlightRecorder::global().spt_repair(
        static_cast<std::uint32_t>(e),
        static_cast<std::uint32_t>(total.trees_repaired),
        static_cast<std::uint32_t>(total.trees_rebuilt),
        static_cast<std::uint32_t>(total.nodes_touched),
        static_cast<std::uint16_t>(total.trees_untouched));
  }
#endif
  return total;
}

MultiInstanceRouting MultiInstanceRouting::with_edge_event(
    EdgeId e, Weight new_weight, RepairStats* stats) const {
  MultiInstanceRouting out(*this);
  const RepairStats total = out.apply_edge_event(e, new_weight);
  if (stats) *stats = total;
  return out;
}

}  // namespace splice
