// Forwarding information base for the splicing data plane: the k per-slice
// forwarding tables every node holds (Figure 2 of the paper), flattened for
// O(1) per-hop lookup by Algorithm 1.
#pragma once

#include <span>
#include <vector>

#include "graph/types.h"
#include "util/assert.h"

namespace splice {

/// One forwarding entry: the neighbor to hand the packet to and the
/// underlying link used (the link id lets the data plane check liveness).
struct FibEntry {
  NodeId next_hop = kInvalidNode;
  EdgeId edge = kInvalidEdge;

  bool valid() const noexcept { return next_hop != kInvalidNode; }
};

/// The k forwarding tables of all nodes: lookup(slice, node, dst).
class FibSet {
 public:
  FibSet(SliceId slices, NodeId nodes)
      : slices_(slices),
        nodes_(nodes),
        entries_(static_cast<std::size_t>(slices) *
                 static_cast<std::size_t>(nodes) *
                 static_cast<std::size_t>(nodes)) {
    SPLICE_EXPECTS(slices >= 1);
    SPLICE_EXPECTS(nodes >= 0);
  }

  SliceId slice_count() const noexcept { return slices_; }
  NodeId node_count() const noexcept { return nodes_; }

  const FibEntry& lookup(SliceId slice, NodeId node, NodeId dst) const noexcept {
    return entries_[index(slice, node, dst)];
  }

  void set(SliceId slice, NodeId node, NodeId dst, FibEntry entry) noexcept {
    entries_[index(slice, node, dst)] = entry;
  }

  /// The backing slice-major entry array (slice, node, dst) — the layout the
  /// data plane's FlatFibs view indexes directly. Stable for the lifetime of
  /// this FibSet.
  std::span<const FibEntry> data() const noexcept { return entries_; }

  /// Total number of installed (valid) entries — the routing-state metric
  /// the paper argues grows only linearly in k.
  std::size_t installed_entries() const noexcept {
    std::size_t count = 0;
    for (const FibEntry& e : entries_) count += e.valid() ? 1 : 0;
    return count;
  }

 private:
  std::size_t index(SliceId slice, NodeId node, NodeId dst) const noexcept {
    SPLICE_EXPECTS(slice >= 0 && slice < slices_);
    SPLICE_EXPECTS(node >= 0 && node < nodes_);
    SPLICE_EXPECTS(dst >= 0 && dst < nodes_);
    return (static_cast<std::size_t>(slice) * static_cast<std::size_t>(nodes_) +
            static_cast<std::size_t>(node)) *
               static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dst);
  }

  SliceId slices_;
  NodeId nodes_;
  std::vector<FibEntry> entries_;
};

}  // namespace splice
