// Link-weight perturbation strategies (§3.1.1).
//
// Each slice draws one perturbed weight per link:
//
//   L'(i,j) = L(i,j) + Weight(a,b,i,j) * Random(0, L(i,j))
//
// where Weight(a,b,i,j) is a per-link multiplier and Random(0,L) is uniform.
// The paper's "degree-based" strategy makes the multiplier a linear function
// f_ab of degree(i)+degree(j) ranging over [a,b], so that links incident to
// hubs are perturbed more; the "uniform" strategy uses a constant multiplier.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace splice {

enum class PerturbationKind {
  /// No perturbation: slice uses the original weights (plain shortest paths).
  kNone,
  /// Constant multiplier b for every link: L' = L + b * Random(0, L).
  kUniform,
  /// Degree-based multiplier f_ab(degree(i) + degree(j)) in [a, b].
  kDegreeBased,
};

struct PerturbationConfig {
  PerturbationKind kind = PerturbationKind::kDegreeBased;
  /// Multiplier range endpoints — the paper's Weight(a, b). The headline
  /// Sprint results (Fig. 3) use Weight(0, 3).
  double a = 0.0;
  double b = 3.0;
};

/// Parses "none" / "uniform" / "degree"; throws std::invalid_argument
/// otherwise.
PerturbationKind parse_perturbation_kind(const std::string& name);
std::string to_string(PerturbationKind kind);

/// Per-link multipliers Weight(a,b,i,j), indexed by edge id. Deterministic
/// (no randomness): the random part of the perturbation is Random(0, L).
std::vector<double> perturbation_multipliers(const Graph& g,
                                             const PerturbationConfig& cfg);

/// Draws one perturbed weight vector (indexed by edge id) for a slice.
/// Perturbed weights are symmetric per link and satisfy
///   L <= L' <= L * (1 + multiplier).
std::vector<Weight> perturb_weights(const Graph& g,
                                    const PerturbationConfig& cfg, Rng& rng);

/// Appendix-B-style *signed* uniform perturbation in [-c*L, c*L] around L,
/// clamped to stay strictly positive. Used by the stretch-bound experiment.
std::vector<Weight> perturb_weights_signed(const Graph& g, double c, Rng& rng);

}  // namespace splice
