// Link-state flooding simulation.
//
// The paper's scalability argument (§1, §4.2) is that path splicing costs
// only a *linear* increase in routing messages: either k routing-protocol
// instances flood in parallel (k times the messages), or — with
// multi-topology encoding (§3.1.2, RFC 4915) — each LSA carries all k
// per-topology costs and the message count does not grow at all.
//
// This module simulates standard reliable flooding over the data-plane
// topology with per-link propagation delays (EventQueue), counts every
// link-state message until the network quiesces, and verifies that every
// node's link-state database converges to the full topology view. It also
// simulates the re-flood triggered by a link failure, which is exactly the
// control-plane cost that splicing's data-plane recovery avoids (§6).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/event_queue.h"

namespace splice {

/// One flooded link-state advertisement: `origin`'s adjacency snapshot.
/// `instance` identifies which routing process flooded it (0..k-1 for
/// per-slice flooding; always 0 for multi-topology encoding).
struct Lsa {
  NodeId origin = kInvalidNode;
  std::uint32_t sequence = 0;
  SliceId instance = 0;
};

/// How the k slices share the flooding machinery.
enum class FloodEncoding {
  kSeparateInstances,  ///< one flood per slice: messages scale with k
  kMultiTopology,      ///< one flood, k costs per LSA: messages constant
};

struct FloodStats {
  /// Total LSA transmissions over links (the message-complexity metric).
  long long messages = 0;
  /// Simulated time until the last LSDB update.
  SimTime convergence_ms = 0.0;
  /// True iff every node learned every origin's latest LSA (per instance).
  bool converged = false;
};

/// Simulates cold-start flooding: every node originates its LSA(s) at t=0
/// and floods reliably (forward to all neighbors except the sender; drop
/// duplicates by (origin, instance, sequence)).
FloodStats simulate_full_flood(const Graph& g, SliceId slices,
                               FloodEncoding encoding);

/// Simulates the incremental re-flood after `failed_edge` goes down: its
/// two endpoints originate fresh LSAs (per instance), which flood over the
/// surviving links.
FloodStats simulate_failure_reflood(const Graph& g, SliceId slices,
                                    FloodEncoding encoding,
                                    EdgeId failed_edge);

}  // namespace splice
