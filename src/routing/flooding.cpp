#include "routing/flooding.h"

#include <functional>
#include <span>

#include "util/assert.h"

namespace splice {

namespace {

/// Shared flooding engine: `originators` seed one LSA per (node, instance)
/// pair at t = 0; reliable flooding proceeds over alive links.
FloodStats flood(const Graph& g, SliceId slices, FloodEncoding encoding,
                 const std::vector<NodeId>& originators,
                 std::span<const char> edge_alive) {
  SPLICE_EXPECTS(slices >= 1);
  const SliceId instances =
      encoding == FloodEncoding::kSeparateInstances ? slices : 1;
  const auto n = static_cast<std::size_t>(g.node_count());

  // lsdb[node][origin * instances + instance] = highest sequence seen.
  std::vector<std::vector<std::int64_t>> lsdb(
      n, std::vector<std::int64_t>(n * static_cast<std::size_t>(instances),
                                   -1));
  auto cell = [&](NodeId origin, SliceId inst) {
    return static_cast<std::size_t>(origin) *
               static_cast<std::size_t>(instances) +
           static_cast<std::size_t>(inst);
  };
  auto alive = [&](EdgeId e) {
    return edge_alive.empty() || edge_alive[static_cast<std::size_t>(e)] != 0;
  };

  EventQueue queue;
  FloodStats stats;

  // Receiving (or originating) an LSA at `node`: if new, install and
  // forward on every alive link except the arrival link.
  std::function<void(SimTime, NodeId, Lsa, EdgeId)> deliver =
      [&](SimTime now, NodeId node, Lsa lsa, EdgeId from_link) {
        auto& seq = lsdb[static_cast<std::size_t>(node)]
                        [cell(lsa.origin, lsa.instance)];
        if (static_cast<std::int64_t>(lsa.sequence) <= seq) return;  // stale
        seq = lsa.sequence;
        stats.convergence_ms = now;
        for (const Incidence& inc : g.neighbors(node)) {
          if (inc.edge == from_link || !alive(inc.edge)) continue;
          ++stats.messages;
          const SimTime arrival = now + g.edge(inc.edge).weight;
          const NodeId next = inc.neighbor;
          const EdgeId link = inc.edge;
          queue.schedule(arrival, [&, next, lsa, link](SimTime t) {
            deliver(t, next, lsa, link);
          });
        }
      };

  for (NodeId origin : originators) {
    for (SliceId inst = 0; inst < instances; ++inst) {
      // Self-origination is free (no link crossed); sequence 1 beats the
      // implicit -1 baseline so incremental refloods can reuse seq 2.
      queue.schedule(0.0, [&, origin, inst](SimTime t) {
        deliver(t, origin, Lsa{origin, 2, inst}, kInvalidEdge);
      });
    }
  }
  queue.run();

  // Convergence: every node connected to an originator must have its LSA.
  stats.converged = true;
  for (NodeId node = 0; node < g.node_count(); ++node) {
    for (NodeId origin : originators) {
      // Reachability under the mask decides whether the LSA *can* arrive.
      // For the cold-start case (all nodes originate over a connected
      // graph) this is simply "everyone has everything".
      for (SliceId inst = 0; inst < instances; ++inst) {
        if (lsdb[static_cast<std::size_t>(node)][cell(origin, inst)] < 0) {
          // Tolerate unreachable nodes (failed-link refloods on a cut
          // graph); the caller interprets `converged` accordingly.
          std::vector<char> seen(n, 0);
          std::vector<NodeId> stack{origin};
          seen[static_cast<std::size_t>(origin)] = 1;
          while (!stack.empty()) {
            const NodeId u = stack.back();
            stack.pop_back();
            for (const Incidence& inc : g.neighbors(u)) {
              if (!alive(inc.edge)) continue;
              auto& mark = seen[static_cast<std::size_t>(inc.neighbor)];
              if (!mark) {
                mark = 1;
                stack.push_back(inc.neighbor);
              }
            }
          }
          if (seen[static_cast<std::size_t>(node)]) stats.converged = false;
        }
      }
    }
  }
  return stats;
}

}  // namespace

FloodStats simulate_full_flood(const Graph& g, SliceId slices,
                               FloodEncoding encoding) {
  std::vector<NodeId> everyone;
  everyone.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) everyone.push_back(v);
  return flood(g, slices, encoding, everyone, {});
}

FloodStats simulate_failure_reflood(const Graph& g, SliceId slices,
                                    FloodEncoding encoding,
                                    EdgeId failed_edge) {
  SPLICE_EXPECTS(failed_edge >= 0 && failed_edge < g.edge_count());
  std::vector<char> alive(static_cast<std::size_t>(g.edge_count()), 1);
  alive[static_cast<std::size_t>(failed_edge)] = 0;
  const Edge& e = g.edge(failed_edge);
  return flood(g, slices, encoding, {e.u, e.v}, alive);
}

}  // namespace splice
