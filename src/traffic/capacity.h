// Link capacities and utilization analysis (§5 "interactions with traffic
// engineering", quantified).
//
// Operators care about *utilization*, not raw load: a provisioned network
// carries its demand with headroom, and the interesting question is how
// much of that headroom splicing consumes in steady state (spliced paths
// are longer) versus how much it saves after failures (displaced traffic
// disperses instead of piling onto one backup). This module provisions
// capacities from a baseline load, evaluates utilization under any routing
// mode, and measures the post-failure utilization spike.
#pragma once

#include <vector>

#include "splicing/splicer.h"
#include "traffic/demand.h"
#include "traffic/load.h"

namespace splice {

/// Per-link capacities, indexed by edge id.
using CapacityPlan = std::vector<double>;

/// Provisions each link at `headroom` times its baseline load (plus a small
/// floor so zero-load links are not zero-capacity) — the standard
/// "provision to peak with headroom" rule.
CapacityPlan provision_capacities(const LinkLoads& baseline, double headroom,
                                  double floor = 1.0);

struct UtilizationReport {
  /// load / capacity per link.
  std::vector<double> utilization;
  double max_utilization = 0.0;
  double mean_utilization = 0.0;
  /// Links with utilization > 1 (overloaded).
  int overloaded_links = 0;
  /// Demand that could not be delivered at all.
  double undelivered = 0.0;
};

UtilizationReport evaluate_utilization(const LinkLoads& loads,
                                       const CapacityPlan& capacities);

/// Post-failure utilization spike: provisions for `steady_mode` at the
/// given headroom, fails `edge`, re-routes (displaced flows re-randomize
/// up to 5 headers), and reports utilization on the degraded network.
/// Restores the splicer's network state before returning.
UtilizationReport failure_utilization_spike(Splicer& splicer,
                                            const TrafficMatrix& demands,
                                            SliceSelection steady_mode,
                                            double headroom, EdgeId edge,
                                            Rng& rng);

}  // namespace splice
