// Link-load analysis under spliced routing (§5 "interactions with traffic
// engineering" and "selfish-routing effects").
//
// Routes a demand matrix through a Splicer under a configurable
// slice-selection mode and accumulates per-link load. Also implements the
// §5 failure-shift experiment: when a link fails and affected flows
// re-randomize their forwarding bits, does the displaced traffic disperse
// across the topology (splicing's claim) or pile onto one backup path
// (the selfish-routing worry)?
#pragma once

#include <vector>

#include "splicing/splicer.h"
#include "traffic/demand.h"
#include "util/stats.h"

namespace splice {

/// How senders choose forwarding bits for steady-state traffic.
enum class SliceSelection {
  kPinnedShortest,  ///< everyone on slice 0 (plain shortest-path routing)
  kHashSpread,      ///< no bits: Algorithm 1's Hash(src, dst) default slice
  kRandomHeaders,   ///< fresh uniform per-hop forwarding bits per flow
};

struct LinkLoads {
  /// Load per edge id (sum of demand crossing the link, either direction).
  std::vector<double> load;
  /// Demand that could not be delivered (dead ends under failures).
  double undelivered = 0.0;

  SampleSummary summary() const { return summarize(load); }
  double max_load() const;
  /// Max/mean imbalance ratio (1.0 = perfectly even; 0 links -> 0).
  double imbalance() const;
};

/// Routes every demand through the splicer's current network state.
LinkLoads route_demands(const Splicer& splicer, const TrafficMatrix& demands,
                        SliceSelection mode, Rng& rng);

/// §5 failure-shift experiment result for one failed link.
struct FailureShift {
  EdgeId failed_edge = kInvalidEdge;
  /// Demand that was crossing the failed link before the failure.
  double displaced_demand = 0.0;
  /// Fraction of displaced demand that could not be re-delivered.
  double lost_fraction = 0.0;
  /// Herfindahl-style concentration of where displaced demand landed:
  /// sum over links of (share of displaced load)^2. 1.0 = all on one
  /// link (worst selfish-routing outcome), 1/m = perfectly dispersed.
  double concentration = 1.0;
  /// Largest per-link load increase caused by re-routing.
  double max_link_increase = 0.0;
};

/// Fails `edge`, re-routes the flows that crossed it using end-system
/// re-randomization (fresh random headers), and reports where the
/// displaced demand went. The splicer's network state is restored before
/// returning.
FailureShift measure_failure_shift(Splicer& splicer,
                                   const TrafficMatrix& demands,
                                   SliceSelection steady_mode, EdgeId edge,
                                   Rng& rng);

}  // namespace splice
