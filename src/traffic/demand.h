// Traffic demand matrices for the §5 traffic-engineering experiments:
// uniform all-pairs, gravity-model (demand proportional to endpoint
// "masses", here node degrees — a standard proxy for PoP size), and
// hotspot matrices that concentrate demand on a few popular destinations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace splice {

/// Dense origin-destination demand matrix (flattened [src][dst]).
class TrafficMatrix {
 public:
  explicit TrafficMatrix(NodeId nodes)
      : n_(nodes),
        demand_(static_cast<std::size_t>(nodes) *
                    static_cast<std::size_t>(nodes),
                0.0) {}

  NodeId node_count() const noexcept { return n_; }

  double demand(NodeId src, NodeId dst) const noexcept {
    return demand_[index(src, dst)];
  }
  void set_demand(NodeId src, NodeId dst, double amount) noexcept {
    SPLICE_EXPECTS(amount >= 0.0);
    demand_[index(src, dst)] = amount;
  }
  void add_demand(NodeId src, NodeId dst, double amount) noexcept {
    SPLICE_EXPECTS(amount >= 0.0);
    demand_[index(src, dst)] += amount;
  }

  /// Sum of all demands.
  double total() const noexcept;

  /// Scales every entry so that total() == target (no-op if total is 0).
  void normalize_total(double target);

 private:
  std::size_t index(NodeId src, NodeId dst) const noexcept {
    SPLICE_EXPECTS(src >= 0 && src < n_);
    SPLICE_EXPECTS(dst >= 0 && dst < n_);
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  NodeId n_;
  std::vector<double> demand_;
};

/// One unit between every ordered pair.
TrafficMatrix uniform_demands(const Graph& g);

/// Gravity model: demand(s, t) proportional to degree(s) * degree(t),
/// normalized so the total equals n * (n - 1) (comparable to uniform).
TrafficMatrix gravity_demands(const Graph& g);

/// Hotspot model: `hotspots` destinations receive `weight`x the demand of
/// everyone else (e.g. popular content PoPs).
TrafficMatrix hotspot_demands(const Graph& g, int hotspots, double weight,
                              std::uint64_t seed);

}  // namespace splice
