#include "traffic/load.h"

#include <algorithm>

#include "util/assert.h"

namespace splice {

namespace {

SpliceHeader header_for(const Splicer& splicer, SliceSelection mode,
                        Rng& rng) {
  switch (mode) {
    case SliceSelection::kPinnedShortest:
      return splicer.make_pinned_header(0);
    case SliceSelection::kHashSpread:
      return SpliceHeader{};  // Algorithm 1 falls back to Hash(src, dst)
    case SliceSelection::kRandomHeaders:
      return splicer.make_random_header(rng);
  }
  return SpliceHeader{};
}

}  // namespace

double LinkLoads::max_load() const {
  double m = 0.0;
  for (double l : load) m = std::max(m, l);
  return m;
}

double LinkLoads::imbalance() const {
  if (load.empty()) return 0.0;
  double sum = 0.0;
  for (double l : load) sum += l;
  const double mean = sum / static_cast<double>(load.size());
  return mean <= 0.0 ? 0.0 : max_load() / mean;
}

LinkLoads route_demands(const Splicer& splicer, const TrafficMatrix& demands,
                        SliceSelection mode, Rng& rng) {
  const Graph& g = splicer.graph();
  SPLICE_EXPECTS(demands.node_count() == g.node_count());
  LinkLoads out;
  out.load.assign(static_cast<std::size_t>(g.edge_count()), 0.0);
  for (NodeId src = 0; src < g.node_count(); ++src) {
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      const double demand = src == dst ? 0.0 : demands.demand(src, dst);
      if (demand <= 0.0) continue;
      const Delivery d =
          splicer.send(src, dst, header_for(splicer, mode, rng));
      if (!d.delivered()) {
        out.undelivered += demand;
        continue;
      }
      for (const HopRecord& hop : d.hops) {
        out.load[static_cast<std::size_t>(hop.edge)] += demand;
      }
    }
  }
  return out;
}

FailureShift measure_failure_shift(Splicer& splicer,
                                   const TrafficMatrix& demands,
                                   SliceSelection steady_mode, EdgeId edge,
                                   Rng& rng) {
  const Graph& g = splicer.graph();
  SPLICE_EXPECTS(edge >= 0 && edge < g.edge_count());
  FailureShift out;
  out.failed_edge = edge;

  // Pass 1: steady state — find the flows crossing `edge` and the baseline
  // per-link loads.
  struct Flow {
    NodeId src;
    NodeId dst;
    double demand;
  };
  std::vector<Flow> displaced;
  std::vector<double> baseline(static_cast<std::size_t>(g.edge_count()), 0.0);
  for (NodeId src = 0; src < g.node_count(); ++src) {
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      const double demand = src == dst ? 0.0 : demands.demand(src, dst);
      if (demand <= 0.0) continue;
      const Delivery d =
          splicer.send(src, dst, header_for(splicer, steady_mode, rng));
      if (!d.delivered()) continue;
      bool crosses = false;
      for (const HopRecord& hop : d.hops) {
        baseline[static_cast<std::size_t>(hop.edge)] += demand;
        crosses |= hop.edge == edge;
      }
      if (crosses) {
        displaced.push_back(Flow{src, dst, demand});
        out.displaced_demand += demand;
      }
    }
  }

  // Pass 2: fail the link; displaced flows re-randomize (up to 5 fresh
  // headers, the paper's retry budget) and we accumulate where they land.
  splicer.network().set_link_state(edge, false);
  std::vector<double> shifted(static_cast<std::size_t>(g.edge_count()), 0.0);
  double lost = 0.0;
  for (const Flow& flow : displaced) {
    Delivery recovered;
    bool ok = false;
    for (int attempt = 0; attempt < 5 && !ok; ++attempt) {
      recovered =
          splicer.send(flow.src, flow.dst, splicer.make_random_header(rng));
      ok = recovered.delivered();
    }
    if (!ok) {
      lost += flow.demand;
      continue;
    }
    for (const HopRecord& hop : recovered.hops) {
      shifted[static_cast<std::size_t>(hop.edge)] += flow.demand;
    }
  }
  splicer.network().set_link_state(edge, true);

  out.lost_fraction =
      out.displaced_demand <= 0.0 ? 0.0 : lost / out.displaced_demand;

  // Concentration of the shifted load (Herfindahl index over links).
  double total_shifted = 0.0;
  for (double l : shifted) total_shifted += l;
  if (total_shifted > 0.0) {
    double hhi = 0.0;
    for (double l : shifted) {
      const double share = l / total_shifted;
      hhi += share * share;
    }
    out.concentration = hhi;
  }

  // Largest per-link increase vs. baseline.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (e == edge) continue;
    out.max_link_increase =
        std::max(out.max_link_increase,
                 shifted[static_cast<std::size_t>(e)]);
  }
  return out;
}

}  // namespace splice
