#include "traffic/demand.h"

#include <algorithm>

namespace splice {

double TrafficMatrix::total() const noexcept {
  double sum = 0.0;
  for (double d : demand_) sum += d;
  return sum;
}

void TrafficMatrix::normalize_total(double target) {
  SPLICE_EXPECTS(target >= 0.0);
  const double current = total();
  if (current <= 0.0) return;
  const double scale = target / current;
  for (double& d : demand_) d *= scale;
}

TrafficMatrix uniform_demands(const Graph& g) {
  TrafficMatrix tm(g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s != t) tm.set_demand(s, t, 1.0);
    }
  }
  return tm;
}

TrafficMatrix gravity_demands(const Graph& g) {
  TrafficMatrix tm(g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s != t) {
        tm.set_demand(s, t, static_cast<double>(g.degree(s)) *
                                static_cast<double>(g.degree(t)));
      }
    }
  }
  const auto n = static_cast<double>(g.node_count());
  tm.normalize_total(n * (n - 1.0));
  return tm;
}

TrafficMatrix hotspot_demands(const Graph& g, int hotspots, double weight,
                              std::uint64_t seed) {
  SPLICE_EXPECTS(hotspots >= 0 && hotspots <= g.node_count());
  SPLICE_EXPECTS(weight >= 1.0);
  // Choose distinct hotspot destinations.
  Rng rng(seed);
  std::vector<char> hot(static_cast<std::size_t>(g.node_count()), 0);
  int chosen = 0;
  while (chosen < hotspots) {
    const auto v = rng.below(static_cast<std::uint64_t>(g.node_count()));
    if (!hot[v]) {
      hot[v] = 1;
      ++chosen;
    }
  }
  TrafficMatrix tm(g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s != t)
        tm.set_demand(s, t, hot[static_cast<std::size_t>(t)] ? weight : 1.0);
    }
  }
  const auto n = static_cast<double>(g.node_count());
  tm.normalize_total(n * (n - 1.0));
  return tm;
}

}  // namespace splice
