#include "traffic/capacity.h"

#include <algorithm>

#include "util/assert.h"

namespace splice {

CapacityPlan provision_capacities(const LinkLoads& baseline, double headroom,
                                  double floor) {
  SPLICE_EXPECTS(headroom >= 1.0);
  SPLICE_EXPECTS(floor > 0.0);
  CapacityPlan plan;
  plan.reserve(baseline.load.size());
  for (double load : baseline.load) {
    plan.push_back(std::max(floor, load * headroom));
  }
  return plan;
}

UtilizationReport evaluate_utilization(const LinkLoads& loads,
                                       const CapacityPlan& capacities) {
  SPLICE_EXPECTS(loads.load.size() == capacities.size());
  UtilizationReport r;
  r.utilization.reserve(loads.load.size());
  double sum = 0.0;
  for (std::size_t e = 0; e < loads.load.size(); ++e) {
    SPLICE_EXPECTS(capacities[e] > 0.0);
    const double u = loads.load[e] / capacities[e];
    r.utilization.push_back(u);
    r.max_utilization = std::max(r.max_utilization, u);
    sum += u;
    r.overloaded_links += u > 1.0 ? 1 : 0;
  }
  r.mean_utilization =
      loads.load.empty() ? 0.0 : sum / static_cast<double>(loads.load.size());
  r.undelivered = loads.undelivered;
  return r;
}

UtilizationReport failure_utilization_spike(Splicer& splicer,
                                            const TrafficMatrix& demands,
                                            SliceSelection steady_mode,
                                            double headroom, EdgeId edge,
                                            Rng& rng) {
  const Graph& g = splicer.graph();
  SPLICE_EXPECTS(edge >= 0 && edge < g.edge_count());

  // Provision for the steady state.
  const LinkLoads baseline = route_demands(splicer, demands, steady_mode, rng);
  const CapacityPlan capacities = provision_capacities(baseline, headroom);

  // Fail the link and re-route everything: flows that still deliver with
  // their steady headers keep them; broken flows re-randomize up to 5x.
  splicer.network().set_link_state(edge, false);
  LinkLoads degraded;
  degraded.load.assign(static_cast<std::size_t>(g.edge_count()), 0.0);
  for (NodeId src = 0; src < g.node_count(); ++src) {
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      const double demand = src == dst ? 0.0 : demands.demand(src, dst);
      if (demand <= 0.0) continue;
      SpliceHeader header;
      switch (steady_mode) {
        case SliceSelection::kPinnedShortest:
          header = splicer.make_pinned_header(0);
          break;
        case SliceSelection::kHashSpread:
          header = SpliceHeader{};
          break;
        case SliceSelection::kRandomHeaders:
          header = splicer.make_random_header(rng);
          break;
      }
      Delivery d = splicer.send(src, dst, header);
      for (int attempt = 0; attempt < 5 && !d.delivered(); ++attempt) {
        d = splicer.send(src, dst, splicer.make_random_header(rng));
      }
      if (!d.delivered()) {
        degraded.undelivered += demand;
        continue;
      }
      for (const HopRecord& hop : d.hops) {
        degraded.load[static_cast<std::size_t>(hop.edge)] += demand;
      }
    }
  }
  splicer.network().set_link_state(edge, true);
  return evaluate_utilization(degraded, capacities);
}

}  // namespace splice
