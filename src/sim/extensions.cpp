#include "sim/extensions.h"

#include <algorithm>

#include "dataplane/network.h"
#include "graph/connectivity.h"
#include "graph/maxflow.h"
#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "splicing/recovery.h"
#include "util/assert.h"

namespace splice {

std::vector<ConnectivityCurvePoint> run_connectivity_curve(
    const Graph& g, const ConnectivityCurveConfig& cfg) {
  SPLICE_EXPECTS(cfg.trials >= 1);
  SPLICE_EXPECTS(!cfg.k_values.empty());
  const std::vector<double> p_values =
      cfg.p_values.empty() ? paper_p_grid() : cfg.p_values;
  const SliceId k_max =
      *std::max_element(cfg.k_values.begin(), cfg.k_values.end());

  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, cfg.perturbation, cfg.seed, false});
  const SplicedReliabilityAnalyzer analyzer(g, mir);

  std::vector<ConnectivityCurvePoint> out;
  Rng master(cfg.seed ^ 0xdef21ULL);
  for (double p : p_values) {
    std::vector<long long> connected_trials(cfg.k_values.size(), 0);
    long long graph_connected = 0;
    for (int trial = 0; trial < cfg.trials; ++trial) {
      const auto alive = sample_alive_mask(g.edge_count(), p, master);
      if (is_connected(g, alive)) ++graph_connected;
      for (std::size_t i = 0; i < cfg.k_values.size(); ++i) {
        if (analyzer.disconnected_pairs(cfg.k_values[i], alive) == 0)
          ++connected_trials[i];
      }
    }
    out.push_back(ConnectivityCurvePoint{
        0, p,
        static_cast<double>(graph_connected) /
            static_cast<double>(cfg.trials)});
    for (std::size_t i = 0; i < cfg.k_values.size(); ++i) {
      out.push_back(ConnectivityCurvePoint{
          cfg.k_values[i], p,
          static_cast<double>(connected_trials[i]) /
              static_cast<double>(cfg.trials)});
    }
  }
  return out;
}

std::vector<ReconvergencePoint> run_reconvergence_experiment(
    const Graph& g, const ReconvergenceConfig& cfg) {
  SPLICE_EXPECTS(cfg.trials >= 1);
  SPLICE_EXPECTS(cfg.k >= 1);
  const std::vector<double> p_values =
      cfg.p_values.empty() ? paper_p_grid() : cfg.p_values;

  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{cfg.k, cfg.perturbation, cfg.seed, false});
  const FibSet fibs = mir.build_fibs();
  DataPlaneNetwork net(g, fibs);

  RecoveryConfig rcfg;
  rcfg.max_trials = cfg.recovery_trials;

  std::vector<ReconvergencePoint> out;
  Rng master(cfg.seed ^ 0x4ec0ULL);
  for (double p : p_values) {
    long long pairs = 0;
    long long broken = 0;
    long long reconv_fixed = 0;
    long long splice_fixed = 0;
    for (int trial = 0; trial < cfg.trials; ++trial) {
      Rng trial_rng = master.fork(static_cast<std::uint64_t>(trial) * 7919 +
                                  static_cast<std::uint64_t>(p * 1e6));
      const auto alive = sample_alive_mask(g.edge_count(), p, trial_rng);
      net.set_link_mask(alive);
      for (NodeId dst = 0; dst < g.node_count(); ++dst) {
        // What a reconverged IGP could reach: plain connectivity of the
        // surviving graph toward dst.
        const auto surviving = reachable_nodes(g, dst, alive);
        for (NodeId src = 0; src < g.node_count(); ++src) {
          if (src == dst) continue;
          ++pairs;
          const RecoveryResult r =
              attempt_recovery(net, src, dst, rcfg, trial_rng);
          if (r.initially_connected) continue;  // path survived
          ++broken;
          const bool reconv = surviving[static_cast<std::size_t>(src)] != 0;
          reconv_fixed += reconv ? 1 : 0;
          // Count splicing fixes only where reconvergence would also fix —
          // splicing cannot beat physical connectivity, but guard anyway.
          if (r.delivered && reconv) ++splice_fixed;
        }
      }
    }
    ReconvergencePoint pt;
    pt.p = p;
    pt.frac_broken =
        pairs == 0 ? 0.0
                   : static_cast<double>(broken) / static_cast<double>(pairs);
    pt.reconvergence_fixes =
        broken == 0 ? 0.0
                    : static_cast<double>(reconv_fixed) /
                          static_cast<double>(broken);
    pt.splicing_fixes =
        broken == 0 ? 0.0
                    : static_cast<double>(splice_fixed) /
                          static_cast<double>(broken);
    pt.coverage_of_reconvergence =
        reconv_fixed == 0 ? 1.0
                          : static_cast<double>(splice_fixed) /
                                static_cast<double>(reconv_fixed);
    out.push_back(pt);
  }
  return out;
}

std::vector<ThroughputPoint> run_throughput_experiment(
    const Graph& g, const ThroughputConfig& cfg) {
  SPLICE_EXPECTS(!cfg.k_values.empty());
  const SliceId k_max =
      *std::max_element(cfg.k_values.begin(), cfg.k_values.end());
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, cfg.perturbation, cfg.seed, false});
  const NodeId n = g.node_count();

  // Sample the evaluation pairs once, shared across all k.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  if (cfg.pair_sample <= 0) {
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s != t) pairs.emplace_back(s, t);
      }
    }
  } else {
    Rng rng(cfg.seed ^ 0x7310ULL);
    while (static_cast<int>(pairs.size()) < cfg.pair_sample) {
      const auto s =
          static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
      const auto t =
          static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
      if (s != t) pairs.emplace_back(s, t);
    }
  }

  // Spliced capacity for one (pair, k): max flow over union arcs toward t,
  // where each undirected link contributes capacity 1 shared between its
  // two directions (modeled exactly by opposing arcs that act as each
  // other's residual when both directions are in the union).
  auto spliced_capacity = [&](NodeId s, NodeId t, SliceId k) -> int {
    // Direction census per link: bit 0 = (u -> v), bit 1 = (v -> u).
    std::vector<unsigned char> dir(static_cast<std::size_t>(g.edge_count()),
                                   0);
    for (SliceId slice = 0; slice < k; ++slice) {
      const RoutingInstance& inst = mir.slice(slice);
      for (NodeId v = 0; v < n; ++v) {
        if (v == t) continue;
        const NodeId nh = inst.next_hop(v, t);
        if (nh == kInvalidNode) continue;
        const EdgeId e = inst.next_hop_edge(v, t);
        dir[static_cast<std::size_t>(e)] |=
            (v == g.edge(e).u) ? 1u : 2u;
      }
    }
    FlowNetwork net(n);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      switch (dir[static_cast<std::size_t>(e)]) {
        case 1:
          net.add_arc(edge.u, edge.v, 1);
          break;
        case 2:
          net.add_arc(edge.v, edge.u, 1);
          break;
        case 3:
          net.add_undirected_unit(edge.u, edge.v);
          break;
        default:
          break;
      }
    }
    return static_cast<int>(net.max_flow(s, t));
  };

  std::vector<ThroughputPoint> out;
  for (SliceId k : cfg.k_values) {
    ThroughputPoint pt;
    pt.k = k;
    double ratio_sum = 0.0;
    double spliced_sum = 0.0;
    double graph_sum = 0.0;
    long long full = 0;
    for (const auto& [s, t] : pairs) {
      const int graph_cap = pair_edge_connectivity(g, s, t);
      const int spliced_cap = spliced_capacity(s, t, k);
      SPLICE_ASSERT(spliced_cap <= graph_cap);
      spliced_sum += spliced_cap;
      graph_sum += graph_cap;
      if (graph_cap > 0) {
        ratio_sum += static_cast<double>(spliced_cap) /
                     static_cast<double>(graph_cap);
        full += spliced_cap == graph_cap ? 1 : 0;
      }
    }
    const auto count = static_cast<double>(pairs.size());
    pt.mean_capacity_ratio = ratio_sum / count;
    pt.frac_full_capacity = static_cast<double>(full) / count;
    pt.mean_spliced_capacity = spliced_sum / count;
    pt.mean_graph_capacity = graph_sum / count;
    out.push_back(pt);
  }
  return out;
}

}  // namespace splice
