#include "sim/failure.h"

#include <algorithm>

#include "util/assert.h"

namespace splice {

std::vector<char> sample_alive_mask(EdgeId edges, double p, Rng& rng) {
  SPLICE_EXPECTS(edges >= 0);
  SPLICE_EXPECTS(p >= 0.0 && p <= 1.0);
  std::vector<char> alive(static_cast<std::size_t>(edges), 1);
  for (auto& a : alive) {
    if (rng.bernoulli(p)) a = 0;
  }
  return alive;
}

std::vector<char> sample_length_weighted_mask(const Graph& g, double p_mean,
                                              Rng& rng) {
  SPLICE_EXPECTS(p_mean >= 0.0 && p_mean <= 1.0);
  std::vector<char> alive(static_cast<std::size_t>(g.edge_count()), 1);
  if (g.edge_count() == 0) return alive;
  const Weight mean_weight = g.total_weight() /
                             static_cast<Weight>(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const double p =
        std::min(1.0, p_mean * g.edge(e).weight / mean_weight);
    if (rng.bernoulli(p)) alive[static_cast<std::size_t>(e)] = 0;
  }
  return alive;
}

std::vector<char> sample_node_failure_mask(const Graph& g, double p, Rng& rng,
                                           std::vector<char>* failed_nodes) {
  SPLICE_EXPECTS(p >= 0.0 && p <= 1.0);
  std::vector<char> node_dead(static_cast<std::size_t>(g.node_count()), 0);
  for (auto& dead : node_dead) dead = rng.bernoulli(p) ? 1 : 0;
  std::vector<char> alive(static_cast<std::size_t>(g.edge_count()), 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    if (node_dead[static_cast<std::size_t>(edge.u)] ||
        node_dead[static_cast<std::size_t>(edge.v)]) {
      alive[static_cast<std::size_t>(e)] = 0;
    }
  }
  if (failed_nodes != nullptr) *failed_nodes = std::move(node_dead);
  return alive;
}

std::vector<char> fail_random_edges(EdgeId edges, int count, Rng& rng) {
  SPLICE_EXPECTS(count >= 0 && count <= edges);
  std::vector<char> alive(static_cast<std::size_t>(edges), 1);
  int failed = 0;
  while (failed < count) {
    const auto e = rng.below(static_cast<std::uint64_t>(edges));
    if (alive[e]) {
      alive[e] = 0;
      ++failed;
    }
  }
  return alive;
}

SrlgModel srlg_by_shared_endpoint(const Graph& g) {
  SrlgModel model;
  model.groups.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::vector<EdgeId> group;
    for (const Incidence& inc : g.neighbors(v)) group.push_back(inc.edge);
    if (group.size() >= 2) model.groups.push_back(std::move(group));
  }
  return model;
}

std::vector<char> sample_srlg_mask(const Graph& g, const SrlgModel& model,
                                   double group_p, double independent_p,
                                   Rng& rng) {
  SPLICE_EXPECTS(group_p >= 0.0 && group_p <= 1.0);
  SPLICE_EXPECTS(independent_p >= 0.0 && independent_p <= 1.0);
  auto alive = sample_alive_mask(g.edge_count(), independent_p, rng);
  for (const auto& group : model.groups) {
    if (!rng.bernoulli(group_p)) continue;
    for (EdgeId e : group) {
      SPLICE_EXPECTS(e >= 0 && e < g.edge_count());
      alive[static_cast<std::size_t>(e)] = 0;
    }
  }
  return alive;
}

int failed_count(const std::vector<char>& alive) noexcept {
  int n = 0;
  for (char a : alive) n += a ? 0 : 1;
  return n;
}

std::vector<double> paper_p_grid() {
  std::vector<double> p;
  for (int i = 0; i <= 10; ++i) p.push_back(static_cast<double>(i) / 100.0);
  return p;
}

}  // namespace splice
