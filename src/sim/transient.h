// Transient forwarding during routing convergence — the paper's §6 open
// question, simulated:
//
//   "an important open question concerns the interactions of path splicing
//    with the convergence of the routing protocol, which could affect
//    forwarding-table entries at the same time as path splicing is
//    re-routing traffic."
//
// After a link failure, routers install their reconverged FIBs at
// different moments; until the last one updates, the network forwards on a
// *mixture* of old and new tables, which is where classic IGPs suffer
// micro-loops and blackholes. This module simulates that window: each
// node draws an update time uniform in [0, T]; a packet sent at time t is
// forwarded, hop by hop, by each node's old or new table according to
// whether that node has updated. It measures delivery/loop/blackhole rates
// through the window for plain shortest-path routing versus splicing
// (stale-slice deflection active), quantifying §6's suggestion that
// splicing lets convergence be slow — or even unnecessary.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/multi_instance.h"
#include "routing/perturbation.h"
#include "util/rng.h"

namespace splice {

struct TransientConfig {
  SliceId slices = 5;
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::uint64_t seed = 1;
  /// Update times are drawn uniform in [0, 1] (normalized window); packets
  /// are sampled at `time_samples` evenly spaced instants across it.
  int time_samples = 8;
  /// Ordered pairs sampled per (failure, instant); 0 = all pairs.
  int pair_sample = 150;
  /// Link failures simulated (each is a single-link event).
  int failures = 20;
  int ttl = 64;
};

struct TransientPoint {
  /// Normalized time within the convergence window [0, 1].
  double t = 0.0;
  /// Plain shortest-path routing on mixed old/new tables.
  double plain_delivered = 0.0;
  double plain_loops = 0.0;      ///< TTL expiry = persistent micro-loop
  double plain_blackholes = 0.0; ///< dead end at the failed link
  /// Splicing: same mixed tables, deflection to any live slice allowed.
  double spliced_delivered = 0.0;
  double spliced_loops = 0.0;
  double spliced_blackholes = 0.0;
};

/// Runs the §6 transient study on `g`: for each sampled single-link
/// failure, build the pre-failure and post-failure control planes, draw
/// per-node update times, and sample forwarding outcomes through the
/// window. Results are averaged over failures and pairs per instant.
std::vector<TransientPoint> run_transient_experiment(
    const Graph& g, const TransientConfig& cfg);

}  // namespace splice
