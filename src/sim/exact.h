// Exact reliability by exhaustive failure-subset enumeration.
//
// For small graphs (<= ~20 edges) the Definition 2.1 quantities can be
// computed exactly: sum over all 2^m failure subsets of
// P(subset) * metric(surviving graph). This anchors the Monte Carlo
// estimators — tests require the sampled curves to converge to these
// values — and lets examples print provably-correct numbers on the
// Figure 1 fixture.
#pragma once

#include "graph/graph.h"
#include "routing/multi_instance.h"
#include "splicing/reliability.h"

namespace splice {

/// Maximum edge count accepted by the exact enumerators.
inline constexpr EdgeId kMaxExactEdges = 24;

/// Exact E[fraction of ordered pairs disconnected] when every edge fails
/// independently with probability p. Exponential in edge count; guarded by
/// kMaxExactEdges.
double exact_disconnected_fraction(const Graph& g, double p);

/// Exact P(graph stays connected) — Definition 2.1.
double exact_reliability(const Graph& g, double p);

/// Exact E[fraction of ordered pairs disconnected] for the spliced union
/// of the first k slices of `mir`, under the chosen semantics.
double exact_spliced_disconnected_fraction(
    const Graph& g, const MultiInstanceRouting& mir, SliceId k, double p,
    UnionSemantics semantics = UnionSemantics::kUndirectedLinks);

}  // namespace splice
