#include "sim/churn.h"

#include <algorithm>
#include <cmath>

#include "dataplane/fib_publisher.h"
#include "sim/failure.h"
#include "util/assert.h"
#include "util/rng.h"

namespace splice {

namespace {

/// Exponential draw with the given mean (inverse-CDF on a uniform).
double draw_exp(Rng& rng, double mean) {
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - rng.uniform());
}

}  // namespace

std::vector<LinkEvent> generate_churn_trace(const Graph& g,
                                            const ChurnConfig& cfg) {
  SPLICE_EXPECTS(cfg.incidents >= 0);
  SPLICE_EXPECTS(cfg.mean_gap_ms > 0.0 && cfg.mean_hold_ms > 0.0);
  SPLICE_EXPECTS(cfg.maint_factor > 0.0);
  const auto edges = static_cast<std::size_t>(g.edge_count());
  std::vector<LinkEvent> out;
  if (edges == 0 || cfg.incidents == 0) return out;

  const SrlgModel srlg = srlg_by_shared_endpoint(g);
  Rng rng(cfg.seed);

  const double wsum = cfg.flap_weight + cfg.srlg_weight + cfg.maint_weight;
  SPLICE_EXPECTS(wsum > 0.0);
  const double p_flap = cfg.flap_weight / wsum;
  const double p_srlg = cfg.srlg_weight / wsum;

  // A link is eligible for a new incident only after its previous window
  // closed; incident start times are non-decreasing, so one timestamp per
  // edge suffices to keep the stream per-link-consistent by construction.
  std::vector<double> busy_until(edges, -1.0);
  // End-of-trace restores pair with the window-open bookkeeping below.
  std::vector<double> close_at(edges, 0.0);
  std::vector<LinkEventKind> close_kind(edges, LinkEventKind::kUp);
  std::vector<char> open_window(edges, 0);

  double t = 0.0;
  auto open = [&](EdgeId e, double at, double hold, LinkEventKind kind,
                  double factor) {
    const auto ei = static_cast<std::size_t>(e);
    out.push_back(LinkEvent{at, e, kind, factor});
    busy_until[ei] = at + hold;
    close_at[ei] = at + hold;
    close_kind[ei] =
        kind == LinkEventKind::kDown ? LinkEventKind::kUp : LinkEventKind::kScale;
    open_window[ei] = 1;
  };
  auto flush_closes_before = [&](double now) {
    // Emit the restore of every window that closed by `now`, so eligible
    // links come back before later incidents consider them.
    for (std::size_t e = 0; e < edges; ++e) {
      if (open_window[e] && close_at[e] <= now) {
        out.push_back(LinkEvent{close_at[e], static_cast<EdgeId>(e),
                                close_kind[e], 1.0});
        open_window[e] = 0;
      }
    }
  };

  for (int i = 0; i < cfg.incidents; ++i) {
    t += draw_exp(rng, cfg.mean_gap_ms);
    flush_closes_before(t);
    const double kind_draw = rng.uniform();
    if (kind_draw < p_flap + p_srlg && kind_draw >= p_flap &&
        !srlg.groups.empty()) {
      // Correlated burst: every eligible member of one shared-risk group
      // fails, slightly staggered.
      const auto& group =
          srlg.groups[static_cast<std::size_t>(rng.below(srlg.groups.size()))];
      const double hold = draw_exp(rng, cfg.mean_hold_ms);
      int member = 0;
      for (const EdgeId e : group) {
        if (t <= busy_until[static_cast<std::size_t>(e)]) continue;
        open(e, t + member * cfg.srlg_stagger_ms, hold, LinkEventKind::kDown,
             1.0);
        ++member;
      }
      continue;
    }
    // Single-link incident: draw an eligible edge (bounded retries keep the
    // draw deterministic and the generator total even when most links are
    // already in a window).
    EdgeId e = kInvalidEdge;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto cand = static_cast<EdgeId>(rng.below(edges));
      if (t > busy_until[static_cast<std::size_t>(cand)]) {
        e = cand;
        break;
      }
    }
    if (e == kInvalidEdge) continue;
    const double hold = draw_exp(rng, cfg.mean_hold_ms);
    if (kind_draw < p_flap) {
      open(e, t, hold, LinkEventKind::kDown, 1.0);
    } else {
      open(e, t, hold, LinkEventKind::kScale, cfg.maint_factor);
    }
  }
  flush_closes_before(t + 1e12);  // close everything still open

  // One deterministic timeline: stable sort by time, ties by (edge, kind)
  // so equal-time events replay in a fixed order.
  std::stable_sort(out.begin(), out.end(),
                   [](const LinkEvent& a, const LinkEvent& b) {
                     if (a.at_ms != b.at_ms) return a.at_ms < b.at_ms;
                     if (a.edge != b.edge) return a.edge < b.edge;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return out;
}

PublishStats apply_churn_event(FibPublisher& pub, const LinkEvent& ev) {
  switch (ev.kind) {
    case LinkEventKind::kDown:
      return pub.publish_link_down(ev.edge);
    case LinkEventKind::kUp:
      return pub.publish_link_restore(ev.edge);
    case LinkEventKind::kScale:
      return pub.publish_weight_scale(ev.edge, ev.factor);
  }
  SPLICE_ASSERT(false && "unreachable");
  return PublishStats{};
}

int count_events(const std::vector<LinkEvent>& trace, LinkEventKind kind) {
  int count = 0;
  for (const LinkEvent& ev : trace) count += ev.kind == kind ? 1 : 0;
  return count;
}

}  // namespace splice
