#include "sim/event_sim.h"

#include <functional>

#include "util/assert.h"

namespace splice {

SimTime trace_delay_ms(const Graph& g, const Delivery& d) {
  SimTime delay = 0.0;
  for (const HopRecord& hop : d.hops) delay += g.edge(hop.edge).weight;
  return delay;
}

namespace {

SpliceHeader pinned_slice0(SliceId k, int hops) {
  const std::vector<SliceId> zeros(static_cast<std::size_t>(hops), 0);
  return SpliceHeader::from_slices(k, zeros);
}

}  // namespace

RecoveryTiming simulate_recovery_timing(const DataPlaneNetwork& net,
                                        NodeId src, NodeId dst,
                                        const TimingConfig& cfg, Rng& rng) {
  SPLICE_EXPECTS(cfg.max_attempts >= 0);
  SPLICE_EXPECTS(cfg.rto_ms > 0.0);
  const Graph& g = net.graph();
  const SliceId k = net.slice_count();

  RecoveryTiming out;
  EventQueue queue;
  bool done = false;

  // Sends one packet at `now`; on delivery schedules the ACK arrival.
  auto transmit = [&](SimTime now, const SpliceHeader& header,
                      bool deflect) {
    if (done) return;
    ++out.packets_sent;
    Packet p;
    p.src = src;
    p.dst = dst;
    p.header = header;
    p.ttl = cfg.ttl;
    ForwardingPolicy policy;
    policy.local_recovery =
        deflect ? LocalRecovery::kDeflect : LocalRecovery::kNone;
    const Delivery d = net.forward(p, policy);
    if (!d.delivered()) return;  // silent loss; only the RTO notices
    const SimTime rtt = 2.0 * trace_delay_ms(g, d);
    queue.schedule(now + rtt, [&](SimTime ack_time) {
      if (done) return;
      done = true;
      out.recovered = true;
      out.completion_ms = ack_time;
    });
  };

  // Initial attempt at t = 0 on the default (slice 0) path. Network
  // deflection applies to it when that strategy is active — that is the
  // entire scheme.
  const bool deflect_initial =
      cfg.strategy == RecoveryStrategy::kNetworkDeflection;
  {
    Packet probe;
    probe.src = src;
    probe.dst = dst;
    probe.header = pinned_slice0(k, cfg.header_hops);
    probe.ttl = cfg.ttl;
    const Delivery plain = net.forward(probe, ForwardingPolicy{});
    out.initially_connected = plain.delivered();
  }
  transmit(0.0, pinned_slice0(k, cfg.header_hops), deflect_initial);

  switch (cfg.strategy) {
    case RecoveryStrategy::kNetworkDeflection:
      // No sender-side retries.
      break;
    case RecoveryStrategy::kSerial: {
      // Attempt j is sent after j RTO periods of silence.
      for (int j = 1; j <= cfg.max_attempts; ++j) {
        const SimTime at = static_cast<SimTime>(j) * cfg.rto_ms;
        const SpliceHeader header =
            SpliceHeader::random(k, cfg.header_hops, rng);
        queue.schedule(at, [&, header](SimTime now) {
          transmit(now, header, false);
        });
      }
      break;
    }
    case RecoveryStrategy::kParallelBurst: {
      // One RTO to detect the failure, then the whole burst at once.
      for (int j = 1; j <= cfg.max_attempts; ++j) {
        const SpliceHeader header =
            SpliceHeader::random(k, cfg.header_hops, rng);
        queue.schedule(cfg.rto_ms, [&, header](SimTime now) {
          transmit(now, header, false);
        });
      }
      break;
    }
  }

  queue.run();
  return out;
}

}  // namespace splice
