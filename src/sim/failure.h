// Bernoulli link-failure model (§4.1): each edge fails independently with
// probability p. A sampled mask is shared across all slice counts within a
// trial, exactly as the paper evaluates ("we fail the same set of links for
// different values of k").
#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace splice {

/// Samples a liveness mask (1 = alive) failing each edge with probability p.
std::vector<char> sample_alive_mask(EdgeId edges, double p, Rng& rng);

/// Node-failure model: fails each *node* independently with probability p;
/// returns the edge liveness mask in which every link incident to a failed
/// node is down (and, optionally via `failed_nodes`, which nodes died).
/// Source/destination nodes of a measurement are conventionally excluded by
/// callers — a dead endpoint is trivially disconnected.
std::vector<char> sample_node_failure_mask(const Graph& g, double p, Rng& rng,
                                           std::vector<char>* failed_nodes = nullptr);

/// Length-weighted failure model: each link fails with probability
/// proportional to its weight (long-haul fiber has more exposure — more
/// route-miles of backhoe risk), scaled so the *average* per-link failure
/// probability equals `p_mean` (per-link values clamped to [0, 1]).
std::vector<char> sample_length_weighted_mask(const Graph& g, double p_mean,
                                              Rng& rng);

/// Fails exactly the `count` given-or-random edges (for targeted-failure
/// tests and examples); returns the mask.
std::vector<char> fail_random_edges(EdgeId edges, int count, Rng& rng);

/// Shared-risk link groups: links that share fate (same conduit, same
/// building, same fiber path). Bernoulli independence overstates the value
/// of path diversity when backup paths share risk with primaries; this
/// model quantifies that.
struct SrlgModel {
  /// groups[i] = edge ids sharing risk group i. A link may appear in
  /// several groups; links in no group only fail independently.
  std::vector<std::vector<EdgeId>> groups;
};

/// Builds an endpoint-sharing SRLG model: one group per node containing
/// its incident links (models conduit/building sharing at each PoP).
SrlgModel srlg_by_shared_endpoint(const Graph& g);

/// Samples a liveness mask under the SRLG model: each *group* fails with
/// probability `group_p` (killing all member links), and each link
/// additionally fails independently with probability `independent_p`.
std::vector<char> sample_srlg_mask(const Graph& g, const SrlgModel& model,
                                   double group_p, double independent_p,
                                   Rng& rng);

/// Number of failed edges in a mask.
int failed_count(const std::vector<char>& alive) noexcept;

/// The p grid of Figures 3-5: {0, 0.01, ..., 0.10}.
std::vector<double> paper_p_grid();

}  // namespace splice
