// Experiment harnesses reproducing the paper's evaluation (§4, Appendices
// A/B). Each harness is a pure function of (topology, config) returning
// structured results that the bench binaries print as the paper's series.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/multi_instance.h"
#include "routing/perturbation.h"
#include "sim/trial_engine.h"
#include "splicing/recovery.h"
#include "splicing/reliability.h"
#include "util/stats.h"

namespace splice {

// ---------------------------------------------------------------------------
// Reliability curves (Figure 3).
// ---------------------------------------------------------------------------

/// What fails with probability p: individual links (the paper's headline
/// model, §4.1), whole nodes (all incident links die; pairs whose endpoint
/// died are excluded from the accounting — no routing scheme can help a
/// dead host), or links weighted by length (long-haul fiber has more
/// exposure; p is the mean per-link probability).
enum class FailureKind { kLink, kNode, kLengthWeighted };

struct ReliabilityConfig {
  std::vector<SliceId> k_values{1, 2, 3, 4, 5, 10};
  std::vector<double> p_values;  ///< empty => paper_p_grid()
  int trials = 1000;
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::uint64_t seed = 1;
  bool perturb_first_slice = false;
  /// §4.2 evaluates connectivity of the union *graph* (undirected); the
  /// directed variant measures exact forwarding reachability instead.
  UnionSemantics semantics = UnionSemantics::kUndirectedLinks;
  FailureKind failure = FailureKind::kLink;
  /// Worker threads for the Monte Carlo loop (1 = sequential). Each trial's
  /// randomness comes only from (seed, p, trial index) and per-trial samples
  /// are reduced in trial order, so results are bit-identical at every
  /// thread count.
  int threads = 1;
};

struct ReliabilityPoint {
  SliceId k = 0;  ///< 0 encodes the "best possible" (underlying graph) curve
  double p = 0.0;
  double mean_disconnected = 0.0;  ///< avg fraction of ordered pairs cut off
  double ci95 = 0.0;
};

struct ReliabilityCurves {
  std::vector<ReliabilityPoint> points;  ///< spliced curves, one per (k, p)
  std::vector<ReliabilityPoint> best_possible;  ///< one per p, k = 0
};

/// Monte Carlo reliability curves with failure sets shared across k (§4.2).
ReliabilityCurves run_reliability_experiment(const Graph& g,
                                             const ReliabilityConfig& cfg);

// ---------------------------------------------------------------------------
// Recovery (Figures 4 and 5, plus the §4.3 scalars and §4.4 loop rates).
// ---------------------------------------------------------------------------

struct RecoveryExperimentConfig {
  std::vector<SliceId> k_values{1, 3, 5};
  std::vector<double> p_values;  ///< empty => paper_p_grid()
  int trials = 100;
  RecoveryConfig recovery;  ///< scheme, retry budget, header hops...
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::uint64_t seed = 1;
  bool perturb_first_slice = false;
  /// 0 = evaluate every ordered pair; otherwise sample this many pairs per
  /// trial (keeps large sweeps fast without biasing the estimate).
  int pair_sample = 0;
  /// Semantics of the "(reliability)" companion curve (Figs. 4-5 use the
  /// §4.2 undirected-union construction).
  UnionSemantics semantics = UnionSemantics::kUndirectedLinks;
  /// Link failures (paper) or whole-node failures; under node failures,
  /// pairs with a dead endpoint are skipped entirely.
  FailureKind failure = FailureKind::kLink;
  /// Worker threads for the Monte Carlo loop (1 = sequential). Trials run
  /// on precomputed per-trial substreams and reduce in trial order, so
  /// results are bit-identical at every thread count — including to the
  /// historical serial implementation.
  int threads = 1;
};

struct RecoveryPoint {
  SliceId k = 0;
  double p = 0.0;
  /// Fraction of pairs still disconnected after recovery — the "(recovery)"
  /// curve of Figs. 4/5.
  double frac_unrecovered = 0.0;
  /// Fraction with no spliced path at all — the "(reliability)" curve.
  double frac_disconnected = 0.0;
  /// Fraction whose initial (slice-0 / no-splicing) path was broken — the
  /// k = 1 "no splicing" curve when k == 1.
  double frac_initial_broken = 0.0;
  /// Mean retries among pairs that failed initially but recovered.
  double mean_trials = 0.0;
  /// Mean latency stretch of recovered paths (vs. original shortest paths).
  double mean_stretch = 0.0;
  /// Mean hop inflation of recovered paths.
  double mean_hop_inflation = 0.0;
  /// 99th-percentile stretch of recovered paths.
  double p99_stretch = 0.0;
  /// Fraction of recovered paths containing a two-hop loop (§4.4).
  double two_hop_loop_rate = 0.0;
  /// Fraction of recovered paths revisiting any node (loops of any length).
  double revisit_rate = 0.0;
  /// Denominator of the loop rates: paths recovered after an initial
  /// failure. Exposed so census tooling can cross-check rate numerators
  /// against the anomaly ledger.
  long long recovered_paths = 0;
};

/// When the obs anomaly ledger is enabled, run_recovery_experiment opens a
/// ledger run tagged with the serialized config and records loop / TTL /
/// high-stretch anomalies per recovery episode; sampled packet walks arm
/// the flight recorder keyed by recovery_walk_key below. Disabled, it runs
/// the exact historical computation (one relaxed load + branch per trial).
std::vector<RecoveryPoint> run_recovery_experiment(
    const Graph& g, const RecoveryExperimentConfig& cfg);

/// Deterministic flight-recorder stream key of one recovery trial: a pure
/// function of (config seed, p index, trial), shared by the experiment
/// loop and sim/replay.h so a replayed episode lands on the same walk ids.
inline std::uint64_t recovery_walk_key(std::uint64_t seed, std::size_t p_index,
                                       int trial) noexcept {
  return trial_substream_seed(seed ^ 0x77a1c5b3ULL,
                              (static_cast<std::uint64_t>(p_index) << 32) |
                                  static_cast<std::uint64_t>(trial));
}

/// Forwarding tables restricted to the first k slices of a control plane.
/// Shared by the recovery harness and sim/replay.cpp, which must build the
/// exact network the recorded trial ran on.
FibSet build_fibs_subset(const Graph& g, const MultiInstanceRouting& mir,
                         SliceId k);

// ---------------------------------------------------------------------------
// Per-slice stretch census (§4.3: "99% of all paths in each tree have
// stretch of less than 2.6").
// ---------------------------------------------------------------------------

struct SliceStretchRow {
  SliceId slice = 0;
  SampleSummary stretch;
};

std::vector<SliceStretchRow> run_slice_stretch_census(
    const Graph& g, SliceId slices, const PerturbationConfig& perturbation,
    std::uint64_t seed, bool perturb_first_slice = false);

// ---------------------------------------------------------------------------
// Appendix A: slices needed for near-optimal reliability vs. graph size.
// ---------------------------------------------------------------------------

struct ScalingConfig {
  std::vector<NodeId> sizes{25, 50, 100, 200, 400};
  double p = 0.05;
  int trials = 50;
  /// Near-optimal means: mean disconnected fraction within this additive
  /// tolerance of the best possible.
  double tolerance = 0.005;
  SliceId max_k = 32;
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::uint64_t seed = 7;
  /// Control-plane build workers (0 ⇒ default_thread_count()); results are
  /// identical for every value, only build_ms changes.
  int threads = 0;
};

struct ScalingPoint {
  NodeId n = 0;
  EdgeId edges = 0;
  SliceId k_needed = 0;  ///< max_k + 1 when tolerance was never met
  double best_possible = 0.0;
  double achieved = 0.0;
  /// Wall time to build the max_k-slice control plane at this size.
  double build_ms = 0.0;
};

std::vector<ScalingPoint> run_scaling_experiment(const ScalingConfig& cfg);

// ---------------------------------------------------------------------------
// Appendix B: empirical check of the Theorem B.1 concentration bound.
// ---------------------------------------------------------------------------

struct StretchBoundConfig {
  double c = 0.5;                     ///< perturbations uniform in [-cL, cL]
  std::vector<double> r_values{1.5, 2.0, 3.0};
  int path_samples = 200;             ///< random (s, t) pairs
  int perturbation_samples = 200;     ///< perturbation draws per path
  std::uint64_t seed = 11;
};

struct StretchBoundPoint {
  double r = 0.0;
  /// Empirical P(|X - ||L||_1| >= r * c/sqrt(3) * ||L||_2).
  double empirical_violation = 0.0;
  /// Chebyshev bound 1 / r^2.
  double bound = 0.0;
};

std::vector<StretchBoundPoint> run_stretch_bound_experiment(
    const Graph& g, const StretchBoundConfig& cfg);

// ---------------------------------------------------------------------------
// Path-diversity growth: distinct arcs (and reachable path multiplicity) of
// the spliced union as k grows — the "exponential diversity for linear
// state" claim of §1/§4.2, plus the linear state metric itself.
// ---------------------------------------------------------------------------

struct DiversityPoint {
  SliceId k = 0;
  double mean_union_arcs = 0.0;      ///< arcs in the spliced union per dst
  double mean_union_links = 0.0;     ///< distinct underlying links per dst
  double log10_paths = 0.0;          ///< log10(#distinct spliced s->t walks
                                     ///< of bounded length), averaged
  std::size_t fib_entries = 0;       ///< installed routing state (linear)
};

std::vector<DiversityPoint> run_diversity_experiment(
    const Graph& g, const std::vector<SliceId>& k_values,
    const PerturbationConfig& perturbation, std::uint64_t seed);

}  // namespace splice
