#include "sim/experiments.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "dataplane/network.h"
#include "graph/connectivity.h"
#include "obs/anomaly.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "sim/trial_engine.h"
#include "splicing/metrics.h"
#include "splicing/reliability.h"
#include "util/assert.h"
#include "util/parallel.h"

namespace splice {

FibSet build_fibs_subset(const Graph& g, const MultiInstanceRouting& mir,
                         SliceId k) {
  SPLICE_EXPECTS(k >= 1 && k <= mir.slice_count());
  const NodeId n = g.node_count();
  FibSet fibs(k, n);
  for (SliceId s = 0; s < k; ++s) {
    const RoutingInstance& inst = mir.slice(s);
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (v == dst) continue;
        fibs.set(s, v, dst,
                 FibEntry{inst.next_hop(v, dst), inst.next_hop_edge(v, dst)});
      }
    }
  }
  return fibs;
}

namespace {

SliceId max_of(const std::vector<SliceId>& ks) {
  SPLICE_EXPECTS(!ks.empty());
  return *std::max_element(ks.begin(), ks.end());
}

#if SPLICE_OBS

const char* failure_name(FailureKind f) {
  switch (f) {
    case FailureKind::kLink:
      return "link";
    case FailureKind::kNode:
      return "node";
    case FailureKind::kLengthWeighted:
      return "length-weighted";
  }
  return "?";
}

const char* semantics_name(UnionSemantics s) {
  return s == UnionSemantics::kUndirectedLinks ? "undirected" : "directed";
}

/// Serializes the recovery config into ledger run params — everything
/// sim/replay.h needs to reconstruct the exact trial. Doubles use
/// shortest-round-trip formatting so parsing them back is lossless.
std::vector<std::pair<std::string, std::string>> recovery_run_params(
    const RecoveryExperimentConfig& cfg, const std::vector<double>& p_values) {
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("experiment", "recovery");
  out.emplace_back("seed", std::to_string(cfg.seed));
  out.emplace_back("scheme", to_string(cfg.recovery.scheme));
  std::string ks;
  for (std::size_t i = 0; i < cfg.k_values.size(); ++i) {
    if (i != 0) ks += ',';
    ks += std::to_string(cfg.k_values[i]);
  }
  out.emplace_back("k_values", ks);
  std::string ps;
  for (std::size_t i = 0; i < p_values.size(); ++i) {
    if (i != 0) ps += ',';
    ps += obs::json_double(p_values[i]);
  }
  out.emplace_back("p_values", ps);
  out.emplace_back("trials", std::to_string(cfg.trials));
  out.emplace_back("pair_sample", std::to_string(cfg.pair_sample));
  out.emplace_back("perturb", to_string(cfg.perturbation.kind));
  out.emplace_back("perturb_a", obs::json_double(cfg.perturbation.a));
  out.emplace_back("perturb_b", obs::json_double(cfg.perturbation.b));
  out.emplace_back("perturb_first_slice",
                   cfg.perturb_first_slice ? "1" : "0");
  out.emplace_back("semantics", semantics_name(cfg.semantics));
  out.emplace_back("failure", failure_name(cfg.failure));
  out.emplace_back("max_trials", std::to_string(cfg.recovery.max_trials));
  out.emplace_back("header_hops", std::to_string(cfg.recovery.header_hops));
  out.emplace_back("flip_probability",
                   obs::json_double(cfg.recovery.flip_probability));
  out.emplace_back("max_switches",
                   std::to_string(cfg.recovery.max_switches));
  out.emplace_back("ttl", std::to_string(cfg.recovery.ttl));
  return out;
}

#endif  // SPLICE_OBS

}  // namespace

ReliabilityCurves run_reliability_experiment(const Graph& g,
                                             const ReliabilityConfig& cfg) {
  SPLICE_OBS_SPAN("experiment.reliability");
  SPLICE_EXPECTS(cfg.trials >= 1);
  const std::vector<double> p_values =
      cfg.p_values.empty() ? paper_p_grid() : cfg.p_values;
  const SliceId k_max = max_of(cfg.k_values);

  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, cfg.perturbation, cfg.seed,
                            cfg.perturb_first_slice});
  const SplicedReliabilityAnalyzer analyzer(g, mir);

  ReliabilityCurves out;

  struct Scratch {
    ReachWorkspace reach;
  };
  /// One trial's raw samples; reduced in trial order below.
  struct TrialSample {
    std::vector<double> per_k;
    double best = 0.0;
    bool has = false;  ///< false when every pair's endpoint died
  };
  const TrialEngine<Scratch> engine(cfg.threads);

  for (double p : p_values) {
    const auto run_trial = [&](int trial, Scratch& sc) {
      TrialSample sample;
      // Trial randomness is a pure function of (seed, p, trial) so the
      // Monte Carlo loop parallelizes deterministically.
      Rng trial_rng(hash_mix(cfg.seed ^ 0xfa11fa11ULL,
                             static_cast<std::uint64_t>(trial),
                             static_cast<std::uint64_t>(p * 1e6)));
      // One failure set per trial, shared across every k (§4.2).
      std::vector<char> dead_nodes;
      std::vector<char> alive;
      switch (cfg.failure) {
        case FailureKind::kLink:
          alive = sample_alive_mask(g.edge_count(), p, trial_rng);
          break;
        case FailureKind::kNode:
          alive = sample_node_failure_mask(g, p, trial_rng, &dead_nodes);
          break;
        case FailureKind::kLengthWeighted:
          alive = sample_length_weighted_mask(g, p, trial_rng);
          break;
      }

      // Under node failures, pairs with a dead endpoint are excluded: a
      // dead node is disconnected from everything by definition, and no
      // routing scheme is chargeable for it. `dead_pairs` is the count of
      // ordered pairs involving at least one dead node (all of which every
      // metric reports disconnected, since all their links are down).
      long long dead_pairs = 0;
      long long live_total = total_ordered_pairs(g);
      if (cfg.failure == FailureKind::kNode) {
        long long dead = 0;
        for (char d : dead_nodes) dead += d ? 1 : 0;
        const long long n = g.node_count();
        dead_pairs = n * (n - 1) - (n - dead) * (n - dead - 1);
        live_total = (n - dead) * (n - dead - 1);
      }
      if (live_total > 0) {
        sample.has = true;
        sample.per_k.reserve(cfg.k_values.size());
        for (const SliceId k : cfg.k_values) {
          const long long disc =
              analyzer.disconnected_pairs(k, alive, cfg.semantics, sc.reach) -
              dead_pairs;
          sample.per_k.push_back(static_cast<double>(disc) /
                                 static_cast<double>(live_total));
        }
        sample.best =
            static_cast<double>(disconnected_ordered_pairs(g, alive) -
                                dead_pairs) /
            static_cast<double>(live_total);
      }
      return sample;
    };
    const std::vector<TrialSample> samples = engine.run<TrialSample>(
        cfg.trials, [] { return Scratch{}; }, run_trial);

    // Trial-ordered reduction: the same add sequence as the serial loop, so
    // the stats are bit-identical at every thread count.
    std::vector<OnlineStats> per_k(cfg.k_values.size());
    OnlineStats best;
    for (const TrialSample& sample : samples) {
      if (!sample.has) continue;
      for (std::size_t i = 0; i < per_k.size(); ++i)
        per_k[i].add(sample.per_k[i]);
      best.add(sample.best);
    }

    for (std::size_t i = 0; i < cfg.k_values.size(); ++i) {
      out.points.push_back(ReliabilityPoint{cfg.k_values[i], p,
                                            per_k[i].mean(),
                                            per_k[i].ci95_halfwidth()});
    }
    out.best_possible.push_back(
        ReliabilityPoint{0, p, best.mean(), best.ci95_halfwidth()});
  }
  return out;
}

std::vector<RecoveryPoint> run_recovery_experiment(
    const Graph& g, const RecoveryExperimentConfig& cfg) {
  SPLICE_OBS_SPAN("experiment.recovery");
  SPLICE_EXPECTS(cfg.trials >= 1);
  const std::vector<double> p_values =
      cfg.p_values.empty() ? paper_p_grid() : cfg.p_values;
  const SliceId k_max = max_of(cfg.k_values);

#if SPLICE_OBS
  // Anomalies recorded below carry this run's serialized config, making
  // each record a self-contained replay recipe (see sim/replay.h).
  if (obs::AnomalyLedger::enabled()) {
    obs::AnomalyLedger::global().begin_run(
        recovery_run_params(cfg, p_values));
  }
#endif

  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, cfg.perturbation, cfg.seed,
                            cfg.perturb_first_slice});
  const SplicedReliabilityAnalyzer analyzer(g, mir);
  const ShortestPathOracle oracle(g);

  // One forwarding-table set and data-plane network per k.
  std::vector<FibSet> fibs;
  fibs.reserve(cfg.k_values.size());
  for (SliceId k : cfg.k_values) fibs.push_back(build_fibs_subset(g, mir, k));
  std::vector<DataPlaneNetwork> nets;
  nets.reserve(cfg.k_values.size());
  for (const FibSet& f : fibs) nets.emplace_back(g, f);

  const NodeId n = g.node_count();
  std::vector<RecoveryPoint> out;

  // Historical substream chain: the serial implementation forked `master`
  // once per (p, trial) in loop order, and a fork consumes one parent draw.
  // Precompute the whole chain serially so trials can run on any worker
  // while seeing the exact Rng the serial loop would have handed them.
  Rng master(cfg.seed ^ 0x4ec04e41ULL);
  std::vector<std::vector<Rng>> trial_rngs;
  trial_rngs.reserve(p_values.size());
  for (const double p : p_values) {
    std::vector<Rng> row;
    row.reserve(static_cast<std::size_t>(cfg.trials));
    for (int trial = 0; trial < cfg.trials; ++trial) {
      row.push_back(
          master.fork(static_cast<std::uint64_t>(trial) * 999983 +
                      static_cast<std::uint64_t>(p * 1e6)));
    }
    trial_rngs.push_back(std::move(row));
  }

  /// One trial's contribution for one k: counters, plus every value the
  /// serial loop would have pushed into the per-k OnlineStats accumulators,
  /// in pair order — replayed trial-by-trial below so the final statistics
  /// are the serial loop's, bit for bit, at every thread count.
  struct PerKTrial {
    long long pairs = 0;
    long long initial_broken = 0;
    long long unrecovered = 0;
    long long disconnected = 0;
    std::vector<double> trials_add;
    std::vector<double> stretch_add;
    std::vector<double> hop_add;
    long long recovered_paths = 0;
    long long two_hop_loops = 0;
    long long revisits = 0;
  };
  using TrialResult = std::vector<PerKTrial>;  // one entry per k

  struct Scratch {
    std::vector<DataPlaneNetwork> nets;  ///< private copies: masks mutate
    ForwardWorkspace fwd;
    ReachWorkspace reach;
  };
  const auto make_scratch = [&] {
    Scratch sc;
    sc.nets = nets;
    return sc;
  };
  const TrialEngine<Scratch> engine(cfg.threads);

  for (std::size_t pi = 0; pi < p_values.size(); ++pi) {
    const double p = p_values[pi];

    const auto run_trial = [&](int trial, Scratch& sc) {
      TrialResult res(cfg.k_values.size());
#if SPLICE_OBS
      // Hoisted obs gates: one relaxed load each per trial, zero per pair
      // when disabled. The walk stream key is a pure function of
      // (seed, p index, trial) — never of the worker thread — so the
      // sampled-walk set is bit-identical at every thread count.
      const bool rec_on = obs::FlightRecorder::enabled();
      const bool ledger_on = obs::AnomalyLedger::enabled();
      const std::uint64_t trial_key = recovery_walk_key(cfg.seed, pi, trial);
      const double stretch_thr =
          ledger_on ? obs::AnomalyLedger::global().stretch_threshold() : 0.0;
#endif
      Rng trial_rng = trial_rngs[pi][static_cast<std::size_t>(trial)];
      std::vector<char> dead_nodes;
      std::vector<char> alive;
      switch (cfg.failure) {
        case FailureKind::kLink:
          alive = sample_alive_mask(g.edge_count(), p, trial_rng);
          break;
        case FailureKind::kNode:
          alive = sample_node_failure_mask(g, p, trial_rng, &dead_nodes);
          break;
        case FailureKind::kLengthWeighted:
          alive = sample_length_weighted_mask(g, p, trial_rng);
          break;
      }
      auto endpoint_dead = [&](NodeId v) {
        return !dead_nodes.empty() &&
               dead_nodes[static_cast<std::size_t>(v)] != 0;
      };

      // Sampled or exhaustive ordered pair set, shared across k.
      std::vector<std::pair<NodeId, NodeId>> pairs;
      if (cfg.pair_sample > 0) {
        pairs.reserve(static_cast<std::size_t>(cfg.pair_sample));
        while (static_cast<int>(pairs.size()) < cfg.pair_sample) {
          const auto s = static_cast<NodeId>(
              trial_rng.below(static_cast<std::uint64_t>(n)));
          const auto t = static_cast<NodeId>(
              trial_rng.below(static_cast<std::uint64_t>(n)));
          if (s != t) pairs.emplace_back(s, t);
        }
      }

      for (std::size_t ki = 0; ki < cfg.k_values.size(); ++ki) {
        const SliceId k = cfg.k_values[ki];
        DataPlaneNetwork& net = sc.nets[ki];
        net.set_link_mask(alive);
        PerKTrial& a = res[ki];

        RecoveryConfig rcfg = cfg.recovery;
        rcfg.header_hops =
            std::min(rcfg.header_hops, 128 / std::max(1, bits_per_hop(k)));

        auto run_pair = [&](NodeId src, NodeId dst,
                            std::span<const char> reach_dst_set) {
          ++a.pairs;
          const bool spliced_ok =
              reach_dst_set[static_cast<std::size_t>(src)] != 0;
          if (!spliced_ok) ++a.disconnected;

          Rng pair_rng = trial_rng.fork(
              static_cast<std::uint64_t>(src) * 131071 +
              static_cast<std::uint64_t>(dst) + static_cast<std::uint64_t>(k));
#if SPLICE_OBS
          // Arms sampled packet-walk capture for the forwarding below when
          // this episode's deterministic walk id hashes into the sample.
          std::optional<obs::WalkScope> walk;
          if (rec_on) {
            walk.emplace(obs::walk_id(trial_key,
                                      static_cast<std::uint64_t>(k),
                                      static_cast<std::uint64_t>(src),
                                      static_cast<std::uint64_t>(dst)));
          }
#endif
          FastRecoveryResult r;
          if (k == 1) {
            // "No splicing": a broken shortest path cannot be recovered.
            Packet probe;
            probe.src = src;
            probe.dst = dst;
            probe.ttl = rcfg.ttl;
            const ForwardSummary d = net.forward_stats(probe);
            r.initially_connected = d.delivered();
            r.delivered = d.delivered();
            r.summary = d;
          } else {
            r = attempt_recovery_fast(net, src, dst, rcfg, pair_rng, sc.fwd);
          }

          bool rec_two_hop = false;
          bool rec_revisit = false;
          double rec_stretch = 0.0;
          if (!r.initially_connected) {
            ++a.initial_broken;
            if (!r.delivered) {
              ++a.unrecovered;
            } else {
              // Recovered after an initial failure: collect §4.3 metrics.
              // (Unreachable for k == 1, where initially_connected equals
              // delivered — the successful trace in sc.fwd.hops is only
              // consulted on this path.)
              if (r.trials_used > 0)
                a.trials_add.push_back(static_cast<double>(r.trials_used));
              const Weight base = oracle.distance(src, dst);
              const int base_hops = oracle.hops(src, dst);
              if (base > 0.0 && base < kInfiniteWeight) {
                rec_stretch = r.summary.cost / base;
                a.stretch_add.push_back(rec_stretch);
              }
              if (base_hops > 0)
                a.hop_add.push_back(static_cast<double>(r.summary.hops) /
                                    static_cast<double>(base_hops));
              ++a.recovered_paths;
              rec_two_hop =
                  has_two_hop_loop(std::span<const HopRecord>(sc.fwd.hops));
              if (rec_two_hop) ++a.two_hop_loops;
              rec_revisit = count_node_revisits(sc.fwd.hops, n, sc.fwd) > 0;
              if (rec_revisit) ++a.revisits;
            }
          }
#if SPLICE_OBS
          if (ledger_on) {
            obs::Anomaly an;
            an.seed = cfg.seed;
            an.p = p;
            an.trial = static_cast<std::uint32_t>(trial);
            an.k = static_cast<std::uint32_t>(k);
            an.src = static_cast<std::uint32_t>(src);
            an.dst = static_cast<std::uint32_t>(dst);
            an.bits_lo = r.header.stream().lo();
            an.bits_hi = r.header.stream().hi();
            an.attempts = static_cast<std::uint32_t>(r.trials_used);
            an.hops = static_cast<std::uint32_t>(r.summary.hops);
            an.stretch = rec_stretch;
            auto& ledger = obs::AnomalyLedger::global();
            if (rec_two_hop) {
              an.kind = obs::AnomalyKind::kTwoHopLoop;
              ledger.record(an);
            }
            if (rec_revisit) {
              an.kind = obs::AnomalyKind::kRevisitLoop;
              ledger.record(an);
            }
            if (rec_stretch > stretch_thr && stretch_thr > 0.0) {
              an.kind = obs::AnomalyKind::kHighStretch;
              ledger.record(an);
            }
            if (!r.delivered &&
                r.summary.outcome == ForwardOutcome::kTtlExpired) {
              an.kind = obs::AnomalyKind::kTtlExpired;
              ledger.record(an);
            }
          }
#endif
        };

        if (cfg.pair_sample > 0) {
          // Group sampled pairs by destination to share reverse BFS runs.
          for (const auto& [src, dst] : pairs) {
            if (endpoint_dead(src) || endpoint_dead(dst)) continue;
            analyzer.reachable_sources_into(dst, k, alive, cfg.semantics,
                                            sc.reach);
            run_pair(src, dst, sc.reach.seen);
          }
        } else {
          for (NodeId dst = 0; dst < n; ++dst) {
            if (endpoint_dead(dst)) continue;
            analyzer.reachable_sources_into(dst, k, alive, cfg.semantics,
                                            sc.reach);
            for (NodeId src = 0; src < n; ++src) {
              if (src != dst && !endpoint_dead(src))
                run_pair(src, dst, sc.reach.seen);
            }
          }
        }
      }
      return res;
    };

    const std::vector<TrialResult> results =
        engine.run<TrialResult>(cfg.trials, make_scratch, run_trial);

    // Accumulators per k, filled by replaying trials in order — exactly the
    // serial loop's accumulation sequence.
    struct Acc {
      long long pairs = 0;
      long long initial_broken = 0;
      long long unrecovered = 0;
      long long disconnected = 0;
      OnlineStats trials;
      OnlineStats stretch;
      OnlineStats hop_inflation;
      std::vector<double> stretches;
      long long recovered_paths = 0;
      long long two_hop_loops = 0;
      long long revisits = 0;
    };
    std::vector<Acc> acc(cfg.k_values.size());
    for (const TrialResult& res : results) {
      for (std::size_t ki = 0; ki < cfg.k_values.size(); ++ki) {
        const PerKTrial& t = res[ki];
        Acc& a = acc[ki];
        a.pairs += t.pairs;
        a.initial_broken += t.initial_broken;
        a.unrecovered += t.unrecovered;
        a.disconnected += t.disconnected;
        for (const double v : t.trials_add) a.trials.add(v);
        for (const double v : t.stretch_add) {
          a.stretch.add(v);
          a.stretches.push_back(v);
        }
        for (const double v : t.hop_add) a.hop_inflation.add(v);
        a.recovered_paths += t.recovered_paths;
        a.two_hop_loops += t.two_hop_loops;
        a.revisits += t.revisits;
      }
    }

    for (std::size_t ki = 0; ki < cfg.k_values.size(); ++ki) {
      const Acc& a = acc[ki];
      RecoveryPoint pt;
      pt.k = cfg.k_values[ki];
      pt.p = p;
      const auto pairs = static_cast<double>(std::max<long long>(1, a.pairs));
      pt.frac_unrecovered = static_cast<double>(a.unrecovered) / pairs;
      pt.frac_disconnected = static_cast<double>(a.disconnected) / pairs;
      pt.frac_initial_broken = static_cast<double>(a.initial_broken) / pairs;
      pt.mean_trials = a.trials.mean();
      pt.mean_stretch = a.stretch.mean();
      pt.mean_hop_inflation = a.hop_inflation.mean();
      pt.p99_stretch = percentile(a.stretches, 99.0);
      const auto rec =
          static_cast<double>(std::max<long long>(1, a.recovered_paths));
      pt.two_hop_loop_rate = static_cast<double>(a.two_hop_loops) / rec;
      pt.revisit_rate = static_cast<double>(a.revisits) / rec;
      pt.recovered_paths = a.recovered_paths;
      out.push_back(pt);
    }
  }
  return out;
}

std::vector<SliceStretchRow> run_slice_stretch_census(
    const Graph& g, SliceId slices, const PerturbationConfig& perturbation,
    std::uint64_t seed, bool perturb_first_slice) {
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{slices, perturbation, seed, perturb_first_slice});
  std::vector<SliceStretchRow> out;
  for (SliceId s = 0; s < slices; ++s) {
    const auto stretches = slice_stretches(g, mir.slice(s));
    out.push_back(SliceStretchRow{s, summarize(stretches)});
  }
  return out;
}

std::vector<ScalingPoint> run_scaling_experiment(const ScalingConfig& cfg) {
  std::vector<ScalingPoint> out;
  Rng master(cfg.seed);
  for (NodeId n : cfg.sizes) {
    // Waxman geometry scaled so average degree stays roughly constant.
    Graph g = waxman(n, 0.9, 4.0 / static_cast<double>(n) + 0.03,
                     master.fork(static_cast<std::uint64_t>(n))());
    make_connected(g, master.fork(static_cast<std::uint64_t>(n) + 1)());

    const auto build_start = std::chrono::steady_clock::now();
    const MultiInstanceRouting mir(
        g, ControlPlaneConfig{cfg.max_k, cfg.perturbation,
                              master.fork(static_cast<std::uint64_t>(n) + 2)(),
                              false, cfg.threads});
    const double build_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - build_start)
            .count();
    const SplicedReliabilityAnalyzer analyzer(g, mir);

    // Shared failure masks across all k.
    std::vector<std::vector<char>> masks;
    masks.reserve(static_cast<std::size_t>(cfg.trials));
    Rng mask_rng = master.fork(static_cast<std::uint64_t>(n) + 3);
    for (int t = 0; t < cfg.trials; ++t)
      masks.push_back(sample_alive_mask(g.edge_count(), cfg.p, mask_rng));

    double best_mean = 0.0;
    for (const auto& mask : masks) {
      best_mean += static_cast<double>(disconnected_ordered_pairs(g, mask)) /
                   static_cast<double>(total_ordered_pairs(g));
    }
    best_mean /= static_cast<double>(cfg.trials);

    ScalingPoint pt;
    pt.n = n;
    pt.edges = g.edge_count();
    pt.best_possible = best_mean;
    pt.build_ms = build_ms;
    SPLICE_OBS_GAUGE_SET("experiment.slice_build_ms", build_ms);
    pt.k_needed = cfg.max_k + 1;
    for (SliceId k = 1; k <= cfg.max_k; ++k) {
      double mean = 0.0;
      for (const auto& mask : masks)
        mean += analyzer.disconnected_fraction(k, mask);
      mean /= static_cast<double>(cfg.trials);
      if (mean <= best_mean + cfg.tolerance) {
        pt.k_needed = k;
        pt.achieved = mean;
        break;
      }
      pt.achieved = mean;
    }
    out.push_back(pt);
  }
  return out;
}

std::vector<StretchBoundPoint> run_stretch_bound_experiment(
    const Graph& g, const StretchBoundConfig& cfg) {
  SPLICE_EXPECTS(cfg.c >= 0.0 && cfg.c < 1.0);
  Rng rng(cfg.seed);
  const NodeId n = g.node_count();

  // Sample random shortest paths (their original edge-weight vectors L).
  std::vector<std::vector<Weight>> paths;
  int guard = cfg.path_samples * 20;
  while (static_cast<int>(paths.size()) < cfg.path_samples && guard-- > 0) {
    const auto s =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    const auto t =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (s == t) continue;
    const ShortestPaths sp = dijkstra(g, s);
    if (!sp.reached(t)) continue;
    std::vector<Weight> lengths;
    for (NodeId cur = t; cur != s;
         cur = sp.parent[static_cast<std::size_t>(cur)]) {
      lengths.push_back(
          g.edge(sp.parent_edge[static_cast<std::size_t>(cur)]).weight);
    }
    if (lengths.size() >= 2) paths.push_back(std::move(lengths));
  }

  std::vector<StretchBoundPoint> out;
  for (double r : cfg.r_values) {
    long long violations = 0;
    long long samples = 0;
    for (const auto& lengths : paths) {
      double l1 = 0.0;
      double l2sq = 0.0;
      for (Weight w : lengths) {
        l1 += w;
        l2sq += w * w;
      }
      const double threshold = r * cfg.c / std::sqrt(3.0) * std::sqrt(l2sq);
      for (int draw = 0; draw < cfg.perturbation_samples; ++draw) {
        double x = 0.0;
        for (Weight w : lengths) x += w + rng.uniform(-cfg.c * w, cfg.c * w);
        ++samples;
        if (std::abs(x - l1) >= threshold) ++violations;
      }
    }
    StretchBoundPoint pt;
    pt.r = r;
    pt.empirical_violation =
        samples == 0 ? 0.0
                     : static_cast<double>(violations) /
                           static_cast<double>(samples);
    pt.bound = 1.0 / (r * r);
    out.push_back(pt);
  }
  return out;
}

std::vector<DiversityPoint> run_diversity_experiment(
    const Graph& g, const std::vector<SliceId>& k_values,
    const PerturbationConfig& perturbation, std::uint64_t seed) {
  const SliceId k_max = max_of(k_values);
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, perturbation, seed, false});
  const NodeId n = g.node_count();
  const int horizon = 2 * n;  // walk-length cap for the diversity proxy

  std::vector<DiversityPoint> out;
  for (SliceId k : k_values) {
    DiversityPoint pt;
    pt.k = k;
    pt.fib_entries = static_cast<std::size_t>(k) *
                     static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(n - 1);
    double arcs_total = 0.0;
    double links_total = 0.0;
    double log_paths_total = 0.0;
    long long log_paths_count = 0;

    for (NodeId dst = 0; dst < n; ++dst) {
      // Forward arcs of the union toward dst, plus distinct link census.
      std::vector<std::vector<NodeId>> succ(static_cast<std::size_t>(n));
      std::vector<char> link_seen(static_cast<std::size_t>(g.edge_count()), 0);
      std::size_t arcs = 0;
      for (SliceId s = 0; s < k; ++s) {
        const RoutingInstance& inst = mir.slice(s);
        for (NodeId v = 0; v < n; ++v) {
          if (v == dst) continue;
          const NodeId nh = inst.next_hop(v, dst);
          if (nh == kInvalidNode) continue;
          auto& list = succ[static_cast<std::size_t>(v)];
          if (std::find(list.begin(), list.end(), nh) == list.end()) {
            list.push_back(nh);
            ++arcs;
          }
          link_seen[static_cast<std::size_t>(inst.next_hop_edge(v, dst))] = 1;
        }
      }
      arcs_total += static_cast<double>(arcs);
      for (char seen : link_seen) links_total += seen ? 1.0 : 0.0;

      // Walk-count diversity proxy: number of <= horizon-hop walks v -> dst
      // in the union, in log domain to avoid overflow.
      std::vector<double> reach_now(static_cast<std::size_t>(n), 0.0);
      std::vector<double> total(static_cast<std::size_t>(n), 0.0);
      reach_now[static_cast<std::size_t>(dst)] = 1.0;
      std::vector<double> next(static_cast<std::size_t>(n), 0.0);
      for (int h = 0; h < horizon; ++h) {
        std::fill(next.begin(), next.end(), 0.0);
        for (NodeId v = 0; v < n; ++v) {
          double sum = 0.0;
          for (NodeId u : succ[static_cast<std::size_t>(v)])
            sum += reach_now[static_cast<std::size_t>(u)];
          next[static_cast<std::size_t>(v)] = sum;
        }
        for (NodeId v = 0; v < n; ++v) {
          total[static_cast<std::size_t>(v)] +=
              next[static_cast<std::size_t>(v)];
          // Renormalization guard: clip to avoid inf for large k.
          if (total[static_cast<std::size_t>(v)] > 1e290)
            total[static_cast<std::size_t>(v)] = 1e290;
          if (next[static_cast<std::size_t>(v)] > 1e290)
            next[static_cast<std::size_t>(v)] = 1e290;
        }
        std::swap(reach_now, next);
      }
      for (NodeId v = 0; v < n; ++v) {
        if (v == dst) continue;
        const double walks = total[static_cast<std::size_t>(v)];
        if (walks > 0.0) {
          log_paths_total += std::log10(walks);
          ++log_paths_count;
        }
      }
    }
    pt.mean_union_arcs = arcs_total / static_cast<double>(n);
    pt.mean_union_links = links_total / static_cast<double>(n);
    pt.log10_paths =
        log_paths_count == 0
            ? 0.0
            : log_paths_total / static_cast<double>(log_paths_count);
    out.push_back(pt);
  }
  return out;
}

}  // namespace splice
