#include "sim/experiments.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "dataplane/network.h"
#include "graph/connectivity.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "splicing/metrics.h"
#include "splicing/reliability.h"
#include "util/assert.h"
#include "util/parallel.h"

namespace splice {

namespace {

/// Forwarding tables restricted to the first k slices of a control plane.
FibSet build_fibs_subset(const Graph& g, const MultiInstanceRouting& mir,
                         SliceId k) {
  SPLICE_EXPECTS(k >= 1 && k <= mir.slice_count());
  const NodeId n = g.node_count();
  FibSet fibs(k, n);
  for (SliceId s = 0; s < k; ++s) {
    const RoutingInstance& inst = mir.slice(s);
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (v == dst) continue;
        fibs.set(s, v, dst,
                 FibEntry{inst.next_hop(v, dst), inst.next_hop_edge(v, dst)});
      }
    }
  }
  return fibs;
}

SliceId max_of(const std::vector<SliceId>& ks) {
  SPLICE_EXPECTS(!ks.empty());
  return *std::max_element(ks.begin(), ks.end());
}

}  // namespace

ReliabilityCurves run_reliability_experiment(const Graph& g,
                                             const ReliabilityConfig& cfg) {
  SPLICE_EXPECTS(cfg.trials >= 1);
  const std::vector<double> p_values =
      cfg.p_values.empty() ? paper_p_grid() : cfg.p_values;
  const SliceId k_max = max_of(cfg.k_values);

  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, cfg.perturbation, cfg.seed,
                            cfg.perturb_first_slice});
  const SplicedReliabilityAnalyzer analyzer(g, mir);

  ReliabilityCurves out;

  for (double p : p_values) {
    struct Acc {
      std::vector<OnlineStats> per_k;
      OnlineStats best;
    };
    const auto run_trial = [&](int trial, Acc& acc) {
      if (acc.per_k.empty()) acc.per_k.resize(cfg.k_values.size());
      // Trial randomness is a pure function of (seed, p, trial) so the
      // Monte Carlo loop parallelizes deterministically.
      Rng trial_rng(hash_mix(cfg.seed ^ 0xfa11fa11ULL,
                             static_cast<std::uint64_t>(trial),
                             static_cast<std::uint64_t>(p * 1e6)));
      // One failure set per trial, shared across every k (§4.2).
      std::vector<char> dead_nodes;
      std::vector<char> alive;
      switch (cfg.failure) {
        case FailureKind::kLink:
          alive = sample_alive_mask(g.edge_count(), p, trial_rng);
          break;
        case FailureKind::kNode:
          alive = sample_node_failure_mask(g, p, trial_rng, &dead_nodes);
          break;
        case FailureKind::kLengthWeighted:
          alive = sample_length_weighted_mask(g, p, trial_rng);
          break;
      }

      // Under node failures, pairs with a dead endpoint are excluded: a
      // dead node is disconnected from everything by definition, and no
      // routing scheme is chargeable for it. `dead_pairs` is the count of
      // ordered pairs involving at least one dead node (all of which every
      // metric reports disconnected, since all their links are down).
      long long dead_pairs = 0;
      long long live_total = total_ordered_pairs(g);
      if (cfg.failure == FailureKind::kNode) {
        long long dead = 0;
        for (char d : dead_nodes) dead += d ? 1 : 0;
        const long long n = g.node_count();
        dead_pairs = n * (n - 1) - (n - dead) * (n - dead - 1);
        live_total = (n - dead) * (n - dead - 1);
      }
      if (live_total > 0) {
        for (std::size_t i = 0; i < cfg.k_values.size(); ++i) {
          const long long disc =
              analyzer.disconnected_pairs(cfg.k_values[i], alive,
                                          cfg.semantics) -
              dead_pairs;
          acc.per_k[i].add(static_cast<double>(disc) /
                           static_cast<double>(live_total));
        }
        const double best_frac =
            static_cast<double>(disconnected_ordered_pairs(g, alive) -
                                dead_pairs) /
            static_cast<double>(live_total);
        acc.best.add(best_frac);
      }
    };
    const Acc merged = parallel_trials<Acc>(
        cfg.trials, cfg.threads, run_trial, [](Acc& into, const Acc& from) {
          if (into.per_k.empty()) into.per_k.resize(from.per_k.size());
          for (std::size_t i = 0; i < from.per_k.size(); ++i)
            into.per_k[i].merge(from.per_k[i]);
          into.best.merge(from.best);
        });

    for (std::size_t i = 0; i < cfg.k_values.size(); ++i) {
      const OnlineStats stats =
          merged.per_k.empty() ? OnlineStats{} : merged.per_k[i];
      out.points.push_back(ReliabilityPoint{cfg.k_values[i], p, stats.mean(),
                                            stats.ci95_halfwidth()});
    }
    out.best_possible.push_back(ReliabilityPoint{
        0, p, merged.best.mean(), merged.best.ci95_halfwidth()});
  }
  return out;
}

std::vector<RecoveryPoint> run_recovery_experiment(
    const Graph& g, const RecoveryExperimentConfig& cfg) {
  SPLICE_EXPECTS(cfg.trials >= 1);
  const std::vector<double> p_values =
      cfg.p_values.empty() ? paper_p_grid() : cfg.p_values;
  const SliceId k_max = max_of(cfg.k_values);

  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, cfg.perturbation, cfg.seed,
                            cfg.perturb_first_slice});
  const SplicedReliabilityAnalyzer analyzer(g, mir);
  const ShortestPathOracle oracle(g);

  // One forwarding-table set and data-plane network per k.
  std::vector<FibSet> fibs;
  fibs.reserve(cfg.k_values.size());
  for (SliceId k : cfg.k_values) fibs.push_back(build_fibs_subset(g, mir, k));
  std::vector<DataPlaneNetwork> nets;
  nets.reserve(cfg.k_values.size());
  for (const FibSet& f : fibs) nets.emplace_back(g, f);

  const NodeId n = g.node_count();
  std::vector<RecoveryPoint> out;
  Rng master(cfg.seed ^ 0x4ec04e41ULL);

  for (double p : p_values) {
    // Accumulators per k.
    struct Acc {
      long long pairs = 0;
      long long initial_broken = 0;
      long long unrecovered = 0;
      long long disconnected = 0;
      OnlineStats trials;
      OnlineStats stretch;
      OnlineStats hop_inflation;
      std::vector<double> stretches;
      long long recovered_paths = 0;
      long long two_hop_loops = 0;
      long long revisits = 0;
    };
    std::vector<Acc> acc(cfg.k_values.size());

    for (int trial = 0; trial < cfg.trials; ++trial) {
      Rng trial_rng = master.fork(static_cast<std::uint64_t>(trial) * 999983 +
                                  static_cast<std::uint64_t>(p * 1e6));
      std::vector<char> dead_nodes;
      std::vector<char> alive;
      switch (cfg.failure) {
        case FailureKind::kLink:
          alive = sample_alive_mask(g.edge_count(), p, trial_rng);
          break;
        case FailureKind::kNode:
          alive = sample_node_failure_mask(g, p, trial_rng, &dead_nodes);
          break;
        case FailureKind::kLengthWeighted:
          alive = sample_length_weighted_mask(g, p, trial_rng);
          break;
      }
      auto endpoint_dead = [&](NodeId v) {
        return !dead_nodes.empty() &&
               dead_nodes[static_cast<std::size_t>(v)] != 0;
      };

      // Sampled or exhaustive ordered pair set, shared across k.
      std::vector<std::pair<NodeId, NodeId>> pairs;
      if (cfg.pair_sample > 0) {
        pairs.reserve(static_cast<std::size_t>(cfg.pair_sample));
        while (static_cast<int>(pairs.size()) < cfg.pair_sample) {
          const auto s = static_cast<NodeId>(
              trial_rng.below(static_cast<std::uint64_t>(n)));
          const auto t = static_cast<NodeId>(
              trial_rng.below(static_cast<std::uint64_t>(n)));
          if (s != t) pairs.emplace_back(s, t);
        }
      }

      for (std::size_t ki = 0; ki < cfg.k_values.size(); ++ki) {
        const SliceId k = cfg.k_values[ki];
        DataPlaneNetwork& net = nets[ki];
        net.set_link_mask(alive);
        Acc& a = acc[ki];

        RecoveryConfig rcfg = cfg.recovery;
        rcfg.header_hops =
            std::min(rcfg.header_hops, 128 / std::max(1, bits_per_hop(k)));

        auto run_pair = [&](NodeId src, NodeId dst,
                            const std::vector<char>& reach_dst_set) {
          ++a.pairs;
          const bool spliced_ok =
              reach_dst_set[static_cast<std::size_t>(src)] != 0;
          if (!spliced_ok) ++a.disconnected;

          Rng pair_rng = trial_rng.fork(
              static_cast<std::uint64_t>(src) * 131071 +
              static_cast<std::uint64_t>(dst) + static_cast<std::uint64_t>(k));
          RecoveryResult r;
          if (k == 1) {
            // "No splicing": a broken shortest path cannot be recovered.
            Packet probe;
            probe.src = src;
            probe.dst = dst;
            probe.ttl = rcfg.ttl;
            const Delivery d = net.forward(probe, ForwardingPolicy{});
            r.initially_connected = d.delivered();
            r.delivered = d.delivered();
            if (d.delivered()) r.delivery = d;
          } else {
            r = attempt_recovery(net, src, dst, rcfg, pair_rng);
          }

          if (!r.initially_connected) {
            ++a.initial_broken;
            if (!r.delivered) {
              ++a.unrecovered;
            } else {
              // Recovered after an initial failure: collect §4.3 metrics.
              if (r.trials_used > 0)
                a.trials.add(static_cast<double>(r.trials_used));
              const Weight base = oracle.distance(src, dst);
              const int base_hops = oracle.hops(src, dst);
              if (base > 0.0 && base < kInfiniteWeight) {
                const double st = trace_stretch(g, r.delivery, base);
                a.stretch.add(st);
                a.stretches.push_back(st);
              }
              if (base_hops > 0)
                a.hop_inflation.add(
                    trace_hop_inflation(r.delivery, base_hops));
              ++a.recovered_paths;
              if (has_two_hop_loop(r.delivery)) ++a.two_hop_loops;
              if (count_node_revisits(r.delivery) > 0) ++a.revisits;
            }
          }
        };

        if (cfg.pair_sample > 0) {
          // Group sampled pairs by destination to share reverse BFS runs.
          for (const auto& [src, dst] : pairs) {
            if (endpoint_dead(src) || endpoint_dead(dst)) continue;
            const auto reach =
                analyzer.reachable_sources(dst, k, alive, cfg.semantics);
            run_pair(src, dst, reach);
          }
        } else {
          for (NodeId dst = 0; dst < n; ++dst) {
            if (endpoint_dead(dst)) continue;
            const auto reach =
                analyzer.reachable_sources(dst, k, alive, cfg.semantics);
            for (NodeId src = 0; src < n; ++src) {
              if (src != dst && !endpoint_dead(src)) run_pair(src, dst, reach);
            }
          }
        }
      }
    }

    for (std::size_t ki = 0; ki < cfg.k_values.size(); ++ki) {
      const Acc& a = acc[ki];
      RecoveryPoint pt;
      pt.k = cfg.k_values[ki];
      pt.p = p;
      const auto pairs = static_cast<double>(std::max<long long>(1, a.pairs));
      pt.frac_unrecovered = static_cast<double>(a.unrecovered) / pairs;
      pt.frac_disconnected = static_cast<double>(a.disconnected) / pairs;
      pt.frac_initial_broken = static_cast<double>(a.initial_broken) / pairs;
      pt.mean_trials = a.trials.mean();
      pt.mean_stretch = a.stretch.mean();
      pt.mean_hop_inflation = a.hop_inflation.mean();
      pt.p99_stretch = percentile(a.stretches, 99.0);
      const auto rec =
          static_cast<double>(std::max<long long>(1, a.recovered_paths));
      pt.two_hop_loop_rate = static_cast<double>(a.two_hop_loops) / rec;
      pt.revisit_rate = static_cast<double>(a.revisits) / rec;
      out.push_back(pt);
    }
  }
  return out;
}

std::vector<SliceStretchRow> run_slice_stretch_census(
    const Graph& g, SliceId slices, const PerturbationConfig& perturbation,
    std::uint64_t seed, bool perturb_first_slice) {
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{slices, perturbation, seed, perturb_first_slice});
  std::vector<SliceStretchRow> out;
  for (SliceId s = 0; s < slices; ++s) {
    const auto stretches = slice_stretches(g, mir.slice(s));
    out.push_back(SliceStretchRow{s, summarize(stretches)});
  }
  return out;
}

std::vector<ScalingPoint> run_scaling_experiment(const ScalingConfig& cfg) {
  std::vector<ScalingPoint> out;
  Rng master(cfg.seed);
  for (NodeId n : cfg.sizes) {
    // Waxman geometry scaled so average degree stays roughly constant.
    Graph g = waxman(n, 0.9, 4.0 / static_cast<double>(n) + 0.03,
                     master.fork(static_cast<std::uint64_t>(n))());
    make_connected(g, master.fork(static_cast<std::uint64_t>(n) + 1)());

    const auto build_start = std::chrono::steady_clock::now();
    const MultiInstanceRouting mir(
        g, ControlPlaneConfig{cfg.max_k, cfg.perturbation,
                              master.fork(static_cast<std::uint64_t>(n) + 2)(),
                              false, cfg.threads});
    const double build_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - build_start)
            .count();
    const SplicedReliabilityAnalyzer analyzer(g, mir);

    // Shared failure masks across all k.
    std::vector<std::vector<char>> masks;
    masks.reserve(static_cast<std::size_t>(cfg.trials));
    Rng mask_rng = master.fork(static_cast<std::uint64_t>(n) + 3);
    for (int t = 0; t < cfg.trials; ++t)
      masks.push_back(sample_alive_mask(g.edge_count(), cfg.p, mask_rng));

    double best_mean = 0.0;
    for (const auto& mask : masks) {
      best_mean += static_cast<double>(disconnected_ordered_pairs(g, mask)) /
                   static_cast<double>(total_ordered_pairs(g));
    }
    best_mean /= static_cast<double>(cfg.trials);

    ScalingPoint pt;
    pt.n = n;
    pt.edges = g.edge_count();
    pt.best_possible = best_mean;
    pt.build_ms = build_ms;
    pt.k_needed = cfg.max_k + 1;
    for (SliceId k = 1; k <= cfg.max_k; ++k) {
      double mean = 0.0;
      for (const auto& mask : masks)
        mean += analyzer.disconnected_fraction(k, mask);
      mean /= static_cast<double>(cfg.trials);
      if (mean <= best_mean + cfg.tolerance) {
        pt.k_needed = k;
        pt.achieved = mean;
        break;
      }
      pt.achieved = mean;
    }
    out.push_back(pt);
  }
  return out;
}

std::vector<StretchBoundPoint> run_stretch_bound_experiment(
    const Graph& g, const StretchBoundConfig& cfg) {
  SPLICE_EXPECTS(cfg.c >= 0.0 && cfg.c < 1.0);
  Rng rng(cfg.seed);
  const NodeId n = g.node_count();

  // Sample random shortest paths (their original edge-weight vectors L).
  std::vector<std::vector<Weight>> paths;
  int guard = cfg.path_samples * 20;
  while (static_cast<int>(paths.size()) < cfg.path_samples && guard-- > 0) {
    const auto s =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    const auto t =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (s == t) continue;
    const ShortestPaths sp = dijkstra(g, s);
    if (!sp.reached(t)) continue;
    std::vector<Weight> lengths;
    for (NodeId cur = t; cur != s;
         cur = sp.parent[static_cast<std::size_t>(cur)]) {
      lengths.push_back(
          g.edge(sp.parent_edge[static_cast<std::size_t>(cur)]).weight);
    }
    if (lengths.size() >= 2) paths.push_back(std::move(lengths));
  }

  std::vector<StretchBoundPoint> out;
  for (double r : cfg.r_values) {
    long long violations = 0;
    long long samples = 0;
    for (const auto& lengths : paths) {
      double l1 = 0.0;
      double l2sq = 0.0;
      for (Weight w : lengths) {
        l1 += w;
        l2sq += w * w;
      }
      const double threshold = r * cfg.c / std::sqrt(3.0) * std::sqrt(l2sq);
      for (int draw = 0; draw < cfg.perturbation_samples; ++draw) {
        double x = 0.0;
        for (Weight w : lengths) x += w + rng.uniform(-cfg.c * w, cfg.c * w);
        ++samples;
        if (std::abs(x - l1) >= threshold) ++violations;
      }
    }
    StretchBoundPoint pt;
    pt.r = r;
    pt.empirical_violation =
        samples == 0 ? 0.0
                     : static_cast<double>(violations) /
                           static_cast<double>(samples);
    pt.bound = 1.0 / (r * r);
    out.push_back(pt);
  }
  return out;
}

std::vector<DiversityPoint> run_diversity_experiment(
    const Graph& g, const std::vector<SliceId>& k_values,
    const PerturbationConfig& perturbation, std::uint64_t seed) {
  const SliceId k_max = max_of(k_values);
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, perturbation, seed, false});
  const NodeId n = g.node_count();
  const int horizon = 2 * n;  // walk-length cap for the diversity proxy

  std::vector<DiversityPoint> out;
  for (SliceId k : k_values) {
    DiversityPoint pt;
    pt.k = k;
    pt.fib_entries = static_cast<std::size_t>(k) *
                     static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(n - 1);
    double arcs_total = 0.0;
    double links_total = 0.0;
    double log_paths_total = 0.0;
    long long log_paths_count = 0;

    for (NodeId dst = 0; dst < n; ++dst) {
      // Forward arcs of the union toward dst, plus distinct link census.
      std::vector<std::vector<NodeId>> succ(static_cast<std::size_t>(n));
      std::vector<char> link_seen(static_cast<std::size_t>(g.edge_count()), 0);
      std::size_t arcs = 0;
      for (SliceId s = 0; s < k; ++s) {
        const RoutingInstance& inst = mir.slice(s);
        for (NodeId v = 0; v < n; ++v) {
          if (v == dst) continue;
          const NodeId nh = inst.next_hop(v, dst);
          if (nh == kInvalidNode) continue;
          auto& list = succ[static_cast<std::size_t>(v)];
          if (std::find(list.begin(), list.end(), nh) == list.end()) {
            list.push_back(nh);
            ++arcs;
          }
          link_seen[static_cast<std::size_t>(inst.next_hop_edge(v, dst))] = 1;
        }
      }
      arcs_total += static_cast<double>(arcs);
      for (char seen : link_seen) links_total += seen ? 1.0 : 0.0;

      // Walk-count diversity proxy: number of <= horizon-hop walks v -> dst
      // in the union, in log domain to avoid overflow.
      std::vector<double> reach_now(static_cast<std::size_t>(n), 0.0);
      std::vector<double> total(static_cast<std::size_t>(n), 0.0);
      reach_now[static_cast<std::size_t>(dst)] = 1.0;
      std::vector<double> next(static_cast<std::size_t>(n), 0.0);
      for (int h = 0; h < horizon; ++h) {
        std::fill(next.begin(), next.end(), 0.0);
        for (NodeId v = 0; v < n; ++v) {
          double sum = 0.0;
          for (NodeId u : succ[static_cast<std::size_t>(v)])
            sum += reach_now[static_cast<std::size_t>(u)];
          next[static_cast<std::size_t>(v)] = sum;
        }
        for (NodeId v = 0; v < n; ++v) {
          total[static_cast<std::size_t>(v)] +=
              next[static_cast<std::size_t>(v)];
          // Renormalization guard: clip to avoid inf for large k.
          if (total[static_cast<std::size_t>(v)] > 1e290)
            total[static_cast<std::size_t>(v)] = 1e290;
          if (next[static_cast<std::size_t>(v)] > 1e290)
            next[static_cast<std::size_t>(v)] = 1e290;
        }
        std::swap(reach_now, next);
      }
      for (NodeId v = 0; v < n; ++v) {
        if (v == dst) continue;
        const double walks = total[static_cast<std::size_t>(v)];
        if (walks > 0.0) {
          log_paths_total += std::log10(walks);
          ++log_paths_count;
        }
      }
    }
    pt.mean_union_arcs = arcs_total / static_cast<double>(n);
    pt.mean_union_links = links_total / static_cast<double>(n);
    pt.log10_paths =
        log_paths_count == 0
            ? 0.0
            : log_paths_total / static_cast<double>(log_paths_count);
    out.push_back(pt);
  }
  return out;
}

}  // namespace splice
