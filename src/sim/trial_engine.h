// TrialEngine: deterministic Monte Carlo scenario batching.
//
// Wraps util/parallel.h's parallel_trials with the two things every
// experiment loop needs:
//
//  * per-worker scratch — each worker thread lazily builds one Scratch
//    (ForwardWorkspace, ReachWorkspace, private DataPlaneNetwork copies,
//    ...) and reuses it across all its trials, so the hot loop allocates
//    nothing;
//  * trial-ordered results — run() returns one Result per trial, in trial
//    order, regardless of how trials were striped across workers. Reducing
//    that sequence is therefore the *same* floating-point computation as
//    the serial loop: statistics come out bit-identical at every thread
//    count, including 1.
//
// Determinism contract: a trial's randomness must be a pure function of its
// trial index — either trial_substream_seed(stream, trial) below, or a seed
// table the caller precomputed serially (sim/experiments.cpp does the
// latter to preserve its historical master-fork chains). Trials must not
// communicate; everything shared is read-only.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace splice {

/// Counter-derived SplitMix64 substream seed: a pure function of (stream,
/// trial), so any worker can seed trial t's Rng without a sequential draw
/// chain. Distinct streams come from distinct `stream` tags.
inline std::uint64_t trial_substream_seed(std::uint64_t stream,
                                          std::uint64_t trial) noexcept {
  std::uint64_t s = stream ^ (trial * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

template <typename Scratch>
class TrialEngine {
 public:
  /// threads <= 1 runs trials inline on the caller's thread.
  explicit TrialEngine(int threads) noexcept : threads_(threads) {}

  int threads() const noexcept { return threads_; }

  /// Runs fn(trial, scratch) for trial in [0, trials) and returns the
  /// results in trial order. `factory()` builds one Scratch per worker, on
  /// that worker's first trial.
  template <typename Result, typename Factory, typename Fn>
  std::vector<Result> run(int trials, Factory&& factory, Fn&& fn) const {
    SPLICE_OBS_SPAN("sim.trial_batch");
    SPLICE_OBS_COUNT("sim.trials", trials);
    struct Acc {
      std::unique_ptr<Scratch> scratch;
      std::vector<std::pair<int, Result>> done;
    };
    Acc merged = parallel_trials<Acc>(
        trials, threads_,
        [&](int trial, Acc& acc) {
          if (!acc.scratch)
            acc.scratch = std::make_unique<Scratch>(factory());
          // Flight-recorder trial markers bracket the trial on whichever
          // worker ran it; the event stream keys on the trial index, so the
          // marker *set* is thread-count-invariant even though timestamps
          // and ring assignment are not.
          const bool rec = obs::FlightRecorder::enabled();
          if (rec) {
            obs::FlightRecorder::global().trial_begin(
                static_cast<std::uint32_t>(trial));
          }
          acc.done.emplace_back(trial, fn(trial, *acc.scratch));
          if (rec) {
            obs::FlightRecorder::global().trial_end(
                static_cast<std::uint32_t>(trial));
          }
        },
        [](Acc& into, Acc& from) {
          into.done.insert(into.done.end(),
                           std::make_move_iterator(from.done.begin()),
                           std::make_move_iterator(from.done.end()));
        });
    std::sort(merged.done.begin(), merged.done.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Result> out;
    out.reserve(merged.done.size());
    for (auto& [trial, result] : merged.done) out.push_back(std::move(result));
    return out;
  }

 private:
  int threads_ = 1;
};

}  // namespace splice
