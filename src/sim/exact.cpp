#include "sim/exact.h"

#include <cmath>

#include "graph/connectivity.h"
#include "util/assert.h"

namespace splice {

namespace {

/// Iterates every failure subset, weighting by p^|failed| (1-p)^|alive|,
/// and accumulates `metric(alive_mask)`.
template <typename Metric>
double enumerate_subsets(const Graph& g, double p, Metric&& metric) {
  SPLICE_EXPECTS(p >= 0.0 && p <= 1.0);
  SPLICE_EXPECTS(g.edge_count() <= kMaxExactEdges);
  const int m = g.edge_count();
  const auto subsets = 1ULL << m;
  std::vector<char> alive(static_cast<std::size_t>(m), 1);
  double total = 0.0;
  for (std::uint64_t bits = 0; bits < subsets; ++bits) {
    int failed = 0;
    for (int e = 0; e < m; ++e) {
      const bool dead = (bits >> e) & 1ULL;
      alive[static_cast<std::size_t>(e)] = dead ? 0 : 1;
      failed += dead ? 1 : 0;
    }
    const double prob = std::pow(p, failed) * std::pow(1.0 - p, m - failed);
    if (prob == 0.0) continue;
    total += prob * metric(alive);
  }
  return total;
}

}  // namespace

double exact_disconnected_fraction(const Graph& g, double p) {
  const auto total_pairs = static_cast<double>(total_ordered_pairs(g));
  if (total_pairs == 0.0) return 0.0;
  return enumerate_subsets(g, p, [&](const std::vector<char>& alive) {
    return static_cast<double>(disconnected_ordered_pairs(g, alive)) /
           total_pairs;
  });
}

double exact_reliability(const Graph& g, double p) {
  return enumerate_subsets(g, p, [&](const std::vector<char>& alive) {
    return is_connected(g, alive) ? 1.0 : 0.0;
  });
}

double exact_spliced_disconnected_fraction(const Graph& g,
                                           const MultiInstanceRouting& mir,
                                           SliceId k, double p,
                                           UnionSemantics semantics) {
  const SplicedReliabilityAnalyzer analyzer(g, mir);
  return enumerate_subsets(g, p, [&](const std::vector<char>& alive) {
    return analyzer.disconnected_fraction(k, alive, semantics);
  });
}

}  // namespace splice
