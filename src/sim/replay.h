// Replay: reconstructs one recovery episode of run_recovery_experiment —
// the exact failure mask, the exact Rng handed to the pair, the exact
// network — from the coordinates an anomaly record carries: (config, p,
// trial, k, src, dst). This is what turns an anomaly ledger entry into a
// debuggable artifact: `splice_inspect anomalies` prints these coordinates
// as a replay command line, and `splice_inspect replay` calls this.
//
// Fidelity contract. run_recovery_experiment's randomness flows through a
// serial master-fork chain (one fork per (p, trial)), then one trial_rng
// fork per evaluated pair in k-outer/pair-inner order. Replay re-walks that
// chain: it rebuilds the (p, trial) fork table, re-samples the trial's
// failure mask and pair sample, then burns one fork per pair the original
// loop evaluated before the target — skipping the forwarding itself, which
// consumes no trial_rng draws — so the target pair receives a bit-identical
// pair_rng. Any config mismatch (different k_values change the control
// plane; different pair ordering changes the fork chain) silently replays a
// *different* episode; tests/sim_replay_test.cpp pins the contract.
#pragma once

#include <vector>

#include "dataplane/packet.h"
#include "graph/graph.h"
#include "sim/experiments.h"

namespace splice {

struct ReplayRequest {
  double p = 0.0;  ///< failure-probability point (must match a cfg point)
  int trial = 0;
  SliceId k = 1;
  NodeId src = 0;
  NodeId dst = 0;
};

struct ReplayResult {
  /// False when the request does not name an episode the experiment ran:
  /// p not on the grid, trial/k out of range, pair not evaluated (dead
  /// endpoint under node failures, or absent from the pair sample).
  bool found = false;
  FastRecoveryResult recovery;
  /// Hop-level trace of the last attempt (the recovered path when
  /// recovery.delivered, the final failed attempt's partial walk otherwise;
  /// empty for k == 1, whose probe runs trace-free).
  std::vector<HopRecord> hops;
  bool two_hop_loop = false;
  int revisits = 0;
  double stretch = 0.0;  ///< path cost / shortest cost; 0 when not delivered
  std::vector<EdgeId> failed_edges;  ///< the trial's sampled failure set
};

/// Replays one episode. `cfg` must equal the original experiment config
/// (see the fidelity contract above). Cost: one control-plane build plus
/// one cheap fork-chain walk — independent of how late in the run the
/// episode occurred.
ReplayResult replay_recovery_episode(const Graph& g,
                                     const RecoveryExperimentConfig& cfg,
                                     const ReplayRequest& req);

}  // namespace splice
