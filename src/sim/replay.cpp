#include "sim/replay.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "dataplane/network.h"
#include "graph/dijkstra.h"
#include "obs/flight_recorder.h"
#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "splicing/reliability.h"
#include "util/assert.h"

namespace splice {

ReplayResult replay_recovery_episode(const Graph& g,
                                     const RecoveryExperimentConfig& cfg,
                                     const ReplayRequest& req) {
  ReplayResult out;
  const std::vector<double> p_values =
      cfg.p_values.empty() ? paper_p_grid() : cfg.p_values;

  constexpr auto npos = static_cast<std::size_t>(-1);
  std::size_t pi = npos;
  for (std::size_t i = 0; i < p_values.size(); ++i) {
    // Exact match: run params serialize p with shortest-round-trip
    // formatting, so the parsed-back double is bit-identical.
    if (p_values[i] == req.p) {
      pi = i;
      break;
    }
  }
  std::size_t ki_target = npos;
  for (std::size_t i = 0; i < cfg.k_values.size(); ++i) {
    if (cfg.k_values[i] == req.k) {
      ki_target = i;
      break;
    }
  }
  if (pi == npos || ki_target == npos) return out;
  if (req.trial < 0 || req.trial >= cfg.trials) return out;
  if (!g.valid_node(req.src) || !g.valid_node(req.dst) ||
      req.src == req.dst) {
    return out;
  }

  // The control plane depends on k_max, not the requested k: slices are
  // built once for max(k_values) and truncated per k, so replay must do
  // the same or slice perturbation streams diverge.
  const SliceId k_max =
      *std::max_element(cfg.k_values.begin(), cfg.k_values.end());
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, cfg.perturbation, cfg.seed,
                            cfg.perturb_first_slice});

  // Re-walk the serial master-fork chain up to the target (p, trial); each
  // fork consumes one master draw, so earlier (p, trial) cells must fork in
  // the original order even though their Rngs are discarded.
  Rng master(cfg.seed ^ 0x4ec04e41ULL);
  Rng trial_rng(0);
  for (std::size_t pj = 0; pj <= pi; ++pj) {
    const int last_trial = pj == pi ? req.trial : cfg.trials - 1;
    for (int trial = 0; trial <= last_trial; ++trial) {
      Rng forked =
          master.fork(static_cast<std::uint64_t>(trial) * 999983 +
                      static_cast<std::uint64_t>(p_values[pj] * 1e6));
      if (pj == pi && trial == req.trial) trial_rng = std::move(forked);
    }
  }

  // The trial's failure set and (optional) pair sample, consuming trial_rng
  // exactly as the experiment loop did.
  const double p = p_values[pi];
  std::vector<char> dead_nodes;
  std::vector<char> alive;
  switch (cfg.failure) {
    case FailureKind::kLink:
      alive = sample_alive_mask(g.edge_count(), p, trial_rng);
      break;
    case FailureKind::kNode:
      alive = sample_node_failure_mask(g, p, trial_rng, &dead_nodes);
      break;
    case FailureKind::kLengthWeighted:
      alive = sample_length_weighted_mask(g, p, trial_rng);
      break;
  }
  const auto endpoint_dead = [&](NodeId v) {
    return !dead_nodes.empty() && dead_nodes[static_cast<std::size_t>(v)] != 0;
  };
  const NodeId n = g.node_count();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  if (cfg.pair_sample > 0) {
    pairs.reserve(static_cast<std::size_t>(cfg.pair_sample));
    while (static_cast<int>(pairs.size()) < cfg.pair_sample) {
      const auto s = static_cast<NodeId>(
          trial_rng.below(static_cast<std::uint64_t>(n)));
      const auto t = static_cast<NodeId>(
          trial_rng.below(static_cast<std::uint64_t>(n)));
      if (s != t) pairs.emplace_back(s, t);
    }
  }
  if (endpoint_dead(req.src) || endpoint_dead(req.dst)) return out;

  // Burn one trial_rng fork per pair the experiment evaluated before the
  // target, in k-outer/pair-inner order (the reachability analysis between
  // pairs consumes no randomness and is skipped). If the pair sample
  // contains the target more than once, this replays its first evaluation.
  Rng pair_rng(0);
  bool found = false;
  for (std::size_t ki = 0; ki <= ki_target && !found; ++ki) {
    const SliceId k = cfg.k_values[ki];
    const auto eval = [&](NodeId src, NodeId dst) {
      Rng forked = trial_rng.fork(static_cast<std::uint64_t>(src) * 131071 +
                                  static_cast<std::uint64_t>(dst) +
                                  static_cast<std::uint64_t>(k));
      if (ki == ki_target && src == req.src && dst == req.dst) {
        pair_rng = std::move(forked);
        found = true;
      }
    };
    if (cfg.pair_sample > 0) {
      for (const auto& [s, t] : pairs) {
        if (endpoint_dead(s) || endpoint_dead(t)) continue;
        eval(s, t);
        if (found) break;
      }
    } else {
      for (NodeId dst = 0; dst < n && !found; ++dst) {
        if (endpoint_dead(dst)) continue;
        for (NodeId src = 0; src < n; ++src) {
          if (src == dst || endpoint_dead(src)) continue;
          eval(src, dst);
          if (found) break;
        }
      }
    }
  }
  if (!found) return out;

  // Rebuild the k-truncated network the episode ran on and rerun it. The
  // walk scope re-arms the flight recorder under the episode's original
  // walk id, so a tracing replay emits the same event keys the run did.
  const FibSet fibs = build_fibs_subset(g, mir, req.k);
  DataPlaneNetwork net(g, fibs);
  net.set_link_mask(alive);
  RecoveryConfig rcfg = cfg.recovery;
  rcfg.header_hops =
      std::min(rcfg.header_hops, 128 / std::max(1, bits_per_hop(req.k)));

#if SPLICE_OBS
  std::optional<obs::WalkScope> walk;
  if (obs::FlightRecorder::enabled()) {
    walk.emplace(obs::walk_id(
        recovery_walk_key(cfg.seed, pi, req.trial),
        static_cast<std::uint64_t>(req.k),
        static_cast<std::uint64_t>(req.src),
        static_cast<std::uint64_t>(req.dst)));
  }
#endif

  ForwardWorkspace ws;
  if (req.k == 1) {
    Packet probe;
    probe.src = req.src;
    probe.dst = req.dst;
    probe.ttl = rcfg.ttl;
    const ForwardSummary d = net.forward_stats(probe);
    out.recovery.initially_connected = d.delivered();
    out.recovery.delivered = d.delivered();
    out.recovery.summary = d;
  } else {
    out.recovery =
        attempt_recovery_fast(net, req.src, req.dst, rcfg, pair_rng, ws);
    out.hops = ws.hops;
    out.two_hop_loop =
        has_two_hop_loop(std::span<const HopRecord>(out.hops));
    out.revisits = count_node_revisits(out.hops, n, ws);
  }
  if (out.recovery.delivered) {
    const ShortestPaths sp = dijkstra(g, req.src);
    const Weight base = sp.dist[static_cast<std::size_t>(req.dst)];
    if (base > 0.0 && base < kInfiniteWeight)
      out.stretch = out.recovery.summary.cost / base;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (alive[static_cast<std::size_t>(e)] == 0) out.failed_edges.push_back(e);
  }
  out.found = true;
  return out;
}

}  // namespace splice
