// Extension experiments beyond the paper's §4 evaluation:
//
//  * The literal Definition 2.1/2.2 reliability curve — the probability the
//    (spliced) graph stays *fully connected* as edges fail — alongside the
//    pair-fraction metric Figures 3-5 plot.
//  * The §6 reconvergence study: "path splicing may provide enough
//    reliability from link and node failures to permit dynamic routing to
//    react much more slowly to failures, and, in some settings, may even
//    eliminate the need for dynamic routing altogether." We quantify this:
//    of the pairs a full IGP reconvergence would repair, what fraction
//    does splicing repair *instantly* (no routing-protocol reaction at
//    all)?
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/perturbation.h"
#include "splicing/reliability.h"

namespace splice {

// ---------------------------------------------------------------------------
// Definition 2.1/2.2: reliability = P(graph remains connected).
// ---------------------------------------------------------------------------

struct ConnectivityCurveConfig {
  std::vector<SliceId> k_values{1, 3, 5};
  std::vector<double> p_values;  ///< empty => paper_p_grid()
  int trials = 400;
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::uint64_t seed = 1;
};

struct ConnectivityCurvePoint {
  SliceId k = 0;  ///< 0 = the underlying graph itself
  double p = 0.0;
  /// Estimated R(p): probability that every pair stays (spliced-)connected.
  double reliability = 0.0;
};

/// Monte Carlo estimate of the Definition 2.2 reliability curve for the
/// underlying graph (k = 0 rows) and for spliced unions (per k), with
/// failure sets shared across all curves.
std::vector<ConnectivityCurvePoint> run_connectivity_curve(
    const Graph& g, const ConnectivityCurveConfig& cfg);

// ---------------------------------------------------------------------------
// §6: splicing vs. IGP reconvergence.
// ---------------------------------------------------------------------------

struct ReconvergenceConfig {
  SliceId k = 5;
  std::vector<double> p_values;  ///< empty => paper_p_grid()
  int trials = 60;
  int recovery_trials = 5;
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::uint64_t seed = 1;
};

struct ReconvergencePoint {
  double p = 0.0;
  /// Fraction of ordered pairs whose pre-failure shortest path broke.
  double frac_broken = 0.0;
  /// Of the broken pairs, fraction a full IGP reconvergence (recomputing
  /// shortest paths on the surviving graph) would repair — the ceiling.
  double reconvergence_fixes = 0.0;
  /// Of the broken pairs, fraction splicing repairs with *no* control-plane
  /// reaction (end-system re-randomization on the stale FIBs).
  double splicing_fixes = 0.0;
  /// splicing_fixes / reconvergence_fixes (1.0 = dynamic routing adds
  /// nothing that splicing didn't already deliver instantly).
  double coverage_of_reconvergence = 0.0;
};

std::vector<ReconvergencePoint> run_reconvergence_experiment(
    const Graph& g, const ReconvergenceConfig& cfg);

// ---------------------------------------------------------------------------
// §5 multipath throughput: "End hosts could set splicing bits in packets to
// simultaneously use disjoint paths ... allowing hosts to achieve
// throughput that approaches the capacity of the underlying graph."
// ---------------------------------------------------------------------------

struct ThroughputConfig {
  std::vector<SliceId> k_values{1, 2, 3, 5, 10};
  /// Ordered pairs sampled per k (0 = all pairs).
  int pair_sample = 200;
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::uint64_t seed = 1;
};

struct ThroughputPoint {
  SliceId k = 0;
  /// Mean over pairs of (max concurrent spliced flow) / (graph max flow),
  /// unit link capacities. 1.0 = splicing exposes the full cut capacity.
  double mean_capacity_ratio = 0.0;
  /// Fraction of pairs whose spliced capacity equals the graph capacity.
  double frac_full_capacity = 0.0;
  /// Mean spliced capacity in link-disjoint path units.
  double mean_spliced_capacity = 0.0;
  /// Mean underlying-graph capacity (same for every k; repeated for
  /// convenience).
  double mean_graph_capacity = 0.0;
};

/// For sampled (s, t) pairs, computes the maximum number of concurrent
/// unit-capacity flows routable along spliced-union arcs toward t (max flow
/// in the union digraph with per-link shared capacities) and compares it to
/// the underlying graph's s-t edge connectivity.
std::vector<ThroughputPoint> run_throughput_experiment(
    const Graph& g, const ThroughputConfig& cfg);

}  // namespace splice
