#include "sim/transient.h"

#include <algorithm>

#include "obs/anomaly.h"
#include "obs/clock.h"
#include "obs/health.h"
#include "util/assert.h"

namespace splice {

namespace {

/// Forwards one packet over mixed old/new tables. `updated[v]` says whether
/// node v already installed the post-failure tables. With `spliced` the
/// packet may deflect to any slice whose next hop crosses a live link;
/// without it, slice 0 only (plain routing).
enum class Outcome { kDelivered, kBlackhole, kLoop };

Outcome forward_mixed(const MultiInstanceRouting& before,
                      const MultiInstanceRouting& after,
                      const std::vector<char>& updated, EdgeId dead_edge,
                      bool spliced, SliceId k, NodeId src, NodeId dst,
                      int ttl) {
  NodeId node = src;
  while (node != dst) {
    if (ttl-- <= 0) return Outcome::kLoop;
    const MultiInstanceRouting& tables =
        updated[static_cast<std::size_t>(node)] ? after : before;
    const SliceId limit = spliced ? k : 1;
    NodeId next = kInvalidNode;
    for (SliceId s = 0; s < limit && next == kInvalidNode; ++s) {
      const NodeId nh = tables.slice(s).next_hop(node, dst);
      if (nh == kInvalidNode) continue;
      const EdgeId e = tables.slice(s).next_hop_edge(node, dst);
      if (e == dead_edge) continue;  // link is down
      next = nh;
    }
    if (next == kInvalidNode) return Outcome::kBlackhole;
    node = next;
  }
  return Outcome::kDelivered;
}

}  // namespace

std::vector<TransientPoint> run_transient_experiment(
    const Graph& g, const TransientConfig& cfg) {
  SPLICE_EXPECTS(cfg.slices >= 1);
  SPLICE_EXPECTS(cfg.time_samples >= 1);
  SPLICE_EXPECTS(cfg.failures >= 1);
  const NodeId n = g.node_count();

  // Pre-failure control plane, shared by all failure events.
  const MultiInstanceRouting before(
      g, ControlPlaneConfig{cfg.slices, cfg.perturbation, cfg.seed, false});

  // Accumulators per sampled instant.
  struct Acc {
    long long plain_delivered = 0;
    long long plain_loops = 0;
    long long plain_blackholes = 0;
    long long spliced_delivered = 0;
    long long spliced_loops = 0;
    long long spliced_blackholes = 0;
    long long samples = 0;
  };
  std::vector<Acc> acc(static_cast<std::size_t>(cfg.time_samples));

#if SPLICE_OBS
  // Transient loops/blackholes flow into the anomaly ledger when it is on:
  // p carries the sampled instant, trial the failure event index, aux the
  // dead edge, variant 0 = plain routing, 1 = spliced.
  const bool ledger_on = obs::AnomalyLedger::enabled();
  std::size_t ledger_run = 0;
  if (ledger_on) {
    ledger_run = obs::AnomalyLedger::global().begin_run(
        {{"experiment", "transient"},
         {"seed", std::to_string(cfg.seed)},
         {"slices", std::to_string(cfg.slices)},
         {"failures", std::to_string(cfg.failures)},
         {"time_samples", std::to_string(cfg.time_samples)},
         {"pair_sample", std::to_string(cfg.pair_sample)},
         {"ttl", std::to_string(cfg.ttl)}});
  }
#endif

  Rng master(cfg.seed ^ 0x7245);
  for (int f = 0; f < cfg.failures; ++f) {
    const auto dead_edge = static_cast<EdgeId>(
        master.below(static_cast<std::uint64_t>(g.edge_count())));

    // Post-failure control plane: each slice keeps its perturbed weights
    // except that the dead link's weight is inflated beyond any path cost,
    // so no reconverged tree uses it. (If the failure physically cuts the
    // graph, the inflated link may still appear in a tree; forward_mixed
    // refuses to cross it and correctly reports a blackhole.) Reconvergence
    // repairs the pre-failure SPTs incrementally instead of rebuilding
    // k × n trees from scratch; the tables are bit-identical either way.
    const MultiInstanceRouting after = before.with_edge_event(dead_edge, 1e18);

    // Per-node update times, uniform in the window.
    std::vector<double> update_time(static_cast<std::size_t>(n));
    for (auto& t : update_time) t = master.uniform();

    for (int ti = 0; ti < cfg.time_samples; ++ti) {
      const double t = (static_cast<double>(ti) + 0.5) /
                       static_cast<double>(cfg.time_samples);
      std::vector<char> updated(static_cast<std::size_t>(n));
      for (NodeId v = 0; v < n; ++v) {
        updated[static_cast<std::size_t>(v)] =
            update_time[static_cast<std::size_t>(v)] <= t ? 1 : 0;
      }

#if SPLICE_OBS
      // Live health fold for the churn path: spliced outcomes per
      // destination, one clock read per time sample (all its pairs share a
      // window bucket — the determinism discipline).
      const bool health_on = obs::RouteHealth::enabled();
      const std::uint64_t health_now = health_on ? obs::clock_now_ns() : 0;
      std::uint64_t health_total = 0;
      std::uint64_t health_errors = 0;

      const auto note = [&](Outcome o, NodeId src, NodeId dst, bool spliced) {
        if (!ledger_on || o == Outcome::kDelivered) return;
        obs::Anomaly an;
        an.kind = o == Outcome::kLoop ? obs::AnomalyKind::kMicroLoop
                                      : obs::AnomalyKind::kBlackhole;
        an.run = static_cast<std::uint32_t>(ledger_run);
        an.seed = cfg.seed;
        an.p = t;
        an.trial = f;
        an.k = spliced ? cfg.slices : 1;
        an.src = src;
        an.dst = dst;
        an.aux = static_cast<std::uint64_t>(dead_edge);
        an.variant = spliced ? 1 : 0;
        obs::AnomalyLedger::global().record(an);
      };
#endif

      auto sample_pair = [&](NodeId src, NodeId dst) {
        Acc& a = acc[static_cast<std::size_t>(ti)];
        ++a.samples;
        const Outcome plain = forward_mixed(before, after, updated, dead_edge,
                                            false, cfg.slices, src, dst,
                                            cfg.ttl);
        switch (plain) {
          case Outcome::kDelivered:
            ++a.plain_delivered;
            break;
          case Outcome::kLoop:
            ++a.plain_loops;
            break;
          case Outcome::kBlackhole:
            ++a.plain_blackholes;
            break;
        }
        const Outcome spliced = forward_mixed(before, after, updated,
                                              dead_edge, true, cfg.slices, src,
                                              dst, cfg.ttl);
        switch (spliced) {
          case Outcome::kDelivered:
            ++a.spliced_delivered;
            break;
          case Outcome::kLoop:
            ++a.spliced_loops;
            break;
          case Outcome::kBlackhole:
            ++a.spliced_blackholes;
            break;
        }
#if SPLICE_OBS
        if (health_on) {
          const bool ok = spliced == Outcome::kDelivered;
          obs::RouteHealth::global().record_outcome(
              health_now, static_cast<std::uint32_t>(dst), ok);
          ++health_total;
          if (!ok) ++health_errors;
        }
        note(plain, src, dst, false);
        note(spliced, src, dst, true);
#endif
      };

      if (cfg.pair_sample <= 0) {
        for (NodeId src = 0; src < n; ++src) {
          for (NodeId dst = 0; dst < n; ++dst) {
            if (src != dst) sample_pair(src, dst);
          }
        }
      } else {
        for (int i = 0; i < cfg.pair_sample; ++i) {
          const auto src =
              static_cast<NodeId>(master.below(static_cast<std::uint64_t>(n)));
          auto dst =
              static_cast<NodeId>(master.below(static_cast<std::uint64_t>(n)));
          if (src == dst) dst = (dst + 1) % n;
          sample_pair(src, dst);
        }
      }
#if SPLICE_OBS
      if (health_on && health_total != 0) {
        obs::RouteHealth::global().record_fwd_batch(health_now, health_total,
                                                    health_errors);
      }
#endif
    }
  }

  std::vector<TransientPoint> out;
  for (int ti = 0; ti < cfg.time_samples; ++ti) {
    const Acc& a = acc[static_cast<std::size_t>(ti)];
    const auto total = static_cast<double>(std::max<long long>(1, a.samples));
    TransientPoint pt;
    pt.t = (static_cast<double>(ti) + 0.5) /
           static_cast<double>(cfg.time_samples);
    pt.plain_delivered = static_cast<double>(a.plain_delivered) / total;
    pt.plain_loops = static_cast<double>(a.plain_loops) / total;
    pt.plain_blackholes = static_cast<double>(a.plain_blackholes) / total;
    pt.spliced_delivered = static_cast<double>(a.spliced_delivered) / total;
    pt.spliced_loops = static_cast<double>(a.spliced_loops) / total;
    pt.spliced_blackholes = static_cast<double>(a.spliced_blackholes) / total;
    out.push_back(pt);
  }
  return out;
}

}  // namespace splice
