// Deterministic batch feed for throughput benchmarks and kernel tests.
//
// TrialEngine's determinism contract says a trial's randomness must be a
// pure function of its trial index; ScenarioBatchFeed packages that contract
// for the batch forwarding consumers: trial t of stream S always produces
// the same link-failure mask and the same packet batch (sources,
// destinations, splicing headers, occasional counter headers), regardless
// of which thread, kernel or pipeline shard consumes it. Benchmarks use it
// to feed identical work to every kernel/pipeline configuration under
// comparison, and the differential tests use it to diff kernels on
// bit-identical inputs.
//
// Header-only; the packet buffer is caller-owned and reused across trials
// (capacity retained), the mask is replaced per trial — per-trial costs,
// never per-packet ones.
#pragma once

#include <vector>

#include "dataplane/packet.h"
#include "graph/graph.h"
#include "sim/failure.h"
#include "sim/trial_engine.h"
#include "util/rng.h"

namespace splice {

struct BatchFeedConfig {
  int packets_per_trial = 1024;
  /// Slice count the splicing headers are built for (usually the network's
  /// k; headers for a different k exercise the defensive reduction).
  SliceId header_k = 1;
  int header_hops = SpliceHeader::kDefaultHops;
  /// Per-edge Bernoulli failure probability of each trial's link mask.
  double failure_p = 0.0;
  /// Fraction of packets carrying a §5 counter deflection header.
  double counter_fraction = 0.0;
  int ttl = 255;
};

/// Fills `mask` and `packets` for trial `trial` of stream `stream`:
/// mask = Bernoulli(p) liveness over g's edges, packets = uniform random
/// src != dst pairs with fresh random splicing headers. Deterministic in
/// (g, cfg, stream, trial) alone.
inline void fill_trial_batch(const Graph& g, const BatchFeedConfig& cfg,
                             std::uint64_t stream, int trial,
                             std::vector<char>& mask,
                             std::vector<Packet>& packets) {
  Rng rng(trial_substream_seed(stream, static_cast<std::uint64_t>(trial)));
  mask = sample_alive_mask(g.edge_count(), cfg.failure_p, rng);
  packets.clear();
  packets.reserve(static_cast<std::size_t>(cfg.packets_per_trial));
  const auto n = static_cast<std::uint64_t>(g.node_count());
  for (int i = 0; i < cfg.packets_per_trial; ++i) {
    Packet p;
    p.src = static_cast<NodeId>(rng.below(n));
    do {
      p.dst = static_cast<NodeId>(rng.below(n));
    } while (p.dst == p.src && n > 1);
    if (cfg.header_k > 1) {
      p.header = SpliceHeader::random(cfg.header_k, cfg.header_hops, rng);
    }
    if (cfg.counter_fraction > 0.0 && rng.bernoulli(cfg.counter_fraction)) {
      p.counter = CounterHeader(
          static_cast<std::uint32_t>(rng.below(8) + 1));
    }
    p.ttl = cfg.ttl;
    packets.push_back(p);
  }
}

}  // namespace splice
