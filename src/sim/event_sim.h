// Discrete-event recovery-time simulation.
//
// §4.3 measures recovery in *trials* and notes the trials "could be run in
// parallel". This module converts trials into wall-clock time with a
// simple but honest timing model:
//   * link propagation delay = link weight, interpreted in milliseconds
//     (the embedded topologies use latency-derived weights);
//   * a delivered packet triggers an ACK that retraces the path, so the
//     sender learns of success after one path RTT;
//   * a dropped packet is silent — the sender detects failure only by
//     retransmission timeout (RTO);
//   * end-system recovery strategies: SERIAL (send one header, wait RTO,
//     re-randomize, repeat) and PARALLEL (send a burst of differently
//     spliced copies at once, succeed at the first ACK);
//   * network deflection needs no sender action: recovery time is just the
//     (detoured) path RTT.
#pragma once

#include <cstdint>

#include "dataplane/network.h"
#include "util/event_queue.h"
#include "util/rng.h"

namespace splice {

enum class RecoveryStrategy {
  kSerial,             ///< one attempt per RTO (paper's sequential trials)
  kParallelBurst,      ///< all attempts at t=0 ("trials run in parallel")
  kNetworkDeflection,  ///< routers deflect; single send
};

struct TimingConfig {
  RecoveryStrategy strategy = RecoveryStrategy::kSerial;
  /// Retransmission timeout before the sender tries a new header.
  SimTime rto_ms = 200.0;
  /// Attempt budget after (and including) the first spliced retry.
  int max_attempts = 5;
  int header_hops = 20;
  int ttl = 255;
};

struct RecoveryTiming {
  bool initially_connected = false;
  bool recovered = false;
  /// Time from first transmission until the sender holds an ACK.
  SimTime completion_ms = 0.0;
  /// Packets transmitted (initial + retries / burst copies).
  int packets_sent = 0;
};

/// Simulates one recovery episode for (src, dst) on the given (failed)
/// network: initial slice-0 packet, then the configured strategy. The
/// header for attempt i is an independent uniformly random splicing of the
/// network's slices.
RecoveryTiming simulate_recovery_timing(const DataPlaneNetwork& net,
                                        NodeId src, NodeId dst,
                                        const TimingConfig& cfg, Rng& rng);

/// One-way propagation delay of a delivered trace (sum of link weights).
SimTime trace_delay_ms(const Graph& g, const Delivery& d);

}  // namespace splice
