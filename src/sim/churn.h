// Trace-driven link-churn generation for the live publication pipeline:
// turns the static failure models of sim/failure.h and sim/transient.cpp
// into a continuous, deterministic link-event stream the control thread can
// replay — single-link flaps, correlated SRLG bursts (every member of a
// shared-risk group dies together), and maintenance windows (a link is
// costed out by a weight multiplier without failing).
//
// Consistency contract: per link, events never overlap — a kDown is always
// followed by its kUp before the link is eligible again, every kScale
// window closes with a factor-1.0 restore, and every window still open at
// the end of the draw is closed by an appended restore event. The final
// link state therefore equals the initial one, so a full replay is
// checksum-comparable against the pristine control plane. The stream is a
// pure function of (graph, config): same seed, same trace, bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace splice {

class FibPublisher;
struct PublishStats;

enum class LinkEventKind : std::uint8_t {
  kDown = 0,   ///< link fails: every slice sees kInfiniteWeight, liveness drops
  kUp = 1,     ///< repair: original per-slice perturbed weights return
  kScale = 2,  ///< maintenance: original weights × factor, link stays alive
};

struct LinkEvent {
  double at_ms = 0.0;  ///< offset from stream start (paced replay; max-rate
                       ///< consumers ignore it and drain back to back)
  EdgeId edge = kInvalidEdge;
  LinkEventKind kind = LinkEventKind::kDown;
  double factor = 1.0;  ///< kScale only; 1.0 closes the window
};

struct ChurnConfig {
  /// Incidents to draw; each expands to >= 2 events (down+up / open+close),
  /// an SRLG burst to 2× the group size.
  int incidents = 64;
  /// Mean exponential gap between incident starts, milliseconds.
  double mean_gap_ms = 1.0;
  /// Mean exponential outage / maintenance-window duration, milliseconds.
  double mean_hold_ms = 5.0;
  /// Incident-kind mix (weights, normalized internally).
  double flap_weight = 0.6;
  double srlg_weight = 0.25;
  double maint_weight = 0.15;
  /// Maintenance cost-out multiplier on the original per-slice weights.
  double maint_factor = 10.0;
  /// Per-member stagger inside an SRLG burst, milliseconds (the members of
  /// a shared conduit do not report down in the same instant).
  double srlg_stagger_ms = 0.05;
  std::uint64_t seed = 1;
};

/// Draws a deterministic, time-sorted, per-link-consistent event trace.
std::vector<LinkEvent> generate_churn_trace(const Graph& g,
                                            const ChurnConfig& cfg);

/// Replays one trace event into the live publisher (the single shared
/// interpretation of LinkEventKind: kDown -> publish_link_down, kUp ->
/// publish_link_restore, kScale -> publish_weight_scale).
PublishStats apply_churn_event(FibPublisher& pub, const LinkEvent& ev);

/// Number of events of `kind` in a trace (test/report helper).
int count_events(const std::vector<LinkEvent>& trace, LinkEventKind kind);

}  // namespace splice
