// Flat forwarding-table view for the data-plane fast path.
//
// FibSet already stores its entries in one slice-major array; FlatFibs
// caches the raw pointer and the precomputed strides so a per-hop lookup is
// a single indexed load with no pointer indirection and no per-lookup
// contract checks (the view is validated once at construction). It also
// precomputes the slice-selection reduction of Algorithm 1: when k is a
// power of two, the defensive `raw % k` on popped forwarding bits becomes a
// mask, removing the per-hop integer division.
//
// FlatFibs is a non-owning view: the FibSet it was built from must outlive
// it (DataPlaneNetwork already imposes the same lifetime rule on its FibSet).
#pragma once

#include "routing/fib.h"

namespace splice {

class FlatFibs {
 public:
  FlatFibs() = default;

  explicit FlatFibs(const FibSet& fibs)
      : entries_(fibs.data().data()),
        nodes_(fibs.node_count()),
        slices_(fibs.slice_count()),
        slice_stride_(static_cast<std::size_t>(fibs.node_count()) *
                      static_cast<std::size_t>(fibs.node_count())),
        pow2_mask_(static_cast<std::uint32_t>(fibs.slice_count() - 1)),
        slices_pow2_((fibs.slice_count() &
                      (fibs.slice_count() - 1)) == 0) {
    SPLICE_EXPECTS(fibs.slice_count() >= 1);
  }

  NodeId node_count() const noexcept { return nodes_; }
  SliceId slice_count() const noexcept { return slices_; }

  /// Flat cell index of (node, dst) — hoist it out of per-slice scans.
  std::size_t cell(NodeId node, NodeId dst) const noexcept {
    return static_cast<std::size_t>(node) *
               static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dst);
  }

  /// One indexed load; `cell` comes from cell().
  const FibEntry& at(SliceId slice, std::size_t cell) const noexcept {
    return entries_[static_cast<std::size_t>(slice) * slice_stride_ + cell];
  }

  /// Reduces a raw popped bit value to a slice index: `raw % k`, with the
  /// division replaced by a mask when k is a power of two (identical value).
  SliceId reduce_slice(std::uint32_t raw) const noexcept {
    return slices_pow2_
               ? static_cast<SliceId>(raw & pow2_mask_)
               : static_cast<SliceId>(raw %
                                      static_cast<std::uint32_t>(slices_));
  }

 private:
  const FibEntry* entries_ = nullptr;
  NodeId nodes_ = 0;
  SliceId slices_ = 1;
  std::size_t slice_stride_ = 0;
  std::uint32_t pow2_mask_ = 0;
  bool slices_pow2_ = true;
};

}  // namespace splice
