// Flat forwarding-table view for the data-plane fast path.
//
// FibSet already stores its entries in one slice-major array; FlatFibs
// caches the raw pointer and the precomputed strides so a per-hop lookup is
// a single indexed load with no pointer indirection and no per-lookup
// contract checks (the view is validated once at construction). It also
// precomputes the slice-selection reduction of Algorithm 1: when k is a
// power of two, the defensive `raw % k` on popped forwarding bits becomes a
// mask; otherwise a precomputed Lemire multiply-shift constant replaces the
// per-hop integer division with two multiplies (exact for every 32-bit raw
// value — see fastmod_u32 below).
//
// FlatFibs is a non-owning view: the FibSet it was built from must outlive
// it (DataPlaneNetwork already imposes the same lifetime rule on its FibSet).
#pragma once

#include <cstdint>

#include "routing/fib.h"

namespace splice {

/// Lemire fast-mod magic for divisor d >= 1: ceil(2^64 / d), wrapped to 0
/// for d == 1 (where every remainder is 0 and fastmod_u32 still returns 0).
constexpr std::uint64_t fastmod_magic(std::uint32_t d) noexcept {
  return UINT64_MAX / d + 1;
}

/// a % d via the precomputed magic: exact for all 32-bit a and d >= 1
/// (Lemire & Kaser, "Faster Remainder by Direct Computation", 2019). The
/// low 64 bits of magic * a hold the fractional part of a/d scaled by 2^64;
/// multiplying by d and taking the high half recovers the remainder.
constexpr std::uint32_t fastmod_u32(std::uint32_t a, std::uint64_t magic,
                                    std::uint32_t d) noexcept {
  const std::uint64_t lowbits = magic * a;
  return static_cast<std::uint32_t>(
      (static_cast<unsigned __int128>(lowbits) * d) >> 64);
}

class FlatFibs {
 public:
  FlatFibs() = default;

  explicit FlatFibs(const FibSet& fibs)
      : entries_(fibs.data().data()),
        nodes_(fibs.node_count()),
        slices_(fibs.slice_count()),
        slice_stride_(static_cast<std::size_t>(fibs.node_count()) *
                      static_cast<std::size_t>(fibs.node_count())),
        mod_magic_(fastmod_magic(
            static_cast<std::uint32_t>(fibs.slice_count()))),
        pow2_mask_(static_cast<std::uint32_t>(fibs.slice_count() - 1)),
        slices_pow2_((fibs.slice_count() &
                      (fibs.slice_count() - 1)) == 0) {
    SPLICE_EXPECTS(fibs.slice_count() >= 1);
  }

  NodeId node_count() const noexcept { return nodes_; }
  SliceId slice_count() const noexcept { return slices_; }

  /// Flat cell index of (node, dst) — hoist it out of per-slice scans.
  std::size_t cell(NodeId node, NodeId dst) const noexcept {
    return static_cast<std::size_t>(node) *
               static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dst);
  }

  /// One indexed load; `cell` comes from cell().
  const FibEntry& at(SliceId slice, std::size_t cell) const noexcept {
    return entries_[static_cast<std::size_t>(slice) * slice_stride_ + cell];
  }

  /// Reduces a raw popped bit value to a slice index: `raw % k`, with the
  /// division replaced by a mask when k is a power of two and by the
  /// Lemire multiply-shift otherwise (identical value either way).
  SliceId reduce_slice(std::uint32_t raw) const noexcept {
    return slices_pow2_
               ? static_cast<SliceId>(raw & pow2_mask_)
               : static_cast<SliceId>(fastmod_u32(
                     raw, mod_magic_,
                     static_cast<std::uint32_t>(slices_)));
  }

  /// Raw geometry for the batch kernel's FibView.
  const FibEntry* entries() const noexcept { return entries_; }
  std::size_t slice_stride() const noexcept { return slice_stride_; }
  bool slices_pow2() const noexcept { return slices_pow2_; }
  std::uint32_t pow2_mask() const noexcept { return pow2_mask_; }
  std::uint64_t mod_magic() const noexcept { return mod_magic_; }

 private:
  const FibEntry* entries_ = nullptr;
  NodeId nodes_ = 0;
  SliceId slices_ = 1;
  std::size_t slice_stride_ = 0;
  std::uint64_t mod_magic_ = 0;
  std::uint32_t pow2_mask_ = 0;
  bool slices_pow2_ = true;
};

}  // namespace splice
