#include "dataplane/trace_log.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "dataplane/network.h"
#include "obs/metrics.h"
#include "util/assert.h"

namespace splice {

namespace {

const char* outcome_token(ForwardOutcome o) {
  switch (o) {
    case ForwardOutcome::kDelivered:
      return "DELIVERED";
    case ForwardOutcome::kDeadEnd:
      return "DEAD_END";
    case ForwardOutcome::kTtlExpired:
      return "TTL_EXPIRED";
  }
  return "?";
}

ForwardOutcome parse_outcome(const std::string& tok) {
  if (tok == "DELIVERED") return ForwardOutcome::kDelivered;
  if (tok == "DEAD_END") return ForwardOutcome::kDeadEnd;
  if (tok == "TTL_EXPIRED") return ForwardOutcome::kTtlExpired;
  throw std::invalid_argument("unknown trace outcome: " + tok);
}

std::string node_label(const Graph& g, NodeId v) {
  return g.name(v).empty() ? std::to_string(v) : g.name(v);
}

/// Splits "a,b,c" into tokens (empty input -> empty list).
std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string tok;
  while (std::getline(ss, tok, ',')) out.push_back(tok);
  return out;
}

/// Shortest decimal representation that parses back to exactly `v`, so
/// cost= survives a format/parse round trip bit for bit (the previous
/// ostream default truncated to 6 significant digits).
std::string shortest_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

/// Value of "key=value" if the token has that key.
bool take_kv(const std::string& token, const char* key, std::string& value) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  value = token.substr(prefix.size());
  return true;
}

}  // namespace

std::string format_trace(const Graph& g, NodeId src, NodeId dst,
                         const Delivery& d) {
  SPLICE_EXPECTS(g.valid_node(src));
  SPLICE_EXPECTS(g.valid_node(dst));
  std::ostringstream out;
  out << outcome_token(d.outcome) << " src=" << node_label(g, src)
      << " dst=" << node_label(g, dst) << " hops=" << d.hop_count()
      << " cost=" << shortest_double(trace_cost(g, d));

  out << " slices=";
  for (std::size_t i = 0; i < d.hops.size(); ++i) {
    if (i) out << ',';
    out << d.hops[i].slice;
  }

  out << " path=" << node_label(g, src);
  for (const HopRecord& hop : d.hops) out << '-' << node_label(g, hop.next);

  bool any_deflected = false;
  for (const HopRecord& hop : d.hops) any_deflected |= hop.deflected;
  if (any_deflected) {
    out << " deflected=";
    bool first = true;
    for (std::size_t i = 0; i < d.hops.size(); ++i) {
      if (!d.hops[i].deflected) continue;
      if (!first) out << ',';
      out << i;
      first = false;
    }
  }
  return out.str();
}

ParsedTrace parse_trace(const std::string& line) {
  std::istringstream in(line);
  std::string tok;
  if (!(in >> tok)) throw std::invalid_argument("empty trace line");
  ParsedTrace t;
  t.outcome = parse_outcome(tok);

  std::string value;
  bool saw_src = false;
  bool saw_dst = false;
  bool saw_path = false;
  while (in >> tok) {
    if (take_kv(tok, "src", value)) {
      t.src = value;
      saw_src = true;
    } else if (take_kv(tok, "dst", value)) {
      t.dst = value;
      saw_dst = true;
    } else if (take_kv(tok, "hops", value)) {
      t.hops = std::stoi(value);
    } else if (take_kv(tok, "cost", value)) {
      t.cost = std::stod(value);
    } else if (take_kv(tok, "slices", value)) {
      for (const std::string& s : split_csv(value)) {
        t.slices.push_back(static_cast<SliceId>(std::stol(s)));
      }
    } else if (take_kv(tok, "path", value)) {
      std::stringstream ps(value);
      std::string node;
      while (std::getline(ps, node, '-')) t.path.push_back(node);
      saw_path = true;
    } else if (take_kv(tok, "deflected", value)) {
      for (const std::string& s : split_csv(value)) {
        t.deflected_hops.push_back(std::stoi(s));
      }
    } else {
      throw std::invalid_argument("unknown trace token: " + tok);
    }
  }
  if (!saw_src || !saw_dst || !saw_path) {
    throw std::invalid_argument("trace line missing src/dst/path");
  }
  if (static_cast<int>(t.slices.size()) != t.hops ||
      static_cast<int>(t.path.size()) != t.hops + 1) {
    throw std::invalid_argument("trace line inconsistent hop counts");
  }
  return t;
}

void TraceLog::record(NodeId src, NodeId dst, const Delivery& d) {
  lines_.push_back(format_trace(*graph_, src, dst, d));
  switch (d.outcome) {
    case ForwardOutcome::kDelivered:
      ++delivered_;
      SPLICE_OBS_COUNT("dataplane.trace.delivered", 1);
      break;
    case ForwardOutcome::kDeadEnd:
      ++dead_ends_;
      SPLICE_OBS_COUNT("dataplane.trace.dead_end", 1);
      break;
    case ForwardOutcome::kTtlExpired:
      ++ttl_expired_;
      SPLICE_OBS_COUNT("dataplane.trace.ttl_expired", 1);
      break;
  }
  const int hops = d.hop_count();
  int deflections = 0;
  for (const HopRecord& hop : d.hops) deflections += hop.deflected ? 1 : 0;
  total_hops_ += hops;
  deflections_ += deflections;
  // Mirror the summary stats into the registry so TraceLog::render() and
  // telemetry exports cannot drift apart.
  SPLICE_OBS_COUNT("dataplane.trace.records", 1);
  SPLICE_OBS_COUNT("dataplane.trace.hops", hops);
  SPLICE_OBS_COUNT("dataplane.trace.deflections", deflections);
  SPLICE_OBS_OBSERVE("dataplane.trace.hops_hist", 0.0, 256.0, 64, hops);
  SPLICE_OBS_OBSERVE("dataplane.trace.deflections_per_packet", 0.0, 32.0, 32,
                     deflections);
}

std::string TraceLog::render() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  std::ostringstream summary;
  summary << "# traces=" << lines_.size() << " delivered=" << delivered_
          << " dead_ends=" << dead_ends_ << " ttl_expired=" << ttl_expired_
          << " total_hops=" << total_hops_
          << " deflections=" << deflections_ << "\n";
  out += summary.str();
  return out;
}

}  // namespace splice
