#include "dataplane/splice_header.h"

#include <algorithm>

#include "util/assert.h"

namespace splice {

int bits_per_hop(SliceId k) noexcept {
  SPLICE_EXPECTS(k >= 1);
  int bits = 0;
  SliceId capacity = 1;
  while (capacity < k) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

std::uint32_t BitStream::peek(int width) const noexcept {
  SPLICE_EXPECTS(width >= 0 && width <= 32);
  if (width == 0) return 0;
  const std::uint64_t mask = (width == 64) ? ~0ULL : ((1ULL << width) - 1);
  return static_cast<std::uint32_t>(lo_ & mask);
}

void BitStream::shift(int width) noexcept {
  SPLICE_EXPECTS(width >= 0 && width <= 64);
  if (width == 0) return;
  if (width == 64) {
    lo_ = hi_;
    hi_ = 0;
    return;
  }
  lo_ = (lo_ >> width) | (hi_ << (64 - width));
  hi_ >>= width;
}

std::uint32_t BitStream::pop(int width) noexcept {
  const std::uint32_t v = peek(width);
  shift(width);
  return v;
}

void BitStream::set_slot(int slot, int width, std::uint32_t value) noexcept {
  SPLICE_EXPECTS(slot >= 0 && width >= 0 && width <= 32);
  if (width == 0) return;
  const int pos = slot * width;
  SPLICE_EXPECTS(pos + width <= 128);
  const std::uint64_t mask = (1ULL << width) - 1;
  const auto v = static_cast<std::uint64_t>(value) & mask;
  if (pos < 64) {
    lo_ &= ~(mask << pos);
    lo_ |= v << pos;
    if (pos + width > 64) {
      // Straddles the word boundary.
      const int spill = pos + width - 64;
      const std::uint64_t hi_mask = (1ULL << spill) - 1;
      hi_ &= ~hi_mask;
      hi_ |= v >> (width - spill);
    }
  } else {
    const int hpos = pos - 64;
    hi_ &= ~(mask << hpos);
    hi_ |= v << hpos;
  }
}

SpliceHeader::SpliceHeader(SliceId k, int hops) : k_(k), hops_(hops) {
  SPLICE_EXPECTS(k >= 1);
  SPLICE_EXPECTS(hops >= 0);
  SPLICE_EXPECTS(bits_per_hop(k) * hops <= 128);
}

SpliceHeader SpliceHeader::random(SliceId k, int hops, Rng& rng) {
  SpliceHeader h(k, hops);
  const int bpp = bits_per_hop(k);
  if (bpp == 0) return h;
  for (int i = 0; i < hops; ++i) {
    h.bits_.set_slot(i, bpp, static_cast<std::uint32_t>(
                                 rng.below(static_cast<std::uint64_t>(k))));
  }
  return h;
}

SpliceHeader SpliceHeader::from_slices(SliceId k,
                                       std::span<const SliceId> slices) {
  SpliceHeader h(k, static_cast<int>(slices.size()));
  const int bpp = bits_per_hop(k);
  for (std::size_t i = 0; i < slices.size(); ++i) {
    SPLICE_EXPECTS(slices[i] >= 0 && slices[i] < k);
    if (bpp > 0)
      h.bits_.set_slot(static_cast<int>(i), bpp,
                       static_cast<std::uint32_t>(slices[i]));
  }
  return h;
}

SpliceHeader SpliceHeader::mutate_coinflip(Rng& rng,
                                           double flip_probability) const {
  SPLICE_EXPECTS(cursor_ == 0);  // mutate full headers, not consumed ones
  std::vector<SliceId> seq = slices();
  for (SliceId& s : seq) {
    if (k_ > 1 && rng.bernoulli(flip_probability)) {
      // Select a *different* slice uniformly.
      const auto other = static_cast<SliceId>(
          rng.below(static_cast<std::uint64_t>(k_ - 1)));
      s = other >= s ? other + 1 : other;
    }
  }
  return from_slices(k_, seq);
}

SpliceHeader SpliceHeader::mutate_first_hop_biased(Rng& rng, double p0,
                                                   double decay) const {
  SPLICE_EXPECTS(cursor_ == 0);
  SPLICE_EXPECTS(p0 >= 0.0 && p0 <= 1.0);
  SPLICE_EXPECTS(decay > 0.0 && decay <= 1.0);
  std::vector<SliceId> seq = slices();
  double p = p0;
  for (SliceId& s : seq) {
    if (k_ > 1 && rng.bernoulli(p)) {
      const auto other = static_cast<SliceId>(
          rng.below(static_cast<std::uint64_t>(k_ - 1)));
      s = other >= s ? other + 1 : other;
    }
    p *= decay;
  }
  return from_slices(k_, seq);
}

SpliceHeader SpliceHeader::random_no_revisit(SliceId k, int hops, Rng& rng) {
  // Draw a random permutation of slices and random segment boundaries; the
  // sequence walks the permutation left to right, so a slice, once left, is
  // never revisited and persistent loops are impossible (§4.4).
  std::vector<SliceId> order(static_cast<std::size_t>(k));
  for (SliceId s = 0; s < k; ++s) order[static_cast<std::size_t>(s)] = s;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::vector<SliceId> seq(static_cast<std::size_t>(hops));
  std::size_t segment = 0;
  for (int i = 0; i < hops; ++i) {
    seq[static_cast<std::size_t>(i)] = order[segment];
    // Advance to the next slice with probability 1/2 while any remain.
    if (segment + 1 < order.size() && rng.coin()) ++segment;
  }
  return from_slices(k, seq);
}

SpliceHeader SpliceHeader::random_bounded_switches(SliceId k, int hops,
                                                   int max_switches,
                                                   Rng& rng) {
  SPLICE_EXPECTS(max_switches >= 0);
  std::vector<SliceId> seq(static_cast<std::size_t>(hops));
  SliceId cur = static_cast<SliceId>(rng.below(static_cast<std::uint64_t>(k)));
  int switches = 0;
  for (int i = 0; i < hops; ++i) {
    if (k > 1 && switches < max_switches && rng.coin()) {
      const auto other = static_cast<SliceId>(
          rng.below(static_cast<std::uint64_t>(k - 1)));
      cur = other >= cur ? other + 1 : other;
      ++switches;
    }
    seq[static_cast<std::size_t>(i)] = cur;
  }
  return from_slices(k, seq);
}

std::optional<SliceId> SpliceHeader::pop() {
  if (k_ <= 1) return std::nullopt;
  if (cursor_ >= hops_) return std::nullopt;
  ++cursor_;
  return static_cast<SliceId>(bits_.pop(bits_per_hop(k_)));
}

std::vector<SliceId> SpliceHeader::slices() const {
  std::vector<SliceId> out;
  out.reserve(static_cast<std::size_t>(remaining_hops()));
  BitStream copy = bits_;
  const int bpp = bits_per_hop(k_);
  for (int i = cursor_; i < hops_; ++i) {
    out.push_back(bpp == 0 ? 0 : static_cast<SliceId>(copy.pop(bpp)));
  }
  return out;
}

SliceId CounterHeader::deflect(SliceId current, SliceId k) noexcept {
  SPLICE_EXPECTS(k >= 1);
  if (value_ == 0 || k == 1) return current;
  const SliceId offset = static_cast<SliceId>(value_ % static_cast<std::uint32_t>(k - 1)) + 1;
  --value_;
  return static_cast<SliceId>((current + offset) % k);
}

}  // namespace splice
