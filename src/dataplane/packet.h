// Packet model for the splicing data plane simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "dataplane/splice_header.h"
#include "graph/types.h"

namespace splice {

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// The splicing shim header; an empty header means "no forwarding bits"
  /// and every hop uses the default slice (Algorithm 1's Hash(src, dst)).
  SpliceHeader header;
  /// Optional counter-based deflection header (§5 alternate encoding);
  /// inactive (0) unless the sender arms it.
  CounterHeader counter;
  /// Hop budget; the simulator drops the packet when it reaches 0.
  int ttl = 255;
};

/// Why forwarding terminated.
enum class ForwardOutcome {
  kDelivered,    ///< reached dst
  kDeadEnd,      ///< some hop had no usable next hop (failed links, no FIB)
  kTtlExpired,   ///< hop budget exhausted (persistent loop or long detour)
};

/// One hop of the forwarding trace.
struct HopRecord {
  NodeId node = kInvalidNode;   ///< node that forwarded
  NodeId next = kInvalidNode;   ///< neighbor it forwarded to
  EdgeId edge = kInvalidEdge;   ///< link used
  SliceId slice = 0;            ///< forwarding table consulted
  bool deflected = false;       ///< network-based recovery changed the slice
};

/// Complete result of forwarding one packet.
struct Delivery {
  ForwardOutcome outcome = ForwardOutcome::kDeadEnd;
  std::vector<HopRecord> hops;

  bool delivered() const noexcept {
    return outcome == ForwardOutcome::kDelivered;
  }
  int hop_count() const noexcept { return static_cast<int>(hops.size()); }
};

}  // namespace splice
