// Destination-sharded multi-core forwarding pipeline.
//
// Scaling the batch kernel across cores without sacrificing its determinism
// contract: destinations are split into contiguous ranges, one per worker,
// and each worker owns a compacted FIB replica holding exactly its
// destination columns — [slice][node][dst_local] with row stride equal to
// the shard width. Replicas are built ON the worker's own thread
// (first-touch placement, so on NUMA machines each replica lands in the
// worker's local memory) and carry the same transparent-hugepage advice as
// the master FIB. A packet is routed to the worker that owns its
// destination; since a walk's destination never changes, a walk never
// leaves its shard, workers share nothing hot, and each worker's FIB
// working set shrinks by the shard factor.
//
// Work distribution is run-to-completion: the dispatching thread partitions
// a batch by destination shard, publishes the batch spans, and pushes one
// job token into each participating worker's SPSC ring (the flight-recorder
// single-writer ring idiom: release-published tail, acquire-consumed head,
// C++20 atomic wait instead of spinning). Workers forward their share with
// the same fwdk kernel, write summaries straight into the caller's `out`
// span — per-packet slots are disjoint, so the "merge" is free and the
// result order is the caller's packet order — and bump a completion
// counter the dispatcher waits on.
//
// Liveness is pipeline-owned: the pipeline snapshots the network's link
// mask at construction and set_link_mask()/set_link_state()/
// restore_all_links() mutate the pipeline's copy under a mask epoch.
// Workers lazily re-copy the master mask at the start of their next job
// when their epoch is stale (the ring push/pop pair orders the mask write
// before the copy), so mask updates are only legal between batches —
// exactly the single-producer contract the scenario loops already follow.
//
// Determinism: out[i] is exactly forward_stats(packets[i]) bit for bit —
// walks are independent, each worker replays the same per-lane kernel
// semantics against the same FIB values (the replica is a verbatim copy of
// its columns), and out slots are disjoint — so results are invariant
// under worker count, shard geometry and kernel choice.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dataplane/forward_kernel.h"
#include "dataplane/network.h"

namespace splice {

class ShardPipeline {
 public:
  /// Builds `workers` destination shards over `net` (clamped to [1, node
  /// count]). workers <= 1 degrades to an inline single-threaded path with
  /// no worker threads and no replicas. The network must outlive the
  /// pipeline; its link mask is snapshotted here and evolves independently
  /// afterwards. `kernel` pins the hop kernel (defaults to the process-wide
  /// choice).
  ShardPipeline(const DataPlaneNetwork& net, int workers,
                fwdk::Kernel kernel = fwdk::active_kernel());
  ~ShardPipeline();

  ShardPipeline(const ShardPipeline&) = delete;
  ShardPipeline& operator=(const ShardPipeline&) = delete;

  int worker_count() const noexcept { return workers_; }
  fwdk::Kernel kernel() const noexcept { return kernel_; }

  /// Forwards a batch across the shards: out[i] is bit-identical to
  /// net.forward_stats(packets[i], policy) under the pipeline's current
  /// link mask. Blocks until every summary is written. Not reentrant —
  /// one batch at a time, from one thread.
  void forward_stats_batch(std::span<const Packet> packets,
                           const ForwardingPolicy& policy,
                           std::span<ForwardSummary> out);

  /// Between batches only (single-producer contract).
  void set_link_mask(std::span<const char> alive);
  void set_link_state(EdgeId e, bool alive);
  void restore_all_links();

  /// Between batches only: repoints the pipeline at new FIB contents with
  /// the same geometry (k, strides, node count) — e.g. the snapshot a
  /// FibPublisher epoch swap just published — under a FIB epoch. Workers
  /// re-copy their destination columns lazily at the start of their next
  /// job (the ring push/pop pair orders the repoint before the copy), the
  /// inline path re-reads the view directly; the first batch after a
  /// refresh is bit-identical to forwarding on the new table. `master`'s
  /// liveness pointer is ignored — liveness stays pipeline-owned.
  void refresh_fib(const fwdk::FibView& master);

 private:
  struct Worker;

  /// Shard owning destination `dst` (contiguous ranges of width span_).
  std::size_t shard_of(NodeId dst) const noexcept {
    return static_cast<std::size_t>(dst) / span_;
  }

  const DataPlaneNetwork* net_;
  fwdk::Kernel kernel_;
  int workers_ = 1;
  std::size_t span_ = 1;  ///< destinations per shard
  std::size_t links_ = 0;

  /// Master liveness mask (links_ bytes + fwdk::kAlivePad zero tail) and
  /// its epoch; workers re-copy when stale.
  std::vector<char> mask_;
  std::uint64_t mask_epoch_ = 1;

  /// Master FIB view (entries + geometry; liveness pointer unused) and its
  /// epoch; workers re-copy their replica columns when stale.
  fwdk::FibView master_fib_{};
  std::uint64_t fib_epoch_ = 1;

  /// Per-shard packet-index lists, rebuilt each batch (capacity reused).
  std::vector<std::vector<std::uint32_t>> shard_items_;

  /// Published batch state, valid while a batch is in flight; the ring
  /// push/pop release/acquire pair orders these writes before worker reads.
  std::span<const Packet> cur_packets_;
  std::span<ForwardSummary> cur_out_;
  ForwardingPolicy cur_policy_;

  std::vector<std::unique_ptr<Worker>> pool_;

  /// Inline path state (workers_ == 1).
  fwdk::BatchLanes inline_lanes_;

  void forward_inline(std::span<const Packet> packets,
                      const ForwardingPolicy& policy,
                      std::span<ForwardSummary> out);
  void worker_main(Worker& w);
  /// Copies this worker's destination columns out of master_fib_ and stamps
  /// its fib epoch. Runs on the worker's own thread.
  void copy_replica(Worker& w);
};

}  // namespace splice
