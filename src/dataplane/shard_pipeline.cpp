#include "dataplane/shard_pipeline.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <thread>

#include "util/assert.h"

namespace splice {

namespace {

/// SPSC ring commands. The ring only ever holds the in-flight job plus a
/// final stop token, but the ring structure (rather than a single flag)
/// keeps push non-blocking and the idiom reusable.
constexpr std::uint32_t kCmdBatch = 1;
constexpr std::uint32_t kCmdStop = 2;

}  // namespace

/// One destination shard: a worker thread, its compacted FIB replica, its
/// private liveness copy, its lane workspace, and the SPSC command ring
/// that feeds it. The jthread is the last member so destruction joins the
/// thread before any state it touches is torn down.
struct ShardPipeline::Worker {
  ShardPipeline* pipe = nullptr;
  int id = 0;
  NodeId dst_lo = 0;
  NodeId dst_hi = 0;  ///< exclusive

  /// Compacted replica [slice][node][dst_local], row stride = shard width.
  /// Built on the worker thread (first-touch placement).
  std::vector<FibEntry> entries;
  /// Private liveness copy (links + kAlivePad zero tail), refreshed lazily
  /// from the master mask when the epoch is stale.
  std::vector<char> alive;
  std::uint64_t mask_epoch = 0;
  std::uint64_t fib_epoch = 0;
  fwdk::FibView view{};
  fwdk::BatchLanes lanes;

  /// SPSC command ring: the dispatcher releases writes at tail, the worker
  /// acquires them at head and sleeps on the tail word (C++20 atomic wait).
  static constexpr std::uint32_t kCap = 8;
  std::array<std::uint32_t, kCap> ring{};
  std::atomic<std::uint32_t> head{0};
  std::atomic<std::uint32_t> tail{0};

  /// Jobs completed (worker-released); the dispatcher waits for it to
  /// catch up with jobs_pushed.
  std::atomic<std::uint64_t> jobs_done{0};
  std::uint64_t jobs_pushed = 0;
  std::atomic<int> ready{0};

  std::jthread thread;

  void push(std::uint32_t cmd) {
    const std::uint32_t t = tail.load(std::memory_order_relaxed);
    SPLICE_EXPECTS(t - head.load(std::memory_order_acquire) < kCap);
    ring[t % kCap] = cmd;
    tail.store(t + 1, std::memory_order_release);
    tail.notify_one();
  }

  std::uint32_t pop() {
    const std::uint32_t h = head.load(std::memory_order_relaxed);
    while (tail.load(std::memory_order_acquire) == h) {
      tail.wait(h, std::memory_order_acquire);
    }
    const std::uint32_t cmd = ring[h % kCap];
    head.store(h + 1, std::memory_order_release);
    return cmd;
  }
};

ShardPipeline::ShardPipeline(const DataPlaneNetwork& net, int workers,
                             fwdk::Kernel kernel)
    : net_(&net), kernel_(kernel) {
  const auto n = static_cast<std::size_t>(net.graph().node_count());
  SPLICE_EXPECTS(n >= 1);
  const std::span<const char> mask = net.link_mask();
  links_ = mask.size();
  mask_.assign(links_ + fwdk::kAlivePad, 0);
  std::memcpy(mask_.data(), mask.data(), links_);
  master_fib_ = net.fib_view();

  const auto requested = static_cast<std::size_t>(std::max(workers, 1));
  span_ = (n + requested - 1) / requested;
  workers_ = static_cast<int>((n + span_ - 1) / span_);
  if (workers_ <= 1) {
    workers_ = 1;
    return;
  }

  shard_items_.resize(static_cast<std::size_t>(workers_));
  pool_.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->pipe = this;
    worker->id = w;
    worker->dst_lo = static_cast<NodeId>(static_cast<std::size_t>(w) * span_);
    worker->dst_hi = static_cast<NodeId>(
        std::min(n, (static_cast<std::size_t>(w) + 1) * span_));
    pool_.push_back(std::move(worker));
  }
  for (auto& w : pool_) {
    Worker* raw = w.get();
    raw->thread = std::jthread([this, raw] { worker_main(*raw); });
  }
  for (auto& w : pool_) {
    while (w->ready.load(std::memory_order_acquire) == 0) {
      w->ready.wait(0, std::memory_order_acquire);
    }
  }
}

ShardPipeline::~ShardPipeline() {
  for (auto& w : pool_) w->push(kCmdStop);
  pool_.clear();  // jthread destructors join
}

void ShardPipeline::copy_replica(Worker& w) {
  // A verbatim copy of this shard's destination columns, [slice][node]
  // [dst_local]. Runs on the worker's own thread so the first copy's
  // first-touch places the pages there; refreshes reuse the storage.
  const fwdk::FibView& master = master_fib_;
  const auto n = static_cast<std::size_t>(net_->graph().node_count());
  const auto width =
      static_cast<std::size_t>(w.dst_hi) - static_cast<std::size_t>(w.dst_lo);
  const auto k = static_cast<std::size_t>(master.k);
  w.entries.resize(k * n * width);
  for (std::size_t s = 0; s < k; ++s) {
    for (std::size_t node = 0; node < n; ++node) {
      std::memcpy(w.entries.data() + (s * n + node) * width,
                  master.entries + s * master.slice_stride +
                      node * master.row_stride +
                      static_cast<std::size_t>(w.dst_lo),
                  width * sizeof(FibEntry));
    }
  }
  w.fib_epoch = fib_epoch_;
}

void ShardPipeline::worker_main(Worker& w) {
  // Replica build (first-touch placement), then the same hugepage advice
  // the master FIB gets.
  copy_replica(w);
  const auto n = static_cast<std::size_t>(net_->graph().node_count());
  const auto width =
      static_cast<std::size_t>(w.dst_hi) - static_cast<std::size_t>(w.dst_lo);
  fwdk::advise_hugepages(w.entries.data(),
                         w.entries.size() * sizeof(FibEntry));
  w.alive.assign(links_ + fwdk::kAlivePad, 0);
  w.view = master_fib_;
  w.view.entries = w.entries.data();
  w.view.slice_stride = n * width;
  w.view.row_stride = width;
  w.view.alive = w.alive.data();
  // The replica is smaller than the master FIB by the shard factor; gate
  // its prefetch on its own footprint, not the master's.
  w.view.prefetch =
      fwdk::prefetch_enabled(w.entries.size() * sizeof(FibEntry));
  w.ready.store(1, std::memory_order_release);
  w.ready.notify_one();

  for (;;) {
    const std::uint32_t cmd = w.pop();
    if (cmd == kCmdStop) return;
    // The ring pop acquired everything the dispatcher wrote before the
    // push: batch spans, shard item lists, and any mask/FIB update + epoch.
    if (w.mask_epoch != mask_epoch_) {
      std::memcpy(w.alive.data(), mask_.data(), links_);
      w.mask_epoch = mask_epoch_;
    }
    if (w.fib_epoch != fib_epoch_) copy_replica(w);
    const std::vector<std::uint32_t>& items =
        shard_items_[static_cast<std::size_t>(w.id)];
    if (w.lanes.bits_lo.size() < items.size()) w.lanes.resize(items.size());
    std::size_t nl = 0;
    for (const std::uint32_t i : items) {
      const Packet& p = cur_packets_[i];
      fwdk::init_lane(w.lanes, nl++, p, i,
                      net_->default_slice(p.src, p.dst), p.dst - w.dst_lo);
    }
    w.lanes.size = nl;
    fwdk::run_batch(w.view, cur_policy_, w.lanes, cur_out_, kernel_);
    w.jobs_done.fetch_add(1, std::memory_order_release);
    w.jobs_done.notify_one();
  }
}

void ShardPipeline::forward_stats_batch(std::span<const Packet> packets,
                                        const ForwardingPolicy& policy,
                                        std::span<ForwardSummary> out) {
  SPLICE_EXPECTS(out.size() == packets.size());
  if (workers_ == 1) {
    forward_inline(packets, policy, out);
    return;
  }

  for (auto& items : shard_items_) items.clear();
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Packet& p = packets[i];
    SPLICE_EXPECTS(net_->graph().valid_node(p.src));
    SPLICE_EXPECTS(net_->graph().valid_node(p.dst));
    if (p.src == p.dst) {
      out[i] = ForwardSummary{};
      out[i].outcome = ForwardOutcome::kDelivered;
      continue;
    }
    shard_items_[shard_of(p.dst)].push_back(static_cast<std::uint32_t>(i));
  }
  cur_packets_ = packets;
  cur_out_ = out;
  cur_policy_ = policy;

  for (auto& w : pool_) {
    if (shard_items_[static_cast<std::size_t>(w->id)].empty()) continue;
    ++w->jobs_pushed;
    w->push(kCmdBatch);
  }
  for (auto& w : pool_) {
    std::uint64_t done;
    while ((done = w->jobs_done.load(std::memory_order_acquire)) !=
           w->jobs_pushed) {
      w->jobs_done.wait(done, std::memory_order_acquire);
    }
  }
  observe_batch_summaries(out);
  fold_route_health(packets, out);
}

void ShardPipeline::forward_inline(std::span<const Packet> packets,
                                   const ForwardingPolicy& policy,
                                   std::span<ForwardSummary> out) {
  fwdk::FibView view = master_fib_;
  view.alive = mask_.data();  // pipeline-owned liveness, not the network's
  if (inline_lanes_.bits_lo.size() < packets.size()) {
    inline_lanes_.resize(packets.size());
  }
  std::size_t nl = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Packet& p = packets[i];
    SPLICE_EXPECTS(net_->graph().valid_node(p.src));
    SPLICE_EXPECTS(net_->graph().valid_node(p.dst));
    if (p.src == p.dst) {
      out[i] = ForwardSummary{};
      out[i].outcome = ForwardOutcome::kDelivered;
      continue;
    }
    fwdk::init_lane(inline_lanes_, nl++, p, static_cast<std::uint32_t>(i),
                    net_->default_slice(p.src, p.dst), p.dst);
  }
  inline_lanes_.size = nl;
  fwdk::run_batch(view, policy, inline_lanes_, out, kernel_);
  observe_batch_summaries(out);
  fold_route_health(packets, out);
}

void ShardPipeline::set_link_mask(std::span<const char> alive) {
  SPLICE_EXPECTS(alive.size() == links_);
  std::memcpy(mask_.data(), alive.data(), links_);
  ++mask_epoch_;
}

void ShardPipeline::set_link_state(EdgeId e, bool alive) {
  SPLICE_EXPECTS(e >= 0 && static_cast<std::size_t>(e) < links_);
  mask_[static_cast<std::size_t>(e)] = alive ? 1 : 0;
  ++mask_epoch_;
}

void ShardPipeline::restore_all_links() {
  std::fill(mask_.begin(),
            mask_.begin() + static_cast<std::ptrdiff_t>(links_), 1);
  ++mask_epoch_;
}

void ShardPipeline::refresh_fib(const fwdk::FibView& master) {
  SPLICE_EXPECTS(master.entries != nullptr);
  // Same geometry only — shards and replica storage are sized for it.
  SPLICE_EXPECTS(master.k == master_fib_.k);
  SPLICE_EXPECTS(master.slice_stride == master_fib_.slice_stride);
  SPLICE_EXPECTS(master.row_stride == master_fib_.row_stride);
  const char* alive = master_fib_.alive;  // liveness stays pipeline-owned
  master_fib_ = master;
  master_fib_.alive = alive;
  ++fib_epoch_;
}

}  // namespace splice
