// Live FIB publication: the control/data-plane split that makes incremental
// SPT repair pay off as *republication latency under churn* instead of a
// batch-rebuild speedup.
//
// One control thread ingests link events (fail / restore / weight change),
// repairs the k routing instances in place (RoutingInstance::recompute_edge
// via MultiInstanceRouting::apply_edge_weights, which reports exactly which
// destination columns may have changed), patches only those destinations in
// a shadow FibSet (MultiInstanceRouting::patch_destination rewrites k·n
// entries per touched destination instead of k·n² for the table), and
// publishes the shadow by swapping an atomic snapshot pointer under
// epoch-based RCU (dataplane/epoch.h).
//
// Storage rotates between exactly two snapshots, each a FibSet plus the
// DataPlaneNetwork that fronts it, both built once at construction:
//
//   publish(event N):
//     1. catch the shadow up to event N-1 by replaying the previous
//        event's touched-destination patch from the current control state
//        (the shadow always lags the published table by exactly one event,
//        so one replay suffices),
//     2. apply event N to the control plane, collecting the new touched
//        set,
//     3. patch the shadow's touched columns + its liveness byte,
//     4. swap the snapshot pointer, advance the epoch,
//     5. wait for the grace period — after which the retired table has no
//        readers and becomes the next shadow.
//
// Steady-state publication therefore never allocates table storage: the two
// FibSets, the two liveness masks and the two touched bitmaps are permanent
// and mutated in place. (The control-plane repair itself uses its own
// scratch heaps; the *publication* path — patch, swap, grace — is
// allocation-free, and the read side is allocation-free outright.)
//
// Read side. Each forwarding thread owns a FibPublisher::Reader. Per batch:
// pin() (one seq_cst load+store pair in EpochDomain::pin plus one seq_cst
// pointer load) returns a DataPlaneNetwork reference that is guaranteed
// stable until unpin(); the thread runs any number of forward_stats_batch
// calls against it with zero locks, zero allocation and zero per-packet
// atomics, then unpin()s (one release store). Readers must unpin between
// batches — the grace period is bounded by the longest pinned section.
//
// Reconvergence-latency SLO. publish() timestamps event ingest (t0) and
// grace completion (t1) with the shared obs clock; latency_ns = t1 - t0 is
// the per-event "event-ingest → all readers observing the new epoch"
// figure. It is exported three ways: in the returned PublishStats (bench
// histograms), as the obs histogram "publisher.reconv_latency_us", and as
// kEpochPublish/kEpochGrace flight-recorder events (rendered by
// splice_inspect epochs).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dataplane/epoch.h"
#include "dataplane/network.h"
#include "graph/graph.h"
#include "routing/multi_instance.h"

namespace splice {

/// Telemetry from one publish: the repair, the patch width, and the SLO
/// measurement.
struct PublishStats {
  std::uint64_t epoch = 0;       ///< epoch readers must observe
  RepairStats repair;            ///< control-plane repair telemetry
  int dsts_patched = 0;          ///< destination columns rewritten
  std::uint64_t latency_ns = 0;  ///< event ingest -> grace complete (SLO)
  /// Event ingest -> snapshot swapped (repair + patch + swap, excluding
  /// the grace wait — the part a full-rebuild republication would replace
  /// with a k*n^2 rebuild; grace is paid either way).
  std::uint64_t work_ns = 0;
  std::uint64_t grace_spins = 0; ///< reader-lag spins during the grace wait
};

class FibPublisher {
 public:
  /// Builds the control plane and both snapshots (the only allocations of
  /// the publisher's lifetime). The graph must outlive the publisher.
  FibPublisher(const Graph& g, const ControlPlaneConfig& cfg);

  FibPublisher(const FibPublisher&) = delete;
  FibPublisher& operator=(const FibPublisher&) = delete;
  ~FibPublisher();

  // -- control side (single publisher thread) ------------------------------

  /// Link failure: every slice takes kInfiniteWeight for `e`, liveness
  /// drops. Repeated failure of a dead link publishes a no-op epoch.
  PublishStats publish_link_down(EdgeId e);

  /// Link repair: every slice gets back its ORIGINAL perturbed weight for
  /// `e` (a uniform weight cannot express this — each slice routes on its
  /// own draw), liveness returns.
  PublishStats publish_link_restore(EdgeId e);

  /// Maintenance cost-out: every slice takes `factor` × its original
  /// perturbed weight for `e` (factor 1.0 restores). The link stays alive.
  PublishStats publish_weight_scale(EdgeId e, double factor);

  /// Generic form: per-slice weights for `e` plus the liveness bit.
  PublishStats publish_weights(EdgeId e, std::span<const Weight> per_slice,
                               bool alive);

  /// Brings the shadow table up to date so BOTH snapshots equal the
  /// current control state (the quiescent point the differential tests
  /// compare at). Call only while no publish is in flight.
  void quiesce();

  // -- introspection (quiescent points / single publisher thread) ----------

  std::uint64_t epoch() const noexcept { return domain_.current(); }
  std::uint64_t published_version() const noexcept;
  const MultiInstanceRouting& control() const noexcept { return mir_; }
  const Graph& graph() const noexcept { return *graph_; }
  EpochDomain& domain() noexcept { return domain_; }

  /// The currently published snapshot. Only meaningful from the publisher
  /// thread or at quiescent points; readers use Reader::pin().
  const DataPlaneNetwork& published_net() const noexcept;
  const FibSet& published_fibs() const noexcept;

  /// Per-slice original (perturbed) weights for edge `e`, as captured at
  /// construction — what publish_link_restore() reinstalls.
  void original_weights(EdgeId e, std::vector<Weight>& out) const;

  // -- read side ------------------------------------------------------------

  /// One per forwarding thread. Registers an epoch slot on construction;
  /// pin() is wait-free and allocation-free.
  class Reader {
   public:
    explicit Reader(FibPublisher& pub)
        : pub_(&pub), slot_(pub.domain_.register_reader()) {}
    ~Reader() {
      if (pinned_) unpin();
      pub_->domain_.unregister_reader(slot_);
    }
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// Enters a read-side critical section and returns the snapshot to
    /// forward against; stable until unpin(). Records a kEpochAdopt
    /// flight-recorder event the first time this reader observes a new
    /// snapshot version (when the recorder is enabled).
    const DataPlaneNetwork& pin();
    void unpin() {
      pub_->domain_.unpin(slot_);
      pinned_ = false;
    }

    /// Snapshot version this reader most recently observed.
    std::uint64_t adopted_version() const noexcept { return last_version_; }
    EpochDomain::ReaderSlot slot() const noexcept { return slot_; }

   private:
    FibPublisher* pub_;
    EpochDomain::ReaderSlot slot_;
    std::uint64_t last_version_ = 0;
    bool pinned_ = false;
  };

 private:
  friend class Reader;

  /// A FibSet and the network view fronting it. The network references the
  /// FibSet by pointer and the FibSet's entry array never reallocates, so
  /// in-place column patches keep the view valid.
  struct Snapshot {
    FibSet fibs;
    DataPlaneNetwork net;
    std::uint64_t version = 0;

    Snapshot(const Graph& g, FibSet f)
        : fibs(std::move(f)), net(g, fibs) {}
  };

  const Graph* graph_;
  MultiInstanceRouting mir_;
  EpochDomain domain_;
  std::unique_ptr<Snapshot> snap_a_, snap_b_;
  std::atomic<Snapshot*> published_;
  Snapshot* shadow_;

  /// [slice][edge] weights at construction; restore/scale source.
  std::vector<std::vector<Weight>> original_weights_;
  /// Rotating touched-destination bitmaps: cur_ collects this event's
  /// columns, prev_ replays the previous event onto the incoming shadow.
  std::vector<char> prev_touched_, cur_touched_;
  /// Per-event per-slice weight scratch (k entries, reused).
  std::vector<Weight> weight_scratch_;
  EdgeId prev_edge_ = kInvalidEdge;
  char prev_alive_ = 1;
  bool have_prev_ = false;
  std::uint64_t version_ = 1;
};

}  // namespace splice
