#include "dataplane/network.h"

#include <algorithm>
#include <cstdint>

#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/linkstats.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/assert.h"
#include "util/rng.h"

namespace splice {

DataPlaneNetwork::DataPlaneNetwork(const Graph& g, const FibSet& fibs)
    : graph_(&g),
      fibs_(&fibs),
      flat_(fibs),
      edge_weight_(static_cast<std::size_t>(g.edge_count())),
      link_alive_(static_cast<std::size_t>(g.edge_count()) + fwdk::kAlivePad,
                  1),
      links_(static_cast<std::size_t>(g.edge_count())) {
  // Span only — no counter: TrialEngine workers construct scratch copies of
  // this object lazily, so a build counter would vary with thread count and
  // break the snapshot determinism contract.
  SPLICE_OBS_SPAN("dataplane.network_build");
  SPLICE_EXPECTS(fibs.node_count() == g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    edge_weight_[static_cast<std::size_t>(e)] = g.edge(e).weight;
  }
  // The kAlivePad tail bytes exist only to keep the AVX2 liveness gathers
  // in bounds; they are never edges, so keep them permanently zero.
  std::fill(link_alive_.begin() + static_cast<std::ptrdiff_t>(links_),
            link_alive_.end(), 0);
  fwdk::advise_hugepages(fibs.data().data(), fibs.data().size_bytes());
}

void DataPlaneNetwork::restore_all_links() {
  std::fill(link_alive_.begin(),
            link_alive_.begin() + static_cast<std::ptrdiff_t>(links_), 1);
}

void DataPlaneNetwork::set_link_state(EdgeId e, bool alive) {
  SPLICE_EXPECTS(e >= 0 && static_cast<std::size_t>(e) < links_);
  link_alive_[static_cast<std::size_t>(e)] = alive ? 1 : 0;
}

void DataPlaneNetwork::set_link_mask(std::span<const char> alive) {
  SPLICE_EXPECTS(alive.size() == links_);
  std::copy(alive.begin(), alive.end(), link_alive_.begin());
}

SliceId DataPlaneNetwork::default_slice(NodeId src, NodeId dst) const noexcept {
  const auto k = static_cast<std::uint64_t>(fibs_->slice_count());
  return static_cast<SliceId>(hash_mix(static_cast<std::uint64_t>(src),
                                       static_cast<std::uint64_t>(dst)) %
                              k);
}

template <bool kTrace>
ForwardSummary DataPlaneNetwork::forward_core(const Packet& packet,
                                              const ForwardingPolicy& policy,
                                              ForwardWorkspace* ws) const {
  SPLICE_EXPECTS(graph_->valid_node(packet.src));
  SPLICE_EXPECTS(graph_->valid_node(packet.dst));
  if constexpr (kTrace) ws->hops.clear();

  ForwardSummary out;
  if (packet.src == packet.dst) {
    out.outcome = ForwardOutcome::kDelivered;
    return out;
  }

  const SliceId k = flat_.slice_count();
  const NodeId dst = packet.dst;

  // The header's bit payload lives in two registers; pops happen inline with
  // SpliceHeader::pop semantics (a value — possibly 0 — while splice hops
  // remain and the header has k > 1, exhausted afterwards). The header may
  // have been built for a different k than this network: pop with the
  // header's own bit width, reduce modulo the network's k.
  std::uint64_t bits_lo = packet.header.stream().lo();
  std::uint64_t bits_hi = packet.header.stream().hi();
  const int hdr_bpp = bits_per_hop(packet.header.slice_count());
  int bits_left =
      packet.header.slice_count() > 1 ? packet.header.remaining_hops() : 0;
  const std::uint32_t hdr_mask =
      hdr_bpp > 0 ? ((1u << hdr_bpp) - 1u) : 0u;

  CounterHeader counter = packet.counter;
  const SliceId def = default_slice(packet.src, dst);
  SliceId current = def;
  NodeId node = packet.src;
  int ttl = packet.ttl;

  const char* alive = link_alive_.data();
  const Weight* weight = edge_weight_.data();

  // Per-link attribution: one scratch resolve per walk (nullptr when off;
  // the per-hop hooks are then one dead branch), flushed by RAII so every
  // return path pays one clock read at most. Single walks are their own
  // "batch"; the batch kernel amortizes the same flush over run_batch.
  obs::LinkScratch* const ls = obs::LinkScratch::acquire();
  struct LinkFlush {
    obs::LinkScratch* ls;
    ~LinkFlush() {
      if (ls != nullptr) ls->flush(obs::clock_now_ns());
    }
  } link_flush{ls};

#if SPLICE_OBS
  // Flight-recorder hook for sampled packet walks: inert (one thread-local
  // load + branch) unless an enclosing obs::WalkScope armed this thread.
  // The RAII end-capture reads `out` after whichever return path filled it.
  struct WalkCapture {
    const ForwardSummary& out;
    const bool active;
    WalkCapture(const ForwardSummary& out, NodeId src, NodeId dst, SliceId k,
                int header_hops)
        : out(out), active(obs::walk_capture_active()) {
      if (active) {
        obs::walk_packet_begin(static_cast<std::uint32_t>(src),
                               static_cast<std::uint32_t>(dst),
                               static_cast<std::uint32_t>(k),
                               static_cast<std::uint32_t>(header_hops));
      }
    }
    ~WalkCapture() {
      if (active) {
        obs::walk_packet_end(static_cast<std::uint32_t>(out.outcome),
                             static_cast<std::uint32_t>(out.hops), out.cost,
                             out.deflected);
      }
    }
  } walk_capture(out, packet.src, dst, k, bits_left);
#endif

  while (ttl-- > 0) {
    // Algorithm 1: read the rightmost lg(k) bits if any remain; otherwise
    // apply the exhaust policy.
#if SPLICE_OBS
    std::uint32_t hop_bits = 0;
#endif
    SliceId slice = current;
    if (bits_left > 0) {
      --bits_left;
#if SPLICE_OBS
      hop_bits = static_cast<std::uint32_t>(hdr_bpp);
#endif
      const std::uint32_t raw =
          static_cast<std::uint32_t>(bits_lo) & hdr_mask;
      bits_lo = (bits_lo >> hdr_bpp) | (bits_hi << (64 - hdr_bpp));
      bits_hi >>= hdr_bpp;
      // Headers are opaque; defensive mod protects against bit patterns
      // that encode a value >= k when k is not a power of two.
      slice = flat_.reduce_slice(raw);
    } else if (policy.exhaust == ExhaustPolicy::kHashDefault) {
      slice = def;
    }
    // Counter-based deflection (§5): a non-zero counter overrides the slice
    // deterministically and decrements.
    if (counter.active()) slice = counter.deflect(slice, k);

    const std::size_t cell = flat_.cell(node, dst);
    FibEntry entry = flat_.at(slice, cell);
    bool deflected = false;
    const bool usable =
        entry.valid() && alive[static_cast<std::size_t>(entry.edge)] != 0;
    if (!usable) {
      if (policy.local_recovery == LocalRecovery::kDeflect) {
        // Network-based recovery (§4.3): scan the other forwarding tables
        // for a next hop whose incident link is alive.
        for (SliceId s = 0; s < k && !deflected; ++s) {
          if (s == slice) continue;
          const FibEntry alt = flat_.at(s, cell);
          if (alt.valid() &&
              alive[static_cast<std::size_t>(alt.edge)] != 0) {
            entry = alt;
            slice = s;
            deflected = true;
          }
        }
      }
      if (!deflected) {
        // entry/slice are untouched on this path: attribute the drop to
        // the staged slice's dead primary link (invalid primaries have no
        // link to blame).
        if (ls != nullptr && entry.valid()) {
          ls->drop(static_cast<std::uint32_t>(slice),
                   static_cast<std::uint32_t>(entry.edge));
        }
        out.outcome = ForwardOutcome::kDeadEnd;
        return out;
      }
    }

    if constexpr (kTrace) {
      ws->hops.push_back(
          HopRecord{node, entry.next_hop, entry.edge, slice, deflected});
    }
#if SPLICE_OBS
    if (walk_capture.active) {
      obs::walk_hop(static_cast<std::uint32_t>(node),
                    static_cast<std::uint32_t>(entry.next_hop),
                    static_cast<std::uint32_t>(slice),
                    static_cast<std::uint32_t>(entry.edge), deflected,
                    hop_bits);
    }
#endif
    ++out.hops;
    out.cost += weight[static_cast<std::size_t>(entry.edge)];
    out.deflected = out.deflected || deflected;
    node = entry.next_hop;
    current = slice;
    if (ls != nullptr) {
      ls->hit(static_cast<std::uint32_t>(slice),
              static_cast<std::uint32_t>(entry.edge), deflected);
    }
    if (node == dst) {
      out.outcome = ForwardOutcome::kDelivered;
      return out;
    }
  }
  out.outcome = ForwardOutcome::kTtlExpired;
  return out;
}

Delivery DataPlaneNetwork::forward(const Packet& packet,
                                   const ForwardingPolicy& policy) const {
  ForwardWorkspace ws;
  const ForwardSummary summary = forward_core<true>(packet, policy, &ws);
  Delivery out;
  out.outcome = summary.outcome;
  out.hops = std::move(ws.hops);
  return out;
}

ForwardSummary DataPlaneNetwork::forward_fast(const Packet& packet,
                                              const ForwardingPolicy& policy,
                                              ForwardWorkspace& ws) const {
  return forward_core<true>(packet, policy, &ws);
}

ForwardSummary DataPlaneNetwork::forward_stats(
    const Packet& packet, const ForwardingPolicy& policy) const {
  return forward_core<false>(packet, policy, nullptr);
}

fwdk::FibView DataPlaneNetwork::fib_view() const noexcept {
  fwdk::FibView v;
  v.entries = flat_.entries();
  v.slice_stride = flat_.slice_stride();
  v.row_stride = static_cast<std::size_t>(flat_.node_count());
  v.k = flat_.slice_count();
  v.k_pow2 = flat_.slices_pow2();
  v.k_mask = flat_.pow2_mask();
  v.mod_magic = flat_.mod_magic();
  v.alive = link_alive_.data();
  v.weight = edge_weight_.data();
  v.prefetch = fwdk::prefetch_enabled(
      static_cast<std::size_t>(v.slice_stride) *
      static_cast<std::size_t>(v.k) * sizeof(FibEntry));
  return v;
}

void DataPlaneNetwork::forward_stats_batch(std::span<const Packet> packets,
                                           const ForwardingPolicy& policy,
                                           std::span<ForwardSummary> out) const {
  ForwardWorkspace ws;
  forward_stats_batch(packets, policy, out, ws);
}

void DataPlaneNetwork::forward_stats_batch(std::span<const Packet> packets,
                                           const ForwardingPolicy& policy,
                                           std::span<ForwardSummary> out,
                                           ForwardWorkspace& ws) const {
  forward_stats_batch(packets, policy, out, ws, fwdk::active_kernel());
}

void DataPlaneNetwork::forward_stats_batch(std::span<const Packet> packets,
                                           const ForwardingPolicy& policy,
                                           std::span<ForwardSummary> out,
                                           ForwardWorkspace& ws,
                                           fwdk::Kernel kernel) const {
  SPLICE_EXPECTS(out.size() == packets.size());

  // SoA wavefront kernel (dataplane/forward_kernel.h): every still-in-flight
  // walk advances one hop per sweep over per-field lane arrays, so the
  // next-hop FIB loads of consecutive lanes carry no data dependence and
  // overlap in the memory system — and the AVX2 path turns eight of them
  // into one gather. Lane state lives in the workspace: grown to the
  // largest batch once, then every later batch through this workspace runs
  // allocation-free (the zero-alloc contract the resprof gates enforce).
  fwdk::BatchLanes& lanes = ws.batch;
  if (lanes.bits_lo.size() < packets.size()) lanes.resize(packets.size());
  std::size_t n_lanes = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Packet& p = packets[i];
    SPLICE_EXPECTS(graph_->valid_node(p.src));
    SPLICE_EXPECTS(graph_->valid_node(p.dst));
    if (p.src == p.dst) {
      out[i] = ForwardSummary{};
      out[i].outcome = ForwardOutcome::kDelivered;
      continue;
    }
    fwdk::init_lane(lanes, n_lanes++, p, static_cast<std::uint32_t>(i),
                    default_slice(p.src, p.dst), p.dst);
  }
  lanes.size = n_lanes;
  fwdk::run_batch(fib_view(), policy, lanes, out, kernel);
  observe_batch_summaries(out);
}

void observe_batch_summaries(std::span<const ForwardSummary> out) {
#if SPLICE_OBS
  // Telemetry tail, outside the kernel: per-packet work is a pure function
  // of the packet set, so these totals are thread-count-invariant no matter
  // how the batches are partitioned across TrialEngine workers (or the
  // sharded pipeline's destination shards).
  if (obs::MetricsRegistry::enabled()) {
    long long delivered = 0, dead_end = 0, ttl_expired = 0;
    long long hops = 0, deflected = 0;
    constexpr int kHopBins = 64;
    constexpr double kHopLo = 0.0, kHopHi = 256.0;
    static obs::HistogramMetric& hops_hist =
        obs::MetricsRegistry::global().histogram("dataplane.batch.hops_hist",
                                                 kHopLo, kHopHi, kHopBins);
    // Bin locally, flush once: per-sample atomics here cost ~20% of the
    // kernel; one batched flush is noise. Hops are non-negative integers
    // and the bin width (kHopHi / kHopBins = 4) is a power of two, so
    // `min(hops >> 2, kHopBins - 1)` reproduces Histogram::bin_index
    // exactly without the per-packet double divide.
    static_assert(kHopLo == 0.0 && kHopHi / kHopBins == 4.0);
    long long hop_bins[kHopBins] = {};
    for (const ForwardSummary& s : out) {
      switch (s.outcome) {
        case ForwardOutcome::kDelivered:
          ++delivered;
          break;
        case ForwardOutcome::kDeadEnd:
          ++dead_end;
          break;
        case ForwardOutcome::kTtlExpired:
          ++ttl_expired;
          break;
      }
      hops += s.hops;
      deflected += s.deflected ? 1 : 0;
      ++hop_bins[std::min(s.hops >> 2, kHopBins - 1)];
    }
    // The sample sum of integer hops is exact as a double (hops < 2^53).
    hops_hist.observe_binned(hop_bins, kHopBins, static_cast<double>(hops));
    SPLICE_OBS_COUNT("dataplane.batch.packets",
                     static_cast<long long>(out.size()));
    SPLICE_OBS_COUNT("dataplane.batch.delivered", delivered);
    SPLICE_OBS_COUNT("dataplane.batch.dead_end", dead_end);
    SPLICE_OBS_COUNT("dataplane.batch.ttl_expired", ttl_expired);
    SPLICE_OBS_COUNT("dataplane.batch.hops", hops);
    SPLICE_OBS_COUNT("dataplane.batch.deflected_packets", deflected);
  }
#else
  (void)out;
#endif  // SPLICE_OBS
}

void fold_route_health(std::span<const Packet> packets,
                       std::span<const ForwardSummary> out) {
#if SPLICE_OBS
  if (!obs::RouteHealth::enabled()) return;
  SPLICE_EXPECTS(out.size() == packets.size());
  // One clock read per batch: all the batch's samples land in the same
  // window bucket, which is also what keeps gated workloads deterministic
  // (the ManualClock advances only between batches).
  const std::uint64_t now = obs::clock_now_ns();
  obs::RouteHealth& health = obs::RouteHealth::global();
  std::uint64_t errors = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const bool ok = out[i].outcome == ForwardOutcome::kDelivered;
    if (!ok) ++errors;
    health.record_outcome(now, static_cast<std::uint32_t>(packets[i].dst),
                          ok);
  }
  health.record_fwd_batch(now, packets.size(), errors);
#else
  (void)packets;
  (void)out;
#endif  // SPLICE_OBS
}

Weight trace_cost(const Graph& g, const Delivery& d) {
  Weight cost = 0.0;
  for (const HopRecord& hop : d.hops) cost += g.edge(hop.edge).weight;
  return cost;
}

int count_node_revisits(std::span<const HopRecord> hops, NodeId node_count,
                        ForwardWorkspace& ws) {
  if (hops.empty()) return 0;
  if (ws.visit_stamp.size() < static_cast<std::size_t>(node_count)) {
    ws.visit_stamp.assign(static_cast<std::size_t>(node_count), 0);
    ws.visit_epoch = 0;
  }
  if (++ws.visit_epoch == 0) {
    // Epoch wrapped: one full clear, then restart from 1.
    std::fill(ws.visit_stamp.begin(), ws.visit_stamp.end(), 0);
    ws.visit_epoch = 1;
  }
  const std::uint32_t epoch = ws.visit_epoch;
  int revisits = 0;
  auto visit = [&](NodeId v) {
    SPLICE_EXPECTS(v >= 0 && v < node_count);
    std::uint32_t& stamp = ws.visit_stamp[static_cast<std::size_t>(v)];
    if (stamp == epoch) {
      ++revisits;
    } else {
      stamp = epoch;
    }
  };
  visit(hops.front().node);
  for (const HopRecord& hop : hops) visit(hop.next);
  return revisits;
}

int count_node_revisits(const Delivery& d) {
  if (d.hops.empty()) return 0;
  NodeId max_id = d.hops.front().node;
  for (const HopRecord& hop : d.hops) {
    max_id = std::max(max_id, std::max(hop.node, hop.next));
  }
  ForwardWorkspace ws;
  return count_node_revisits(d.hops, max_id + 1, ws);
}

bool has_two_hop_loop(std::span<const HopRecord> hops) {
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (hops[i].node == hops[i + 1].next) return true;
  }
  return false;
}

bool has_two_hop_loop(const Delivery& d) {
  return has_two_hop_loop(std::span<const HopRecord>(d.hops));
}

}  // namespace splice
