#include "dataplane/network.h"

#include <algorithm>
#include <cstdint>
#include <new>
#include <type_traits>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/assert.h"
#include "util/rng.h"

namespace splice {

namespace {

/// Asks the kernel to back a large read-mostly table with transparent
/// hugepages. Per-hop FIB lookups are single random loads, so once the
/// table outgrows the TLB's 4 KiB-page reach every hop pays a page walk —
/// and page walks serialize, defeating the wavefront batch kernel's
/// memory-level parallelism. Collapsing to 2 MiB pages keeps the whole
/// table TLB-resident. Best effort: any failure (old kernel, THP disabled,
/// fragmentation) is ignored and the code runs correctly on 4 KiB pages.
void advise_hugepages(const void* data, std::size_t bytes) {
#if defined(__linux__)
#ifndef MADV_COLLAPSE
#define MADV_COLLAPSE 25
#endif
  constexpr std::uintptr_t kPage = 4096;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t lo = (addr + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(kPage - 1);
  if (hi > lo) {
    void* base = reinterpret_cast<void*>(lo);
    (void)madvise(base, hi - lo, MADV_HUGEPAGE);
    (void)madvise(base, hi - lo, MADV_COLLAPSE);
  }
#else
  (void)data;
  (void)bytes;
#endif
}

}  // namespace

DataPlaneNetwork::DataPlaneNetwork(const Graph& g, const FibSet& fibs)
    : graph_(&g),
      fibs_(&fibs),
      flat_(fibs),
      edge_weight_(static_cast<std::size_t>(g.edge_count())),
      link_alive_(static_cast<std::size_t>(g.edge_count()), 1) {
  // Span only — no counter: TrialEngine workers construct scratch copies of
  // this object lazily, so a build counter would vary with thread count and
  // break the snapshot determinism contract.
  SPLICE_OBS_SPAN("dataplane.network_build");
  SPLICE_EXPECTS(fibs.node_count() == g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    edge_weight_[static_cast<std::size_t>(e)] = g.edge(e).weight;
  }
  advise_hugepages(fibs.data().data(), fibs.data().size_bytes());
}

void DataPlaneNetwork::restore_all_links() {
  std::fill(link_alive_.begin(), link_alive_.end(), 1);
}

void DataPlaneNetwork::set_link_state(EdgeId e, bool alive) {
  SPLICE_EXPECTS(e >= 0 && static_cast<std::size_t>(e) < link_alive_.size());
  link_alive_[static_cast<std::size_t>(e)] = alive ? 1 : 0;
}

void DataPlaneNetwork::set_link_mask(std::span<const char> alive) {
  SPLICE_EXPECTS(alive.size() == link_alive_.size());
  std::copy(alive.begin(), alive.end(), link_alive_.begin());
}

SliceId DataPlaneNetwork::default_slice(NodeId src, NodeId dst) const noexcept {
  const auto k = static_cast<std::uint64_t>(fibs_->slice_count());
  return static_cast<SliceId>(hash_mix(static_cast<std::uint64_t>(src),
                                       static_cast<std::uint64_t>(dst)) %
                              k);
}

template <bool kTrace>
ForwardSummary DataPlaneNetwork::forward_core(const Packet& packet,
                                              const ForwardingPolicy& policy,
                                              ForwardWorkspace* ws) const {
  SPLICE_EXPECTS(graph_->valid_node(packet.src));
  SPLICE_EXPECTS(graph_->valid_node(packet.dst));
  if constexpr (kTrace) ws->hops.clear();

  ForwardSummary out;
  if (packet.src == packet.dst) {
    out.outcome = ForwardOutcome::kDelivered;
    return out;
  }

  const SliceId k = flat_.slice_count();
  const NodeId dst = packet.dst;

  // The header's bit payload lives in two registers; pops happen inline with
  // SpliceHeader::pop semantics (a value — possibly 0 — while splice hops
  // remain and the header has k > 1, exhausted afterwards). The header may
  // have been built for a different k than this network: pop with the
  // header's own bit width, reduce modulo the network's k.
  std::uint64_t bits_lo = packet.header.stream().lo();
  std::uint64_t bits_hi = packet.header.stream().hi();
  const int hdr_bpp = bits_per_hop(packet.header.slice_count());
  int bits_left =
      packet.header.slice_count() > 1 ? packet.header.remaining_hops() : 0;
  const std::uint32_t hdr_mask =
      hdr_bpp > 0 ? ((1u << hdr_bpp) - 1u) : 0u;

  CounterHeader counter = packet.counter;
  const SliceId def = default_slice(packet.src, dst);
  SliceId current = def;
  NodeId node = packet.src;
  int ttl = packet.ttl;

  const char* alive = link_alive_.data();
  const Weight* weight = edge_weight_.data();

#if SPLICE_OBS
  // Flight-recorder hook for sampled packet walks: inert (one thread-local
  // load + branch) unless an enclosing obs::WalkScope armed this thread.
  // The RAII end-capture reads `out` after whichever return path filled it.
  struct WalkCapture {
    const ForwardSummary& out;
    const bool active;
    WalkCapture(const ForwardSummary& out, NodeId src, NodeId dst, SliceId k,
                int header_hops)
        : out(out), active(obs::walk_capture_active()) {
      if (active) {
        obs::walk_packet_begin(static_cast<std::uint32_t>(src),
                               static_cast<std::uint32_t>(dst),
                               static_cast<std::uint32_t>(k),
                               static_cast<std::uint32_t>(header_hops));
      }
    }
    ~WalkCapture() {
      if (active) {
        obs::walk_packet_end(static_cast<std::uint32_t>(out.outcome),
                             static_cast<std::uint32_t>(out.hops), out.cost,
                             out.deflected);
      }
    }
  } walk_capture(out, packet.src, dst, k, bits_left);
#endif

  while (ttl-- > 0) {
    // Algorithm 1: read the rightmost lg(k) bits if any remain; otherwise
    // apply the exhaust policy.
#if SPLICE_OBS
    std::uint32_t hop_bits = 0;
#endif
    SliceId slice = current;
    if (bits_left > 0) {
      --bits_left;
#if SPLICE_OBS
      hop_bits = static_cast<std::uint32_t>(hdr_bpp);
#endif
      const std::uint32_t raw =
          static_cast<std::uint32_t>(bits_lo) & hdr_mask;
      bits_lo = (bits_lo >> hdr_bpp) | (bits_hi << (64 - hdr_bpp));
      bits_hi >>= hdr_bpp;
      // Headers are opaque; defensive mod protects against bit patterns
      // that encode a value >= k when k is not a power of two.
      slice = flat_.reduce_slice(raw);
    } else if (policy.exhaust == ExhaustPolicy::kHashDefault) {
      slice = def;
    }
    // Counter-based deflection (§5): a non-zero counter overrides the slice
    // deterministically and decrements.
    if (counter.active()) slice = counter.deflect(slice, k);

    const std::size_t cell = flat_.cell(node, dst);
    FibEntry entry = flat_.at(slice, cell);
    bool deflected = false;
    const bool usable =
        entry.valid() && alive[static_cast<std::size_t>(entry.edge)] != 0;
    if (!usable) {
      if (policy.local_recovery == LocalRecovery::kDeflect) {
        // Network-based recovery (§4.3): scan the other forwarding tables
        // for a next hop whose incident link is alive.
        for (SliceId s = 0; s < k && !deflected; ++s) {
          if (s == slice) continue;
          const FibEntry alt = flat_.at(s, cell);
          if (alt.valid() &&
              alive[static_cast<std::size_t>(alt.edge)] != 0) {
            entry = alt;
            slice = s;
            deflected = true;
          }
        }
      }
      if (!deflected) {
        out.outcome = ForwardOutcome::kDeadEnd;
        return out;
      }
    }

    if constexpr (kTrace) {
      ws->hops.push_back(
          HopRecord{node, entry.next_hop, entry.edge, slice, deflected});
    }
#if SPLICE_OBS
    if (walk_capture.active) {
      obs::walk_hop(static_cast<std::uint32_t>(node),
                    static_cast<std::uint32_t>(entry.next_hop),
                    static_cast<std::uint32_t>(slice),
                    static_cast<std::uint32_t>(entry.edge), deflected,
                    hop_bits);
    }
#endif
    ++out.hops;
    out.cost += weight[static_cast<std::size_t>(entry.edge)];
    out.deflected = out.deflected || deflected;
    node = entry.next_hop;
    current = slice;
    if (node == dst) {
      out.outcome = ForwardOutcome::kDelivered;
      return out;
    }
  }
  out.outcome = ForwardOutcome::kTtlExpired;
  return out;
}

Delivery DataPlaneNetwork::forward(const Packet& packet,
                                   const ForwardingPolicy& policy) const {
  ForwardWorkspace ws;
  const ForwardSummary summary = forward_core<true>(packet, policy, &ws);
  Delivery out;
  out.outcome = summary.outcome;
  out.hops = std::move(ws.hops);
  return out;
}

ForwardSummary DataPlaneNetwork::forward_fast(const Packet& packet,
                                              const ForwardingPolicy& policy,
                                              ForwardWorkspace& ws) const {
  return forward_core<true>(packet, policy, &ws);
}

ForwardSummary DataPlaneNetwork::forward_stats(
    const Packet& packet, const ForwardingPolicy& policy) const {
  return forward_core<false>(packet, policy, nullptr);
}

namespace {

/// Per-packet in-flight state of the wavefront batch kernel. Trivially
/// copyable/destructible so it can live in a workspace's raw word buffer.
struct Walk {
  std::uint64_t bits_lo;
  std::uint64_t bits_hi;
  ForwardSummary sum;
  CounterHeader counter;
  std::uint32_t idx;
  std::uint32_t hdr_mask;
  NodeId node;
  NodeId dst;
  SliceId current;
  SliceId def;
  std::int32_t ttl;
  std::int32_t bits_left;
  std::int32_t hdr_bpp;
};
static_assert(std::is_trivially_copyable_v<Walk> &&
              std::is_trivially_destructible_v<Walk>);

}  // namespace

void DataPlaneNetwork::forward_stats_batch(std::span<const Packet> packets,
                                           const ForwardingPolicy& policy,
                                           std::span<ForwardSummary> out) const {
  ForwardWorkspace ws;
  forward_stats_batch(packets, policy, out, ws);
}

void DataPlaneNetwork::forward_stats_batch(std::span<const Packet> packets,
                                           const ForwardingPolicy& policy,
                                           std::span<ForwardSummary> out,
                                           ForwardWorkspace& ws) const {
  SPLICE_EXPECTS(out.size() == packets.size());

  // Wavefront kernel: every still-in-flight walk advances one hop per sweep
  // over a compact state array. Consecutive sweep iterations touch different
  // packets, so their next-hop FIB loads carry no data dependence on each
  // other — the out-of-order core issues them together and the dependent
  // per-walk load chains of many packets overlap in the memory system.
  // Walk state streams sequentially (hardware-prefetch friendly); finished
  // walks are swap-removed, which reorders processing but not results —
  // each walk runs the exact per-hop logic of forward_core and walks are
  // mutually independent, so out[i] is bit-identical to forward_stats
  // regardless of sweep order.
  const SliceId k = flat_.slice_count();
  const char* alive = link_alive_.data();
  const Weight* weight = edge_weight_.data();

  // Walk state lives in the workspace's word buffer: grown to the largest
  // batch once, then every later batch through this workspace runs
  // allocation-free (the zero-alloc contract the resprof gates enforce).
  const std::size_t needed_words =
      (packets.size() * sizeof(Walk) + sizeof(std::uint64_t) - 1) /
      sizeof(std::uint64_t);
  if (ws.batch_scratch.size() < needed_words) {
    ws.batch_scratch.resize(needed_words);
  }
  Walk* const walks = reinterpret_cast<Walk*>(ws.batch_scratch.data());
  std::size_t n_walks = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Packet& p = packets[i];
    SPLICE_EXPECTS(graph_->valid_node(p.src));
    SPLICE_EXPECTS(graph_->valid_node(p.dst));
    if (p.src == p.dst) {
      out[i] = ForwardSummary{};
      out[i].outcome = ForwardOutcome::kDelivered;
      continue;
    }
    Walk w;
    w.bits_lo = p.header.stream().lo();
    w.bits_hi = p.header.stream().hi();
    w.sum = ForwardSummary{};
    w.counter = p.counter;
    w.idx = static_cast<std::uint32_t>(i);
    w.hdr_bpp = bits_per_hop(p.header.slice_count());
    w.hdr_mask = w.hdr_bpp > 0 ? ((1u << w.hdr_bpp) - 1u) : 0u;
    w.bits_left = p.header.slice_count() > 1 ? p.header.remaining_hops() : 0;
    w.def = default_slice(p.src, p.dst);
    w.current = w.def;
    w.node = p.src;
    w.dst = p.dst;
    w.ttl = p.ttl;
    new (walks + n_walks++) Walk(w);
  }

  std::size_t live = n_walks;
  while (live > 0) {
    for (std::size_t j = 0; j < live;) {
      Walk& w = walks[j];
      bool terminal = false;
      if (w.ttl-- <= 0) {
        w.sum.outcome = ForwardOutcome::kTtlExpired;
        terminal = true;
      } else {
        SliceId slice = w.current;
        if (w.bits_left > 0) {
          --w.bits_left;
          const std::uint32_t raw =
              static_cast<std::uint32_t>(w.bits_lo) & w.hdr_mask;
          w.bits_lo =
              (w.bits_lo >> w.hdr_bpp) | (w.bits_hi << (64 - w.hdr_bpp));
          w.bits_hi >>= w.hdr_bpp;
          slice = flat_.reduce_slice(raw);
        } else if (policy.exhaust == ExhaustPolicy::kHashDefault) {
          slice = w.def;
        }
        if (w.counter.active()) slice = w.counter.deflect(slice, k);

        const std::size_t cell = flat_.cell(w.node, w.dst);
        FibEntry entry = flat_.at(slice, cell);
        bool deflected = false;
        const bool usable =
            entry.valid() && alive[static_cast<std::size_t>(entry.edge)] != 0;
        if (!usable) {
          if (policy.local_recovery == LocalRecovery::kDeflect) {
            for (SliceId s = 0; s < k && !deflected; ++s) {
              if (s == slice) continue;
              const FibEntry alt = flat_.at(s, cell);
              if (alt.valid() &&
                  alive[static_cast<std::size_t>(alt.edge)] != 0) {
                entry = alt;
                slice = s;
                deflected = true;
              }
            }
          }
          if (!deflected) {
            w.sum.outcome = ForwardOutcome::kDeadEnd;
            terminal = true;
          }
        }
        if (!terminal) {
          ++w.sum.hops;
          w.sum.cost += weight[static_cast<std::size_t>(entry.edge)];
          w.sum.deflected = w.sum.deflected || deflected;
          w.node = entry.next_hop;
          w.current = slice;
          if (w.node == w.dst) {
            w.sum.outcome = ForwardOutcome::kDelivered;
            terminal = true;
          }
        }
      }
      if (terminal) {
        out[w.idx] = w.sum;
        walks[j] = walks[--live];
      } else {
        ++j;
      }
    }
  }

#if SPLICE_OBS
  // Telemetry tail, outside the kernel: per-packet work is a pure function
  // of the packet set, so these totals are thread-count-invariant no matter
  // how the batches are partitioned across TrialEngine workers.
  if (obs::MetricsRegistry::enabled()) {
    long long delivered = 0, dead_end = 0, ttl_expired = 0;
    long long hops = 0, deflected = 0;
    constexpr int kHopBins = 64;
    constexpr double kHopLo = 0.0, kHopHi = 256.0;
    static obs::HistogramMetric& hops_hist =
        obs::MetricsRegistry::global().histogram("dataplane.batch.hops_hist",
                                                 kHopLo, kHopHi, kHopBins);
    // Bin locally, flush once: per-sample atomics here cost ~20% of the
    // kernel; one batched flush is noise. Hops are non-negative integers
    // and the bin width (kHopHi / kHopBins = 4) is a power of two, so
    // `min(hops >> 2, kHopBins - 1)` reproduces Histogram::bin_index
    // exactly without the per-packet double divide.
    static_assert(kHopLo == 0.0 && kHopHi / kHopBins == 4.0);
    long long hop_bins[kHopBins] = {};
    for (const ForwardSummary& s : out) {
      switch (s.outcome) {
        case ForwardOutcome::kDelivered:
          ++delivered;
          break;
        case ForwardOutcome::kDeadEnd:
          ++dead_end;
          break;
        case ForwardOutcome::kTtlExpired:
          ++ttl_expired;
          break;
      }
      hops += s.hops;
      deflected += s.deflected ? 1 : 0;
      ++hop_bins[std::min(s.hops >> 2, kHopBins - 1)];
    }
    // The sample sum of integer hops is exact as a double (hops < 2^53).
    hops_hist.observe_binned(hop_bins, kHopBins, static_cast<double>(hops));
    SPLICE_OBS_COUNT("dataplane.batch.packets",
                     static_cast<long long>(out.size()));
    SPLICE_OBS_COUNT("dataplane.batch.delivered", delivered);
    SPLICE_OBS_COUNT("dataplane.batch.dead_end", dead_end);
    SPLICE_OBS_COUNT("dataplane.batch.ttl_expired", ttl_expired);
    SPLICE_OBS_COUNT("dataplane.batch.hops", hops);
    SPLICE_OBS_COUNT("dataplane.batch.deflected_packets", deflected);
  }
#endif  // SPLICE_OBS
}

Weight trace_cost(const Graph& g, const Delivery& d) {
  Weight cost = 0.0;
  for (const HopRecord& hop : d.hops) cost += g.edge(hop.edge).weight;
  return cost;
}

int count_node_revisits(std::span<const HopRecord> hops, NodeId node_count,
                        ForwardWorkspace& ws) {
  if (hops.empty()) return 0;
  if (ws.visit_stamp.size() < static_cast<std::size_t>(node_count)) {
    ws.visit_stamp.assign(static_cast<std::size_t>(node_count), 0);
    ws.visit_epoch = 0;
  }
  if (++ws.visit_epoch == 0) {
    // Epoch wrapped: one full clear, then restart from 1.
    std::fill(ws.visit_stamp.begin(), ws.visit_stamp.end(), 0);
    ws.visit_epoch = 1;
  }
  const std::uint32_t epoch = ws.visit_epoch;
  int revisits = 0;
  auto visit = [&](NodeId v) {
    SPLICE_EXPECTS(v >= 0 && v < node_count);
    std::uint32_t& stamp = ws.visit_stamp[static_cast<std::size_t>(v)];
    if (stamp == epoch) {
      ++revisits;
    } else {
      stamp = epoch;
    }
  };
  visit(hops.front().node);
  for (const HopRecord& hop : hops) visit(hop.next);
  return revisits;
}

int count_node_revisits(const Delivery& d) {
  if (d.hops.empty()) return 0;
  NodeId max_id = d.hops.front().node;
  for (const HopRecord& hop : d.hops) {
    max_id = std::max(max_id, std::max(hop.node, hop.next));
  }
  ForwardWorkspace ws;
  return count_node_revisits(d.hops, max_id + 1, ws);
}

bool has_two_hop_loop(std::span<const HopRecord> hops) {
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (hops[i].node == hops[i + 1].next) return true;
  }
  return false;
}

bool has_two_hop_loop(const Delivery& d) {
  return has_two_hop_loop(std::span<const HopRecord>(d.hops));
}

}  // namespace splice
