#include "dataplane/network.h"

#include "util/assert.h"
#include "util/rng.h"

namespace splice {

DataPlaneNetwork::DataPlaneNetwork(const Graph& g, const FibSet& fibs)
    : graph_(&g),
      fibs_(&fibs),
      link_alive_(static_cast<std::size_t>(g.edge_count()), 1) {
  SPLICE_EXPECTS(fibs.node_count() == g.node_count());
}

void DataPlaneNetwork::restore_all_links() {
  std::fill(link_alive_.begin(), link_alive_.end(), 1);
}

void DataPlaneNetwork::set_link_state(EdgeId e, bool alive) {
  SPLICE_EXPECTS(e >= 0 && static_cast<std::size_t>(e) < link_alive_.size());
  link_alive_[static_cast<std::size_t>(e)] = alive ? 1 : 0;
}

void DataPlaneNetwork::set_link_mask(std::span<const char> alive) {
  SPLICE_EXPECTS(alive.size() == link_alive_.size());
  link_alive_.assign(alive.begin(), alive.end());
}

SliceId DataPlaneNetwork::default_slice(NodeId src, NodeId dst) const noexcept {
  const auto k = static_cast<std::uint64_t>(fibs_->slice_count());
  return static_cast<SliceId>(hash_mix(static_cast<std::uint64_t>(src),
                                       static_cast<std::uint64_t>(dst)) %
                              k);
}

Delivery DataPlaneNetwork::forward(const Packet& packet,
                                   const ForwardingPolicy& policy) const {
  SPLICE_EXPECTS(graph_->valid_node(packet.src));
  SPLICE_EXPECTS(graph_->valid_node(packet.dst));

  Delivery out;
  if (packet.src == packet.dst) {
    out.outcome = ForwardOutcome::kDelivered;
    return out;
  }

  const SliceId k = fibs_->slice_count();
  SpliceHeader header = packet.header;  // consumed copy
  CounterHeader counter = packet.counter;
  SliceId current = default_slice(packet.src, packet.dst);
  NodeId node = packet.src;
  int ttl = packet.ttl;

  while (ttl-- > 0) {
    // Algorithm 1: read the rightmost lg(k) bits if any remain; otherwise
    // apply the exhaust policy.
    SliceId slice = current;
    if (const auto popped = header.pop(); popped.has_value()) {
      // Headers are opaque; defensive mod protects against bit patterns
      // that encode a value >= k when k is not a power of two.
      slice = static_cast<SliceId>(*popped % k);
    } else if (policy.exhaust == ExhaustPolicy::kHashDefault) {
      slice = default_slice(packet.src, packet.dst);
    }
    // Counter-based deflection (§5): a non-zero counter overrides the slice
    // deterministically and decrements.
    if (counter.active()) slice = counter.deflect(slice, k);

    FibEntry entry = fibs_->lookup(slice, node, packet.dst);
    bool deflected = false;
    const bool usable = entry.valid() && link_alive(entry.edge);
    if (!usable) {
      if (policy.local_recovery == LocalRecovery::kDeflect) {
        // Network-based recovery (§4.3): scan the other forwarding tables
        // for a next hop whose incident link is alive.
        for (SliceId s = 0; s < k && !deflected; ++s) {
          if (s == slice) continue;
          const FibEntry alt = fibs_->lookup(s, node, packet.dst);
          if (alt.valid() && link_alive(alt.edge)) {
            entry = alt;
            slice = s;
            deflected = true;
          }
        }
      }
      if (!deflected) {
        out.outcome = ForwardOutcome::kDeadEnd;
        return out;
      }
    }

    out.hops.push_back(HopRecord{node, entry.next_hop, entry.edge, slice,
                                 deflected});
    node = entry.next_hop;
    current = slice;
    if (node == packet.dst) {
      out.outcome = ForwardOutcome::kDelivered;
      return out;
    }
  }
  out.outcome = ForwardOutcome::kTtlExpired;
  return out;
}

Weight trace_cost(const Graph& g, const Delivery& d) {
  Weight cost = 0.0;
  for (const HopRecord& hop : d.hops) cost += g.edge(hop.edge).weight;
  return cost;
}

int count_node_revisits(const Delivery& d) {
  int revisits = 0;
  std::vector<NodeId> seen;
  seen.reserve(d.hops.size() + 1);
  auto visit = [&](NodeId v) {
    for (NodeId s : seen) {
      if (s == v) {
        ++revisits;
        return;
      }
    }
    seen.push_back(v);
  };
  if (!d.hops.empty()) visit(d.hops.front().node);
  for (const HopRecord& hop : d.hops) visit(hop.next);
  return revisits;
}

bool has_two_hop_loop(const Delivery& d) {
  for (std::size_t i = 0; i + 1 < d.hops.size(); ++i) {
    if (d.hops[i].node == d.hops[i + 1].next) return true;
  }
  return false;
}

}  // namespace splice
