// Epoch-based RCU reclamation for live FIB publication.
//
// The publisher swaps an atomic snapshot pointer and must know when every
// reader has let go of the *previous* snapshot before it may reuse its
// storage (the two-rotating-shadow-table scheme in fib_publisher.h patches
// the retired table in place). Readers must stay wait-free and
// allocation-free: pinning an epoch is two stores and one fence, no CAS
// loops, no locks, no per-packet atomics.
//
// Protocol. A fixed array of kMaxReaders cache-line-aligned slots, one per
// registered reader thread. The global epoch counter starts at 1 and is
// advanced (seq_cst fetch_add) once per publication. To enter a read-side
// critical section a reader:
//
//   1. loads the global epoch e (seq_cst),
//   2. stores e into its slot (seq_cst — the store's implied full barrier
//      is the read side's only ordering cost, once per batch),
//   3. loads the snapshot pointer (seq_cst, done by the caller).
//
// To publish, the writer stores the new snapshot pointer (seq_cst
// exchange), advances the global epoch to E (seq_cst), then spins until
// every active slot holds 0 (quiescent) or a value >= E. Every operation
// in the handshake is seq_cst, so the classic Dekker argument runs in the
// single total order S with no fence subtleties (and TSan models it
// exactly):
//
//   * If the writer's scan does NOT observe a reader's slot store, the
//     store is ordered after the scan in S; the reader's later pointer
//     load is then ordered after the pointer swap — the reader sees the
//     NEW snapshot, and the writer was right not to wait for it.
//   * If the scan DOES observe a slot value < E, the reader may still be
//     using the old snapshot and the writer waits for the slot to clear or
//     move forward.
//   * A slot value >= E means the reader pinned after the advance; its
//     pointer load is ordered after the swap, so it reads the new table.
//
// Unpin is a single release store of 0, ordering every read of the
// snapshot before the slot clear the writer's scan observes (this
// release/acquire pair is also the happens-before edge that makes the
// writer's subsequent in-place patch of the retired table race-free).
//
// wait_for_grace() therefore returns only when no reader can still be
// dereferencing the pre-swap snapshot: its completion timestamp IS the
// "all readers observe the new epoch" end point of the reconvergence SLO.
//
// Registration is slot-grabbing (CAS on an in_use flag), so readers can
// come and go while the publisher runs; a slot freed mid-scan reads 0 and
// satisfies the grace predicate. Readers must unpin between batches —
// grace periods are bounded by the longest read-side critical section.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/assert.h"

namespace splice {

class EpochDomain {
 public:
  /// Maximum concurrently registered reader threads.
  static constexpr int kMaxReaders = 64;

  /// A registered reader's slot index; pass to pin/unpin/unregister.
  using ReaderSlot = int;

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Claims a reader slot. Thread-safe; aborts (assert) when more than
  /// kMaxReaders readers are registered at once.
  ReaderSlot register_reader() noexcept {
    for (int i = 0; i < kMaxReaders; ++i) {
      std::uint32_t expected = 0;
      if (slots_[i].in_use.compare_exchange_strong(
              expected, 1, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        slots_[i].epoch.store(0, std::memory_order_relaxed);
        return i;
      }
    }
    SPLICE_ASSERT(false && "EpochDomain: out of reader slots");
    return -1;
  }

  /// Releases a slot (must be unpinned). Safe while the publisher scans.
  void unregister_reader(ReaderSlot slot) noexcept {
    SPLICE_EXPECTS(slot >= 0 && slot < kMaxReaders);
    SPLICE_EXPECTS(slots_[slot].epoch.load(std::memory_order_relaxed) == 0);
    slots_[slot].in_use.store(0, std::memory_order_release);
  }

  /// Enters a read-side critical section: publishes the reader's presence
  /// and returns the pinned epoch. Wait-free — one load and one store.
  /// The caller's snapshot-pointer load must come AFTER this call and must
  /// itself be seq_cst (see the protocol argument in the header comment).
  std::uint64_t pin(ReaderSlot slot) noexcept {
    const std::uint64_t e = global_.load(std::memory_order_seq_cst);
    slots_[slot].epoch.store(e, std::memory_order_seq_cst);
    return e;
  }

  /// Leaves the critical section. Release: every snapshot read in the
  /// section happens-before a writer observing the cleared slot.
  void unpin(ReaderSlot slot) noexcept {
    slots_[slot].epoch.store(0, std::memory_order_release);
  }

  /// True while `slot` is inside a read-side critical section.
  bool pinned(ReaderSlot slot) const noexcept {
    return slots_[slot].epoch.load(std::memory_order_acquire) != 0;
  }

  /// Writer side: advances the global epoch after the new snapshot pointer
  /// has been stored. Returns the new epoch value to pass to
  /// wait_for_grace(). The seq_cst RMW doubles as the writer's fence.
  std::uint64_t advance() noexcept {
    return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  std::uint64_t current() const noexcept {
    return global_.load(std::memory_order_acquire);
  }

  /// Blocks until no reader can still hold a snapshot retired before
  /// `epoch` (every active slot is quiescent or has observed `epoch`).
  /// Returns the number of slot spins that found a lagging reader — 0
  /// means the grace period was free.
  std::uint64_t wait_for_grace(std::uint64_t epoch) const noexcept {
    std::uint64_t waits = 0;
    for (int i = 0; i < kMaxReaders; ++i) {
      if (slots_[i].in_use.load(std::memory_order_acquire) == 0) continue;
      for (;;) {
        const std::uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
        if (e == 0 || e >= epoch) break;
        ++waits;
        std::this_thread::yield();
      }
    }
    return waits;
  }

  /// Registered readers right now (diagnostics / tests).
  int reader_count() const noexcept {
    int count = 0;
    for (int i = 0; i < kMaxReaders; ++i) {
      if (slots_[i].in_use.load(std::memory_order_acquire) != 0) ++count;
    }
    return count;
  }

 private:
  struct alignas(64) Slot {
    /// 0 = quiescent; otherwise the epoch the reader pinned.
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint32_t> in_use{0};
  };

  /// Epoch 0 is reserved as the quiescent slot value, so the counter
  /// starts at 1.
  std::atomic<std::uint64_t> global_{1};
  Slot slots_[kMaxReaders];
};

}  // namespace splice
