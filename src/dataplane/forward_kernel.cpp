#include "dataplane/forward_kernel.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "dataplane/flat_fibs.h"
#include "obs/clock.h"
#include "obs/linkstats.h"

// AVX2 availability is decided here, not by the project's -march (which
// stays at the x86-64 baseline): the vector bodies carry function-level
// target("avx2") attributes and are only ever called after a CPUID check.
// -DSPLICE_FORWARD_AVX2=0 (CMake option SPLICE_FORWARD_AVX2=OFF) compiles
// them out entirely — the no-AVX2 CI leg builds that way to prove the
// scalar fallback is self-sufficient.
#ifndef SPLICE_FORWARD_AVX2
#define SPLICE_FORWARD_AVX2 1
#endif
#if SPLICE_FORWARD_AVX2 && defined(__x86_64__) && defined(__GNUC__)
#define SPLICE_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define SPLICE_HAVE_AVX2_KERNEL 0
#endif

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace splice::fwdk {

void advise_hugepages(const void* data, std::size_t bytes) noexcept {
#if defined(__linux__)
#ifndef MADV_COLLAPSE
#define MADV_COLLAPSE 25
#endif
  constexpr std::uintptr_t kPage = 4096;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t lo = (addr + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(kPage - 1);
  if (hi > lo) {
    void* base = reinterpret_cast<void*>(lo);
    (void)madvise(base, hi - lo, MADV_HUGEPAGE);
    (void)madvise(base, hi - lo, MADV_COLLAPSE);
  }
#else
  (void)data;
  (void)bytes;
#endif
}

namespace {

/// Replicates FlatFibs::reduce_slice for a kernel FibView.
inline SliceId reduce_slice(const FibView& f, std::uint32_t raw) noexcept {
  return f.k_pow2
             ? static_cast<SliceId>(raw & f.k_mask)
             : static_cast<SliceId>(fastmod_u32(
                   raw, f.mod_magic, static_cast<std::uint32_t>(f.k)));
}

/// Writes lane j's summary to its output slot.
inline void finish_lane(const BatchLanes& L, std::size_t j,
                        ForwardOutcome outcome,
                        std::span<ForwardSummary> out) noexcept {
  ForwardSummary& s = out[L.idx[j]];
  s.outcome = outcome;
  s.hops = L.hops[j];
  s.cost = L.cost[j];
  s.deflected = L.deflected[j] != 0;
}

/// resolve_lane's L.nslice sentinel for "TTL expired before the hop" (real
/// slices are non-negative).
inline constexpr std::int32_t kStagedExpired = -1;

/// Phase 1a of the per-hop semantics: TTL decrement, header bit-pop, slice
/// reduction, counter deflection, and the flat-index computation for the
/// primary FIB load. The staged slice lands in L.nslice[j] (kStagedExpired
/// when the TTL ran out first — then nothing is popped, exactly the early
/// return of the fused reference, and the index parks on cell 0 so the
/// gather loop stays in bounds), the flat index in L.fidx[j].
///
/// Deliberately free of FIB accesses: sweep_scalar runs this resolve loop,
/// then the two-instruction gather loop (phase 1b), then the commit loop
/// (phase 2). Each lane's FIB address depends only on last sweep's state,
/// so the gather loop's loads are mutually independent — and at ~5 uops
/// per lane the out-of-order window spans dozens of them, keeping a line-
/// fill-buffer's worth of cache misses in flight. Fused into the
/// ~100-instruction single-loop hop body the window reaches two or three
/// lanes and a DRAM-resident FIB costs one full memory latency per hop;
/// even fused with just this resolve half (~45 instructions) it reaches
/// four or five.
__attribute__((always_inline)) inline void resolve_lane(
    const FibView& f, const ForwardingPolicy& policy, BatchLanes& L,
    std::size_t j) noexcept {
  if (L.ttl[j]-- <= 0) {
    L.nslice[j] = kStagedExpired;
    L.fidx[j] = 0;
    return;
  }
  SliceId slice = static_cast<SliceId>(L.cur[j]);
  if (L.bits_left[j] > 0) {
    --L.bits_left[j];
    const std::uint32_t raw =
        static_cast<std::uint32_t>(L.bits_lo[j]) & L.mask[j];
    const int bpp = static_cast<int>(L.bpp[j]);
    L.bits_lo[j] = (L.bits_lo[j] >> bpp) | (L.bits_hi[j] << (64 - bpp));
    L.bits_hi[j] >>= bpp;
    slice = reduce_slice(f, raw);
  } else if (policy.exhaust == ExhaustPolicy::kHashDefault) {
    slice = static_cast<SliceId>(L.def[j]);
  }
  // Counter-based deflection (§5): CounterHeader::deflect semantics — a
  // non-zero counter overrides the slice deterministically and decrements,
  // except when k == 1 (nothing to deflect to; the counter is untouched).
  if (L.counter[j] > 0 && f.k > 1) {
    const SliceId offset =
        static_cast<SliceId>(L.counter[j] %
                             static_cast<std::uint32_t>(f.k - 1)) +
        1;
    --L.counter[j];
    slice = static_cast<SliceId>((slice + offset) % f.k);
  }
  L.nslice[j] = slice;
  L.fidx[j] = static_cast<std::uint64_t>(slice) * f.slice_stride +
              static_cast<std::size_t>(L.node[j]) * f.row_stride +
              static_cast<std::size_t>(L.dst_col[j]);
}

/// Phase 2: liveness test, §4.3 deflection scan, summary accumulation and
/// the hop commit, consuming lane j's staged slice and entry. Returns true
/// while the walk is still in flight; on termination the summary lands in
/// out[L.idx[j]]. `ls` is the thread's link-attribution scratch (nullptr
/// when attribution is off); it never alters the walk.
__attribute__((always_inline)) inline bool commit_lane(
    const FibView& f, const ForwardingPolicy& policy, BatchLanes& L,
    std::size_t j, std::span<ForwardSummary> out,
    obs::LinkScratch* ls) noexcept {
  if (L.nslice[j] == kStagedExpired) {
    finish_lane(L, j, ForwardOutcome::kTtlExpired, out);
    return false;
  }
  SliceId slice = static_cast<SliceId>(L.nslice[j]);
  // L.node is not updated until the commit below, so the cell recomputed
  // here is the one the gather loop loaded from.
  const std::size_t cell =
      static_cast<std::size_t>(L.node[j]) * f.row_stride +
      static_cast<std::size_t>(L.dst_col[j]);
  FibEntry entry = L.ent[j];
  bool deflected = false;
  const bool usable =
      entry.valid() && f.alive[static_cast<std::size_t>(entry.edge)] != 0;
  if (!usable) {
    if (policy.local_recovery == LocalRecovery::kDeflect) {
      // Network-based recovery (§4.3): scan the other forwarding tables
      // for a next hop whose incident link is alive. (sweep_scalar's
      // pre-scan loop has already issued these cells as overlapping
      // demand loads when the FIB is not cache-resident.)
      for (SliceId s = 0; s < f.k && !deflected; ++s) {
        if (s == slice) continue;
        const FibEntry alt =
            f.entries[static_cast<std::size_t>(s) * f.slice_stride + cell];
        if (alt.valid() &&
            f.alive[static_cast<std::size_t>(alt.edge)] != 0) {
          entry = alt;
          slice = s;
          deflected = true;
        }
      }
    }
    if (!deflected) {
      // Dead end: attribute the drop to the staged slice's dead primary
      // link (entry/slice are untouched on this path). An invalid primary
      // has no link to blame and stays unattributed.
      if (ls != nullptr && entry.valid()) {
        ls->drop(static_cast<std::uint32_t>(slice),
                 static_cast<std::uint32_t>(entry.edge));
      }
      finish_lane(L, j, ForwardOutcome::kDeadEnd, out);
      return false;
    }
  }

  ++L.hops[j];
  L.cost[j] += f.weight[static_cast<std::size_t>(entry.edge)];
  L.deflected[j] = static_cast<std::uint8_t>(L.deflected[j] | deflected);
  L.node[j] = entry.next_hop;
  L.cur[j] = slice;
  if (ls != nullptr) {
    ls->hit(static_cast<std::uint32_t>(slice),
            static_cast<std::uint32_t>(entry.edge), deflected);
  }
  if (entry.next_hop == L.dst[j]) {
    finish_lane(L, j, ForwardOutcome::kDelivered, out);
    return false;
  }
  return true;
}

/// Moves lane `from` into slot `to` (swap-remove compaction step).
inline void move_lane(BatchLanes& L, std::size_t from, std::size_t to) noexcept {
  L.bits_lo[to] = L.bits_lo[from];
  L.bits_hi[to] = L.bits_hi[from];
  L.node[to] = L.node[from];
  L.dst[to] = L.dst[from];
  L.dst_col[to] = L.dst_col[from];
  L.cur[to] = L.cur[from];
  L.def[to] = L.def[from];
  L.ttl[to] = L.ttl[from];
  L.bits_left[to] = L.bits_left[from];
  L.hops[to] = L.hops[from];
  L.bpp[to] = L.bpp[from];
  L.mask[to] = L.mask[from];
  L.counter[to] = L.counter[from];
  L.idx[to] = L.idx[from];
  L.cost[to] = L.cost[from];
  L.deflected[to] = L.deflected[from];
  L.ent[to] = L.ent[from];
  L.nslice[to] = L.nslice[from];
}

/// Phase 1b, shared by the scalar and AVX2 sweeps: the FIB gather over the
/// resolved flat indices, then the dead-entry pre-scan.
///
/// The gather is the hot loop of the whole kernel and it is deliberately
/// three instructions per lane: every lane's address is already sitting in
/// L.fidx, the loads are mutually independent, and at this size the
/// out-of-order window spans dozens of them — a line-fill-buffer's worth
/// of cache misses stays in flight, so a DRAM-resident FIB costs ~one
/// memory latency per ~dozen hops instead of one per hop.
///
/// The pre-scan covers the §4.3 deflection path: lanes whose staged entry
/// is invalid or points at a dead link will re-read the same cell in up to
/// k-1 other slices, walked by a dependent loop in commit. Issue those
/// cells here as overlapping demand loads, across all dead lanes at once.
/// Volatile because a prefetcht0 that misses the dTLB is dropped by the
/// hardware, and on the non-cache-resident FIBs this gate selects nearly
/// every access misses the dTLB.
void stage_gather(const FibView& f, const ForwardingPolicy& policy,
                  BatchLanes& L, std::size_t live_n) {
  {
    const FibEntry* __restrict entries = f.entries;
    const std::uint64_t* __restrict fidx = L.fidx.data();
    FibEntry* __restrict ent = L.ent.data();
    for (std::size_t j = 0; j < live_n; ++j) ent[j] = entries[fidx[j]];
  }
  if (f.prefetch && policy.local_recovery == LocalRecovery::kDeflect &&
      f.k > 1) {
    const FibEntry* __restrict entries = f.entries;
    const char* __restrict alive = f.alive;
    for (std::size_t j = 0; j < live_n; ++j) {
      if (L.nslice[j] == kStagedExpired) continue;
      const FibEntry e = L.ent[j];
      if (e.valid() && alive[static_cast<std::size_t>(e.edge)] != 0) {
        continue;
      }
      const std::uint64_t cell =
          L.fidx[j] - static_cast<std::uint64_t>(L.nslice[j]) *
                          f.slice_stride;
      for (SliceId s = 0; s < f.k; ++s) {
        if (s == static_cast<SliceId>(L.nslice[j])) continue;
        (void)static_cast<const volatile FibEntry*>(
            entries + static_cast<std::size_t>(s) * f.slice_stride + cell)
            ->edge;
      }
    }
  }
}

/// One scalar sweep: the resolve loop, the shared gather + pre-scan, then
/// the commit loop fused with swap-remove compaction — a terminated lane is
/// replaced by the last live lane (whose staged entry and slice travel with
/// it in move_lane and are then committed at the same slot), so moves are
/// paid once per termination, not once per surviving lane per sweep. Walks
/// are independent, so neither the phase split nor the compaction order can
/// affect any per-walk result.
std::size_t sweep_scalar(const FibView& f, const ForwardingPolicy& policy,
                         BatchLanes& L, std::span<ForwardSummary> out,
                         std::size_t live_n, obs::LinkScratch* ls) {
  for (std::size_t j = 0; j < live_n; ++j) resolve_lane(f, policy, L, j);
  stage_gather(f, policy, L, live_n);
  for (std::size_t j = 0; j < live_n;) {
    if (commit_lane(f, policy, L, j, out, ls)) {
      ++j;
    } else {
      --live_n;
      if (j != live_n) move_lane(L, live_n, j);
    }
  }
  return live_n;
}

#if SPLICE_HAVE_AVX2_KERNEL

/// Packs the even (low-dword) 32-bit elements of two 4x64 vectors into one
/// 8x32 vector, lane order preserved: out[i] = low32(a64[i]) for i < 4,
/// low32(b64[i-4]) for i >= 4.
__attribute__((target("avx2"))) inline __m256i pack_even32(__m256i a,
                                                           __m256i b) {
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i pa = _mm256_permutevar8x32_epi32(a, idx);
  const __m256i pb = _mm256_permutevar8x32_epi32(b, idx);
  return _mm256_permute2x128_si256(pa, pb, 0x20);
}

/// Same for the odd (high-dword) elements: out[i] = high32 of each 64-bit
/// lane.
__attribute__((target("avx2"))) inline __m256i pack_odd32(__m256i a,
                                                          __m256i b) {
  const __m256i idx = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
  const __m256i pa = _mm256_permutevar8x32_epi32(a, idx);
  const __m256i pb = _mm256_permutevar8x32_epi32(b, idx);
  return _mm256_permute2x128_si256(pa, pb, 0x20);
}

/// Phase 1a, vectorized: eight lanes per group through the resolve body —
/// TTL check, header bit-pop (64-bit variable shifts), slice reduction
/// (mask / mod-table gather) and the flat-index computation. Rare lanes
/// (active §5 counter header, raw slice value >= 256 on non-power-of-two
/// k) are excluded from the vector stores — the blends write their
/// original values back — and resolved afterwards by resolve_lane on that
/// untouched state. TTL-expired lanes stay vector: nslice parks at the
/// kStagedExpired sentinel, fidx at 0, the TTL still decrements and
/// nothing pops, exactly resolve_lane's early return. Ragged tail scalar.
__attribute__((target("avx2"))) void resolve_avx2(
    const FibView& f, const ForwardingPolicy& policy, BatchLanes& L,
    std::size_t live_n) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i all1 = _mm256_set1_epi32(-1);
  const __m256i one32 = _mm256_set1_epi32(1);
  const __m256i c64 = _mm256_set1_epi64x(64);
  const __m256i byte_mask = _mm256_set1_epi32(0xff);
  const __m256i row_stride32 =
      _mm256_set1_epi32(static_cast<std::int32_t>(f.row_stride));
  const __m256i slice_stride32 =
      _mm256_set1_epi32(static_cast<std::int32_t>(f.slice_stride));
  const __m256i kmask32 = _mm256_set1_epi32(
      static_cast<std::int32_t>(f.k_mask));
  const bool hash_default = policy.exhaust == ExhaustPolicy::kHashDefault;
  const std::int32_t* mod_table = L.mod_table.data();

  const std::size_t groups = live_n / 8;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t base = g * 8;
    const __m256i ttl = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.ttl.data() + base));
    const __m256i not_expired = _mm256_cmpgt_epi32(ttl, zero);
    const __m256i expired = _mm256_xor_si256(not_expired, all1);
    const __m256i bl = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.bits_left.data() + base));
    const __m256i has_bits = _mm256_cmpgt_epi32(bl, zero);

    // Header bit-pop, computed for all lanes, committed only where
    // has_bits (bpp >= 1 is guaranteed on exactly those lanes).
    const __m256i lo0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.bits_lo.data() + base));
    const __m256i lo1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.bits_lo.data() + base + 4));
    const __m256i hi0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.bits_hi.data() + base));
    const __m256i hi1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.bits_hi.data() + base + 4));
    const __m256i bpp32 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.bpp.data() + base));
    const __m256i bpp64_0 =
        _mm256_cvtepu32_epi64(_mm256_castsi256_si128(bpp32));
    const __m256i bpp64_1 =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(bpp32, 1));
    const __m256i mask32 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.mask.data() + base));
    const __m256i raw =
        _mm256_and_si256(pack_even32(lo0, lo1), mask32);
    const __m256i new_lo0 = _mm256_or_si256(
        _mm256_srlv_epi64(lo0, bpp64_0),
        _mm256_sllv_epi64(hi0, _mm256_sub_epi64(c64, bpp64_0)));
    const __m256i new_lo1 = _mm256_or_si256(
        _mm256_srlv_epi64(lo1, bpp64_1),
        _mm256_sllv_epi64(hi1, _mm256_sub_epi64(c64, bpp64_1)));
    const __m256i new_hi0 = _mm256_srlv_epi64(hi0, bpp64_0);
    const __m256i new_hi1 = _mm256_srlv_epi64(hi1, bpp64_1);

    // Slice reduction: mask for power-of-two k; mod-table gather otherwise
    // (raw <= 255 — larger values, only possible with headers built for
    // k > 256, take the scalar fixup).
    __m256i red;
    __m256i raw_oob = zero;
    if (f.k_pow2) {
      red = _mm256_and_si256(raw, kmask32);
    } else {
      raw_oob = _mm256_cmpgt_epi32(raw, byte_mask);
      const __m256i clamped = _mm256_min_epu32(raw, byte_mask);
      red = _mm256_i32gather_epi32(mod_table, clamped, 4);
    }
    const __m256i curv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.cur.data() + base));
    const __m256i nopop =
        hash_default ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                           L.def.data() + base))
                     : curv;
    const __m256i slice = _mm256_blendv_epi8(nopop, red, has_bits);

    // Lanes needing the rare scalar resolve (counter deflection, oob raw).
    // k == 1 disables the counter path entirely, matching resolve_lane.
    const __m256i cnt = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.counter.data() + base));
    const __m256i cnt_active =
        f.k > 1 ? _mm256_xor_si256(_mm256_cmpeq_epi32(cnt, zero), all1)
                : zero;
    const __m256i rare = _mm256_and_si256(
        _mm256_or_si256(cnt_active, _mm256_and_si256(has_bits, raw_oob)),
        not_expired);
    const __m256i vecm = _mm256_xor_si256(rare, all1);

    // Vector stores, rare lanes blended back to their original values so
    // the scalar resolve below reads pristine state. Pops commit where the
    // lane popped (has_bits, not expired, not rare); the TTL decrements on
    // every vector lane including expired ones (resolve_lane
    // post-decrements before its early return).
    const __m256i commit_bits = _mm256_and_si256(
        has_bits, _mm256_and_si256(not_expired, vecm));
    const __m256i cb64_0 =
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(commit_bits));
    const __m256i cb64_1 =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(commit_bits, 1));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.bits_lo.data() + base),
        _mm256_blendv_epi8(lo0, new_lo0, cb64_0));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.bits_lo.data() + base + 4),
        _mm256_blendv_epi8(lo1, new_lo1, cb64_1));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.bits_hi.data() + base),
        _mm256_blendv_epi8(hi0, new_hi0, cb64_0));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.bits_hi.data() + base + 4),
        _mm256_blendv_epi8(hi1, new_hi1, cb64_1));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.bits_left.data() + base),
        _mm256_blendv_epi8(bl, _mm256_sub_epi32(bl, one32), commit_bits));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.ttl.data() + base),
        _mm256_blendv_epi8(ttl, _mm256_sub_epi32(ttl, one32), vecm));

    // Staged slice and flat index. Rare lanes get garbage here; the scalar
    // resolve overwrites them before anything reads these arrays.
    const __m256i nslice_v = _mm256_blendv_epi8(slice, all1, expired);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.nslice.data() + base), nslice_v);
    const __m256i nodev = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.node.data() + base));
    const __m256i dcol = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.dst_col.data() + base));
    const __m256i cell = _mm256_add_epi32(
        _mm256_mullo_epi32(nodev, row_stride32), dcol);
    // Index fits 32 bits (run_batch guards); expired lanes park at 0.
    const __m256i fidx32 = _mm256_and_si256(
        _mm256_add_epi32(_mm256_mullo_epi32(slice, slice_stride32), cell),
        not_expired);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.fidx.data() + base),
        _mm256_cvtepu32_epi64(_mm256_castsi256_si128(fidx32)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.fidx.data() + base + 4),
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(fidx32, 1)));

    unsigned mrare = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(rare)));
    while (mrare != 0) {
      const unsigned lane = static_cast<unsigned>(
          __builtin_ctz(mrare));
      mrare &= mrare - 1;
      resolve_lane(f, policy, L, base + lane);
    }
  }

  for (std::size_t j = groups * 8; j < live_n; ++j) {
    resolve_lane(f, policy, L, j);
  }
}

/// Phase 2, vectorized: liveness test, delivered test and hop commit, eight
/// lanes per group, consuming the entries the shared gather loop staged in
/// L.ent. Lanes the vector body cannot finish — expired TTL, invalid/dead
/// entry (dead end or §4.3 deflection scan) — go through commit_lane on
/// their staged state; vector-delivered lanes finish inline after the
/// stores. Fills L.live; the caller compacts.
__attribute__((target("avx2"))) void commit_avx2(
    const FibView& f, const ForwardingPolicy& policy, BatchLanes& L,
    std::span<ForwardSummary> out, std::size_t live_n,
    obs::LinkScratch* ls) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i all1 = _mm256_set1_epi32(-1);
  const __m256i byte_mask = _mm256_set1_epi32(0xff);

  const std::size_t groups = live_n / 8;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t base = g * 8;
    const __m256i nsl = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.nslice.data() + base));
    const __m256i expired = _mm256_cmpeq_epi32(nsl, all1);
    static_assert(sizeof(FibEntry) == 8 &&
                  offsetof(FibEntry, next_hop) == 0 &&
                  offsetof(FibEntry, edge) == 4);
    const __m256i ent0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.ent.data() + base));
    const __m256i ent1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.ent.data() + base + 4));
    const __m256i nh = pack_even32(ent0, ent1);
    const __m256i edge = pack_odd32(ent0, ent1);
    const __m256i valid =
        _mm256_xor_si256(_mm256_cmpeq_epi32(nh, all1), all1);

    // Liveness: one byte per edge, gathered as 32-bit loads at byte
    // offsets (the mask's kAlivePad tail bytes make the over-read safe).
    const __m256i av_mask = _mm256_andnot_si256(expired, valid);
    const __m256i av = _mm256_and_si256(
        _mm256_mask_i32gather_epi32(
            zero, reinterpret_cast<const int*>(f.alive), edge, av_mask, 1),
        byte_mask);
    const __m256i alive_ok =
        _mm256_xor_si256(_mm256_cmpeq_epi32(av, zero), all1);
    const __m256i vec_ok = _mm256_and_si256(av_mask, alive_ok);
    const __m256i dstv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.dst.data() + base));
    const __m256i delivered =
        _mm256_and_si256(_mm256_cmpeq_epi32(nh, dstv), vec_ok);

    // Commit the hop for vec_ok lanes (delivered ones finish below, after
    // the stores put this hop into their summary fields). Vector lanes
    // never deflect, so L.deflected is untouched.
    const __m256i nodev = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.node.data() + base));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.node.data() + base),
        _mm256_blendv_epi8(nodev, nh, vec_ok));
    const __m256i curv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.cur.data() + base));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.cur.data() + base),
        _mm256_blendv_epi8(curv, nsl, vec_ok));
    const __m256i hopsv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(L.hops.data() + base));
    // Masks are 0 / -1, so subtracting vec_ok increments exactly the
    // committed lanes.
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(L.hops.data() + base),
        _mm256_sub_epi32(hopsv, vec_ok));

    // Per-lane cost accumulation: gather this hop's edge weight and add it
    // to exactly the committed lanes — same one-add-per-hop sequence as
    // the scalar path, so the doubles come out bit-identical.
    const __m256d cm0 = _mm256_castsi256_pd(
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(vec_ok)));
    const __m256d cm1 = _mm256_castsi256_pd(
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(vec_ok, 1)));
    const __m256d cost0 = _mm256_loadu_pd(L.cost.data() + base);
    const __m256d cost1 = _mm256_loadu_pd(L.cost.data() + base + 4);
    const __m256d wt0 = _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), f.weight, _mm256_castsi256_si128(edge), cm0, 8);
    const __m256d wt1 = _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), f.weight, _mm256_extracti128_si256(edge, 1),
        cm1, 8);
    _mm256_storeu_pd(L.cost.data() + base,
                     _mm256_blendv_pd(cost0, _mm256_add_pd(cost0, wt0), cm0));
    _mm256_storeu_pd(
        L.cost.data() + base + 4,
        _mm256_blendv_pd(cost1, _mm256_add_pd(cost1, wt1), cm1));

    const unsigned mv = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(vec_ok)));
    const unsigned md = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(delivered)));
    // Link attribution for the vector-committed hops, before the fast-path
    // continue: vec_ok lanes never deflect, so (staged slice, gathered
    // edge) is exactly what commit_lane would have recorded. Non-vec lanes
    // go through commit_lane below and record there.
    if (ls != nullptr && mv != 0) {
      alignas(32) std::int32_t sl[8];
      alignas(32) std::int32_t ed[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(sl), nsl);
      _mm256_store_si256(reinterpret_cast<__m256i*>(ed), edge);
      unsigned m = mv;
      while (m != 0) {
        const unsigned lane = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        ls->hit(static_cast<std::uint32_t>(sl[lane]),
                static_cast<std::uint32_t>(ed[lane]), false);
      }
    }
    if (mv == 0xffu && md == 0) {
      std::memset(L.live.data() + base, 1, 8);
      continue;
    }
    for (unsigned lane = 0; lane < 8; ++lane) {
      const std::size_t j = base + lane;
      const unsigned bit = 1u << lane;
      if (!(mv & bit)) {
        L.live[j] =
            commit_lane(f, policy, L, j, out, ls) ? std::uint8_t{1}
                                                  : std::uint8_t{0};
      } else if (md & bit) {
        finish_lane(L, j, ForwardOutcome::kDelivered, out);
        L.live[j] = 0;
      } else {
        L.live[j] = 1;
      }
    }
  }

  // Ragged tail: fewer than 8 lanes left over — pure scalar reference.
  for (std::size_t j = groups * 8; j < live_n; ++j) {
    L.live[j] = commit_lane(f, policy, L, j, out, ls) ? std::uint8_t{1}
                                                      : std::uint8_t{0};
  }
}

/// Swap-remove compaction over L.live after a vector sweep. Dead lanes are
/// filled from the back (the filler's own live flag travels with it and is
/// re-checked), so moves are paid per termination, not per survivor.
std::size_t compact_lanes(BatchLanes& L, std::size_t live_n) {
  for (std::size_t j = 0; j < live_n;) {
    if (L.live[j]) {
      ++j;
    } else {
      --live_n;
      if (j != live_n) {
        move_lane(L, live_n, j);
        L.live[j] = L.live[live_n];
      }
    }
  }
  return live_n;
}

#endif  // SPLICE_HAVE_AVX2_KERNEL

Kernel resolve_kernel() noexcept {
  if (const char* env = std::getenv("SPLICE_FORWARD_KERNEL");
      env != nullptr && *env != '\0') {
    const std::string_view v(env);
    if (v == "scalar") return Kernel::kScalar;
    if (v == "avx2") {
      if (kernel_supported(Kernel::kAvx2)) return Kernel::kAvx2;
      std::fprintf(stderr,
                   "splice: SPLICE_FORWARD_KERNEL=avx2 requested but %s; "
                   "using scalar\n",
                   kernel_compiled(Kernel::kAvx2)
                       ? "this CPU lacks AVX2"
                       : "the AVX2 kernel was not compiled in");
      return Kernel::kScalar;
    }
    std::fprintf(stderr,
                 "splice: unknown SPLICE_FORWARD_KERNEL '%s' "
                 "(want scalar|avx2); using the default\n",
                 env);
  }
  return kernel_supported(Kernel::kAvx2) ? Kernel::kAvx2 : Kernel::kScalar;
}

}  // namespace

const char* to_string(Kernel kernel) noexcept {
  switch (kernel) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "?";
}

bool kernel_compiled(Kernel kernel) noexcept {
  switch (kernel) {
    case Kernel::kScalar:
      return true;
    case Kernel::kAvx2:
      return SPLICE_HAVE_AVX2_KERNEL != 0;
  }
  return false;
}

bool kernel_supported(Kernel kernel) noexcept {
#if SPLICE_HAVE_AVX2_KERNEL
  if (kernel == Kernel::kAvx2) {
    static const bool cpu_ok = __builtin_cpu_supports("avx2") != 0;
    return cpu_ok;
  }
#endif
  return kernel == Kernel::kScalar;
}

Kernel active_kernel() noexcept {
  static const Kernel kernel = resolve_kernel();
  return kernel;
}

bool prefetch_enabled(std::size_t fib_bytes) noexcept {
  // -1 = forced off, +1 = forced on, 0 = auto (table-size heuristic).
  static const int forced = [] {
    const char* env = std::getenv("SPLICE_FORWARD_PREFETCH");
    if (env == nullptr || *env == '\0') return 0;
    return std::string_view(env) == "0" ? -1 : +1;
  }();
  if (forced != 0) return forced > 0;
  // While the whole table sits in the fast cache levels the prefetch is
  // pure instruction overhead (the load would hit anyway); once it
  // outgrows them, hiding the per-hop load latency dominates. 1 MiB ~
  // typical per-core L2 reach.
  constexpr std::size_t kCacheResidentBytes = std::size_t{1} << 20;
  return fib_bytes > kCacheResidentBytes;
}

void BatchLanes::resize(std::size_t n) {
  bits_lo.resize(n);
  bits_hi.resize(n);
  node.resize(n);
  dst.resize(n);
  dst_col.resize(n);
  cur.resize(n);
  def.resize(n);
  ttl.resize(n);
  bits_left.resize(n);
  hops.resize(n);
  bpp.resize(n);
  mask.resize(n);
  counter.resize(n);
  idx.resize(n);
  cost.resize(n);
  deflected.resize(n);
  live.resize(n);
  fidx.resize(n);
  ent.resize(n);
  nslice.resize(n);
  size = n;
}

void run_batch(const FibView& fib, const ForwardingPolicy& policy,
               BatchLanes& lanes, std::span<ForwardSummary> out,
               Kernel kernel) {
  SPLICE_EXPECTS(fib.entries != nullptr || lanes.size == 0);
  std::size_t live_n = lanes.size;
  if (live_n == 0) return;

  // Per-link attribution scratch: resolved once per batch (one relaxed
  // load when disabled), flushed once after the last sweep under a single
  // clock reading — the observe_binned discipline.
  obs::LinkScratch* const ls = obs::LinkScratch::acquire();

#if SPLICE_HAVE_AVX2_KERNEL
  // The AVX2 path indexes the FIB with 32-bit gather lanes; a table too
  // large for that (>= 2^31 entries, i.e. >= 16 GiB) silently falls back
  // to scalar, which carries full size_t indexing.
  const bool use_avx2 =
      kernel == Kernel::kAvx2 && kernel_supported(Kernel::kAvx2) &&
      static_cast<std::uint64_t>(fib.slice_stride) *
              static_cast<std::uint64_t>(fib.k) <
          (1ull << 31) &&
      fib.row_stride < (1ull << 31);
  if (use_avx2) {
    if (!fib.k_pow2 && lanes.mod_table_k != fib.k) {
      lanes.mod_table.resize(256);
      for (std::int32_t r = 0; r < 256; ++r) {
        lanes.mod_table[static_cast<std::size_t>(r)] =
            r % static_cast<std::int32_t>(fib.k);
      }
      lanes.mod_table_k = fib.k;
    }
    while (live_n > 0) {
      resolve_avx2(fib, policy, lanes, live_n);
      stage_gather(fib, policy, lanes, live_n);
      commit_avx2(fib, policy, lanes, out, live_n, ls);
      live_n = compact_lanes(lanes, live_n);
    }
    if (ls != nullptr) ls->flush(obs::clock_now_ns());
    return;
  }
#else
  (void)kernel;
#endif

  while (live_n > 0) {
    live_n = sweep_scalar(fib, policy, lanes, out, live_n, ls);
  }
  if (ls != nullptr) ls->flush(obs::clock_now_ns());
}

}  // namespace splice::fwdk
