// Shared result/policy types of the forwarding data plane.
//
// Split out of network.h so the batch forwarding kernel
// (dataplane/forward_kernel.h) and the sharded pipeline can name them
// without pulling in the full DataPlaneNetwork interface; network.h
// re-exports everything here, so existing includes keep working.
#pragma once

#include "graph/types.h"
#include "dataplane/packet.h"

namespace splice {

/// What a node does when the splicing header has no bits left (§4.4
/// discusses both behaviors).
enum class ExhaustPolicy {
  /// Remain in the slice used for the previous hop (paper's §4.4 reading:
  /// "traffic will remain in its current tree en route to the destination").
  kStayInCurrent,
  /// Re-derive the default slice from Hash(src, dst) every hop (literal
  /// Algorithm 1 fallback).
  kHashDefault,
};

/// Whether intermediate nodes may deflect around locally failed links.
enum class LocalRecovery {
  kNone,     ///< drop to dead end when the chosen slice's link is down
  kDeflect,  ///< §4.3 network-based recovery: try other slices' next hops
};

struct ForwardingPolicy {
  ExhaustPolicy exhaust = ExhaustPolicy::kStayInCurrent;
  LocalRecovery local_recovery = LocalRecovery::kNone;
};

/// Statistics-only result of one forwarded packet: everything the Monte
/// Carlo loops need without materializing a trace.
struct ForwardSummary {
  ForwardOutcome outcome = ForwardOutcome::kDeadEnd;
  /// Hops taken (equals the trace length forward() would have returned).
  int hops = 0;
  /// Path latency under original graph weights, accumulated hop by hop in
  /// trace order — bit-identical to trace_cost() on the equivalent trace.
  Weight cost = 0.0;
  /// True iff any hop used §4.3 network-based deflection.
  bool deflected = false;

  bool delivered() const noexcept {
    return outcome == ForwardOutcome::kDelivered;
  }
};

}  // namespace splice
