// Batch forwarding kernel: the structure-of-arrays wavefront that advances
// every in-flight walk one hop per sweep (Algorithm 1's per-hop loop, W
// walks at a time).
//
// Every sweep runs in three phases — resolve (ALU-only: TTL, header
// bit-pop, slice reduction, counter deflection, flat FIB index), gather
// (ent[j] = entries[fidx[j]], a ~5-uop loop whose mutually independent
// loads overlap in the out-of-order window, keeping a line-fill-buffer's
// worth of cache misses in flight on DRAM-resident FIBs), then commit
// (liveness test, §4.3 deflection, summary accumulation, compaction). Two
// implementations of the resolve and commit phases sit behind one dispatch
// point (the gather loop is shared):
//
//   * kScalar — the reference. resolve_lane/commit_lane in the .cpp are
//     the single source of per-hop semantics; every other path (the AVX2
//     bodies' rare-lane fixups, the ragged tails, the sharded pipeline's
//     workers) ends up in this exact code, so "bit-identical to
//     forward_stats" is an argument about two functions.
//   * kAvx2   — AVX2 implementation of the common-case resolve (64-bit
//     variable-shift bit-pop, mask / mod-table slice reduction, index
//     computation) and commit (liveness-byte gather, delivered test,
//     per-lane cost accumulation), eight lanes per group. Lanes needing a
//     rare path (active counter header, raw slice value >= 256 on
//     non-power-of-two k, expired TTL at commit, dead end / §4.3
//     deflection scan) fall through to the scalar lane functions on their
//     staged state. Compiled with a function-level target("avx2")
//     attribute so the translation unit itself builds at the project's
//     baseline -march; selected at runtime via CPUID.
//
// Dispatch: active_kernel() resolves once per process — the AVX2 path when
// compiled in and the CPU supports it, overridable with
// SPLICE_FORWARD_KERNEL=scalar|avx2 (an unsatisfiable force falls back to
// scalar with a one-line warning). Between gather and commit sits the
// dead-entry pre-scan: lanes whose staged entry is invalid or dead will
// walk up to k-1 alternate slices in commit's §4.3 scan, so their cells
// are issued first as overlapping demand loads (volatile — a prefetcht0
// that misses the dTLB is dropped). The pre-scan is gated by table size
// (pure overhead while the FIB is cache-resident, a large win once per-hop
// loads leave the fast levels — the resprof cache-miss budgets in check.sh
// --profile-smoke watch this trade); SPLICE_FORWARD_PREFETCH=0 forces it
// off, =1 forces it on.
//
// Determinism: lanes never interact; each lane's state transitions replicate
// resolve_lane + commit_lane exactly (same shifts, same reduction, same
// per-lane floating-point accumulation order), so out[idx] is bit-identical
// to forward_stats for every kernel, batch size, sweep order and worker
// count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataplane/forward_types.h"
#include "dataplane/packet.h"
#include "dataplane/splice_header.h"
#include "routing/fib.h"
#include "util/assert.h"

namespace splice::fwdk {

enum class Kernel {
  kScalar,
  kAvx2,
};

const char* to_string(Kernel kernel) noexcept;

/// True when the implementation was compiled into this binary.
bool kernel_compiled(Kernel kernel) noexcept;

/// True when compiled in AND the running CPU can execute it.
bool kernel_supported(Kernel kernel) noexcept;

/// Process-wide kernel choice: SPLICE_FORWARD_KERNEL override if set and
/// satisfiable, else the widest supported implementation. Resolved once.
Kernel active_kernel() noexcept;

/// Whether a kernel walking a table of `fib_bytes` should issue next-sweep
/// FIB-cell prefetches. Auto mode (no env override) enables them once the
/// table outgrows the cache-resident regime; SPLICE_FORWARD_PREFETCH=0
/// forces off, =1 forces on. Env resolved once per process.
bool prefetch_enabled(std::size_t fib_bytes) noexcept;

/// Asks the kernel to back a large read-mostly table with transparent
/// hugepages (best effort, no-op off Linux). Shared by DataPlaneNetwork's
/// FIB and the sharded pipeline's per-worker replicas: per-hop lookups are
/// single random loads, and 2 MiB pages keep the table TLB-resident.
void advise_hugepages(const void* data, std::size_t bytes) noexcept;

/// Geometry + liveness view of the forwarding state a kernel walks. Plain
/// pointers so the same kernel serves FlatFibs (row_stride == node count)
/// and the sharded pipeline's compacted per-worker replicas (row_stride ==
/// shard destination width).
struct FibView {
  const FibEntry* entries = nullptr;  ///< slice-major [slice][node][dst_col]
  std::size_t slice_stride = 0;       ///< entries per slice
  std::size_t row_stride = 0;         ///< entries per node row
  SliceId k = 1;
  bool k_pow2 = true;
  std::uint32_t k_mask = 0;           ///< k - 1 when k_pow2
  std::uint64_t mod_magic = 0;        ///< fastmod_magic(k) when !k_pow2
  /// Liveness bytes indexed by edge id. The AVX2 path gathers 32-bit loads
  /// at byte granularity, so at least kAlivePad readable bytes must follow
  /// the last edge (DataPlaneNetwork and the pipeline pad their masks).
  const char* alive = nullptr;
  const Weight* weight = nullptr;     ///< edge weights indexed by edge id
  bool prefetch = true;               ///< next-sweep FIB-cell prefetch
};

/// Bytes of zero padding liveness masks carry past their last edge so the
/// AVX2 32-bit liveness gathers never read unmapped memory.
inline constexpr std::size_t kAlivePad = 4;

/// Per-walk state, one contiguous lane array per field. Grown to the
/// largest batch seen and then reused allocation-free (the zero-alloc
/// contract the resprof gates enforce). Replaces the old packed-AoS
/// `batch_scratch` word buffer and its reinterpret_cast aliasing hazard:
/// every field lives in a properly typed, properly aligned vector.
struct BatchLanes {
  std::vector<std::uint64_t> bits_lo, bits_hi;
  std::vector<std::int32_t> node;      ///< current node (global id)
  std::vector<std::int32_t> dst;       ///< destination (global id)
  std::vector<std::int32_t> dst_col;   ///< destination column in the FIB row
  std::vector<std::int32_t> cur;       ///< slice used for the previous hop
  std::vector<std::int32_t> def;       ///< Hash(src,dst) default slice
  std::vector<std::int32_t> ttl;
  std::vector<std::int32_t> bits_left;
  std::vector<std::int32_t> hops;
  std::vector<std::uint32_t> bpp;      ///< header bits per hop
  std::vector<std::uint32_t> mask;     ///< (1 << bpp) - 1
  std::vector<std::uint32_t> counter;  ///< §5 counter header value
  std::vector<std::uint32_t> idx;      ///< output slot
  std::vector<double> cost;
  std::vector<std::uint8_t> deflected;
  std::vector<std::uint8_t> live;      ///< per-sweep survivor flags
  /// Staged per-hop state between a sweep's phases: the flat FIB index each
  /// lane's resolve half computed, the entry the gather loop loaded from
  /// it, and the slice it resolved (-1: TTL expired). Splitting the gather
  /// loop out of the resolve and commit loops is what lets the per-hop FIB
  /// loads — mutually independent across lanes — overlap in the
  /// out-of-order window instead of costing a full memory latency each.
  std::vector<std::uint64_t> fidx;
  std::vector<FibEntry> ent;
  std::vector<std::int32_t> nslice;
  std::size_t size = 0;

  /// Mod-table cache for the AVX2 non-power-of-two slice reduction:
  /// table[r] = r % k for r < 256 (raw values above 255 take the scalar
  /// fixup path). Rebuilt only when k changes.
  std::vector<std::int32_t> mod_table;
  SliceId mod_table_k = 0;

  void resize(std::size_t n);
};

/// Initializes lane `slot` from a packet that is NOT the src==dst
/// short-circuit (callers handle that case and skip the kernel, exactly as
/// forward_stats does). `def_slice` is the caller-computed
/// Hash(src,dst) % k default; `dst_col` is the destination's column in the
/// FIB view's row (== p.dst for FlatFibs, shard-local for replicas).
inline void init_lane(BatchLanes& L, std::size_t slot, const Packet& p,
                      std::uint32_t out_idx, SliceId def_slice,
                      std::int32_t dst_col) {
  const int hdr_bpp = bits_per_hop(p.header.slice_count());
  L.bits_lo[slot] = p.header.stream().lo();
  L.bits_hi[slot] = p.header.stream().hi();
  L.node[slot] = p.src;
  L.dst[slot] = p.dst;
  L.dst_col[slot] = dst_col;
  L.cur[slot] = def_slice;
  L.def[slot] = def_slice;
  L.ttl[slot] = p.ttl;
  L.bits_left[slot] =
      p.header.slice_count() > 1 ? p.header.remaining_hops() : 0;
  L.hops[slot] = 0;
  L.bpp[slot] = static_cast<std::uint32_t>(hdr_bpp);
  L.mask[slot] = hdr_bpp > 0 ? ((1u << hdr_bpp) - 1u) : 0u;
  L.counter[slot] = p.counter.value();
  L.idx[slot] = out_idx;
  L.cost[slot] = 0.0;
  L.deflected[slot] = 0;
}

/// Runs every lane of `lanes` to completion and writes each lane's summary
/// to out[lanes.idx[j]]. `out` is indexed by the init_lane out_idx values;
/// slots not covered by any lane are untouched. Lane state is consumed.
void run_batch(const FibView& fib, const ForwardingPolicy& policy,
               BatchLanes& lanes, std::span<ForwardSummary> out,
               Kernel kernel);

/// Convenience: run_batch with active_kernel().
inline void run_batch(const FibView& fib, const ForwardingPolicy& policy,
                      BatchLanes& lanes, std::span<ForwardSummary> out) {
  run_batch(fib, policy, lanes, out, active_kernel());
}

}  // namespace splice::fwdk
