// Packet-level data-plane simulator.
//
// Holds the shared topology, the k forwarding tables produced by the control
// plane, and per-link up/down state. forward() walks a packet hop by hop
// exactly as Algorithm 1 prescribes: pop lg(k) forwarding bits to pick the
// slice, look up the per-slice next hop for the destination, and hand the
// packet over; on header exhaustion apply the configured policy; optionally
// perform network-based recovery (local deflection to a slice whose next
// hop is reachable over an alive link) when the selected next hop's link is
// down.
//
// Two entry points share one forwarding core:
//   * forward()      — allocates and returns the full Delivery trace; the
//                      convenient API for tests, examples and cold paths.
//   * forward_fast() — allocation-free: hop records land in a caller-owned
//                      ForwardWorkspace (trace mode) or nowhere at all
//                      (forward_stats(), for statistics-only Monte Carlo
//                      loops). Bit-identical outcomes, hop sequences and
//                      costs to forward().
#pragma once

#include <span>
#include <vector>

#include "dataplane/flat_fibs.h"
#include "dataplane/forward_kernel.h"
#include "dataplane/forward_types.h"
#include "dataplane/packet.h"
#include "graph/graph.h"
#include "routing/fib.h"

namespace splice {

/// Caller-owned scratch for the allocation-free forwarding path. Reused
/// across packets: the hop buffer keeps its capacity, and the visit-stamp
/// array backs O(hops) loop/revisit queries without a per-call clear.
/// One workspace per thread; never shared concurrently.
struct ForwardWorkspace {
  /// Trace buffer: forward_fast() writes the hop sequence here (cleared on
  /// entry, capacity retained).
  std::vector<HopRecord> hops;
  /// Node -> epoch of last visit; see count_node_revisits(hops, n, ws).
  std::vector<std::uint32_t> visit_stamp;
  std::uint32_t visit_epoch = 0;
  /// Walk state of forward_stats_batch: typed per-field SoA lanes (the old
  /// reinterpret_cast'd word buffer is gone). Lane vectors grow to the
  /// largest batch seen, then steady-state reuse is allocation-free.
  fwdk::BatchLanes batch;
};

class DataPlaneNetwork {
 public:
  /// The network keeps references: graph and fibs must outlive it.
  DataPlaneNetwork(const Graph& g, const FibSet& fibs);

  const Graph& graph() const noexcept { return *graph_; }
  SliceId slice_count() const noexcept { return fibs_->slice_count(); }

  /// Marks every link alive.
  void restore_all_links();

  /// Sets one link's liveness.
  void set_link_state(EdgeId e, bool alive);

  /// Installs a full liveness mask (indexed by edge id; 1 = alive).
  /// Copies into the existing storage — no reallocation per scenario.
  void set_link_mask(std::span<const char> alive);

  bool link_alive(EdgeId e) const noexcept {
    SPLICE_EXPECTS(e >= 0 && static_cast<std::size_t>(e) < links_);
    return link_alive_[static_cast<std::size_t>(e)] != 0;
  }

  /// One byte per edge (the fwdk::kAlivePad tail padding is not exposed).
  std::span<const char> link_mask() const noexcept {
    return std::span<const char>(link_alive_.data(), links_);
  }

  /// Default slice for a flow with no forwarding bits: Hash(src, dst) mod k.
  SliceId default_slice(NodeId src, NodeId dst) const noexcept;

  /// Forwards one packet from packet.src toward packet.dst; returns the
  /// full trace. Does not mutate the network. Thin wrapper over
  /// forward_fast() — one Delivery allocation per call.
  Delivery forward(const Packet& packet,
                   const ForwardingPolicy& policy = {}) const;

  /// Allocation-free forwarding: the hop trace lands in ws.hops (cleared on
  /// entry; on dead end / TTL expiry it holds the partial trace, exactly as
  /// forward()'s Delivery would). Reuse one workspace per thread.
  ForwardSummary forward_fast(const Packet& packet,
                              const ForwardingPolicy& policy,
                              ForwardWorkspace& ws) const;

  /// No-trace mode: outcome, hop count and original-weight path cost only.
  /// Zero allocations, zero stores outside the returned summary.
  ForwardSummary forward_stats(const Packet& packet,
                               const ForwardingPolicy& policy = {}) const;

  /// Statistics for a batch of independent packets: out[i] is exactly
  /// forward_stats(packets[i], policy). Advances all in-flight packets in
  /// wavefront sweeps so their per-hop FIB loads overlap instead of
  /// serializing on one packet's dependent load chain — the throughput
  /// kernel for Monte Carlo scenario sweeps.
  void forward_stats_batch(std::span<const Packet> packets,
                           const ForwardingPolicy& policy,
                           std::span<ForwardSummary> out) const;

  /// Workspace variant: walk state lives in ws.batch (SoA lanes), so
  /// repeated batches through one workspace are allocation-free once the
  /// lanes have grown to the batch size. Results are bit-identical to the
  /// allocating overload.
  void forward_stats_batch(std::span<const Packet> packets,
                           const ForwardingPolicy& policy,
                           std::span<ForwardSummary> out,
                           ForwardWorkspace& ws) const;

  /// Explicit-kernel variant for differential tests and benchmarks; the
  /// overloads above use fwdk::active_kernel().
  void forward_stats_batch(std::span<const Packet> packets,
                           const ForwardingPolicy& policy,
                           std::span<ForwardSummary> out,
                           ForwardWorkspace& ws, fwdk::Kernel kernel) const;

  /// Kernel-facing view of this network's forwarding state (full FIB:
  /// row_stride == node count). Liveness pointer tracks link mask updates;
  /// rebuild per batch, not per scenario.
  fwdk::FibView fib_view() const noexcept;

 private:
  template <bool kTrace>
  ForwardSummary forward_core(const Packet& packet,
                              const ForwardingPolicy& policy,
                              ForwardWorkspace* ws) const;

  const Graph* graph_;
  const FibSet* fibs_;
  FlatFibs flat_;
  /// Edge weights in edge-id order, copied out of the Graph once so the
  /// per-hop cost accumulation is one contiguous load.
  std::vector<Weight> edge_weight_;
  /// Liveness bytes, one per edge, plus fwdk::kAlivePad zero tail bytes so
  /// the AVX2 kernel's 32-bit liveness gathers stay in bounds.
  std::vector<char> link_alive_;
  std::size_t links_ = 0;
};

/// Batch-level obs telemetry over completed summaries (packet/outcome/hop
/// counters + hop histogram). forward_stats_batch calls it internally; the
/// sharded pipeline calls it once per merged batch. No-op when obs is
/// compiled out or disabled.
void observe_batch_summaries(std::span<const ForwardSummary> out);

/// Folds one completed batch into the route-health scorer (obs/health.h):
/// per-destination delivered/sent ticks plus the batch-level totals the SLO
/// engine consumes. One clock read per batch; no-op unless RouteHealth is
/// enabled. `packets` and `out` are the spans the batch forwarded with.
void fold_route_health(std::span<const Packet> packets,
                       std::span<const ForwardSummary> out);

/// Path latency under original graph weights for a delivery trace.
Weight trace_cost(const Graph& g, const Delivery& d);

/// Number of revisited nodes in the trace (0 for loop-free paths). Linear
/// in the trace length (allocates one visit buffer per call; hot loops use
/// the workspace overload below).
int count_node_revisits(const Delivery& d);

/// Allocation-free variant over a raw hop span: `node_count` bounds the
/// node ids in the trace, `ws.visit_stamp` is the reused timestamped visit
/// buffer (no per-call clear).
int count_node_revisits(std::span<const HopRecord> hops, NodeId node_count,
                        ForwardWorkspace& ws);

/// True iff the trace contains a two-hop loop (u -> v -> u), the loop type
/// §4.4 reports as the common case.
bool has_two_hop_loop(const Delivery& d);

/// Span variant for workspace-held traces.
bool has_two_hop_loop(std::span<const HopRecord> hops);

}  // namespace splice
