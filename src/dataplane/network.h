// Packet-level data-plane simulator.
//
// Holds the shared topology, the k forwarding tables produced by the control
// plane, and per-link up/down state. forward() walks a packet hop by hop
// exactly as Algorithm 1 prescribes: pop lg(k) forwarding bits to pick the
// slice, look up the per-slice next hop for the destination, and hand the
// packet over; on header exhaustion apply the configured policy; optionally
// perform network-based recovery (local deflection to a slice whose next
// hop is reachable over an alive link) when the selected next hop's link is
// down.
#pragma once

#include <span>
#include <vector>

#include "dataplane/packet.h"
#include "graph/graph.h"
#include "routing/fib.h"

namespace splice {

/// What a node does when the splicing header has no bits left (§4.4
/// discusses both behaviors).
enum class ExhaustPolicy {
  /// Remain in the slice used for the previous hop (paper's §4.4 reading:
  /// "traffic will remain in its current tree en route to the destination").
  kStayInCurrent,
  /// Re-derive the default slice from Hash(src, dst) every hop (literal
  /// Algorithm 1 fallback).
  kHashDefault,
};

/// Whether intermediate nodes may deflect around locally failed links.
enum class LocalRecovery {
  kNone,     ///< drop to dead end when the chosen slice's link is down
  kDeflect,  ///< §4.3 network-based recovery: try other slices' next hops
};

struct ForwardingPolicy {
  ExhaustPolicy exhaust = ExhaustPolicy::kStayInCurrent;
  LocalRecovery local_recovery = LocalRecovery::kNone;
};

class DataPlaneNetwork {
 public:
  /// The network keeps references: graph and fibs must outlive it.
  DataPlaneNetwork(const Graph& g, const FibSet& fibs);

  const Graph& graph() const noexcept { return *graph_; }
  SliceId slice_count() const noexcept { return fibs_->slice_count(); }

  /// Marks every link alive.
  void restore_all_links();

  /// Sets one link's liveness.
  void set_link_state(EdgeId e, bool alive);

  /// Installs a full liveness mask (indexed by edge id; 1 = alive).
  void set_link_mask(std::span<const char> alive);

  bool link_alive(EdgeId e) const noexcept {
    SPLICE_EXPECTS(e >= 0 &&
                   static_cast<std::size_t>(e) < link_alive_.size());
    return link_alive_[static_cast<std::size_t>(e)] != 0;
  }

  std::span<const char> link_mask() const noexcept { return link_alive_; }

  /// Default slice for a flow with no forwarding bits: Hash(src, dst) mod k.
  SliceId default_slice(NodeId src, NodeId dst) const noexcept;

  /// Forwards one packet from packet.src toward packet.dst; returns the
  /// full trace. Does not mutate the network.
  Delivery forward(const Packet& packet,
                   const ForwardingPolicy& policy = {}) const;

 private:
  const Graph* graph_;
  const FibSet* fibs_;
  std::vector<char> link_alive_;
};

/// Path latency under original graph weights for a delivery trace.
Weight trace_cost(const Graph& g, const Delivery& d);

/// Number of revisited nodes in the trace (0 for loop-free paths).
int count_node_revisits(const Delivery& d);

/// True iff the trace contains a two-hop loop (u -> v -> u), the loop type
/// §4.4 reports as the common case.
bool has_two_hop_loop(const Delivery& d);

}  // namespace splice
