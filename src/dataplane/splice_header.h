// The splicing shim header (§3.2): a packed stream of "forwarding bits"
// placed between the network and transport headers. Each hop reads the
// rightmost lg(k) bits to select one of k forwarding tables, then shifts the
// stream right by lg(k) so the next hop does the same (Algorithm 1).
//
// The bits are opaque — end systems re-randomize them without knowing the
// topology. This module also implements the recovery-oriented generators the
// paper evaluates or proposes:
//   * uniform random bits (initial headers and naive recovery),
//   * per-hop coin-flip mutation (end-system recovery, §4.3),
//   * never-revisit-a-slice sequences (loop-free variant, §4.4),
//   * bounded-switch sequences (loop-limiting variant, §4.4),
//   * first-hop-biased mutation (§5, "flip early hops with higher
//     probability"),
// and the counter-based alternate encoding sketched in §5.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/types.h"
#include "util/rng.h"

namespace splice {

/// Bits needed per hop for k slices: ceil(log2(k)); 0 when k == 1.
int bits_per_hop(SliceId k) noexcept;

/// 128-bit little-endian bit stream with the shift/mask primitives of
/// Algorithm 1. Capacity: 128 bits = 20 hops x up to 6 bits (k <= 64).
class BitStream {
 public:
  BitStream() = default;

  /// True iff every remaining bit is zero (the `fwdbits > 0` test).
  bool all_zero() const noexcept { return lo_ == 0 && hi_ == 0; }

  /// Reads the rightmost `width` bits without shifting.
  std::uint32_t peek(int width) const noexcept;

  /// Shifts right by `width` bits.
  void shift(int width) noexcept;

  /// Reads and shifts in one step.
  std::uint32_t pop(int width) noexcept;

  /// Appends `width` bits of `value` at position `slot * width`.
  void set_slot(int slot, int width, std::uint32_t value) noexcept;

  std::uint64_t lo() const noexcept { return lo_; }
  std::uint64_t hi() const noexcept { return hi_; }

  friend bool operator==(const BitStream&, const BitStream&) = default;

 private:
  std::uint64_t lo_ = 0;
  std::uint64_t hi_ = 0;
};

/// The shim header: a bit stream plus the slice-count geometry needed to
/// interpret it. `hops` is the number of splice-capable hops encoded; the
/// paper's experiments use 20.
class SpliceHeader {
 public:
  static constexpr int kDefaultHops = 20;

  /// Empty header: no forwarding bits; every hop falls back to the default
  /// (hash-selected) slice.
  SpliceHeader() = default;

  /// Header for k slices and `hops` splice points, all slots zero.
  SpliceHeader(SliceId k, int hops);

  /// Uniform random slice per hop — the naive recovery generator.
  static SpliceHeader random(SliceId k, int hops, Rng& rng);

  /// Header encoding an explicit per-hop slice sequence.
  static SpliceHeader from_slices(SliceId k, std::span<const SliceId> slices);

  /// End-system recovery (§4.3): per hop, toss a coin; on heads replace that
  /// hop's slice with a different uniformly chosen one.
  SpliceHeader mutate_coinflip(Rng& rng, double flip_probability = 0.5) const;

  /// First-hop-biased mutation (§5): hop i flips with probability
  /// p0 * decay^i, so early hops change more often.
  SpliceHeader mutate_first_hop_biased(Rng& rng, double p0 = 0.9,
                                       double decay = 0.7) const;

  /// Sequence that never returns to a previously *left* slice (§4.4):
  /// guarantees no persistent forwarding loop. At most min(k, hops) distinct
  /// slices are used, in segments.
  static SpliceHeader random_no_revisit(SliceId k, int hops, Rng& rng);

  /// Sequence with at most `max_switches` slice changes (§4.4).
  static SpliceHeader random_bounded_switches(SliceId k, int hops,
                                              int max_switches, Rng& rng);

  /// Per-hop pop, Algorithm 1: returns the slice for this hop, or nullopt
  /// when the stream is exhausted (all remaining bits zero and no hops
  /// remain — callers then apply their exhaust policy).
  std::optional<SliceId> pop();

  /// Decodes the remaining per-hop slice values (without consuming).
  std::vector<SliceId> slices() const;

  SliceId slice_count() const noexcept { return k_; }

  /// Read-only view of the remaining bit payload (already shifted past any
  /// consumed hops). The data-plane fast path copies lo/hi into registers
  /// and pops inline instead of mutating a header copy per packet.
  const BitStream& stream() const noexcept { return bits_; }

  int hops() const noexcept { return hops_; }
  int remaining_hops() const noexcept { return hops_ - cursor_; }
  bool has_bits() const noexcept { return k_ > 1 && remaining_hops() > 0; }

  /// Size of the header's bit payload in bits — the overhead metric.
  int bit_size() const noexcept { return bits_per_hop(k_) * hops_; }

  friend bool operator==(const SpliceHeader&, const SpliceHeader&) = default;

 private:
  SliceId k_ = 1;
  int hops_ = 0;
  int cursor_ = 0;  // hops already consumed
  BitStream bits_;
};

/// Counter-based alternate encoding (§5): the header carries one number; a
/// hop that sees a non-zero value deflects deterministically (slice index
/// derived from the value) and decrements it.
class CounterHeader {
 public:
  CounterHeader() = default;
  explicit CounterHeader(std::uint32_t value) : value_(value) {}

  std::uint32_t value() const noexcept { return value_; }
  bool active() const noexcept { return value_ > 0; }

  /// Consumes one deflection: returns the slice to use at this hop for a
  /// node currently on `current` of k slices, and decrements the counter.
  SliceId deflect(SliceId current, SliceId k) noexcept;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace splice
