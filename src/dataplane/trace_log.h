// Human- and machine-readable forwarding traces.
//
// Splicing's opaque bits make "why did this packet go that way?" a real
// operational question; this module renders Delivery traces as one-line
// records (with slice annotations and deflection markers), batches them in
// a TraceLog with summary statistics, and parses records back — so traces
// can be logged, diffed and replayed in tooling.
//
// Record grammar (one line):
//   <outcome> src=<name> dst=<name> hops=<n> cost=<w> slices=<s0,s1,...>
//     path=<n0>-<n1>-...-<nk> [deflected=<i,j,...>]
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dataplane/packet.h"
#include "graph/graph.h"

namespace splice {

/// Renders one delivery as a single-line record. Node names fall back to
/// ids for unnamed nodes. `src` is required because a zero-hop delivery
/// carries no node information of its own.
std::string format_trace(const Graph& g, NodeId src, NodeId dst,
                         const Delivery& d);

/// Parses a record produced by format_trace back into its structural
/// parts. Throws std::invalid_argument on malformed input.
struct ParsedTrace {
  ForwardOutcome outcome = ForwardOutcome::kDeadEnd;
  std::string src;
  std::string dst;
  int hops = 0;
  double cost = 0.0;
  std::vector<SliceId> slices;
  std::vector<std::string> path;       ///< node names, src..last
  std::vector<int> deflected_hops;     ///< indices of deflected hops
};

ParsedTrace parse_trace(const std::string& line);

/// Accumulates traces and derives summary statistics.
class TraceLog {
 public:
  explicit TraceLog(const Graph& g) : graph_(&g) {}

  void record(NodeId src, NodeId dst, const Delivery& d);

  std::size_t size() const noexcept { return lines_.size(); }
  const std::vector<std::string>& lines() const noexcept { return lines_; }

  long long delivered() const noexcept { return delivered_; }
  long long dead_ends() const noexcept { return dead_ends_; }
  long long ttl_expired() const noexcept { return ttl_expired_; }
  long long total_hops() const noexcept { return total_hops_; }
  long long deflections() const noexcept { return deflections_; }

  /// Full log text: one record per line plus a trailing summary line.
  std::string render() const;

 private:
  const Graph* graph_;
  std::vector<std::string> lines_;
  long long delivered_ = 0;
  long long dead_ends_ = 0;
  long long ttl_expired_ = 0;
  long long total_hops_ = 0;
  long long deflections_ = 0;
};

}  // namespace splice
