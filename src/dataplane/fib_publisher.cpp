#include "dataplane/fib_publisher.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "util/assert.h"

namespace splice {

FibPublisher::FibPublisher(const Graph& g, const ControlPlaneConfig& cfg)
    : graph_(&g), mir_(g, cfg) {
  const auto n = static_cast<std::size_t>(g.node_count());
  const auto edges = static_cast<std::size_t>(g.edge_count());
  const auto k = static_cast<std::size_t>(mir_.slice_count());

  original_weights_.resize(k);
  for (std::size_t s = 0; s < k; ++s) {
    const auto w = mir_.slice(static_cast<SliceId>(s)).weights();
    original_weights_[s].assign(w.begin(), w.end());
    SPLICE_ASSERT(original_weights_[s].size() == edges);
  }

  FibSet fibs = mir_.build_fibs();
  snap_a_ = std::make_unique<Snapshot>(g, fibs);  // copy
  snap_b_ = std::make_unique<Snapshot>(g, std::move(fibs));
  snap_a_->version = version_;
  snap_b_->version = version_;
  published_.store(snap_a_.get(), std::memory_order_release);
  shadow_ = snap_b_.get();

  prev_touched_.assign(n, 0);
  cur_touched_.assign(n, 0);
  weight_scratch_.assign(k, 0.0);
}

FibPublisher::~FibPublisher() = default;

std::uint64_t FibPublisher::published_version() const noexcept {
  return published_.load(std::memory_order_acquire)->version;
}

const DataPlaneNetwork& FibPublisher::published_net() const noexcept {
  return published_.load(std::memory_order_acquire)->net;
}

const FibSet& FibPublisher::published_fibs() const noexcept {
  return published_.load(std::memory_order_acquire)->fibs;
}

void FibPublisher::original_weights(EdgeId e, std::vector<Weight>& out) const {
  SPLICE_EXPECTS(e >= 0 && e < graph_->edge_count());
  out.resize(original_weights_.size());
  for (std::size_t s = 0; s < original_weights_.size(); ++s) {
    out[s] = original_weights_[s][static_cast<std::size_t>(e)];
  }
}

PublishStats FibPublisher::publish_link_down(EdgeId e) {
  std::fill(weight_scratch_.begin(), weight_scratch_.end(), kInfiniteWeight);
  return publish_weights(e, weight_scratch_, /*alive=*/false);
}

PublishStats FibPublisher::publish_link_restore(EdgeId e) {
  SPLICE_EXPECTS(e >= 0 && e < graph_->edge_count());
  for (std::size_t s = 0; s < original_weights_.size(); ++s) {
    weight_scratch_[s] = original_weights_[s][static_cast<std::size_t>(e)];
  }
  return publish_weights(e, weight_scratch_, /*alive=*/true);
}

PublishStats FibPublisher::publish_weight_scale(EdgeId e, double factor) {
  SPLICE_EXPECTS(e >= 0 && e < graph_->edge_count());
  SPLICE_EXPECTS(factor > 0.0);
  for (std::size_t s = 0; s < original_weights_.size(); ++s) {
    weight_scratch_[s] =
        original_weights_[s][static_cast<std::size_t>(e)] * factor;
  }
  return publish_weights(e, weight_scratch_, /*alive=*/true);
}

PublishStats FibPublisher::publish_weights(EdgeId e,
                                           std::span<const Weight> per_slice,
                                           bool alive) {
  const std::uint64_t t0 = obs::clock_now_ns();
  Snapshot* shadow = shadow_;

  // 1. Catch the shadow up to the published state: replay the previous
  //    event's touched columns from the current control tables. (The
  //    control plane is still at state N here — the new event has not been
  //    applied — so the patch lands exactly the published contents.)
  if (have_prev_) {
    mir_.patch_fibs(shadow->fibs, prev_touched_);
    shadow->net.set_link_state(prev_edge_, prev_alive_ != 0);
  }

  // 2. Repair the control plane, collecting this event's touched set.
  std::fill(cur_touched_.begin(), cur_touched_.end(), 0);
  PublishStats out;
  out.repair = mir_.apply_edge_weights(e, per_slice, &cur_touched_);

  // 3. Patch the shadow to the new state.
  out.dsts_patched = mir_.patch_fibs(shadow->fibs, cur_touched_);
  shadow->net.set_link_state(e, alive);
  shadow->version = ++version_;

  // 4. Publish: swap the snapshot pointer, advance the epoch.
  Snapshot* retired = published_.exchange(shadow, std::memory_order_seq_cst);
  const std::uint64_t target = domain_.advance();

#if SPLICE_OBS
  if (obs::FlightRecorder::enabled()) {
    obs::FlightRecorder::global().epoch_publish(
        target, static_cast<std::uint32_t>(e),
        static_cast<std::uint32_t>(out.dsts_patched),
        static_cast<std::uint32_t>(out.repair.trees_repaired +
                                   out.repair.trees_rebuilt),
        alive);
  }
#endif

  // 5. Grace: once every reader is quiescent or on the new epoch, the
  //    retired table is ours again. This completion point is the SLO's
  //    "all readers observe the new epoch" timestamp.
  out.work_ns = obs::clock_now_ns() - t0;
  out.grace_spins = domain_.wait_for_grace(target);
  const std::uint64_t t1 = obs::clock_now_ns();
  out.epoch = target;
  out.latency_ns = t1 - t0;
  shadow_ = retired;

  prev_touched_.swap(cur_touched_);
  prev_edge_ = e;
  prev_alive_ = alive ? 1 : 0;
  have_prev_ = true;

  SPLICE_OBS_COUNT("publisher.events", 1);
  SPLICE_OBS_COUNT("publisher.dsts_patched", out.dsts_patched);
  SPLICE_OBS_OBSERVE("publisher.reconv_latency_us", 0.0, 10000.0, 64,
                     static_cast<double>(out.latency_ns) * 1e-3);
#if SPLICE_OBS
  if (obs::FlightRecorder::enabled()) {
    obs::FlightRecorder::global().epoch_grace(target, out.latency_ns,
                                              out.grace_spins);
    obs::FlightRecorder::global().epoch_work(target, out.work_ns);
  }
  // Health fold sits after t1 so the scorer's own cost never lands in this
  // event's latency sample; prev_touched_ still holds this event's
  // per-destination patch set (swapped above).
  if (obs::RouteHealth::enabled()) {
    obs::RouteHealth::global().record_publish(t1, out.latency_ns,
                                              out.work_ns, prev_touched_);
  }
#endif
  return out;
}

void FibPublisher::quiesce() {
  if (!have_prev_) return;
  Snapshot* shadow = shadow_;
  mir_.patch_fibs(shadow->fibs, prev_touched_);
  shadow->net.set_link_state(prev_edge_, prev_alive_ != 0);
  shadow->version = version_;
  std::fill(prev_touched_.begin(), prev_touched_.end(), 0);
  have_prev_ = false;
}

const DataPlaneNetwork& FibPublisher::Reader::pin() {
  pub_->domain_.pin(slot_);
  pinned_ = true;
  const Snapshot* snap = pub_->published_.load(std::memory_order_seq_cst);
  if (snap->version != last_version_) {
    last_version_ = snap->version;
#if SPLICE_OBS
    if (obs::FlightRecorder::enabled()) {
      obs::FlightRecorder::global().epoch_adopt(
          snap->version, static_cast<std::uint32_t>(slot_));
    }
#endif
  }
  return snap->net;
}

}  // namespace splice
