#include "overlay/overlay.h"

#include <algorithm>

#include "graph/dijkstra.h"
#include "util/assert.h"

namespace splice {

std::vector<NodeId> pick_overlay_members(const Graph& underlay,
                                         std::size_t count) {
  SPLICE_EXPECTS(count >= 1);
  std::vector<NodeId> members;
  const auto n = static_cast<std::size_t>(underlay.node_count());
  const std::size_t stride = std::max<std::size_t>(1, n / count);
  for (NodeId v = 0; v < underlay.node_count() && members.size() < count;
       v += static_cast<NodeId>(stride)) {
    members.push_back(v);
  }
  return members;
}

namespace {

/// Shared construction: overlay graph + measured paths over the (possibly
/// masked) underlay.
OverlayMapping build_with_mask(const Graph& underlay,
                               std::vector<NodeId> members,
                               std::span<const char> underlay_alive) {
  OverlayMapping m;
  m.members = std::move(members);
  for (const NodeId v : m.members) {
    SPLICE_EXPECTS(underlay.valid_node(v));
    m.overlay.add_node(underlay.name(v));
  }
  DijkstraOptions opts;
  opts.edge_alive = underlay_alive;
  for (std::size_t i = 0; i < m.members.size(); ++i) {
    const ShortestPaths sp = dijkstra(underlay, m.members[i], opts);
    for (std::size_t j = i + 1; j < m.members.size(); ++j) {
      const NodeId target = m.members[j];
      if (!sp.reached(target)) continue;
      const Weight d = sp.dist[static_cast<std::size_t>(target)];
      if (d <= 0.0) continue;
      m.overlay.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), d);
      m.measured_paths.push_back(sp.path_to(target));
    }
  }
  SPLICE_ENSURES(m.measured_paths.size() ==
                 static_cast<std::size_t>(m.overlay.edge_count()));
  return m;
}

}  // namespace

OverlayMapping build_overlay(const Graph& underlay,
                             std::vector<NodeId> members) {
  return build_with_mask(underlay, std::move(members), {});
}

std::vector<char> virtual_link_liveness(const Graph& underlay,
                                        const OverlayMapping& mapping,
                                        std::span<const char> underlay_alive) {
  SPLICE_EXPECTS(underlay_alive.size() ==
                 static_cast<std::size_t>(underlay.edge_count()));
  std::vector<char> alive(
      static_cast<std::size_t>(mapping.overlay.edge_count()), 1);
  for (EdgeId e = 0; e < mapping.overlay.edge_count(); ++e) {
    const auto& path = mapping.measured_paths[static_cast<std::size_t>(e)];
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const EdgeId ue = underlay.find_edge(path[i], path[i + 1]);
      SPLICE_ASSERT(ue != kInvalidEdge);
      if (!underlay_alive[static_cast<std::size_t>(ue)]) {
        alive[static_cast<std::size_t>(e)] = 0;
        break;
      }
    }
  }
  return alive;
}

OverlayMapping reprobe_overlay(const Graph& underlay,
                               const OverlayMapping& mapping,
                               std::span<const char> underlay_alive) {
  return build_with_mask(underlay, mapping.members, underlay_alive);
}

}  // namespace splice
