// Overlay-network substrate for the §5 "other applications" discussion:
// applying path splicing to RON-style overlay routing.
//
// An overlay is a subset of underlay nodes joined by virtual links whose
// weights are the measured underlay latencies (we compute them exactly
// instead of probing). RON semantics for failures: a virtual link is *down*
// while the underlay path it was measured over is broken, until the overlay
// re-probes — which is precisely the window in which overlay splicing
// recovers by deflecting across other overlay nodes with zero measurement
// traffic.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace splice {

/// An overlay graph plus the bookkeeping to map it back to the underlay.
struct OverlayMapping {
  /// members[i] = underlay node backing overlay node i.
  std::vector<NodeId> members;
  /// The overlay graph: clique over members, weights = underlay latency.
  Graph overlay;
  /// measured_path[e] = underlay node sequence the virtual link's latency
  /// was measured over (the current underlay shortest path).
  std::vector<std::vector<NodeId>> measured_paths;
};

/// Picks `count` overlay members spread deterministically across the
/// underlay node-id space.
std::vector<NodeId> pick_overlay_members(const Graph& underlay,
                                         std::size_t count);

/// Builds the full-mesh overlay over `members`: one virtual link per pair
/// that is connected in the underlay, weighted by underlay shortest-path
/// latency, with the measured path recorded.
OverlayMapping build_overlay(const Graph& underlay,
                             std::vector<NodeId> members);

/// RON failure semantics: virtual link e is alive iff every underlay link
/// of its measured path survives `underlay_alive`. Returns the overlay
/// edge-liveness mask.
std::vector<char> virtual_link_liveness(const Graph& underlay,
                                        const OverlayMapping& mapping,
                                        std::span<const char> underlay_alive);

/// Re-measures every virtual link on the surviving underlay (the
/// "after re-probing" state): returns a fresh mapping whose weights and
/// measured paths reflect `underlay_alive`; virtual links between
/// underlay-disconnected members are omitted.
OverlayMapping reprobe_overlay(const Graph& underlay,
                               const OverlayMapping& mapping,
                               std::span<const char> underlay_alive);

}  // namespace splice
