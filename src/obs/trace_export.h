// Trace exporter: renders the span tree, drained flight-recorder events and
// the anomaly ledger as one Chrome/Perfetto trace-event JSON document
// (load it at chrome://tracing or ui.perfetto.dev; splice_inspect reads the
// same file).
//
// Layout:
//   pid 1 "recorder"  — phase begin/end as B/E pairs and SPT repairs /
//                       trial markers as instants, one tid per ring;
//   pid 2 "spans"     — the *aggregate* span tree as synthesized X events
//                       (spans carry totals, not start times, so the
//                       timeline is a preorder layout: each node spans its
//                       total, children packed left-to-right inside it);
//   pid 3 "walks"     — sampled packet walks, one tid per walk, B/E per
//                       attempt with per-hop instants. Hops are not
//                       individually timestamped on the record path (too
//                       hot); their ts interpolates between the attempt's
//                       begin and end.
//
// Chrome ignores unknown top-level keys, so the document carries the full
// structured payload alongside "traceEvents": "spliceSpans" (exact span
// aggregates), "spliceAnomalies" + "spliceRuns" (the ledger), and
// "spliceMeta" (caller params + recorder drop counts). 64-bit values that
// may exceed 2^53 (seeds, splicing bits) are emitted as decimal strings.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/anomaly.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace splice::obs {

struct TraceInputs {
  SpanSnapshot spans;
  RecorderSnapshot recorder;
  AnomalySnapshot anomalies;
  /// Free-form metadata for "spliceMeta" (bench name, topology, flags...).
  std::vector<std::pair<std::string, std::string>> meta;
  /// JSON object bodies for "spliceHealth" / "spliceSlo" / "spliceLinks"
  /// (obs/health.h, obs/slo.h, obs/linkstats.h); empty strings omit the
  /// sections.
  std::string health_body;
  std::string slo_body;
  std::string links_body;
};

/// Snapshots the global span collector, drains the global flight recorder
/// and snapshots the global anomaly ledger. When the route-health scorer /
/// SLO engine are enabled, their snapshots ride along as JSON bodies.
TraceInputs capture_trace_inputs();

/// Renders one complete trace-event JSON document.
std::string trace_json(const TraceInputs& in);

/// trace_json + write_file. Returns false on I/O failure.
bool write_trace(const TraceInputs& in, const std::string& path);

}  // namespace splice::obs
