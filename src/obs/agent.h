// In-process telemetry agent: the optional background thread that turns
// the passive obs layers (metrics registry, route health, SLO engine, link
// stats) into a *live* telemetry plane. Every period it snapshots the
// stack into one JSON document — the same schema as
// health_snapshot_document(), plus a "spliceMetrics" section — and
// publishes it into a shared-memory segment (obs/shm_segment.h) for
// splice_top's zero-copy attach; optionally it also serves the Prometheus
// text exposition over a loopback scrape endpoint (obs/scrape_server.h).
//
// Invariants the agent must not break:
//   - Bit-identical experiment metrics with the agent on or off: the agent
//     only *reads* (lock-free snapshots of atomics; the registry's mutex),
//     it never records, so enabling it cannot perturb any counter.
//   - Zero allocations on the publish path in steady state: snapshots are
//     rebuilt in place via the *_into APIs, the document is serialized
//     with the json_append_* primitives into one reusable buffer, and the
//     segment publish is a word-wise store loop (resprof-enforced in
//     obs_agent_test). Scrapes allocate freely — they're an operator
//     surface, not the publish path.
//   - Span data is excluded from the live exposition: SpanCollector's
//     per-thread buffers are only merge-safe at run end, and racing them
//     from the agent thread would trade a TSan report for a lie.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <condition_variable>

#include "obs/health.h"
#include "obs/linkstats.h"
#include "obs/metrics.h"
#include "obs/shm_segment.h"
#include "obs/scrape_server.h"
#include "obs/slo.h"

namespace splice::obs {

struct TelemetryConfig {
  std::string shm_path;  ///< empty = no segment
  std::size_t shm_capacity = kShmDefaultCapacity;
  bool tcp = false;      ///< serve a scrape endpoint
  std::uint16_t tcp_port = 0;  ///< 0 = ephemeral
  std::uint32_t period_ms = 250;

  bool any_sink() const noexcept { return !shm_path.empty() || tcp; }
};

/// Parses the --telemetry flag value: comma-separated sinks, each
/// "shm:PATH" or "tcp:PORT" (port 0 = ephemeral). At least one sink is
/// required. Returns false with a message in *error on malformed specs.
bool parse_telemetry_spec(const std::string& spec, TelemetryConfig& cfg,
                          std::string* error = nullptr);

/// Reusable snapshot + serialization storage for one publisher. All the
/// *_into APIs write into this, so a steady-state publish touches no heap.
struct TelemetryWorkspace {
  HealthSnapshot health;
  SloSnapshot slo;
  LinkSnapshot links;
  MetricsSnapshot metrics;
  std::string doc;
};

/// Serializes the whole obs stack's state at `now_ns` into ws.doc — the
/// health_snapshot_document() schema ("spliceHealth"/"spliceSlo", plus
/// "spliceLinks" when link stats are enabled and "spliceMetrics" when the
/// registry is), so splice_top decodes segment reads and snapshot files
/// identically. Exposed standalone so tests exercise the document without
/// a thread.
void build_telemetry_document(TelemetryWorkspace& ws, std::uint64_t now_ns);

/// The Prometheus exposition a live scrape serves: registry metrics plus
/// link families when enabled; no span data (see file comment). Allocates.
std::string render_scrape_exposition();

class TelemetryAgent {
 public:
  static TelemetryAgent& global();

  /// Creates the configured sinks and starts the publish thread. The
  /// scrape endpoint (when configured) is bound synchronously — port() is
  /// valid once start() returns true.
  bool start(const TelemetryConfig& cfg, std::string* error = nullptr);

  /// Final flush, then stops the thread and tears the sinks down. The
  /// segment file stays behind (heartbeat frozen) for post-mortem attach.
  void stop();

  bool running() const noexcept { return running_; }
  const TelemetryConfig& config() const noexcept { return cfg_; }
  /// The scrape endpoint's bound port; 0 when none.
  std::uint16_t scrape_port() const noexcept { return scrape_.port(); }
  std::uint64_t publishes() const noexcept { return writer_.flushes(); }

  /// One synchronous snapshot + publish on the calling thread (shares the
  /// workspace with the agent thread under the flush mutex). The
  /// steady-state zero-allocation contract is enforced on this path.
  bool flush_now();

  /// Serializes obs-layer reconfiguration against agent flushes. The
  /// benches re-arm RouteHealth/LinkStats mid-run (configure() swaps the
  /// backing storage wholesale); a snapshot racing that would read freed
  /// memory. Hold this lock around any configure() once the agent may be
  /// running — uncontended and cheap when it is not.
  std::unique_lock<std::mutex> reconfigure_lock() {
    return std::unique_lock<std::mutex>(flush_mu_);
  }

 private:
  TelemetryAgent() = default;
  void run_loop();
  bool flush_locked(std::uint64_t now_ns);

  TelemetryConfig cfg_{};
  ShmSegmentWriter writer_;
  ScrapeServer scrape_;
  TelemetryWorkspace ws_;
  std::mutex flush_mu_;   ///< serializes flush_now() vs the agent thread
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace splice::obs
