// Versioned, mmap-backed shared-memory telemetry segment — the transport
// under the live telemetry plane (obs/agent.h). A writer process (the
// bench / daemon) publishes a serialized snapshot document into the
// segment; reader processes (splice_top attach) map the same file and read
// it with zero copies of the file into kernel pipes — the only copy is the
// word-wise gather out of the mapping into the reader's buffer.
//
// Concurrency protocol: a cross-process seqlock in the fib_publisher
// idiom, with the payload stored as an array of word-sized atomics so the
// copy loops are formally data-race-free (TSan-clean by construction, not
// by suppression):
//
//   writer:  gen.store(g+1, relaxed)            // odd = write in progress
//            fence(release)
//            relaxed word stores of the payload
//            payload_bytes.store(n, relaxed)
//            gen.store(g+2, release)            // even = stable
//            heartbeat_ns.store(now, relaxed)
//   reader:  g1 = gen.load(acquire)             // reject odd
//            relaxed word loads of the payload
//            fence(acquire)
//            g2 = gen.load(relaxed)             // accept iff g1 == g2
//
// The release fence before the payload stores pairs with the reader's
// acquire fence: a reader that observed any post-fence payload word is
// guaranteed to observe the odd generation (or a later one) at g2, so a
// torn read can never be accepted. Bounded retries turn a persistently
// odd/moving generation into kTorn instead of a livelock.
//
// Staleness and liveness: the writer refreshes heartbeat_ns (an
// obs::MonotonicClock reading — CLOCK_MONOTONIC, machine-wide epoch, so
// cross-process age math is meaningful) on every publish and idle beat,
// and records its publish period and pid in the header; readers judge
// "stale" as heartbeat age >> period and probe the pid for liveness.
//
// Versioning: a magic word (stored last, release, on create — a reader
// never sees a half-initialized header) plus an ABI version; mismatches
// are rejected at attach, which is also how splice_top distinguishes a
// segment from a plain snapshot file and falls back to file polling.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace splice::obs {

/// "SPLTEL" + 2-digit layout revision, as a big-endian word.
inline constexpr std::uint64_t kShmMagic = 0x53504C54454C3031ULL;
inline constexpr std::uint32_t kShmAbiVersion = 1;
/// Header page; payload words start at this offset.
inline constexpr std::size_t kShmHeaderBytes = 4096;
inline constexpr std::size_t kShmDefaultCapacity = std::size_t{4} << 20;

/// The segment's first page. All cross-process fields are word-sized
/// atomics (lock-free on every supported target); plain fields are written
/// once before the magic is released and read-only afterwards.
struct ShmHeader {
  std::atomic<std::uint64_t> magic;
  std::uint32_t abi_version;
  std::uint32_t header_bytes;
  std::uint64_t capacity;     ///< payload bytes available past the header
  std::uint64_t writer_pid;
  std::atomic<std::uint64_t> generation;     ///< seqlock; odd = mid-write
  std::atomic<std::uint64_t> payload_bytes;  ///< valid bytes of the payload
  std::atomic<std::uint64_t> heartbeat_ns;   ///< writer clock at last beat
  std::atomic<std::uint64_t> period_ns;      ///< agent publish period
  std::atomic<std::uint64_t> flushes;        ///< publish attempts
  std::atomic<std::uint64_t> dropped;        ///< oversize publishes skipped
  std::atomic<std::uint64_t> scrape_port;    ///< loopback port; 0 = none
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm seqlock needs lock-free word atomics");
static_assert(sizeof(ShmHeader) <= kShmHeaderBytes,
              "header must fit its reserved page");

/// Writer endpoint: creates (truncates) the segment file and publishes
/// snapshot documents. One writer per segment; publish() and heartbeat()
/// may be called from one thread at a time (the telemetry agent's).
class ShmSegmentWriter {
 public:
  ShmSegmentWriter() = default;
  ~ShmSegmentWriter();
  ShmSegmentWriter(const ShmSegmentWriter&) = delete;
  ShmSegmentWriter& operator=(const ShmSegmentWriter&) = delete;

  /// Creates `path` (replacing any previous segment), sizes it to one
  /// header page + `capacity` payload bytes and maps it shared. The magic
  /// word is stored last (release), so a concurrent attach never observes
  /// a half-built header.
  bool create(const std::string& path,
              std::size_t capacity = kShmDefaultCapacity,
              std::string* error = nullptr);

  bool valid() const noexcept { return header_ != nullptr; }
  const std::string& path() const noexcept { return path_; }

  /// Publishes one document under the seqlock (see file comment).
  /// Allocation-free; oversize documents are counted in `dropped` and the
  /// previous generation stays readable. `now_ns` refreshes the heartbeat.
  bool publish(const char* data, std::size_t n, std::uint64_t now_ns) noexcept;

  /// Refreshes the heartbeat without publishing (idle beat).
  void heartbeat(std::uint64_t now_ns) noexcept;

  /// Advertises the agent's publish period / scrape port to readers.
  void set_period_ns(std::uint64_t period_ns) noexcept;
  void set_scrape_port(std::uint16_t port) noexcept;

  std::uint64_t generation() const noexcept;
  std::uint64_t flushes() const noexcept;
  std::uint64_t dropped() const noexcept;

  /// Unmaps and closes. The file stays behind for post-mortem attach.
  void close() noexcept;

 private:
  ShmHeader* header_ = nullptr;
  std::atomic<std::uint64_t>* words_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t map_bytes_ = 0;
  void* map_ = nullptr;
  std::string path_;
};

enum class ShmReadResult : std::uint8_t {
  kOk = 0,
  kEmpty,        ///< attached, but nothing published yet
  kTorn,         ///< retries exhausted mid-write (writer wedged or racing)
  kNotAttached,
};

const char* shm_read_result_name(ShmReadResult r) noexcept;

/// Header fields sampled alongside a successful read, for freshness /
/// liveness rendering.
struct ShmSegmentInfo {
  std::uint64_t generation = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t heartbeat_ns = 0;
  std::uint64_t period_ns = 0;
  std::uint64_t flushes = 0;
  std::uint64_t dropped = 0;
  std::uint64_t scrape_port = 0;
  std::uint64_t writer_pid = 0;
  std::uint64_t capacity = 0;
};

/// True when the recorded writer pid still names a live process (readers'
/// liveness probe; complements heartbeat age).
bool shm_writer_alive(const ShmSegmentInfo& info) noexcept;

/// Reader endpoint: maps an existing segment read-only and performs
/// generation-gated reads. Any number of readers may attach concurrently
/// with the writer.
class ShmSegmentReader {
 public:
  ShmSegmentReader() = default;
  ~ShmSegmentReader();
  ShmSegmentReader(const ShmSegmentReader&) = delete;
  ShmSegmentReader& operator=(const ShmSegmentReader&) = delete;

  /// Maps `path` and validates magic / ABI version / geometry. On failure
  /// returns false with the reason in *error (magic mismatch is the cue
  /// for splice_top's snapshot-file fallback).
  bool attach(const std::string& path, std::string* error = nullptr);

  bool attached() const noexcept { return header_ != nullptr; }

  /// One generation-gated read into `out` (resized to the payload).
  /// Retries a bounded number of times across writer collisions before
  /// reporting kTorn. On kOk, *info (when given) carries the header sample
  /// taken with the accepted generation.
  ShmReadResult read(std::string& out,
                     ShmSegmentInfo* info = nullptr) const noexcept;

  void detach() noexcept;

 private:
  const ShmHeader* header_ = nullptr;
  const std::atomic<std::uint64_t>* words_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t map_bytes_ = 0;
  void* map_ = nullptr;
};

}  // namespace splice::obs
