#include "obs/agent.h"

#include <chrono>
#include <cstdlib>

#include "obs/clock.h"
#include "obs/export.h"
#include "obs/span.h"

namespace splice::obs {

bool parse_telemetry_spec(const std::string& spec, TelemetryConfig& cfg,
                          std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (spec.empty()) return fail("empty --telemetry spec");
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    if (token.rfind("shm:", 0) == 0) {
      const std::string path = token.substr(4);
      if (path.empty()) return fail("shm: sink needs a path");
      cfg.shm_path = path;
    } else if (token.rfind("tcp:", 0) == 0) {
      char* endp = nullptr;
      const long port = std::strtol(token.c_str() + 4, &endp, 10);
      if (endp == token.c_str() + 4 || *endp != '\0' || port < 0 ||
          port > 65535) {
        return fail("tcp: sink needs a port in [0, 65535]");
      }
      cfg.tcp = true;
      cfg.tcp_port = static_cast<std::uint16_t>(port);
    } else {
      return fail("unknown telemetry sink '" + token +
                  "' (want shm:PATH or tcp:PORT)");
    }
  }
  if (!cfg.any_sink()) return fail("no telemetry sink in spec");
  return true;
}

void build_telemetry_document(TelemetryWorkspace& ws, std::uint64_t now_ns) {
  ws.doc.clear();
  ws.doc += "{\n\"spliceHealth\": {\n";
  RouteHealth::global().snapshot_into(now_ns, ws.health);
  health_json_append(ws.doc, ws.health);
  ws.doc += "\n},\n\"spliceSlo\": {\n";
  SloEngine::global().peek_into(now_ns, ws.slo);
  slo_json_append(ws.doc, ws.slo);
  ws.doc += "\n}";
  if (LinkStats::enabled()) {
    ws.doc += ",\n\"spliceLinks\": {\n";
    LinkStats::global().snapshot_into(now_ns, ws.links);
    links_json_append(ws.doc, ws.links);
    ws.doc += "\n}";
  }
  if (MetricsRegistry::enabled()) {
    ws.doc += ",\n\"spliceMetrics\": {";
    MetricsRegistry::global().snapshot_into(ws.metrics);
    metrics_json_append(ws.doc, ws.metrics);
    ws.doc += "}";
  }
  ws.doc += "\n}\n";
}

std::string render_scrape_exposition() {
  const MetricsSnapshot metrics = MetricsRegistry::enabled()
                                      ? MetricsRegistry::global().snapshot()
                                      : MetricsSnapshot{};
  // No span data: SpanCollector's per-thread buffers are only merge-safe
  // at run end (see header comment).
  std::string out = to_prometheus(metrics, SpanSnapshot{});
  if (LinkStats::enabled()) {
    out += links_prometheus(LinkStats::global().snapshot());
  }
  if (out.empty()) {
    // A scrape of a process with everything disabled still has to be a
    // valid exposition; advertise the agent itself.
    out =
        "# HELP splice_telemetry_up Telemetry agent is serving.\n"
        "# TYPE splice_telemetry_up gauge\n"
        "splice_telemetry_up 1\n";
  }
  return out;
}

TelemetryAgent& TelemetryAgent::global() {
  static TelemetryAgent instance;
  return instance;
}

bool TelemetryAgent::start(const TelemetryConfig& cfg, std::string* error) {
  if (running_) {
    if (error) *error = "telemetry agent already running";
    return false;
  }
  if (!cfg.any_sink()) {
    if (error) *error = "telemetry config has no sink";
    return false;
  }
  if (cfg.period_ms == 0) {
    if (error) *error = "telemetry period must be >= 1 ms";
    return false;
  }
  cfg_ = cfg;
  if (!cfg_.shm_path.empty()) {
    if (!writer_.create(cfg_.shm_path, cfg_.shm_capacity, error)) {
      return false;
    }
    writer_.set_period_ns(static_cast<std::uint64_t>(cfg_.period_ms) *
                          1'000'000ULL);
  }
  if (cfg_.tcp) {
    if (!scrape_.start(cfg_.tcp_port, [] { return render_scrape_exposition(); },
                       error)) {
      writer_.close();
      return false;
    }
    writer_.set_scrape_port(scrape_.port());
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  // Publish generation 2 immediately so an attach right after start sees
  // data instead of kEmpty for a full period.
  flush_now();
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
  return true;
}

void TelemetryAgent::run_loop() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_requested_) {
    wake_cv_.wait_for(lock, std::chrono::milliseconds(cfg_.period_ms),
                      [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    flush_now();
    lock.lock();
  }
}

bool TelemetryAgent::flush_now() {
  std::lock_guard<std::mutex> lock(flush_mu_);
  return flush_locked(clock_now_ns());
}

bool TelemetryAgent::flush_locked(std::uint64_t now_ns) {
  build_telemetry_document(ws_, now_ns);
  if (!writer_.valid()) return true;  // tcp-only agent: nothing to publish
  return writer_.publish(ws_.doc.data(), ws_.doc.size(), now_ns);
}

void TelemetryAgent::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
  // Final flush so the last recorded work is visible post-mortem, then
  // freeze: the segment file stays behind with a stopped heartbeat.
  flush_now();
  scrape_.stop();
  writer_.close();
  running_ = false;
}

}  // namespace splice::obs
