#include "obs/scrape_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace splice::obs {

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

ScrapeServer::~ScrapeServer() { stop(); }

bool ScrapeServer::start(std::uint16_t port, Handler handler,
                         std::string* error) {
  stop();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = errno_message("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error) *error = errno_message("bind");
    ::close(fd);
    return false;
  }
  if (::listen(fd, 8) != 0) {
    if (error) *error = errno_message("listen");
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error) *error = errno_message("getsockname");
    ::close(fd);
    return false;
  }
  if (::pipe(wake_fds_) != 0) {
    if (error) *error = errno_message("pipe");
    ::close(fd);
    wake_fds_[0] = wake_fds_[1] = -1;
    return false;
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  handler_ = std::move(handler);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void ScrapeServer::serve_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    serve_one(conn);
    ::close(conn);
  }
}

void ScrapeServer::serve_one(int fd) {
  // Read until the end of the request headers (or 4 KiB — scrape requests
  // are tiny). A short poll keeps a stalled client from wedging the loop.
  std::string request;
  char buf[1024];
  while (request.size() < 4096 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) return;
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    request.append(buf, static_cast<std::size_t>(r));
  }
  const std::size_t eol = request.find('\n');
  if (eol == std::string::npos) return;
  std::string line = request.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? line : line.substr(0, sp1);
  const std::string target =
      sp1 == std::string::npos
          ? ""
          : line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                          : sp2 - sp1 - 1);
  std::string status;
  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "method not allowed\n";
  } else if (target == "/metrics" || target == "/") {
    status = "200 OK";
    body = handler_ ? handler_() : "";
    // The Prometheus text exposition format version we emit.
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else {
    status = "404 Not Found";
    body = "only /metrics is served here\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  write_all(fd, response.data(), response.size());
}

void ScrapeServer::stop() {
  if (!thread_.joinable()) return;
  running_.store(false, std::memory_order_relaxed);
  const char byte = 'x';
  [[maybe_unused]] const ssize_t w = ::write(wake_fds_[1], &byte, 1);
  thread_.join();
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = -1;
  wake_fds_[0] = wake_fds_[1] = -1;
  port_ = 0;
  handler_ = nullptr;
}

}  // namespace splice::obs
