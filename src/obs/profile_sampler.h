// Wall-clock sampling profiler: a POSIX interval timer (SIGALRM) fires at a
// fixed rate and the signal handler captures a backtrace into storage that
// was preallocated at start() — the handler itself never allocates, locks,
// or calls anything beyond backtrace() and the shared obs clock (both
// async-signal-safe after priming). Samples are symbolized lazily at dump
// time (dladdr + __cxa_demangle) and folded into the standard flamegraph
// format, one "root;child;leaf count" line per unique stack.
//
// This is a *wall-clock* profiler of the whole process: SIGALRM is delivered
// to one thread chosen by the kernel (in practice whichever is running), so
// the sample distribution approximates where wall time goes. Sample
// timestamps come from the shared obs::Clock, aligning them with span and
// flight-recorder timelines.
//
// Under -DSPLICE_OBS=OFF start() refuses and the profiler is inert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#ifndef SPLICE_OBS
#define SPLICE_OBS 1
#endif

namespace splice::obs {

/// Process-wide sampling profiler. One instance; start/stop from one thread.
class ProfileSampler {
 public:
  static ProfileSampler& global();

  /// Arms the timer at `hz` samples/second (clamped to [1, 1000]) after
  /// preallocating sample storage and priming backtrace(). Returns false if
  /// already running or compiled out.
  bool start(int hz);

  /// Disarms the timer and restores the previous SIGALRM disposition.
  /// Captured samples remain available to folded()/sample_count().
  void stop();

  bool running() const noexcept;

  /// Samples captured so far (drops — buffer full — are not counted; see
  /// dropped()).
  std::size_t sample_count() const noexcept;

  /// Samples that arrived after the preallocated buffer filled.
  std::size_t dropped() const noexcept;

  /// Symbolized folded-stack dump ("a;b;c 42" lines, root first), sorted by
  /// descending count then lexicographic stack. Call after stop().
  std::string folded() const;

  /// Timestamp (shared obs clock) of sample `i`; for trace alignment.
  std::uint64_t sample_time_ns(std::size_t i) const noexcept;

  /// Discards captured samples (keeps the profiler stopped).
  void reset();

 private:
  ProfileSampler() = default;
};

}  // namespace splice::obs
