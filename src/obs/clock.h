// The one observability timebase. Spans (obs/span.h), flight-recorder
// events (obs/flight_recorder.h) and profiler samples (obs/profile_sampler.h)
// all read the same process-global Clock, so their timestamps align in the
// merged trace export and a test-injected ManualClock steers every layer at
// once.
//
// The global clock is stored as one relaxed atomic pointer: reading it is a
// single load, safe from any thread and from within signal handlers (the
// MonotonicClock path is one clock_gettime). Injection is test-only and must
// happen before the timed work starts — it is not synchronized against
// concurrent readers beyond the atomic pointer swap.
#pragma once

#include <atomic>
#include <cstdint>

namespace splice::obs {

/// Time source interface.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual std::uint64_t now_ns() const noexcept = 0;
};

/// Real time: std::chrono::steady_clock.
class MonotonicClock final : public Clock {
 public:
  std::uint64_t now_ns() const noexcept override;
};

/// Test clock: advances only when told to.
class ManualClock final : public Clock {
 public:
  void advance_ns(std::uint64_t ns) noexcept { now_ += ns; }
  /// Absolute (possibly backwards) jump — for non-monotonicity tests.
  void set_ns(std::uint64_t ns) noexcept { now_ = ns; }
  std::uint64_t now_ns() const noexcept override { return now_; }

 private:
  std::uint64_t now_ = 0;
};

/// The process-wide time source (defaults to a MonotonicClock).
const Clock& global_clock() noexcept;

/// Replaces the global time source (nullptr restores the monotonic clock).
/// Install before opening spans / recording events; not synchronized
/// against in-flight timed regions.
void set_global_clock(const Clock* clock) noexcept;

/// global_clock().now_ns() — the shared timestamp every obs layer uses.
std::uint64_t clock_now_ns() noexcept;

}  // namespace splice::obs
