#include "obs/export.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace splice::obs {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-' || c == '/') c = '_';
  }
  return out;
}

std::string hist_summary(const Histogram& h) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%lld sum=%.6g p50<=%.6g p99<=%.6g",
                h.total(), h.sum(), h.quantile_edge(0.5),
                h.quantile_edge(0.99));
  return buf;
}

}  // namespace

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  std::string s(buf, res.ptr);
  // Bare integers round-trip fine, but keep them unambiguous as doubles.
  if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
  return s;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

Table metrics_table(const MetricsSnapshot& snap) {
  Table t({"metric", "type", "value"});
  for (const CounterSample& c : snap.counters) {
    t.add_row({c.name, "counter", fmt_int(c.value)});
  }
  for (const GaugeSample& g : snap.gauges) {
    t.add_row({g.name, "gauge", fmt_double(g.value)});
  }
  for (const HistogramSample& h : snap.histograms) {
    t.add_row({h.name, "histogram", hist_summary(h.hist)});
  }
  return t;
}

Table spans_table(const SpanSnapshot& snap) {
  Table t({"phase", "count", "total_ms", "mean_us"});
  for (const SpanStat& s : snap.stats) {
    std::string label(static_cast<std::size_t>(s.depth) * 2, ' ');
    label += s.name;
    const double total_ms = static_cast<double>(s.total_ns) * 1e-6;
    const double mean_us =
        s.count == 0 ? 0.0
                     : static_cast<double>(s.total_ns) * 1e-3 /
                           static_cast<double>(s.count);
    t.add_row({std::move(label), fmt_int(s.count), fmt_double(total_ms, 3),
               fmt_double(mean_us, 3)});
  }
  return t;
}

std::string metrics_json_body(const MetricsSnapshot& snap) {
  std::string out = "\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_quote(snap.counters[i].name);
    out += ": ";
    out += std::to_string(snap.counters[i].value);
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_quote(snap.gauges[i].name);
    out += ": ";
    out += json_double(snap.gauges[i].value);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const Histogram& h = snap.histograms[i].hist;
    if (i != 0) out += ", ";
    out += json_quote(snap.histograms[i].name);
    out += ": {\"lo\": ";
    out += json_double(h.lo());
    out += ", \"hi\": ";
    out += json_double(h.hi());
    out += ", \"total\": ";
    out += std::to_string(h.total());
    out += ", \"sum\": ";
    out += json_double(h.sum());
    out += ", \"counts\": [";
    for (int b = 0; b < h.bins(); ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(h.count(b));
    }
    out += "]}";
  }
  out += "}";
  return out;
}

std::string spans_json_body(const SpanSnapshot& snap) {
  std::string out = "\"spans\": [";
  for (std::size_t i = 0; i < snap.stats.size(); ++i) {
    const SpanStat& s = snap.stats[i];
    if (i != 0) out += ", ";
    out += "{\"path\": ";
    out += json_quote(s.path);
    out += ", \"depth\": ";
    out += std::to_string(s.depth);
    out += ", \"count\": ";
    out += std::to_string(s.count);
    out += ", \"total_ns\": ";
    out += std::to_string(s.total_ns);
    out += "}";
  }
  out += "]";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap,
                          const SpanSnapshot& spans) {
  std::string out;
  for (const CounterSample& c : snap.counters) {
    const std::string name = "splice_" + sanitize(c.name) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    const std::string name = "splice_" + sanitize(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + json_double(g.value) + "\n";
  }
  for (const HistogramSample& hs : snap.histograms) {
    const Histogram& h = hs.hist;
    const std::string name = "splice_" + sanitize(hs.name);
    out += "# TYPE " + name + " histogram\n";
    for (int b = 0; b < h.bins(); ++b) {
      out += name + "_bucket{le=\"" + json_double(h.bin_hi(b)) + "\"} " +
             std::to_string(h.cumulative(b)) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.total()) + "\n";
    out += name + "_sum " + json_double(h.sum()) + "\n";
    out += name + "_count " + std::to_string(h.total()) + "\n";
  }
  for (const SpanStat& s : spans.stats) {
    out += "splice_span_seconds_sum{path=\"" + s.path + "\"} " +
           json_double(static_cast<double>(s.total_ns) * 1e-9) + "\n";
    out += "splice_span_seconds_count{path=\"" + s.path + "\"} " +
           std::to_string(s.count) + "\n";
  }
  return out;
}

}  // namespace splice::obs
