#include "obs/export.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>

namespace splice::obs {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-' || c == '/') c = '_';
  }
  return out;
}

// Prometheus label *values* keep their raw characters but must escape
// backslash, double-quote and newline (exposition-format rules) — distinct
// from sanitize(), which rewrites metric *names*.
std::string prom_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void prom_header(std::string& out, const std::string& name,
                 const char* type, const char* help) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

std::string hist_summary(const Histogram& h) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%lld sum=%.6g p50<=%.6g p99<=%.6g",
                h.total(), h.sum(), h.quantile_edge(0.5),
                h.quantile_edge(0.99));
  return buf;
}

}  // namespace

void json_append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(res.ptr - buf));
}

void json_append_i64(std::string& out, long long v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(res.ptr - buf));
}

void json_append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  const std::string_view s(buf, static_cast<std::size_t>(res.ptr - buf));
  out += s;
  // Bare integers round-trip fine, but keep them unambiguous as doubles.
  if (s.find_first_of(".eEn") == std::string_view::npos) out += ".0";
}

void json_append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_double(double v) {
  std::string out;
  json_append_double(out, v);
  return out;
}

std::string json_quote(const std::string& s) {
  std::string out;
  json_append_quoted(out, s);
  return out;
}

Table metrics_table(const MetricsSnapshot& snap) {
  Table t({"metric", "type", "value"});
  for (const CounterSample& c : snap.counters) {
    t.add_row({c.name, "counter", fmt_int(c.value)});
  }
  for (const GaugeSample& g : snap.gauges) {
    t.add_row({g.name, "gauge", fmt_double(g.value)});
  }
  for (const HistogramSample& h : snap.histograms) {
    t.add_row({h.name, "histogram", hist_summary(h.hist)});
  }
  return t;
}

Table spans_table(const SpanSnapshot& snap) {
  Table t({"phase", "count", "total_ms", "mean_us"});
  for (const SpanStat& s : snap.stats) {
    std::string label(static_cast<std::size_t>(s.depth) * 2, ' ');
    label += s.name;
    const double total_ms = static_cast<double>(s.total_ns) * 1e-6;
    const double mean_us =
        s.count == 0 ? 0.0
                     : static_cast<double>(s.total_ns) * 1e-3 /
                           static_cast<double>(s.count);
    t.add_row({std::move(label), fmt_int(s.count), fmt_double(total_ms, 3),
               fmt_double(mean_us, 3)});
  }
  return t;
}

void metrics_json_append(std::string& out, const MetricsSnapshot& snap) {
  out += "\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) out += ", ";
    json_append_quoted(out, snap.counters[i].name);
    out += ": ";
    json_append_i64(out, snap.counters[i].value);
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i != 0) out += ", ";
    json_append_quoted(out, snap.gauges[i].name);
    out += ": ";
    json_append_double(out, snap.gauges[i].value);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const Histogram& h = snap.histograms[i].hist;
    if (i != 0) out += ", ";
    json_append_quoted(out, snap.histograms[i].name);
    out += ": {\"lo\": ";
    json_append_double(out, h.lo());
    out += ", \"hi\": ";
    json_append_double(out, h.hi());
    out += ", \"total\": ";
    json_append_i64(out, h.total());
    out += ", \"sum\": ";
    json_append_double(out, h.sum());
    out += ", \"counts\": [";
    for (int b = 0; b < h.bins(); ++b) {
      if (b != 0) out += ", ";
      json_append_i64(out, h.count(b));
    }
    out += "]}";
  }
  out += "}";
}

std::string metrics_json_body(const MetricsSnapshot& snap) {
  std::string out;
  metrics_json_append(out, snap);
  return out;
}

std::string spans_json_body(const SpanSnapshot& snap) {
  std::string out = "\"spans\": [";
  for (std::size_t i = 0; i < snap.stats.size(); ++i) {
    const SpanStat& s = snap.stats[i];
    if (i != 0) out += ", ";
    out += "{\"path\": ";
    out += json_quote(s.path);
    out += ", \"depth\": ";
    out += std::to_string(s.depth);
    out += ", \"count\": ";
    out += std::to_string(s.count);
    out += ", \"total_ns\": ";
    out += std::to_string(s.total_ns);
    // Resource deltas appear only when the profiler captured something, so
    // non-profiled runs emit byte-identical span records.
    if (s.res.any()) {
      out += ", \"allocs\": ";
      out += std::to_string(s.res.allocs);
      out += ", \"frees\": ";
      out += std::to_string(s.res.frees);
      out += ", \"alloc_bytes\": ";
      out += std::to_string(s.res.alloc_bytes);
      out += ", \"heap_peak_bytes\": ";
      out += std::to_string(s.res.peak_bytes);
      if (s.res.hw_valid) {
        out += ", \"cycles\": ";
        out += std::to_string(s.res.cycles);
        out += ", \"instructions\": ";
        out += std::to_string(s.res.instructions);
        out += ", \"cache_misses\": ";
        out += std::to_string(s.res.cache_misses);
        out += ", \"branch_misses\": ";
        out += std::to_string(s.res.branch_misses);
        out += ", \"ipc\": ";
        out += json_double(s.res.cycles > 0
                               ? static_cast<double>(s.res.instructions) /
                                     static_cast<double>(s.res.cycles)
                               : 0.0);
      }
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap,
                          const SpanSnapshot& spans) {
  std::string out;
  for (const CounterSample& c : snap.counters) {
    const std::string name = "splice_" + sanitize(c.name) + "_total";
    prom_header(out, name, "counter", "Cumulative event count.");
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    const std::string name = "splice_" + sanitize(g.name);
    prom_header(out, name, "gauge", "Last-set value.");
    out += name + " " + json_double(g.value) + "\n";
  }
  for (const HistogramSample& hs : snap.histograms) {
    const Histogram& h = hs.hist;
    const std::string name = "splice_" + sanitize(hs.name);
    prom_header(out, name, "histogram", "Fixed-bin value distribution.");
    // Finite buckets stop below the top bin: samples past `hi` are clamped
    // into the last bin (util/histogram.h), so a le="hi" bucket would
    // falsely claim them as <= hi. The +Inf bucket covers the last bin —
    // cumulative counts stay truthful and _count == +Inf by construction.
    // (Under-range clamping into bin 0 is safe: those samples really are
    // below bin 0's upper edge.)
    for (int b = 0; b + 1 < h.bins(); ++b) {
      out += name + "_bucket{le=\"" + json_double(h.bin_hi(b)) + "\"} " +
             std::to_string(h.cumulative(b)) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.total()) + "\n";
    out += name + "_sum " + json_double(h.sum()) + "\n";
    out += name + "_count " + std::to_string(h.total()) + "\n";
  }
  if (!spans.stats.empty()) {
    prom_header(out, "splice_span_seconds", "summary",
                "Wall time spent inside each phase span.");
  }
  for (const SpanStat& s : spans.stats) {
    const std::string label = "{path=\"" + prom_label_escape(s.path) + "\"}";
    out += "splice_span_seconds_sum" + label + " " +
           json_double(static_cast<double>(s.total_ns) * 1e-9) + "\n";
    out += "splice_span_seconds_count" + label + " " +
           std::to_string(s.count) + "\n";
  }
  // Resource-attribution series (profiler enabled): unit-suffixed names
  // per exposition-format conventions, one labeled sample per span path.
  bool any_alloc = false;
  bool any_hw = false;
  for (const SpanStat& s : spans.stats) {
    any_alloc = any_alloc || s.res.any();
    any_hw = any_hw || s.res.hw_valid;
  }
  if (any_alloc) {
    prom_header(out, "splice_span_allocations_total", "counter",
                "Heap allocations performed inside the span.");
    prom_header(out, "splice_span_alloc_bytes_total", "counter",
                "Usable bytes allocated inside the span.");
    prom_header(out, "splice_span_heap_peak_bytes", "gauge",
                "Peak live-heap growth above span entry.");
    for (const SpanStat& s : spans.stats) {
      if (!s.res.any()) continue;
      const std::string label =
          "{path=\"" + prom_label_escape(s.path) + "\"}";
      out += "splice_span_allocations_total" + label + " " +
             std::to_string(s.res.allocs) + "\n";
      out += "splice_span_alloc_bytes_total" + label + " " +
             std::to_string(s.res.alloc_bytes) + "\n";
      out += "splice_span_heap_peak_bytes" + label + " " +
             std::to_string(s.res.peak_bytes) + "\n";
    }
  }
  if (any_hw) {
    prom_header(out, "splice_span_cpu_cycles_total", "counter",
                "CPU cycles retired inside the span (perf tier).");
    prom_header(out, "splice_span_instructions_total", "counter",
                "Instructions retired inside the span (perf tier).");
    prom_header(out, "splice_span_cache_misses_total", "counter",
                "Last-level cache misses inside the span (perf tier).");
    prom_header(out, "splice_span_branch_misses_total", "counter",
                "Branch mispredictions inside the span (perf tier).");
    prom_header(out, "splice_span_ipc", "gauge",
                "Instructions per cycle over the span's lifetime.");
    for (const SpanStat& s : spans.stats) {
      if (!s.res.hw_valid) continue;
      const std::string label =
          "{path=\"" + prom_label_escape(s.path) + "\"}";
      out += "splice_span_cpu_cycles_total" + label + " " +
             std::to_string(s.res.cycles) + "\n";
      out += "splice_span_instructions_total" + label + " " +
             std::to_string(s.res.instructions) + "\n";
      out += "splice_span_cache_misses_total" + label + " " +
             std::to_string(s.res.cache_misses) + "\n";
      out += "splice_span_branch_misses_total" + label + " " +
             std::to_string(s.res.branch_misses) + "\n";
      out += "splice_span_ipc" + label + " " +
             json_double(s.res.cycles > 0
                             ? static_cast<double>(s.res.instructions) /
                                   static_cast<double>(s.res.cycles)
                             : 0.0) +
             "\n";
    }
  }
  return out;
}

namespace {

/// Splits a sample line into (name, labels-body, value token). Returns
/// false on lines that cannot be split that way.
bool split_sample(std::string_view line, std::string_view& name,
                  std::string_view& labels, std::string_view& value) {
  const std::size_t brace = line.find('{');
  const std::size_t space = line.find(' ');
  if (brace != std::string_view::npos &&
      (space == std::string_view::npos || brace < space)) {
    const std::size_t close = line.find('}', brace);
    if (close == std::string_view::npos) return false;
    name = line.substr(0, brace);
    labels = line.substr(brace + 1, close - brace - 1);
    std::size_t v = close + 1;
    while (v < line.size() && line[v] == ' ') ++v;
    value = line.substr(v);
  } else {
    if (space == std::string_view::npos) return false;
    name = line.substr(0, space);
    labels = {};
    std::size_t v = space;
    while (v < line.size() && line[v] == ' ') ++v;
    value = line.substr(v);
  }
  return !name.empty() && !value.empty();
}

bool parse_number(std::string_view token, double& out) {
  if (token == "+Inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  const std::string s(token);
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

/// Removes the le="..." pair from a label body so buckets of one series
/// group under one key regardless of their edges.
std::string labels_without_le(std::string_view labels, std::string& le_out) {
  std::string key;
  std::size_t pos = 0;
  while (pos < labels.size()) {
    std::size_t end = labels.find(',', pos);
    if (end == std::string_view::npos) end = labels.size();
    const std::string_view pair = labels.substr(pos, end - pos);
    if (pair.substr(0, 4) == "le=\"") {
      le_out = std::string(pair.substr(4, pair.size() - 5));
    } else if (!pair.empty()) {
      if (!key.empty()) key += ',';
      key += pair;
    }
    pos = end + 1;
  }
  return key;
}

}  // namespace

bool prometheus_lint(const std::string& exposition, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  std::map<std::string, std::string> family_type;
  struct BucketSeries {
    std::vector<double> edges;
    std::vector<double> counts;
  };
  // Keyed by family + "|" + labels-minus-le so multi-labeled histograms
  // (none today, but the format allows them) validate per series.
  std::map<std::string, BucketSeries> bucket_series;
  std::map<std::string, double> count_samples;
  std::size_t lineno = 0;
  std::size_t samples = 0;
  std::size_t pos = 0;
  while (pos <= exposition.size()) {
    std::size_t eol = exposition.find('\n', pos);
    if (eol == std::string::npos) eol = exposition.size();
    const std::string_view line(exposition.data() + pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.substr(0, 7) == "# TYPE ") {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          return fail("malformed # TYPE line" + where);
        }
        family_type[std::string(rest.substr(0, sp))] =
            std::string(rest.substr(sp + 1));
      }
      continue;
    }
    std::string_view name, labels, value_token;
    if (!split_sample(line, name, labels, value_token)) {
      return fail("unparsable sample line" + where);
    }
    double value = 0.0;
    if (!parse_number(value_token, value)) {
      return fail("unparsable sample value '" + std::string(value_token) +
                  "'" + where);
    }
    ++samples;
    // Attribute the sample to a #TYPE'd family: exact name, or a
    // histogram/summary component suffix of a typed base family.
    const std::string sname(name);
    std::string family;
    auto typed = [&](const std::string& f) {
      return family_type.find(f) != family_type.end();
    };
    auto strip = [&](const char* suffix) -> std::string {
      const std::size_t n = std::string(suffix).size();
      if (sname.size() > n && sname.compare(sname.size() - n, n, suffix) == 0) {
        return sname.substr(0, sname.size() - n);
      }
      return {};
    };
    if (typed(sname)) {
      family = sname;
    } else {
      const std::string bucket_base = strip("_bucket");
      const std::string sum_base = strip("_sum");
      const std::string count_base = strip("_count");
      if (!bucket_base.empty() && typed(bucket_base) &&
          family_type[bucket_base] == "histogram") {
        family = bucket_base;
      } else if (!sum_base.empty() && typed(sum_base) &&
                 (family_type[sum_base] == "histogram" ||
                  family_type[sum_base] == "summary")) {
        family = sum_base;
      } else if (!count_base.empty() && typed(count_base) &&
                 (family_type[count_base] == "histogram" ||
                  family_type[count_base] == "summary")) {
        family = count_base;
      } else {
        return fail("sample '" + sname + "' belongs to no # TYPE'd family" +
                    where);
      }
    }
    if (family_type[family] != "histogram") continue;
    std::string le;
    const std::string series_key =
        family + "|" + labels_without_le(labels, le);
    if (sname.size() > 7 &&
        sname.compare(sname.size() - 7, 7, "_bucket") == 0) {
      if (le.empty()) {
        return fail("histogram bucket without le label" + where);
      }
      double edge = 0.0;
      if (!parse_number(le, edge)) {
        return fail("unparsable le edge '" + le + "'" + where);
      }
      BucketSeries& bs = bucket_series[series_key];
      if (!bs.edges.empty() && edge <= bs.edges.back()) {
        return fail("histogram '" + family +
                    "' bucket edges not strictly increasing" + where);
      }
      if (!bs.counts.empty() && value < bs.counts.back()) {
        return fail("histogram '" + family +
                    "' cumulative counts decrease" + where);
      }
      bs.edges.push_back(edge);
      bs.counts.push_back(value);
    } else if (sname.size() > 6 &&
               sname.compare(sname.size() - 6, 6, "_count") == 0) {
      count_samples[series_key] = value;
    }
  }
  if (samples == 0) return fail("exposition contains no samples");
  for (const auto& [key, bs] : bucket_series) {
    const std::string family = key.substr(0, key.find('|'));
    if (!std::isinf(bs.edges.back())) {
      return fail("histogram '" + family + "' last bucket is not le=\"+Inf\"");
    }
    const auto count = count_samples.find(key);
    if (count == count_samples.end()) {
      return fail("histogram '" + family + "' has buckets but no _count");
    }
    if (bs.counts.back() != count->second) {
      return fail("histogram '" + family + "' +Inf bucket != _count");
    }
  }
  if (error) error->clear();
  return true;
}

}  // namespace splice::obs
