#include "obs/export.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace splice::obs {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-' || c == '/') c = '_';
  }
  return out;
}

// Prometheus label *values* keep their raw characters but must escape
// backslash, double-quote and newline (exposition-format rules) — distinct
// from sanitize(), which rewrites metric *names*.
std::string prom_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void prom_header(std::string& out, const std::string& name,
                 const char* type, const char* help) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

std::string hist_summary(const Histogram& h) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%lld sum=%.6g p50<=%.6g p99<=%.6g",
                h.total(), h.sum(), h.quantile_edge(0.5),
                h.quantile_edge(0.99));
  return buf;
}

}  // namespace

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  std::string s(buf, res.ptr);
  // Bare integers round-trip fine, but keep them unambiguous as doubles.
  if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
  return s;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

Table metrics_table(const MetricsSnapshot& snap) {
  Table t({"metric", "type", "value"});
  for (const CounterSample& c : snap.counters) {
    t.add_row({c.name, "counter", fmt_int(c.value)});
  }
  for (const GaugeSample& g : snap.gauges) {
    t.add_row({g.name, "gauge", fmt_double(g.value)});
  }
  for (const HistogramSample& h : snap.histograms) {
    t.add_row({h.name, "histogram", hist_summary(h.hist)});
  }
  return t;
}

Table spans_table(const SpanSnapshot& snap) {
  Table t({"phase", "count", "total_ms", "mean_us"});
  for (const SpanStat& s : snap.stats) {
    std::string label(static_cast<std::size_t>(s.depth) * 2, ' ');
    label += s.name;
    const double total_ms = static_cast<double>(s.total_ns) * 1e-6;
    const double mean_us =
        s.count == 0 ? 0.0
                     : static_cast<double>(s.total_ns) * 1e-3 /
                           static_cast<double>(s.count);
    t.add_row({std::move(label), fmt_int(s.count), fmt_double(total_ms, 3),
               fmt_double(mean_us, 3)});
  }
  return t;
}

std::string metrics_json_body(const MetricsSnapshot& snap) {
  std::string out = "\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_quote(snap.counters[i].name);
    out += ": ";
    out += std::to_string(snap.counters[i].value);
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_quote(snap.gauges[i].name);
    out += ": ";
    out += json_double(snap.gauges[i].value);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const Histogram& h = snap.histograms[i].hist;
    if (i != 0) out += ", ";
    out += json_quote(snap.histograms[i].name);
    out += ": {\"lo\": ";
    out += json_double(h.lo());
    out += ", \"hi\": ";
    out += json_double(h.hi());
    out += ", \"total\": ";
    out += std::to_string(h.total());
    out += ", \"sum\": ";
    out += json_double(h.sum());
    out += ", \"counts\": [";
    for (int b = 0; b < h.bins(); ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(h.count(b));
    }
    out += "]}";
  }
  out += "}";
  return out;
}

std::string spans_json_body(const SpanSnapshot& snap) {
  std::string out = "\"spans\": [";
  for (std::size_t i = 0; i < snap.stats.size(); ++i) {
    const SpanStat& s = snap.stats[i];
    if (i != 0) out += ", ";
    out += "{\"path\": ";
    out += json_quote(s.path);
    out += ", \"depth\": ";
    out += std::to_string(s.depth);
    out += ", \"count\": ";
    out += std::to_string(s.count);
    out += ", \"total_ns\": ";
    out += std::to_string(s.total_ns);
    // Resource deltas appear only when the profiler captured something, so
    // non-profiled runs emit byte-identical span records.
    if (s.res.any()) {
      out += ", \"allocs\": ";
      out += std::to_string(s.res.allocs);
      out += ", \"frees\": ";
      out += std::to_string(s.res.frees);
      out += ", \"alloc_bytes\": ";
      out += std::to_string(s.res.alloc_bytes);
      out += ", \"heap_peak_bytes\": ";
      out += std::to_string(s.res.peak_bytes);
      if (s.res.hw_valid) {
        out += ", \"cycles\": ";
        out += std::to_string(s.res.cycles);
        out += ", \"instructions\": ";
        out += std::to_string(s.res.instructions);
        out += ", \"cache_misses\": ";
        out += std::to_string(s.res.cache_misses);
        out += ", \"branch_misses\": ";
        out += std::to_string(s.res.branch_misses);
        out += ", \"ipc\": ";
        out += json_double(s.res.cycles > 0
                               ? static_cast<double>(s.res.instructions) /
                                     static_cast<double>(s.res.cycles)
                               : 0.0);
      }
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap,
                          const SpanSnapshot& spans) {
  std::string out;
  for (const CounterSample& c : snap.counters) {
    const std::string name = "splice_" + sanitize(c.name) + "_total";
    prom_header(out, name, "counter", "Cumulative event count.");
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    const std::string name = "splice_" + sanitize(g.name);
    prom_header(out, name, "gauge", "Last-set value.");
    out += name + " " + json_double(g.value) + "\n";
  }
  for (const HistogramSample& hs : snap.histograms) {
    const Histogram& h = hs.hist;
    const std::string name = "splice_" + sanitize(hs.name);
    prom_header(out, name, "histogram", "Fixed-bin value distribution.");
    // Finite buckets stop below the top bin: samples past `hi` are clamped
    // into the last bin (util/histogram.h), so a le="hi" bucket would
    // falsely claim them as <= hi. The +Inf bucket covers the last bin —
    // cumulative counts stay truthful and _count == +Inf by construction.
    // (Under-range clamping into bin 0 is safe: those samples really are
    // below bin 0's upper edge.)
    for (int b = 0; b + 1 < h.bins(); ++b) {
      out += name + "_bucket{le=\"" + json_double(h.bin_hi(b)) + "\"} " +
             std::to_string(h.cumulative(b)) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.total()) + "\n";
    out += name + "_sum " + json_double(h.sum()) + "\n";
    out += name + "_count " + std::to_string(h.total()) + "\n";
  }
  if (!spans.stats.empty()) {
    prom_header(out, "splice_span_seconds", "summary",
                "Wall time spent inside each phase span.");
  }
  for (const SpanStat& s : spans.stats) {
    const std::string label = "{path=\"" + prom_label_escape(s.path) + "\"}";
    out += "splice_span_seconds_sum" + label + " " +
           json_double(static_cast<double>(s.total_ns) * 1e-9) + "\n";
    out += "splice_span_seconds_count" + label + " " +
           std::to_string(s.count) + "\n";
  }
  // Resource-attribution series (profiler enabled): unit-suffixed names
  // per exposition-format conventions, one labeled sample per span path.
  bool any_alloc = false;
  bool any_hw = false;
  for (const SpanStat& s : spans.stats) {
    any_alloc = any_alloc || s.res.any();
    any_hw = any_hw || s.res.hw_valid;
  }
  if (any_alloc) {
    prom_header(out, "splice_span_allocations_total", "counter",
                "Heap allocations performed inside the span.");
    prom_header(out, "splice_span_alloc_bytes_total", "counter",
                "Usable bytes allocated inside the span.");
    prom_header(out, "splice_span_heap_peak_bytes", "gauge",
                "Peak live-heap growth above span entry.");
    for (const SpanStat& s : spans.stats) {
      if (!s.res.any()) continue;
      const std::string label =
          "{path=\"" + prom_label_escape(s.path) + "\"}";
      out += "splice_span_allocations_total" + label + " " +
             std::to_string(s.res.allocs) + "\n";
      out += "splice_span_alloc_bytes_total" + label + " " +
             std::to_string(s.res.alloc_bytes) + "\n";
      out += "splice_span_heap_peak_bytes" + label + " " +
             std::to_string(s.res.peak_bytes) + "\n";
    }
  }
  if (any_hw) {
    prom_header(out, "splice_span_cpu_cycles_total", "counter",
                "CPU cycles retired inside the span (perf tier).");
    prom_header(out, "splice_span_instructions_total", "counter",
                "Instructions retired inside the span (perf tier).");
    prom_header(out, "splice_span_cache_misses_total", "counter",
                "Last-level cache misses inside the span (perf tier).");
    prom_header(out, "splice_span_branch_misses_total", "counter",
                "Branch mispredictions inside the span (perf tier).");
    prom_header(out, "splice_span_ipc", "gauge",
                "Instructions per cycle over the span's lifetime.");
    for (const SpanStat& s : spans.stats) {
      if (!s.res.hw_valid) continue;
      const std::string label =
          "{path=\"" + prom_label_escape(s.path) + "\"}";
      out += "splice_span_cpu_cycles_total" + label + " " +
             std::to_string(s.res.cycles) + "\n";
      out += "splice_span_instructions_total" + label + " " +
             std::to_string(s.res.instructions) + "\n";
      out += "splice_span_cache_misses_total" + label + " " +
             std::to_string(s.res.cache_misses) + "\n";
      out += "splice_span_branch_misses_total" + label + " " +
             std::to_string(s.res.branch_misses) + "\n";
      out += "splice_span_ipc" + label + " " +
             json_double(s.res.cycles > 0
                             ? static_cast<double>(s.res.instructions) /
                                   static_cast<double>(s.res.cycles)
                             : 0.0) +
             "\n";
    }
  }
  return out;
}

}  // namespace splice::obs
