#include "obs/causal.h"

#include <algorithm>

namespace splice::obs {

std::vector<CausalChain> correlate(std::span<const EpochRecord> epochs,
                                   std::span<const AnomalyRef> anomalies) {
  // Epoch-sorted view (indices into `epochs`): binary-search join plus an
  // ordered forward scan for the repair row.
  std::vector<std::size_t> order(epochs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return epochs[a].epoch < epochs[b].epoch;
                   });

  const auto find_epoch = [&](std::uint64_t epoch) -> std::ptrdiff_t {
    auto it = std::lower_bound(order.begin(), order.end(), epoch,
                               [&](std::size_t i, std::uint64_t e) {
                                 return epochs[i].epoch < e;
                               });
    if (it == order.end() || epochs[*it].epoch != epoch) return -1;
    return static_cast<std::ptrdiff_t>(it - order.begin());
  };

  std::vector<CausalChain> chains;
  chains.reserve(anomalies.size());
  for (std::size_t ai = 0; ai < anomalies.size(); ++ai) {
    const AnomalyRef& a = anomalies[ai];
    CausalChain c;
    c.anomaly_index = ai;
    c.fib_epoch = a.fib_epoch;
    const std::ptrdiff_t pos = a.fib_epoch != 0 ? find_epoch(a.fib_epoch) : -1;
    if (pos >= 0 && epochs[order[static_cast<std::size_t>(pos)]].has_publish) {
      const EpochRecord& e = epochs[order[static_cast<std::size_t>(pos)]];
      c.cause_found = true;
      c.cause_edge = e.edge;
      c.cause_down = !e.alive;
      c.publish_ts_ns = e.publish_ts_ns;
      if (e.has_latency) c.reconv_latency_ns = e.latency_ns;
      if (a.t_ns != 0 && a.t_ns >= e.publish_ts_ns) {
        c.has_lag = true;
        c.lag_ns = a.t_ns - e.publish_ts_ns;
      }
      // Repair: the first later publish that brings the same edge back.
      for (std::size_t j = static_cast<std::size_t>(pos) + 1;
           j < order.size(); ++j) {
        const EpochRecord& r = epochs[order[j]];
        if (!r.has_publish || r.edge != e.edge) continue;
        if (!r.alive) continue;
        c.repaired = true;
        c.repair_epoch = r.epoch;
        c.repair_ts_ns = r.publish_ts_ns;
        if (r.publish_ts_ns >= e.publish_ts_ns) {
          c.has_window = true;
          c.window_ns = r.publish_ts_ns - e.publish_ts_ns;
        }
        break;
      }
    }
    chains.push_back(c);
  }
  return chains;
}

std::string causal_chains_json(std::span<const CausalChain> chains) {
  const auto u64 = [](std::uint64_t v) {
    return "\"" + std::to_string(v) + "\"";
  };
  const auto b = [](bool v) { return v ? "true" : "false"; };
  std::string out = "[";
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const CausalChain& c = chains[i];
    if (i != 0) out += ",";
    out += "\n  {\"anomaly\": " + std::to_string(c.anomaly_index) +
           ", \"fib_epoch\": " + u64(c.fib_epoch) +
           ", \"cause_found\": " + b(c.cause_found) +
           ", \"cause_edge\": " + std::to_string(c.cause_edge) +
           ", \"cause_down\": " + b(c.cause_down) +
           ", \"publish_ts_ns\": " + u64(c.publish_ts_ns) +
           ", \"reconv_latency_ns\": " + u64(c.reconv_latency_ns) +
           ", \"has_lag\": " + b(c.has_lag) + ", \"lag_ns\": " + u64(c.lag_ns) +
           ", \"repaired\": " + b(c.repaired) +
           ", \"repair_epoch\": " + u64(c.repair_epoch) +
           ", \"has_window\": " + b(c.has_window) +
           ", \"window_ns\": " + u64(c.window_ns) + "}";
  }
  out += "\n]";
  return out;
}

}  // namespace splice::obs
