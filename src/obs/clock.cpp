#include "obs/clock.h"

#include <chrono>

namespace splice::obs {

namespace {

MonotonicClock& monotonic_instance() noexcept {
  static MonotonicClock clock;
  return clock;
}

std::atomic<const Clock*>& clock_slot() noexcept {
  // Starts null; null means "the monotonic clock". Keeping the sentinel
  // inside the accessor avoids any static-init ordering on first use.
  static std::atomic<const Clock*> slot{nullptr};
  return slot;
}

}  // namespace

std::uint64_t MonotonicClock::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const Clock& global_clock() noexcept {
  const Clock* clock = clock_slot().load(std::memory_order_relaxed);
  return clock != nullptr ? *clock : monotonic_instance();
}

void set_global_clock(const Clock* clock) noexcept {
  clock_slot().store(clock, std::memory_order_relaxed);
}

std::uint64_t clock_now_ns() noexcept { return global_clock().now_ns(); }

}  // namespace splice::obs
