// Phase spans: RAII scoped timers forming a lightweight trace tree over the
// control-plane and data-plane phases (slice builds, repair events, FlatFibs
// construction, analyzer CSR builds, trial batches).
//
// A span is cheap but not free (two clock reads + one map update in a
// per-thread buffer at destruction), so spans wrap *phases* — milliseconds
// of work — never per-packet or per-node inner loops. When the registry is
// disabled a span construct/destruct is one relaxed load + branch each.
//
// Each thread accumulates into its own buffer (registered once, cached in a
// thread_local), so closing a span never contends with other threads; the
// buffers are merged under the collector lock only at snapshot()/reset()
// time. The buffer's own mutex is uncontended on the record path — it
// exists so a concurrent snapshot can read a consistent map.
//
// Nesting is tracked per thread via a thread_local parent pointer, so spans
// opened on worker threads root their own trees (worker spans do not attach
// to a parent on a different thread). Aggregation is by name path: every
// (parent path, name) pair is one node accumulating count and total time.
//
// Timing comes from the shared obs::Clock timebase (obs/clock.h); tests
// install a ManualClock for deterministic durations. Span timings are
// wall-clock and therefore outside the metrics registry's bit-identical
// determinism contract — the tree *shape* and *counts* are deterministic for
// a deterministic workload, the nanoseconds are not.
//
// When the resource profiler (obs/resprof.h) is enabled, each span also
// carries a ResourceDelta — allocations, bytes, peak heap growth and (on the
// kPerf tier) hardware counters — accumulated per aggregate node. The delta
// is captured at the *start* of the destructor, so the span's own path/record
// bookkeeping allocations are attributed to the parent span, not the child.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/resprof.h"

namespace splice::obs {

/// One aggregated node of the span tree, in snapshot form.
struct SpanStat {
  std::string path;   ///< "/"-joined name path from the root, e.g. "a/b"
  std::string name;   ///< leaf name
  int depth = 0;      ///< 0 for roots
  long long count = 0;
  std::uint64_t total_ns = 0;
  ResourceDelta res;  ///< all-zero unless the resource profiler was enabled
};

/// Preorder flattening of the aggregate tree; siblings sorted by name.
struct SpanSnapshot {
  std::vector<SpanStat> stats;
};

/// Process-wide span aggregator. Spans report here on destruction.
class SpanCollector {
 public:
  static SpanCollector& global();

  /// Replaces the shared obs time source (nullptr restores the monotonic
  /// clock). Forwards to set_global_clock() — spans, flight-recorder events
  /// and profiler samples all follow. Install before opening spans; not
  /// synchronized against live spans.
  void set_clock(const Clock* clock) noexcept;
  const Clock& clock() const noexcept;

  /// Accumulates one completed span under `path` ("/"-joined names) into
  /// the calling thread's buffer — no cross-thread contention.
  void record(const std::string& path, int depth, std::uint64_t elapsed_ns);

  /// As above, also folding a resource delta into the aggregate node.
  void record(const std::string& path, int depth, std::uint64_t elapsed_ns,
              const ResourceDelta& res);

  /// Merges all per-thread buffers into one aggregate view.
  SpanSnapshot snapshot() const;
  void reset();

 private:
  SpanCollector();

  struct Node {
    long long count = 0;
    std::uint64_t total_ns = 0;
    ResourceDelta res;
  };

  /// One thread's accumulator. The mutex is uncontended on the record path
  /// (only the owning thread writes); snapshot/reset lock it briefly to
  /// read or clear a consistent map.
  struct Buffer {
    std::mutex mu;
    /// path -> aggregate. std::map keeps merge order deterministic; the
    /// preorder flattening falls out of the path sort.
    std::map<std::string, Node> nodes;
  };

  Buffer& local_buffer();

  mutable std::mutex mu_;  ///< guards buffer registration
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// RAII phase timer. Construct to open, destruct to close-and-record.
/// Inert (no clock reads, no registration) when the registry is disabled at
/// construction time.
class ObsSpan {
 public:
  explicit ObsSpan(const char* name);
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* name_;
  ObsSpan* parent_;
  std::uint64_t start_ns_;
  bool active_;
  bool profiled_;      ///< resource profiler was enabled at open
  ResourceMark mark_;  ///< open-side resource capture (when profiled_)

  static thread_local ObsSpan* t_current_;
};

}  // namespace splice::obs

#if SPLICE_OBS

#define SPLICE_OBS_CONCAT_INNER_(a, b) a##b
#define SPLICE_OBS_CONCAT_(a, b) SPLICE_OBS_CONCAT_INNER_(a, b)

/// Opens a span for the rest of the enclosing scope.
#define SPLICE_OBS_SPAN(name) \
  ::splice::obs::ObsSpan SPLICE_OBS_CONCAT_(splice_obs_span_, __LINE__)(name)

#else

#define SPLICE_OBS_SPAN(name) ((void)0)

#endif  // SPLICE_OBS
