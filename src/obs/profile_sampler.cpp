#include "obs/profile_sampler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "obs/clock.h"

#if defined(__linux__) && SPLICE_OBS
#define SPLICE_SAMPLER_IMPL 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#else
#define SPLICE_SAMPLER_IMPL 0
#endif

namespace splice::obs {

namespace {

#if SPLICE_SAMPLER_IMPL

constexpr std::size_t kMaxDepth = 64;
constexpr std::size_t kMaxSamples = 1 << 16;
// backtrace() inside the handler sees: the handler frame itself, the libc
// signal trampoline (__restore_rt), then the interrupted function.
constexpr int kHandlerFrames = 2;

struct Sample {
  std::uint32_t first = 0;  ///< index into g_frames
  std::uint16_t depth = 0;
  std::uint64_t time_ns = 0;
};

// All handler-visible state is plain data, allocated before the timer is
// armed and only released after it is disarmed.
std::vector<void*> g_frames;
std::vector<Sample> g_samples;
std::atomic<std::size_t> g_next{0};
std::atomic<std::size_t> g_dropped{0};
std::atomic<bool> g_running{false};
struct sigaction g_old_action;

void sampler_handler(int) {
  if (!g_running.load(std::memory_order_relaxed)) return;
  const std::size_t slot = g_next.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxSamples) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  void* raw[kMaxDepth + kHandlerFrames];
  const int got =
      backtrace(raw, static_cast<int>(kMaxDepth + kHandlerFrames));
  const int useful = got > kHandlerFrames ? got - kHandlerFrames : 0;
  Sample& s = g_samples[slot];
  s.first = static_cast<std::uint32_t>(slot * kMaxDepth);
  s.depth = static_cast<std::uint16_t>(useful);
  s.time_ns = clock_now_ns();
  for (int i = 0; i < useful; ++i) {
    g_frames[s.first + static_cast<std::size_t>(i)] =
        raw[i + kHandlerFrames];
  }
}

/// Best-effort name for a return address: dladdr symbol (demangled when it
/// mangles) or the raw address.
std::string symbolize(void* addr) {
  Dl_info info;
  if (dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // Folded format delimiters; keep frames single-token.
    for (char& c : name) {
      if (c == ';' || c == ' ' || c == '\n') c = '_';
    }
    return name;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx",
                reinterpret_cast<std::size_t>(addr));
  return buf;
}

#endif  // SPLICE_SAMPLER_IMPL

}  // namespace

ProfileSampler& ProfileSampler::global() {
  static ProfileSampler sampler;
  return sampler;
}

bool ProfileSampler::start(int hz) {
#if SPLICE_SAMPLER_IMPL
  if (g_running.load(std::memory_order_relaxed)) return false;
  hz = std::clamp(hz, 1, 1000);

  g_frames.assign(kMaxSamples * kMaxDepth, nullptr);
  g_samples.assign(kMaxSamples, Sample{});
  g_next.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);

  // Prime backtrace(): its first call may dlopen libgcc, which is not
  // async-signal-safe — do it here, outside the handler.
  void* prime[4];
  (void)backtrace(prime, 4);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &sampler_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGALRM, &action, &g_old_action) != 0) return false;

  g_running.store(true, std::memory_order_relaxed);

  itimerval timer;
  const long usec = 1000000L / hz;
  timer.it_interval.tv_sec = usec / 1000000L;
  timer.it_interval.tv_usec = usec % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_REAL, &timer, nullptr) != 0) {
    g_running.store(false, std::memory_order_relaxed);
    sigaction(SIGALRM, &g_old_action, nullptr);
    return false;
  }
  return true;
#else
  (void)hz;
  return false;
#endif
}

void ProfileSampler::stop() {
#if SPLICE_SAMPLER_IMPL
  if (!g_running.load(std::memory_order_relaxed)) return;
  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  setitimer(ITIMER_REAL, &timer, nullptr);
  g_running.store(false, std::memory_order_relaxed);
  sigaction(SIGALRM, &g_old_action, nullptr);
#endif
}

bool ProfileSampler::running() const noexcept {
#if SPLICE_SAMPLER_IMPL
  return g_running.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

std::size_t ProfileSampler::sample_count() const noexcept {
#if SPLICE_SAMPLER_IMPL
  return std::min(g_next.load(std::memory_order_relaxed), kMaxSamples);
#else
  return 0;
#endif
}

std::size_t ProfileSampler::dropped() const noexcept {
#if SPLICE_SAMPLER_IMPL
  return g_dropped.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

std::uint64_t ProfileSampler::sample_time_ns(std::size_t i) const noexcept {
#if SPLICE_SAMPLER_IMPL
  if (i >= sample_count()) return 0;
  return g_samples[i].time_ns;
#else
  (void)i;
  return 0;
#endif
}

std::string ProfileSampler::folded() const {
#if SPLICE_SAMPLER_IMPL
  const std::size_t n = sample_count();
  // Symbolize each unique address once.
  std::map<void*, std::string> names;
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = g_samples[i];
    for (std::uint16_t d = 0; d < s.depth; ++d) {
      void* addr = g_frames[s.first + d];
      if (names.find(addr) == names.end()) names[addr] = symbolize(addr);
    }
  }
  std::map<std::string, std::uint64_t> folded_counts;
  std::string stack;
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = g_samples[i];
    if (s.depth == 0) continue;
    stack.clear();
    // backtrace() is innermost-first; folded format wants root-first.
    for (int d = s.depth - 1; d >= 0; --d) {
      if (!stack.empty()) stack += ';';
      stack += names[g_frames[s.first + static_cast<std::size_t>(d)]];
    }
    ++folded_counts[stack];
  }
  std::vector<std::pair<std::string, std::uint64_t>> rows(
      folded_counts.begin(), folded_counts.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::string out;
  for (const auto& [key, count] : rows) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
#else
  return std::string();
#endif
}

void ProfileSampler::reset() {
#if SPLICE_SAMPLER_IMPL
  if (g_running.load(std::memory_order_relaxed)) return;
  g_next.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
#endif
}

}  // namespace splice::obs
