// Multi-window burn-rate SLO engine over the rolling series — the watchdog
// that turns the health layer's windowed counts into budget alerts while
// the live daemon runs.
//
// Two SLOs ship by default:
//   fwd_success    — fraction of forwarded packets delivered;
//   reconv_latency — fraction of FIB publishes whose reader-visible
//                    reconvergence latency stays under the threshold.
//
// Burn-rate math (the standard multi-window form). An objective o leaves
// an error budget b = 1 - o. Over a window, burn = error_rate / b: burn 1
// consumes the budget exactly at the sustainable rate; burn 10 exhausts a
// day's budget in 2.4 hours. One window alone is either too twitchy
// (short) or too slow to clear (long), so each SLO is judged on a fast and
// a slow window simultaneously and alerts only when BOTH exceed the
// threshold — the fast window proves the problem is current, the slow one
// proves it is material. kWarn at warn_burn, kPage at page_burn; state
// transitions emit kSloBurnWarn / kSloBurnPage flight-recorder events so
// pages land on the same timeline as the epoch ledger.
//
// Determinism: burns are doubles, but each is a single division of two
// window-total integers by a constant budget, so evaluations at a given
// clock reading are bit-identical at every writer thread count (same
// contract as obs/health.h, test-enforced).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace splice::obs {

struct SloConfig {
  double fwd_objective = 0.99;     ///< delivered fraction objective
  double reconv_objective = 0.99;  ///< in-threshold publish fraction
  std::uint64_t reconv_threshold_ns = 5'000'000;  ///< 5 ms reader-visible
  /// Slow window geometry; the fast window is the suffix of the same ring.
  WindowConfig slow{250'000'000, 24};  ///< 6 s
  int fast_buckets = 4;                ///< 1 s fast window
  double warn_burn = 2.0;
  double page_burn = 8.0;
};

enum class SloState : std::uint8_t { kOk = 0, kWarn = 1, kPage = 2 };

const char* slo_state_name(SloState s) noexcept;

/// One SLO's evaluation at a clock reading.
struct SloStatus {
  std::string name;
  double objective = 0.0;
  std::uint64_t fast_total = 0;
  std::uint64_t fast_errors = 0;
  std::uint64_t slow_total = 0;
  std::uint64_t slow_errors = 0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  /// 1 - slow_error_rate / budget: fraction of the slow window's budget
  /// still unspent (negative once overspent).
  double budget_remaining = 1.0;
  SloState state = SloState::kOk;
};

struct SloSnapshot {
  std::uint64_t now_ns = 0;
  std::vector<SloStatus> slos;
};

class SloEngine {
 public:
  static SloEngine& global();

  static bool enabled() noexcept {
#if SPLICE_OBS
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }
  static void set_enabled(bool on) noexcept {
#if SPLICE_OBS
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
  }

  /// Re-arms the engine with a config. Not thread-safe; call before
  /// enabling. Resets series and alert state.
  void configure(const SloConfig& cfg = {});
  const SloConfig& config() const noexcept { return cfg_; }

  // -- hot-path hooks (lock-free; caller checks enabled()) -----------------

  /// Batch of forwarding outcomes: `total` packets, `errors` not delivered.
  void record_fwd(std::uint64_t now_ns, std::uint64_t total,
                  std::uint64_t errors) noexcept;

  /// One FIB publish with its reader-visible reconvergence latency.
  void record_publish(std::uint64_t now_ns,
                      std::uint64_t latency_ns) noexcept;

  // -- evaluation ----------------------------------------------------------

  /// Evaluates both SLOs over the windows ending at `now_ns`, emits
  /// kSloBurnWarn / kSloBurnPage flight-recorder events on upward state
  /// transitions (per SLO), and returns the full status. Call from control
  /// paths (per churn event / refresh tick), not per packet.
  SloSnapshot evaluate(std::uint64_t now_ns);

  /// evaluate() without the alert edge-detection side effects (read-only;
  /// usable from const contexts and tooling).
  SloSnapshot peek(std::uint64_t now_ns) const;

  /// peek(), rebuilt into `out` reusing its storage — same values,
  /// allocation-free after the first call on a thread (the SLO names fit
  /// SSO; the bucket scratch is thread-local).
  void peek_into(std::uint64_t now_ns, SloSnapshot& out) const;

  void reset();

 private:
  SloEngine() = default;

  void status_into(std::size_t slo, std::uint64_t now_ns,
                   SloStatus& st) const;

#if SPLICE_OBS
  static std::atomic<bool> enabled_;
#endif

  SloConfig cfg_{};
  // Series index: 0 = fwd_success, 1 = reconv_latency.
  static constexpr std::size_t kSloCount = 2;
  RollingCounter totals_[kSloCount];
  RollingCounter errors_[kSloCount];
  SloState last_state_[kSloCount] = {SloState::kOk, SloState::kOk};
};

/// JSON object *body* (no braces) for the "spliceSlo" trace section and
/// the splice_top snapshot file.
std::string slo_json_body(const SloSnapshot& snap);

/// slo_json_body, appended in place (same bytes; allocation-free once
/// `out`'s capacity is warm).
void slo_json_append(std::string& out, const SloSnapshot& snap);

struct HealthSnapshot;  // obs/health.h

/// Standalone snapshot document for splice_top: the health and SLO bodies
/// under the same keys the trace export uses, so the tool reads a live
/// snapshot file and a full trace identically. A non-empty `links_body`
/// (obs/linkstats.h links_json_body) rides along as "spliceLinks".
///   {"spliceHealth": {...}, "spliceSlo": {...}[, "spliceLinks": {...}]}
std::string health_snapshot_document(const HealthSnapshot& health,
                                     const SloSnapshot& slo,
                                     const std::string& links_body = "");

}  // namespace splice::obs
