// Rolling time-windowed series: the streaming layer under obs/health.h and
// obs/slo.h. Where the metrics registry (obs/metrics.h) accumulates since
// reset, a rolling series answers "over the last W seconds" while the
// workload is still running — the signal a live watchdog needs.
//
// Shape. A series is a ring of fixed-width time buckets. Time is quantized
// into absolute bucket indices (now_ns / bucket_ns); bucket index `abs`
// lives in ring slot `abs % buckets`. A slot is one 64-bit atomic packing
// (abs-index tag << 32 | count): the write path is a single CAS loop that
// either adds to the current bucket (tag matches) or atomically
// resets-and-seeds the slot for the new bucket (tag stale). Packing the tag
// and count into one word is what makes rollover lock-free and lossless —
// with a separate epoch word, an increment can land between a winner's tag
// swap and its zeroing store and be silently lost. Reads reconstruct the
// window by checking each slot's tag against the expected absolute index;
// a stale slot simply reads as zero, so expiry needs no sweeper thread.
//
// Costs and limits. Writes are one relaxed load + one relaxed CAS per
// sample (uncontended: one cache line, same order as a registry
// fetch_add). Counts saturate at 2^32-1 per bucket; the tag aliases only
// after 2^32 buckets (decades at any realistic width). Timestamps come
// from the caller, who reads the injectable obs::Clock — a ManualClock
// makes every rollover test-deterministic.
//
// Determinism contract. For workloads whose samples are a pure function of
// the work items and whose clock advances only at quiescent points (the
// ManualClock discipline; gated benches advance per event on one thread),
// every writer sees the same bucket tag, integer adds commute, and
// sample()/total() at a given now_ns are bit-identical at every thread
// count. Like the registry, wall-clock (MonotonicClock) runs sit outside
// the gated contract.
//
// Compiled out: the hot-path hooks that feed these series (health/SLO) are
// gated on SPLICE_OBS like every other obs layer; the classes themselves
// stay available so tooling links.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.h"
#include "util/histogram.h"

#ifndef SPLICE_OBS
#define SPLICE_OBS 1
#endif

namespace splice::obs {

/// Geometry of one rolling window: `buckets` ring slots of `bucket_ns`
/// each, covering a window of bucket_ns * buckets.
struct WindowConfig {
  std::uint64_t bucket_ns = 250'000'000;  ///< 250 ms buckets
  int buckets = 8;                        ///< 2 s window

  std::uint64_t window_ns() const noexcept {
    return bucket_ns * static_cast<std::uint64_t>(buckets);
  }
};

namespace ts_detail {

inline constexpr std::uint64_t kCountMask = 0xffffffffULL;

inline std::uint64_t pack(std::uint64_t abs_bucket,
                          std::uint64_t count) noexcept {
  return (abs_bucket << 32) | count;
}

/// Adds `n` (saturating at 2^32-1) into `cell` for absolute bucket
/// `abs_bucket`, atomically resetting the slot first when it still holds an
/// older bucket's tally. Tag comparison is a signed 32-bit ordinal: a slot
/// is reseeded only for a *newer* bucket, so a sample timestamped before
/// the slot's current bucket (a regressing injectable clock, or a wall
/// clock stepping across threads) is dropped instead of destroying the
/// newer bucket's tally.
inline void cell_add(std::atomic<std::uint64_t>& cell,
                     std::uint64_t abs_bucket, std::uint64_t n) noexcept {
  const std::uint64_t tag = abs_bucket & kCountMask;
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t cur_tag = cur >> 32;
    std::uint64_t count;
    if (cur_tag == tag) {
      count = (cur & kCountMask) + n;
    } else if (static_cast<std::int32_t>(static_cast<std::uint32_t>(tag) -
                                         static_cast<std::uint32_t>(cur_tag)) >
               0) {
      count = n;
    } else {
      return;
    }
    if (count > kCountMask) count = kCountMask;
    if (cell.compare_exchange_weak(cur, pack(tag, count),
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

/// The slot's count if it holds `abs_bucket`'s tally, else 0 (stale or
/// never written).
inline std::uint64_t cell_read(const std::atomic<std::uint64_t>& cell,
                               std::uint64_t abs_bucket) noexcept {
  const std::uint64_t cur = cell.load(std::memory_order_relaxed);
  return (cur >> 32) == (abs_bucket & kCountMask) ? (cur & kCountMask) : 0;
}

}  // namespace ts_detail

/// `n` independent rolling counters sharing one WindowConfig in a single
/// flat allocation — the storage form for per-destination series, where a
/// vector of individually-allocated counters would fragment. Series i,
/// ring slot b lives at cells_[i * buckets + b].
class RollingSeriesArray {
 public:
  RollingSeriesArray() = default;

  /// Allocates n series. Not thread-safe; call before any writer starts.
  void configure(std::size_t n, const WindowConfig& cfg);

  std::size_t size() const noexcept { return n_; }
  const WindowConfig& config() const noexcept { return cfg_; }
  bool configured() const noexcept { return cells_ != nullptr; }

  /// Adds `v` to series `i`'s bucket containing `now_ns`. Lock-free;
  /// callers pass a clock_now_ns() (or ManualClock) timestamp.
  void add(std::size_t i, std::uint64_t now_ns, std::uint64_t v) noexcept {
    SPLICE_EXPECTS(i < n_);
    ts_detail::cell_add(cell(i, now_ns / cfg_.bucket_ns), now_ns / cfg_.bucket_ns,
                        v);
  }

  /// Sum of series `i` over the window ending at `now_ns` (the partial
  /// current bucket included).
  std::uint64_t total(std::size_t i, std::uint64_t now_ns) const noexcept;

  /// Per-bucket values, oldest first, for the window ending at `now_ns`.
  /// `out` is resized to cfg().buckets.
  void sample(std::size_t i, std::uint64_t now_ns,
              std::vector<std::uint64_t>& out) const;

  /// Zeroes every slot (not thread-safe against writers).
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t>& cell(std::size_t i,
                                   std::uint64_t abs_bucket) noexcept {
    return cells_[i * static_cast<std::size_t>(cfg_.buckets) +
                  static_cast<std::size_t>(
                      abs_bucket % static_cast<std::uint64_t>(cfg_.buckets))];
  }
  const std::atomic<std::uint64_t>& cell(
      std::size_t i, std::uint64_t abs_bucket) const noexcept {
    return cells_[i * static_cast<std::size_t>(cfg_.buckets) +
                  static_cast<std::size_t>(
                      abs_bucket % static_cast<std::uint64_t>(cfg_.buckets))];
  }

  WindowConfig cfg_{};
  std::size_t n_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

/// One rolling counter (a RollingSeriesArray of size 1).
class RollingCounter {
 public:
  RollingCounter() = default;
  explicit RollingCounter(const WindowConfig& cfg) { configure(cfg); }

  void configure(const WindowConfig& cfg) { arr_.configure(1, cfg); }
  const WindowConfig& config() const noexcept { return arr_.config(); }
  bool configured() const noexcept { return arr_.configured(); }

  void add(std::uint64_t now_ns, std::uint64_t v) noexcept {
    arr_.add(0, now_ns, v);
  }
  std::uint64_t total(std::uint64_t now_ns) const noexcept {
    return arr_.total(0, now_ns);
  }
  void sample(std::uint64_t now_ns, std::vector<std::uint64_t>& out) const {
    arr_.sample(0, now_ns, out);
  }
  void reset() noexcept { arr_.reset(); }

 private:
  RollingSeriesArray arr_;
};

/// Rolling fixed-bin histogram: per ring bucket, `bins` packed cells binned
/// with Histogram::bin_index (the one shared binning rule). merged() folds
/// the live window into a util Histogram for percentile queries; the sum is
/// reconstructed from bin midpoints (deterministic, approximate — rolling
/// percentiles never need the exact sum).
class RollingHistogram {
 public:
  RollingHistogram() = default;
  RollingHistogram(const WindowConfig& cfg, double lo, double hi, int bins) {
    configure(cfg, lo, hi, bins);
  }

  /// Not thread-safe; call before any writer starts.
  void configure(const WindowConfig& cfg, double lo, double hi, int bins);

  const WindowConfig& config() const noexcept { return cfg_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  int bins() const noexcept { return bins_; }

  void observe(std::uint64_t now_ns, double x) noexcept {
    const std::uint64_t abs = now_ns / cfg_.bucket_ns;
    const int bin = Histogram::bin_index(lo_, hi_, bins_, x);
    ts_detail::cell_add(cell(abs, bin), abs, 1);
  }

  /// The live window's distribution ending at `now_ns`.
  Histogram merged(std::uint64_t now_ns) const;

  /// merged(), rebuilt in place via Histogram::reset_shape — same bytes,
  /// no allocation once `out`'s bin storage is warm (the telemetry agent's
  /// steady-state publish path).
  void merged_into(std::uint64_t now_ns, Histogram& out) const;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t>& cell(std::uint64_t abs_bucket,
                                   int bin) noexcept {
    return cells_[static_cast<std::size_t>(
                      abs_bucket % static_cast<std::uint64_t>(cfg_.buckets)) *
                      static_cast<std::size_t>(bins_) +
                  static_cast<std::size_t>(bin)];
  }
  const std::atomic<std::uint64_t>& cell(std::uint64_t abs_bucket,
                                         int bin) const noexcept {
    return cells_[static_cast<std::size_t>(
                      abs_bucket % static_cast<std::uint64_t>(cfg_.buckets)) *
                      static_cast<std::size_t>(bins_) +
                  static_cast<std::size_t>(bin)];
  }

  WindowConfig cfg_{};
  double lo_ = 0.0;
  double hi_ = 1.0;
  int bins_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

}  // namespace splice::obs
