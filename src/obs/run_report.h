// RunReport: one self-describing telemetry document per bench/experiment
// run — the captured metrics snapshot and span tree plus run parameters —
// serializable as JSON (default), Prometheus text (".prom" paths), or an
// aligned text report.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace splice::obs {

struct RunReport {
  std::string name;  ///< e.g. the bench name
  /// Run parameters worth diffing (topology, trials, threads, seed, ...).
  std::vector<std::pair<std::string, std::string>> params;
  /// Build/host provenance (git SHA, compiler, flags, SPLICE_OBS state,
  /// thread count) — filled by capture() so archived reports are
  /// self-describing. Comparison tooling treats it as annotation, not data.
  std::vector<std::pair<std::string, std::string>> provenance;
  /// Process resource summary (resource_report(): tier, CPU seconds, RSS,
  /// faults) — empty unless the resource profiler was enabled. Like
  /// provenance, diff tooling treats it as noisy annotation, except alloc
  /// counts which gate exactly.
  std::vector<std::pair<std::string, std::string>> resources;
  MetricsSnapshot metrics;
  SpanSnapshot spans;

  /// Snapshots the global registry and span collector, and stamps
  /// build/host provenance (plus the resource summary and active resource
  /// tier when the profiler is enabled).
  static RunReport capture(std::string name);

  void add_param(std::string key, std::string value) {
    params.emplace_back(std::move(key), std::move(value));
  }

  /// {"report": name, "params": {..}, "provenance": {..},
  ///  ["resources": {..},] "counters": {..}, "gauges": {..},
  ///  "histograms": {..}, "spans": [..]}
  std::string to_json() const;
  std::string to_prometheus() const;
  /// metrics_table + spans_table, titled.
  std::string to_text() const;
};

/// Writes the report to `path`: Prometheus exposition if the path ends in
/// ".prom", JSON otherwise. Returns false on I/O failure.
bool write_run_report(const RunReport& report, const std::string& path);

}  // namespace splice::obs
