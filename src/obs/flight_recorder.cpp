#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>

#include "obs/clock.h"

namespace splice::obs {

namespace {

// Shared obs timebase — recorder events align with span timings and
// profiler samples in the merged trace, and a test-injected ManualClock
// steers all three at once.
std::uint64_t now_ns() noexcept { return clock_now_ns(); }

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

#if SPLICE_OBS
std::atomic<bool> FlightRecorder::enabled_{false};
#endif

// SPSC ring: the owning thread is the only producer (push_ advances head
// with a release store); drain() is the only consumer and holds the
// registry mutex, so two drains never race. Capacity is a power of two so
// the index reduce is a mask.
struct FlightRecorder::Ring {
  explicit Ring(std::size_t capacity, std::uint32_t tid)
      : mask(capacity - 1), tid(tid), slots(capacity) {}

  const std::size_t mask;
  const std::uint32_t tid;
  std::vector<RecorderEvent> slots;
  std::atomic<std::uint64_t> head{0};  ///< next write position (producer)
  std::atomic<std::uint64_t> tail{0};  ///< next read position (consumer)
  std::atomic<std::uint64_t> dropped{0};

  void push(RecorderEvent ev) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    // Acquire pairs with drain()'s release tail store: the slot at h must
    // not be overwritten before the consumer has copied it out.
    if (h - tail.load(std::memory_order_acquire) > mask) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ev.tid = tid;
    slots[h & mask] = ev;
    head.store(h + 1, std::memory_order_release);
  }
};

FlightRecorder::FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder instance;
  return instance;
}

void FlightRecorder::set_ring_capacity(std::size_t events) {
  ring_capacity_.store(round_up_pow2(std::max<std::size_t>(events, 8)),
                       std::memory_order_relaxed);
}

std::size_t FlightRecorder::ring_capacity() const noexcept {
  return ring_capacity_.load(std::memory_order_relaxed);
}

void FlightRecorder::set_walk_sample_every(std::uint64_t n) noexcept {
  walk_sample_every_.store(n, std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::walk_sample_every() const noexcept {
  return walk_sample_every_.load(std::memory_order_relaxed);
}

bool FlightRecorder::sample_walk(std::uint64_t walk_id) const noexcept {
  const std::uint64_t every = walk_sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return false;
  if (every == 1) return true;
  // One more mix so walk ids whose low bits correlate with (src, dst)
  // do not bias the sample; pure function of the id, never of the thread.
  return hash_mix(walk_id, 0x77ca1e5cull) % every == 0;
}

std::uint32_t FlightRecorder::intern(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

FlightRecorder::Ring& FlightRecorder::local_ring() {
  thread_local struct Slot {
    FlightRecorder* owner = nullptr;
    Ring* ring = nullptr;
  } slot;
  if (slot.owner != this) {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<Ring>(
        ring_capacity_.load(std::memory_order_relaxed),
        static_cast<std::uint32_t>(rings_.size())));
    slot.owner = this;
    slot.ring = rings_.back().get();
  }
  return *slot.ring;
}

void FlightRecorder::record(RecorderEvent ev) noexcept {
  if (!enabled()) return;
  local_ring().push(ev);
}

std::size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

RecorderSnapshot FlightRecorder::drain() {
  RecorderSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.names = names_;
  for (auto& ring : rings_) {
    const std::uint64_t t = ring->tail.load(std::memory_order_relaxed);
    // Acquire pairs with push()'s release head store: slot contents are
    // visible for every published index.
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    for (std::uint64_t i = t; i != h; ++i) {
      snap.events.push_back(ring->slots[i & ring->mask]);
    }
    ring->tail.store(h, std::memory_order_release);
    snap.dropped += ring->dropped.load(std::memory_order_relaxed);
  }
  return snap;
}

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) {
    ring->tail.store(ring->head.load(std::memory_order_acquire),
                     std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
  names_.clear();
}

void FlightRecorder::phase_begin(std::uint32_t name_id) noexcept {
  if (!enabled()) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kPhaseBegin);
  ev.key = name_id;
  ev.time_ns = now_ns();
  local_ring().push(ev);
}

void FlightRecorder::phase_end(std::uint32_t name_id) noexcept {
  if (!enabled()) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kPhaseEnd);
  ev.key = name_id;
  ev.time_ns = now_ns();
  local_ring().push(ev);
}

void FlightRecorder::spt_repair(std::uint32_t edge, std::uint32_t repaired,
                                std::uint32_t rebuilt,
                                std::uint32_t nodes_touched,
                                std::uint16_t untouched) noexcept {
  if (!enabled()) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kSptRepair);
  ev.key = edge;
  ev.time_ns = now_ns();
  ev.a = edge;
  ev.b = repaired;
  ev.c = rebuilt;
  ev.d = nodes_touched;
  ev.flags = untouched;
  local_ring().push(ev);
}

void FlightRecorder::trial_begin(std::uint32_t trial) noexcept {
  if (!enabled()) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kTrialBegin);
  ev.key = trial;
  ev.a = trial;
  ev.time_ns = now_ns();
  local_ring().push(ev);
}

void FlightRecorder::trial_end(std::uint32_t trial) noexcept {
  if (!enabled()) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kTrialEnd);
  ev.key = trial;
  ev.a = trial;
  ev.time_ns = now_ns();
  local_ring().push(ev);
}

void FlightRecorder::epoch_publish(std::uint64_t epoch, std::uint32_t edge,
                                   std::uint32_t dsts_patched,
                                   std::uint32_t trees_touched,
                                   bool alive) noexcept {
  if (!enabled()) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kEpochPublish);
  ev.key = epoch;
  ev.time_ns = now_ns();
  ev.a = edge;
  ev.b = dsts_patched;
  ev.c = trees_touched;
  ev.flags = alive ? 1 : 0;
  local_ring().push(ev);
}

void FlightRecorder::epoch_adopt(std::uint64_t epoch,
                                 std::uint32_t reader_slot) noexcept {
  if (!enabled()) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kEpochAdopt);
  ev.key = epoch;
  ev.time_ns = now_ns();
  ev.a = reader_slot;
  local_ring().push(ev);
}

void FlightRecorder::epoch_grace(std::uint64_t epoch, std::uint64_t latency_ns,
                                 std::uint64_t grace_spins) noexcept {
  if (!enabled()) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kEpochGrace);
  ev.key = epoch;
  ev.time_ns = now_ns();
  ev.a = static_cast<std::uint32_t>(latency_ns);
  ev.b = static_cast<std::uint32_t>(latency_ns >> 32);
  ev.c = static_cast<std::uint32_t>(
      grace_spins > 0xffffffffULL ? 0xffffffffULL : grace_spins);
  local_ring().push(ev);
}

void FlightRecorder::epoch_work(std::uint64_t epoch,
                                std::uint64_t work_ns) noexcept {
  if (!enabled()) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kEpochWork);
  ev.key = epoch;
  ev.time_ns = now_ns();
  ev.a = static_cast<std::uint32_t>(work_ns);
  ev.b = static_cast<std::uint32_t>(work_ns >> 32);
  local_ring().push(ev);
}

void FlightRecorder::slo_burn(bool page, std::uint32_t slo, double fast_burn,
                              double slow_burn) noexcept {
  if (!enabled()) return;
  const auto milli = [](double burn) {
    const double m = burn * 1000.0;
    if (m <= 0.0) return std::uint32_t{0};
    if (m >= 4294967295.0) return std::uint32_t{0xffffffffu};
    return static_cast<std::uint32_t>(m);
  };
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(page ? EventType::kSloBurnPage
                                            : EventType::kSloBurnWarn);
  ev.key = slo;
  ev.time_ns = now_ns();
  ev.a = milli(fast_burn);
  ev.b = milli(slow_burn);
  local_ring().push(ev);
}

void sort_deterministic(std::vector<RecorderEvent>& events) {
  const auto is_walk = [](const RecorderEvent& e) {
    return e.type >= static_cast<std::uint16_t>(EventType::kWalkBegin) &&
           e.type <= static_cast<std::uint16_t>(EventType::kWalkEnd);
  };
  std::stable_sort(events.begin(), events.end(),
                   [&](const RecorderEvent& x, const RecorderEvent& y) {
                     const bool wx = is_walk(x), wy = is_walk(y);
                     if (wx != wy) return wx < wy;
                     if (wx) {
                       if (x.key != y.key) return x.key < y.key;
                       return x.seq < y.seq;
                     }
                     if (x.time_ns != y.time_ns) return x.time_ns < y.time_ns;
                     if (x.tid != y.tid) return x.tid < y.tid;
                     return x.type < y.type;
                   });
}

// ---------------------------------------------------------------------------
// Sampled walk capture.
// ---------------------------------------------------------------------------

namespace {

struct WalkState {
  std::uint64_t id = 0;
  std::uint32_t seq = 0;
  std::uint32_t attempt = 0;
  bool armed = false;
};

thread_local WalkState t_walk;

}  // namespace

WalkScope::WalkScope(std::uint64_t walk_id) noexcept {
  prev_id_ = t_walk.id;
  prev_seq_ = t_walk.seq;
  prev_attempt_ = t_walk.attempt;
  prev_armed_ = t_walk.armed;
  auto& rec = FlightRecorder::global();
  armed_ = FlightRecorder::enabled() && rec.sample_walk(walk_id);
  t_walk.id = walk_id;
  t_walk.seq = 0;
  t_walk.attempt = 0;
  t_walk.armed = armed_;
}

WalkScope::~WalkScope() noexcept {
  t_walk.id = prev_id_;
  t_walk.seq = prev_seq_;
  t_walk.attempt = prev_attempt_;
  t_walk.armed = prev_armed_;
}

bool walk_capture_active() noexcept { return t_walk.armed; }

void walk_packet_begin(std::uint32_t src, std::uint32_t dst, std::uint32_t k,
                       std::uint32_t header_hops) noexcept {
  if (!t_walk.armed) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kWalkBegin);
  ev.key = t_walk.id;
  ev.seq = t_walk.seq++;
  ev.time_ns = now_ns();
  ev.flags = static_cast<std::uint16_t>(t_walk.attempt);
  ev.a = src;
  ev.b = dst;
  ev.c = k;
  ev.d = header_hops;
  FlightRecorder::global().record(ev);
}

void walk_hop(std::uint32_t node, std::uint32_t next, std::uint32_t slice,
              std::uint32_t edge, bool deflected,
              std::uint32_t bits_consumed) noexcept {
  if (!t_walk.armed) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kWalkHop);
  ev.key = t_walk.id;
  ev.seq = t_walk.seq++;
  ev.flags = static_cast<std::uint16_t>(
      (deflected ? kWalkFlagDeflected : 0u) |
      (bits_consumed << kWalkFlagBitsShift));
  ev.a = node;
  ev.b = slice;
  ev.c = next;
  ev.d = edge;
  FlightRecorder::global().record(ev);
}

void walk_packet_end(std::uint32_t outcome, std::uint32_t hops, double cost,
                     bool deflected) noexcept {
  if (!t_walk.armed) return;
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kWalkEnd);
  ev.key = t_walk.id;
  ev.seq = t_walk.seq++;
  ev.time_ns = now_ns();
  ev.flags = static_cast<std::uint16_t>(
      (deflected ? kWalkFlagDeflected : 0u) |
      (static_cast<std::uint32_t>(t_walk.attempt) << kWalkFlagBitsShift));
  ev.a = outcome;
  ev.b = hops;
  std::uint64_t cost_bits = 0;
  static_assert(sizeof(cost_bits) == sizeof(cost));
  std::memcpy(&cost_bits, &cost, sizeof(cost));
  ev.c = static_cast<std::uint32_t>(cost_bits >> 32);
  ev.d = static_cast<std::uint32_t>(cost_bits & 0xffffffffULL);
  FlightRecorder::global().record(ev);
  ++t_walk.attempt;
}

}  // namespace splice::obs
