#include "obs/resprof.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(__GLIBC__)
#include <malloc.h>
#endif

// The allocation hooks replace the global operator new/delete, which
// sanitizer runtimes also do — their interceptors own the allocator there,
// so the hooks bow out and alloc_hooks_compiled() reports false.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if SPLICE_OBS && defined(__GLIBC__) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__) && !__has_feature(address_sanitizer) &&  \
    !__has_feature(thread_sanitizer) && !__has_feature(memory_sanitizer)
#define SPLICE_RESPROF_HOOKS 1
#else
#define SPLICE_RESPROF_HOOKS 0
#endif

namespace splice::obs {

namespace {

// Plain thread_local, constant-initialized: the hooks may run before any
// dynamic initializer and must not themselves allocate.
thread_local constinit AllocCounters t_alloc;

constinit std::atomic<int> g_tier{static_cast<int>(ResourceTier::kOff)};

// ---------------------------------------------------------------------------
// perf_event_open counter groups (Linux only; tier kPerf).
// ---------------------------------------------------------------------------

#if defined(__linux__)

constexpr std::uint64_t kPerfConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};

int perf_open_one(std::uint64_t config, int group_fd) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

/// One per-thread group of the four hardware counters, read in a single
/// syscall on the leader. Closed when the thread exits.
struct PerfGroup {
  int leader = -1;
  int fds[4] = {-1, -1, -1, -1};
  bool tried = false;

  bool open() noexcept {
    tried = true;
    for (int i = 0; i < 4; ++i) {
      fds[i] = perf_open_one(kPerfConfigs[i], i == 0 ? -1 : leader);
      if (fds[i] < 0) {
        close();
        return false;
      }
      if (i == 0) leader = fds[0];
    }
    ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
  }

  void close() noexcept {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    leader = -1;
  }

  bool read_counters(std::uint64_t out[4]) noexcept {
    if (leader < 0 && !tried) {
      if (!open()) return false;
    }
    if (leader < 0) return false;
    struct {
      std::uint64_t nr;
      std::uint64_t values[4];
    } buf;
    const ssize_t got = ::read(leader, &buf, sizeof(buf));
    if (got < static_cast<ssize_t>(sizeof(std::uint64_t) * 5) || buf.nr != 4)
      return false;
    for (int i = 0; i < 4; ++i) out[i] = buf.values[i];
    return true;
  }

  ~PerfGroup() { close(); }
};

thread_local PerfGroup t_perf;

/// Probe: can this process open a counter group, and does it actually
/// count? (Some VMs let the open succeed against a dead PMU.)
bool perf_probe() noexcept {
  PerfGroup probe;
  if (!probe.open()) return false;
  // Burn a few thousand cycles so a live PMU cannot legitimately read 0.
  volatile std::uint64_t sink = 1;
  for (int i = 0; i < 4096; ++i) sink = sink * 6364136223846793005ULL + 1;
  std::uint64_t counts[4] = {0, 0, 0, 0};
  const bool ok = probe.read_counters(counts) && counts[0] > 0;
  return ok;
}

#endif  // __linux__

ResourceTier probe_tier() noexcept {
  if (const char* forced = std::getenv("SPLICE_RESPROF_TIER")) {
    if (std::strcmp(forced, "rusage") == 0) return ResourceTier::kRusage;
#if defined(__linux__)
    if (std::strcmp(forced, "perf") == 0) return ResourceTier::kPerf;
#endif
  }
#if defined(__linux__)
  if (perf_probe()) return ResourceTier::kPerf;
#endif
  return ResourceTier::kRusage;
}

}  // namespace

#if SPLICE_OBS
std::atomic<bool> ResourceProfiler::enabled_{false};
#endif

const char* to_string(ResourceTier tier) noexcept {
  switch (tier) {
    case ResourceTier::kPerf:
      return "perf";
    case ResourceTier::kRusage:
      return "rusage";
    case ResourceTier::kOff:
      break;
  }
  return "off";
}

bool alloc_hooks_compiled() noexcept { return SPLICE_RESPROF_HOOKS != 0; }

const AllocCounters& thread_alloc_counters() noexcept { return t_alloc; }

void ResourceProfiler::set_enabled(bool on) {
#if SPLICE_OBS
  if (on && g_tier.load(std::memory_order_relaxed) ==
                static_cast<int>(ResourceTier::kOff)) {
    g_tier.store(static_cast<int>(probe_tier()), std::memory_order_relaxed);
  }
  enabled_.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

ResourceTier ResourceProfiler::tier() noexcept {
  if (!enabled()) return ResourceTier::kOff;
  return static_cast<ResourceTier>(g_tier.load(std::memory_order_relaxed));
}

void ResourceProfiler::reprobe_tier() {
#if SPLICE_OBS
  g_tier.store(static_cast<int>(probe_tier()), std::memory_order_relaxed);
#endif
}

void ResourceProfiler::mark(ResourceMark& m) noexcept {
  AllocCounters& c = t_alloc;
  m.allocs = c.allocs;
  m.frees = c.frees;
  m.bytes = c.bytes;
  m.live = c.live_bytes;
  m.saved_peak = c.peak_bytes;
  c.peak_bytes = c.live_bytes;  // open this region's watermark
  m.hw_valid = false;
#if defined(__linux__)
  if (tier() == ResourceTier::kPerf) m.hw_valid = t_perf.read_counters(m.hw);
#endif
}

ResourceDelta ResourceProfiler::delta(const ResourceMark& m) noexcept {
  ResourceDelta d;
  AllocCounters& c = t_alloc;
  d.allocs = static_cast<long long>(c.allocs - m.allocs);
  d.frees = static_cast<long long>(c.frees - m.frees);
  d.alloc_bytes = static_cast<long long>(c.bytes - m.bytes);
  const long long peak = c.peak_bytes - m.live;
  d.peak_bytes = peak > 0 ? peak : 0;
  // Restore the enclosing region's watermark (it must also see any peak
  // reached inside this region).
  c.peak_bytes = m.saved_peak > c.peak_bytes ? m.saved_peak : c.peak_bytes;
#if defined(__linux__)
  if (m.hw_valid) {
    std::uint64_t now[4];
    if (t_perf.read_counters(now)) {
      d.hw_valid = true;
      d.cycles = static_cast<long long>(now[0] - m.hw[0]);
      d.instructions = static_cast<long long>(now[1] - m.hw[1]);
      d.cache_misses = static_cast<long long>(now[2] - m.hw[2]);
      d.branch_misses = static_cast<long long>(now[3] - m.hw[3]);
    }
  }
#endif
  return d;
}

ProcessResources capture_process_resources() noexcept {
  ProcessResources out;
#if defined(__linux__)
  rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    out.ok = true;
    out.user_seconds = static_cast<double>(ru.ru_utime.tv_sec) +
                       static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    out.sys_seconds = static_cast<double>(ru.ru_stime.tv_sec) +
                      static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
    out.max_rss_bytes = static_cast<long long>(ru.ru_maxrss) * 1024;
    out.minor_faults = static_cast<long long>(ru.ru_minflt);
    out.major_faults = static_cast<long long>(ru.ru_majflt);
  }
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long long pages_total = 0, pages_resident = 0;
    if (std::fscanf(f, "%lld %lld", &pages_total, &pages_resident) == 2) {
      out.current_rss_bytes =
          pages_resident * static_cast<long long>(sysconf(_SC_PAGESIZE));
    }
    std::fclose(f);
  }
#endif
  return out;
}

std::vector<std::pair<std::string, std::string>> resource_report() {
  std::vector<std::pair<std::string, std::string>> rows;
  if (!ResourceProfiler::enabled()) return rows;
  rows.emplace_back("tier", to_string(ResourceProfiler::tier()));
  rows.emplace_back("alloc_hooks",
                    alloc_hooks_compiled() ? "compiled" : "absent");
  const ProcessResources pr = capture_process_resources();
  if (pr.ok) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", pr.user_seconds);
    rows.emplace_back("cpu_user_seconds", buf);
    std::snprintf(buf, sizeof(buf), "%.6f", pr.sys_seconds);
    rows.emplace_back("cpu_sys_seconds", buf);
    rows.emplace_back("max_rss_bytes", std::to_string(pr.max_rss_bytes));
    rows.emplace_back("current_rss_bytes",
                      std::to_string(pr.current_rss_bytes));
    rows.emplace_back("minor_faults", std::to_string(pr.minor_faults));
    rows.emplace_back("major_faults", std::to_string(pr.major_faults));
  }
  return rows;
}

namespace resprof_detail {

// Out-of-line hook bodies: the operators below stay branch + tail-call.
void note_alloc(void* p) noexcept {
#if SPLICE_RESPROF_HOOKS
  AllocCounters& c = t_alloc;
  ++c.allocs;
  const auto sz = static_cast<std::uint64_t>(malloc_usable_size(p));
  c.bytes += sz;
  c.live_bytes += static_cast<long long>(sz);
  if (c.live_bytes > c.peak_bytes) c.peak_bytes = c.live_bytes;
#else
  (void)p;
#endif
}

void note_free(void* p) noexcept {
#if SPLICE_RESPROF_HOOKS
  AllocCounters& c = t_alloc;
  ++c.frees;
  c.live_bytes -= static_cast<long long>(malloc_usable_size(p));
#else
  (void)p;
#endif
}

}  // namespace resprof_detail

}  // namespace splice::obs

#if SPLICE_RESPROF_HOOKS

// ---------------------------------------------------------------------------
// Global operator new/delete replacements. Every path funnels through
// malloc/free with usable-size accounting, so the sized and unsized delete
// overloads agree. Cost when the profiler is disabled: one relaxed load and
// a branch on top of malloc/free.
// ---------------------------------------------------------------------------

namespace {

inline void* resprof_alloc(std::size_t size, std::size_t align) {
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    if (posix_memalign(&p, align, size ? size : align) != 0) p = nullptr;
  } else {
    p = std::malloc(size ? size : 1);
  }
  if (p != nullptr && splice::obs::ResourceProfiler::enabled()) {
    splice::obs::resprof_detail::note_alloc(p);
  }
  return p;
}

inline void resprof_free(void* p) noexcept {
  if (p == nullptr) return;
  if (splice::obs::ResourceProfiler::enabled()) {
    splice::obs::resprof_detail::note_free(p);
  }
  std::free(p);
}

[[noreturn]] void resprof_throw_bad_alloc() { throw std::bad_alloc(); }

}  // namespace

void* operator new(std::size_t size) {
  void* p = resprof_alloc(size, 0);
  if (p == nullptr) resprof_throw_bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = resprof_alloc(size, 0);
  if (p == nullptr) resprof_throw_bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return resprof_alloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return resprof_alloc(size, 0);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = resprof_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) resprof_throw_bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = resprof_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) resprof_throw_bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return resprof_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return resprof_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { resprof_free(p); }
void operator delete[](void* p) noexcept { resprof_free(p); }
void operator delete(void* p, std::size_t) noexcept { resprof_free(p); }
void operator delete[](void* p, std::size_t) noexcept { resprof_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { resprof_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  resprof_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  resprof_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  resprof_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  resprof_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  resprof_free(p);
}

#endif  // SPLICE_RESPROF_HOOKS
