#include "obs/linkstats.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/export.h"
#include "util/assert.h"

namespace splice::obs {

#if SPLICE_OBS
std::atomic<bool> LinkStats::enabled_{false};
#endif

LinkStats& LinkStats::global() {
  static LinkStats instance;
  return instance;
}

void LinkStats::configure(std::uint32_t n_links, std::uint32_t k,
                          const LinkStatsConfig& cfg) {
  SPLICE_EXPECTS(k >= 1);
  cfg_ = cfg;
  n_links_ = n_links;
  k_ = k;
  const std::size_t cells =
      static_cast<std::size_t>(k) * static_cast<std::size_t>(n_links);
  traversals_ = std::make_unique<std::atomic<std::uint64_t>[]>(cells);
  deflections_ = std::make_unique<std::atomic<std::uint64_t>[]>(cells);
  drops_ = std::make_unique<std::atomic<std::uint64_t>[]>(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    traversals_[i].store(0, std::memory_order_relaxed);
    deflections_[i].store(0, std::memory_order_relaxed);
    drops_[i].store(0, std::memory_order_relaxed);
  }
  trav_series_.configure(n_links, cfg.window);
  drop_series_.configure(n_links, cfg.window);
  edge_src_.clear();
  edge_dst_.clear();
  edge_weight_.clear();
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

void LinkStats::set_topology(std::span<const std::int32_t> edge_src,
                             std::span<const std::int32_t> edge_dst,
                             std::span<const double> edge_weight) {
  edge_src_.assign(edge_src.begin(), edge_src.end());
  edge_dst_.assign(edge_dst.begin(), edge_dst.end());
  edge_weight_.assign(edge_weight.begin(), edge_weight.end());
}

void LinkStats::merge_cell(std::size_t idx, std::uint64_t traversals,
                           std::uint64_t deflections,
                           std::uint64_t drops) noexcept {
  if (traversals != 0) {
    traversals_[idx].fetch_add(traversals, std::memory_order_relaxed);
  }
  if (deflections != 0) {
    deflections_[idx].fetch_add(deflections, std::memory_order_relaxed);
  }
  if (drops != 0) {
    drops_[idx].fetch_add(drops, std::memory_order_relaxed);
  }
}

void LinkStats::series_add(std::uint32_t edge, std::uint64_t now_ns,
                           std::uint64_t traversals,
                           std::uint64_t drops) noexcept {
  if (traversals != 0) trav_series_.add(edge, now_ns, traversals);
  if (drops != 0) drop_series_.add(edge, now_ns, drops);
}

void LinkStats::snapshot_into(std::uint64_t now_ns, LinkSnapshot& out) const {
  out.now_ns = now_ns;
  out.window = cfg_.window;
  out.k = k_;
  out.n_links = n_links_;
  out.total_traversals = 0;
  out.total_deflections = 0;
  out.total_drops = 0;
  if (n_links_ == 0 || !traversals_) {
    out.links.clear();
    return;
  }
  // Thread-local slice scratch + grow-or-reuse rows: under a stable active
  // link set a steady-state refresh performs zero allocations.
  thread_local std::vector<std::uint64_t> per_slice;
  per_slice.assign(k_, 0);
  std::size_t rows = 0;
  for (std::uint32_t e = 0; e < n_links_; ++e) {
    std::uint64_t trav = 0, defl = 0, drop = 0;
    for (std::uint32_t s = 0; s < k_; ++s) {
      const std::size_t i =
          static_cast<std::size_t>(s) * n_links_ + e;
      per_slice[s] = traversals_[i].load(std::memory_order_relaxed);
      trav += per_slice[s];
      defl += deflections_[i].load(std::memory_order_relaxed);
      drop += drops_[i].load(std::memory_order_relaxed);
    }
    out.total_traversals += trav;
    out.total_deflections += defl;
    out.total_drops += drop;
    if (trav == 0 && defl == 0 && drop == 0) continue;
    if (rows == out.links.size()) out.links.emplace_back();
    LinkRow& row = out.links[rows];
    row.edge = e;
    row.src = e < edge_src_.size() ? edge_src_[e] : -1;
    row.dst = e < edge_dst_.size() ? edge_dst_[e] : -1;
    row.weight = e < edge_weight_.size() ? edge_weight_[e] : 0.0;
    row.traversals = trav;
    row.deflections = defl;
    row.drops = drop;
    // Exact: one constant weight per edge, so the product equals the
    // hop-by-hop accumulation without per-hop FP state.
    row.cost = row.weight * static_cast<double>(trav);
    row.slice_traversals.assign(per_slice.begin(), per_slice.end());
    trav_series_.sample(e, now_ns, row.trav_buckets);
    drop_series_.sample(e, now_ns, row.drop_buckets);
    ++rows;
  }
  if (out.links.size() > rows) out.links.resize(rows);
}

LinkSnapshot LinkStats::snapshot_at(std::uint64_t now_ns) const {
  LinkSnapshot snap;
  snapshot_into(now_ns, snap);
  return snap;
}

LinkSnapshot LinkStats::snapshot() const { return snapshot_at(clock_now_ns()); }

void LinkStats::reset() {
  const std::size_t cells =
      static_cast<std::size_t>(k_) * static_cast<std::size_t>(n_links_);
  for (std::size_t i = 0; i < cells && traversals_; ++i) {
    traversals_[i].store(0, std::memory_order_relaxed);
    deflections_[i].store(0, std::memory_order_relaxed);
    drops_[i].store(0, std::memory_order_relaxed);
  }
  trav_series_.reset();
  drop_series_.reset();
}

LinkScratch* LinkScratch::acquire() {
  if (!LinkStats::enabled()) return nullptr;
  thread_local LinkScratch scratch;
  scratch.sync_generation();
  return &scratch;
}

void LinkScratch::sync_generation() {
  const LinkStats& g = LinkStats::global();
  const std::uint64_t gen = g.generation();
  if (gen == generation_) return;
  n_links_ = g.n_links();
  k_ = g.k();
  const std::size_t cells =
      static_cast<std::size_t>(k_) * static_cast<std::size_t>(n_links_);
  trav_.assign(cells, 0);
  defl_.assign(cells, 0);
  drop_.assign(cells, 0);
  touched_.clear();
  touched_.reserve(std::min<std::size_t>(cells, 4096));
  generation_ = gen;
}

void LinkScratch::flush(std::uint64_t now_ns) noexcept {
  if (touched_.empty()) return;
  LinkStats& g = LinkStats::global();
  for (const std::uint32_t i : touched_) {
    g.merge_cell(i, trav_[i], defl_[i], drop_[i]);
    g.series_add(i % n_links_, now_ns, trav_[i], drop_[i]);
    trav_[i] = 0;
    defl_[i] = 0;
    drop_[i] = 0;
  }
  touched_.clear();
}

namespace {

void append_bucket_array(std::string& out,
                         const std::vector<std::uint64_t>& b) {
  out += "[";
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i != 0) out += ", ";
    json_append_u64(out, b[i]);
  }
  out += "]";
}

}  // namespace

void links_json_append(std::string& out, const LinkSnapshot& snap) {
  out += "  \"now_ns\": \"";
  json_append_u64(out, snap.now_ns);
  out += "\",\n  \"window\": {\"bucket_ns\": ";
  json_append_u64(out, snap.window.bucket_ns);
  out += ", \"buckets\": ";
  json_append_i64(out, snap.window.buckets);
  out += "},\n  \"k\": ";
  json_append_u64(out, snap.k);
  out += ",\n  \"links_total\": ";
  json_append_u64(out, snap.n_links);
  out += ",\n  \"totals\": {\"traversals\": ";
  json_append_u64(out, snap.total_traversals);
  out += ", \"deflections\": ";
  json_append_u64(out, snap.total_deflections);
  out += ", \"drops\": ";
  json_append_u64(out, snap.total_drops);
  out += "},\n  \"links\": [";
  for (std::size_t i = 0; i < snap.links.size(); ++i) {
    const LinkRow& r = snap.links[i];
    if (i != 0) out += ",";
    out += "\n    {\"edge\": ";
    json_append_u64(out, r.edge);
    out += ", \"src\": ";
    json_append_i64(out, r.src);
    out += ", \"dst\": ";
    json_append_i64(out, r.dst);
    out += ", \"weight\": ";
    json_append_double(out, r.weight);
    out += ", \"traversals\": ";
    json_append_u64(out, r.traversals);
    out += ", \"deflections\": ";
    json_append_u64(out, r.deflections);
    out += ", \"drops\": ";
    json_append_u64(out, r.drops);
    out += ", \"cost\": ";
    json_append_double(out, r.cost);
    out += ", \"slice_traversals\": ";
    append_bucket_array(out, r.slice_traversals);
    out += ", \"trav_buckets\": ";
    append_bucket_array(out, r.trav_buckets);
    out += ", \"drop_buckets\": ";
    append_bucket_array(out, r.drop_buckets);
    out += "}";
  }
  out += "\n  ]";
}

std::string links_json_body(const LinkSnapshot& snap) {
  std::string out;
  links_json_append(out, snap);
  return out;
}

std::string links_prometheus(const LinkSnapshot& snap) {
  const auto labels = [](const LinkRow& r) {
    return "{edge=\"" + std::to_string(r.edge) + "\",src=\"" +
           std::to_string(r.src) + "\",dst=\"" + std::to_string(r.dst) +
           "\"}";
  };
  std::string out;
  out +=
      "# HELP splice_link_traversals_total Committed hops that crossed the "
      "link.\n# TYPE splice_link_traversals_total counter\n";
  for (const LinkRow& r : snap.links) {
    out += "splice_link_traversals_total" + labels(r) + " " +
           std::to_string(r.traversals) + "\n";
  }
  out +=
      "# HELP splice_link_deflections_total Hops that landed on the link via "
      "network-based recovery.\n# TYPE splice_link_deflections_total "
      "counter\n";
  for (const LinkRow& r : snap.links) {
    out += "splice_link_deflections_total" + labels(r) + " " +
           std::to_string(r.deflections) + "\n";
  }
  out +=
      "# HELP splice_link_drops_total Dead ends whose primary FIB entry "
      "pointed at the (dead) link.\n# TYPE splice_link_drops_total counter\n";
  for (const LinkRow& r : snap.links) {
    out += "splice_link_drops_total" + labels(r) + " " +
           std::to_string(r.drops) + "\n";
  }
  out +=
      "# HELP splice_link_cost Stretch-sum contribution: link weight x "
      "traversals.\n# TYPE splice_link_cost gauge\n";
  for (const LinkRow& r : snap.links) {
    out += "splice_link_cost" + labels(r) + " " + json_double(r.cost) + "\n";
  }
  return out;
}

}  // namespace splice::obs
