// Build/host provenance: the "which binary produced this" block attached to
// every RunReport so archived baselines in bench/baselines/ are
// self-describing. Build-time facts (git SHA, compiler, flags, build type,
// SPLICE_OBS state) are baked in by src/obs/CMakeLists.txt at configure
// time; host facts (hardware concurrency) are read at capture time.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace splice::obs {

/// Ordered key/value provenance entries: git_sha, compiler, build_type,
/// cxx_flags, splice_obs, hardware_threads.
std::vector<std::pair<std::string, std::string>> build_provenance();

}  // namespace splice::obs
