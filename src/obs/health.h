// Per-destination route-health scoring over rolling windows — the live
// feedback signal Path Splicing's end systems need (and ROADMAP item 5's
// adaptive slice selection will consume). Folds three planes into one
// windowed view per destination:
//
//   data plane    — forwarding outcomes (delivered vs dead-end/TTL) fed by
//                   shard_pipeline / the live-churn reader pool;
//   anomaly plane — loop / blackhole / stretch records, hooked off the
//                   AnomalyLedger's single record() entry point;
//   control plane — per-destination FIB churn (which destinations the last
//                   publishes repatched) plus reconvergence latency / work
//                   histograms from PublishStats.
//
// Record paths are the rolling-series CAS (obs/timeseries.h): lock-free,
// relaxed, one cell per (destination, bucket). Every hook is gated the
// standard way — callers check RouteHealth::enabled() (one relaxed load +
// branch; constant false under -DSPLICE_OBS=OFF) before touching anything.
//
// Scoring is pure integer arithmetic over window totals (see score()), so
// a snapshot at a given clock reading is bit-identical at every writer
// thread count — the same determinism contract the metrics registry and
// flight recorder carry, test-enforced at 1/2/8 threads.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/timeseries.h"
#include "util/histogram.h"

namespace splice::obs {

struct HealthConfig {
  /// Window geometry shared by every health series.
  WindowConfig window{250'000'000, 8};  ///< 8 × 250 ms = 2 s
  /// Reconvergence-latency histogram bounds (µs) for windowed percentiles.
  /// The ceiling covers oversubscribed-host grace waits (tens of ms);
  /// overflow clamps into the last bin, so percentiles beyond it read as
  /// ">= hi" rather than lying low.
  double latency_lo_us = 0.0;
  double latency_hi_us = 50'000.0;
  int latency_bins = 100;
};

/// One destination's window totals plus its score. `*_buckets` carry the
/// per-bucket delivered/sent values (oldest first) for sparkline rendering.
struct DstHealth {
  std::uint32_t dst = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t anomalies = 0;
  std::uint64_t churn = 0;  ///< publishes that repatched this destination
  int score = 100;          ///< 0 (dead) .. 100 (healthy)
  std::vector<std::uint64_t> sent_buckets;
  std::vector<std::uint64_t> delivered_buckets;
};

struct HealthSnapshot {
  std::uint64_t now_ns = 0;
  WindowConfig window{};
  /// Destinations with any window activity, ascending dst (canonical).
  std::vector<DstHealth> dsts;
  /// Global per-bucket series (oldest first) for the top-line sparklines.
  std::vector<std::uint64_t> sent_buckets;
  std::vector<std::uint64_t> delivered_buckets;
  std::vector<std::uint64_t> anomaly_buckets;
  std::vector<std::uint64_t> publish_buckets;
  /// Windowed control-plane latency distributions (µs).
  Histogram reconv_latency_us{0.0, 1.0, 1};
  Histogram publish_work_us{0.0, 1.0, 1};
  std::uint64_t publishes = 0;  ///< publish events in the window
};

class RouteHealth {
 public:
  static RouteHealth& global();

  /// Runtime switch consulted (by callers) before every hook.
  static bool enabled() noexcept {
#if SPLICE_OBS
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }
  static void set_enabled(bool on) noexcept {
#if SPLICE_OBS
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
  }

  /// Sizes the per-destination series. Not thread-safe — call before
  /// enabling, at run setup. Destinations >= n_dsts are ignored by the
  /// record hooks (the valve for workloads that never configured).
  void configure(std::uint32_t n_dsts, const HealthConfig& cfg = {});
  std::uint32_t n_dsts() const noexcept { return n_dsts_; }
  const HealthConfig& config() const noexcept { return cfg_; }

  // -- hot-path hooks (lock-free; caller checks enabled()) -----------------

  /// One forwarding outcome for `dst` at `now_ns` (a clock_now_ns() read
  /// the caller amortizes over its batch).
  void record_outcome(std::uint64_t now_ns, std::uint32_t dst,
                      bool delivered) noexcept;

  /// Batch-level totals for the global success series and the SLO engine:
  /// call once per forwarded batch with the batch's size and error count.
  void record_fwd_batch(std::uint64_t now_ns, std::uint64_t total,
                        std::uint64_t errors) noexcept;

  /// One anomaly (loop/blackhole/stretch/TTL) attributed to `dst`.
  void record_anomaly(std::uint64_t now_ns, std::uint32_t dst) noexcept;

  /// One FIB publication: reconvergence latency + publish work, plus one
  /// churn tick for every destination set in `touched` (the publisher's
  /// per-destination patch bitmap).
  void record_publish(std::uint64_t now_ns, std::uint64_t latency_ns,
                      std::uint64_t work_ns,
                      std::span<const char> touched) noexcept;

  // -- read side -----------------------------------------------------------

  /// Canonical snapshot of the window ending at `now_ns`. Lock-free reads;
  /// bit-identical across writer thread counts at quiescent points.
  HealthSnapshot snapshot_at(std::uint64_t now_ns) const;
  /// snapshot_at(clock_now_ns()).
  HealthSnapshot snapshot() const;

  /// snapshot_at(), rebuilt into `out` reusing its vectors and histogram
  /// storage — same values, allocation-free once the active destination set
  /// is stable (the telemetry agent's steady-state publish path).
  void snapshot_into(std::uint64_t now_ns, HealthSnapshot& out) const;

  /// The deterministic score: pure integer function of window totals.
  ///   start at 100;
  ///   loss     — subtract floor(60 * (sent - delivered) / sent);
  ///   anomaly  — subtract min(25, 5 * anomalies);
  ///   churn    — subtract min(15, 3 * churn);
  ///   clamp at 0. No traffic and no anomalies reads as healthy (100).
  static int score(std::uint64_t sent, std::uint64_t delivered,
                   std::uint64_t anomalies, std::uint64_t churn) noexcept;

  /// Zeroes every series (not thread-safe against writers).
  void reset();

 private:
  RouteHealth() = default;

#if SPLICE_OBS
  static std::atomic<bool> enabled_;
#endif

  HealthConfig cfg_{};
  std::uint32_t n_dsts_ = 0;

  // Per-destination series (index = dst).
  RollingSeriesArray dst_sent_;
  RollingSeriesArray dst_delivered_;
  RollingSeriesArray dst_anomalies_;
  RollingSeriesArray dst_churn_;

  // Global series.
  RollingCounter sent_;
  RollingCounter delivered_;
  RollingCounter anomalies_;
  RollingCounter publishes_;
  RollingHistogram reconv_latency_us_;
  RollingHistogram publish_work_us_;
};

/// JSON object *body* (no surrounding braces) for a HealthSnapshot — the
/// payload behind the trace export's "spliceHealth" section and the
/// splice_top snapshot file. u64s that may exceed 2^53 are decimal strings.
std::string health_json_body(const HealthSnapshot& snap);

/// health_json_body, appended in place (same bytes; allocation-free once
/// `out`'s capacity is warm).
void health_json_append(std::string& out, const HealthSnapshot& snap);

}  // namespace splice::obs
