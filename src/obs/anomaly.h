// Anomaly ledger: structured, replayable records of "the paper said this
// should be rare" events — forwarding loops (§4.4 of Path Splicing),
// TTL expiries, stretch blowing past threshold, transient micro-loops and
// blackholes. Aggregate telemetry (obs/metrics.h) counts these; the ledger
// keeps *which trial* tripped them, with enough context — experiment seed,
// probability point, trial index, k, (src, dst), final splicing bits — to
// replay the exact episode via sim/replay.h or the `splice_inspect replay`
// command line.
//
// Recording is mutex-guarded (anomalies are rare by construction; if they
// are not, the run has bigger problems than lock contention) with a
// capacity valve: past `capacity()` new anomalies are counted but not
// stored. snapshot() returns records in a canonical (run, p, trial, k,
// src, dst, kind) order so the set is bit-identical at every thread count.
//
// Runs. A process may host several experiment configurations (e.g.
// bench_loop_frequency sweeps four recovery schemes). begin_run() opens a
// tagged scope: subsequent anomalies carry the run index, and the run's
// params (serialized config) travel with the export so every record is
// self-describing.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace splice::obs {

enum class AnomalyKind : std::uint16_t {
  kTwoHopLoop = 1,   ///< A->B->A oscillation in a recovered path (§4.4)
  kRevisitLoop = 2,  ///< node revisited (larger loop / wandering walk)
  kTtlExpired = 3,   ///< walk hit the hop budget
  kHighStretch = 4,  ///< delivered path cost / shortest cost > threshold
  kMicroLoop = 5,    ///< transient loop during reconvergence (sim/transient)
  kBlackhole = 6,    ///< transient blackhole during reconvergence
};

const char* anomaly_kind_name(AnomalyKind k) noexcept;

struct Anomaly {
  AnomalyKind kind = AnomalyKind::kTwoHopLoop;
  std::uint32_t run = 0;        ///< begin_run() scope index
  std::uint64_t seed = 0;       ///< experiment config seed
  double p = 0.0;               ///< failure-probability point
  std::uint32_t trial = 0;      ///< trial index within the point
  std::uint32_t k = 0;          ///< slice count
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bits_lo = 0;    ///< final attempt's splicing header bits
  std::uint64_t bits_hi = 0;
  std::uint32_t attempts = 0;   ///< recovery retrials used
  std::uint32_t hops = 0;       ///< walk length
  double stretch = 0.0;         ///< path cost / shortest cost (0 if n/a)
  std::uint64_t aux = 0;        ///< kind-specific (e.g. failed edge id)
  std::uint32_t variant = 0;    ///< kind-specific (e.g. transient plain=0,
                                ///< spliced=1)
  std::uint64_t t_ns = 0;       ///< clock_now_ns() at record (0 = unknown);
                                ///< NOT part of the canonical sort key
  std::uint64_t fib_epoch = 0;  ///< FIB snapshot version the packet was
                                ///< forwarded under (0 = n/a) — the causal
                                ///< join key of obs/causal.h
};

struct AnomalyRun {
  std::uint32_t index = 0;
  /// Serialized experiment config ("seed=42 scheme=coin_flip ...") — the
  /// payload behind a replay command line.
  std::vector<std::pair<std::string, std::string>> params;
};

struct AnomalySnapshot {
  std::vector<Anomaly> anomalies;  ///< canonical order (see header comment)
  std::vector<AnomalyRun> runs;
  /// Process-wide context (topology name etc.) set via add_context.
  std::vector<std::pair<std::string, std::string>> context;
  std::uint64_t dropped = 0;  ///< recorded past capacity, not stored
};

class AnomalyLedger {
 public:
  static AnomalyLedger& global();

  /// Same gate as the rest of the obs layer: one relaxed load + branch on
  /// every record site; constant false under -DSPLICE_OBS=OFF.
  static bool enabled() noexcept {
#if SPLICE_OBS
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }
  static void set_enabled(bool on) noexcept {
#if SPLICE_OBS
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
  }

  /// Opens a run scope; anomalies recorded until the next begin_run carry
  /// the returned index. Safe to call while disabled (returns 0, records
  /// nothing).
  std::uint32_t begin_run(
      std::vector<std::pair<std::string, std::string>> params);

  /// Sets a process-wide context key (last write wins), e.g. topo=abilene.
  void add_context(const std::string& key, const std::string& value);

  void record(const Anomaly& a);

  /// Stretch above this threshold is recorded as kHighStretch by callers.
  double stretch_threshold() const noexcept {
    return stretch_threshold_.load(std::memory_order_relaxed);
  }
  void set_stretch_threshold(double t) noexcept {
    stretch_threshold_.store(t, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }
  void set_capacity(std::size_t n) noexcept {
    capacity_.store(n, std::memory_order_relaxed);
  }

  /// Canonically ordered copy of everything recorded since reset().
  AnomalySnapshot snapshot() const;

  /// Count of stored anomalies matching (run, kind); pass run == npos or
  /// kind == 0 to wildcard. For the bench_loop_frequency census.
  std::size_t count(std::size_t run, AnomalyKind kind,
                    std::uint32_t k = 0) const;

  void reset();

 private:
  AnomalyLedger() = default;

#if SPLICE_OBS
  static std::atomic<bool> enabled_;
#endif

  mutable std::mutex mu_;
  std::uint32_t current_run_ = 0;
  std::vector<Anomaly> anomalies_;
  std::vector<AnomalyRun> runs_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::uint64_t dropped_ = 0;
  std::atomic<std::size_t> capacity_{1u << 20};
  std::atomic<double> stretch_threshold_{3.0};
};

inline constexpr std::size_t kAnyRun = static_cast<std::size_t>(-1);

}  // namespace splice::obs
