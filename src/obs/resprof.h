// Resource-attribution profiler: turns "this phase is fast" into measured,
// gateable numbers. Three layers, each independently degradable:
//
//  1. Allocation accounting. Global operator new/delete hooks (defined in
//     resprof.cpp, linked into every binary that uses the obs library)
//     update plain thread_local counters — allocation count, cumulative
//     bytes, live bytes and a peak-live watermark. When the profiler is
//     disabled each hook costs one relaxed load + branch; under
//     -DSPLICE_OBS=OFF (or a sanitizer build, whose runtime owns
//     new/delete) the hooks are not compiled at all and
//     alloc_hooks_compiled() reports false so gates can skip.
//
//  2. Hardware counters. A per-thread perf_event_open group (cycles,
//     instructions, cache misses, branch misses — IPC derives from the
//     first two) read at span boundaries. Containers routinely deny the
//     syscall, so the first enable *probes*: perf available -> kPerf tier;
//     denied (or forced via SPLICE_RESPROF_TIER=rusage) -> kRusage tier,
//     where per-span hardware deltas are skipped and only the process-wide
//     getrusage/statm summary is reported. The active tier is recorded in
//     RunReport provenance so archived numbers are interpretable.
//
//  3. Process summary. capture_process_resources() reads getrusage +
//     /proc/self/statm (user/sys CPU seconds, peak/current RSS, page
//     faults) — available on every tier, attached to every profiled
//     RunReport.
//
// Determinism note: allocation *counts* on the fast paths are a pure
// function of the workload and gate exactly (the zero-alloc contract);
// bytes depend on malloc's usable-size rounding (stable per libc), and
// hardware counters are inherently noisy — the perf gate applies
// tolerances, never exact comparison, to those.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifndef SPLICE_OBS
#define SPLICE_OBS 1
#endif

namespace splice::obs {

/// Which resource-counter tier is live (the graceful-degradation ladder).
enum class ResourceTier {
  kOff = 0,     ///< profiler disabled — no per-span resource capture
  kRusage = 1,  ///< perf_event_open denied: process rusage summary only
  kPerf = 2,    ///< hardware counter groups per thread
};

const char* to_string(ResourceTier tier) noexcept;

/// One thread's allocation counters, updated by the new/delete hooks while
/// the profiler is enabled. live/peak use malloc_usable_size accounting; a
/// cross-thread free is attributed to the *freeing* thread, which can drive
/// its live_bytes negative — counts and cumulative bytes are the robust,
/// gateable fields.
struct AllocCounters {
  std::uint64_t allocs = 0;  ///< operator new calls
  std::uint64_t frees = 0;   ///< operator delete calls (non-null)
  std::uint64_t bytes = 0;   ///< cumulative usable bytes allocated
  long long live_bytes = 0;  ///< currently live usable bytes
  long long peak_bytes = 0;  ///< high-water mark of live_bytes (resettable
                             ///< by ResourceMark region accounting)
};

/// True when the global operator new/delete hooks are compiled into this
/// binary (SPLICE_OBS on, not a sanitizer build). Zero-alloc gates skip
/// when false.
bool alloc_hooks_compiled() noexcept;

/// The calling thread's counters (stable address for the thread lifetime).
const AllocCounters& thread_alloc_counters() noexcept;

/// Point-in-time capture opening a measured region on the calling thread.
/// Opening a mark resets the thread's peak watermark to its current live
/// bytes (saving the old watermark); closing it via ResourceProfiler::
/// delta() restores the enclosing region's watermark, so nested regions
/// each see their own peak.
struct ResourceMark {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
  long long live = 0;
  long long saved_peak = 0;
  std::uint64_t hw[4] = {0, 0, 0, 0};  ///< cycles, instr, cache-m, branch-m
  bool hw_valid = false;
};

/// Resource consumption of one measured region (or the accumulation over
/// many regions with the same span path).
struct ResourceDelta {
  long long allocs = 0;
  long long frees = 0;
  long long alloc_bytes = 0;
  long long peak_bytes = 0;  ///< max live-heap growth above region entry
  long long cycles = 0;
  long long instructions = 0;
  long long cache_misses = 0;
  long long branch_misses = 0;
  bool hw_valid = false;  ///< hardware fields populated (kPerf tier)

  bool any() const noexcept {
    return allocs != 0 || frees != 0 || alloc_bytes != 0 || peak_bytes != 0 ||
           hw_valid;
  }

  /// Sums counts, maxes the peak; for span aggregation across recordings.
  void accumulate(const ResourceDelta& d) noexcept {
    allocs += d.allocs;
    frees += d.frees;
    alloc_bytes += d.alloc_bytes;
    peak_bytes = peak_bytes > d.peak_bytes ? peak_bytes : d.peak_bytes;
    cycles += d.cycles;
    instructions += d.instructions;
    cache_misses += d.cache_misses;
    branch_misses += d.branch_misses;
    hw_valid = hw_valid || d.hw_valid;
  }
};

/// Master switch for resource attribution. Independent of the metrics
/// registry: --metrics alone never pays a counter-read syscall; --profile
/// turns this on and spans start carrying deltas.
class ResourceProfiler {
 public:
  static bool enabled() noexcept {
#if SPLICE_OBS
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Enables/disables resource capture. The first enable probes the
  /// hardware tier (see header comment); SPLICE_RESPROF_TIER=rusage forces
  /// the fallback, =perf skips the sanity probe. No-op under
  /// -DSPLICE_OBS=OFF.
  static void set_enabled(bool on);

  /// The active tier (kOff while disabled).
  static ResourceTier tier() noexcept;

  /// Re-runs the tier probe (test hook: lets a test flip
  /// SPLICE_RESPROF_TIER and observe the forced fallback). Only meaningful
  /// while enabled.
  static void reprobe_tier();

  /// Opens a measured region on the calling thread. Cheap when the tier is
  /// not kPerf (a few thread-local loads/stores); kPerf adds one group-read
  /// syscall.
  static void mark(ResourceMark& m) noexcept;

  /// Closes a region: returns consumption since `m` and restores the
  /// enclosing region's peak watermark. Call exactly once per mark, on the
  /// marking thread.
  static ResourceDelta delta(const ResourceMark& m) noexcept;

 private:
#if SPLICE_OBS
  static std::atomic<bool> enabled_;
#endif
};

/// RAII measured region for tests and gates:
///
///   ResourceScope scope;
///   hot_path();
///   const ResourceDelta d = scope.finish();
///   EXPECT_EQ(d.allocs, 0);
class ResourceScope {
 public:
  ResourceScope() noexcept { ResourceProfiler::mark(mark_); }
  ~ResourceScope() {
    if (!finished_) (void)ResourceProfiler::delta(mark_);
  }

  ResourceScope(const ResourceScope&) = delete;
  ResourceScope& operator=(const ResourceScope&) = delete;

  /// Closes the region (once) and returns its delta.
  ResourceDelta finish() noexcept {
    finished_ = true;
    return ResourceProfiler::delta(mark_);
  }

 private:
  ResourceMark mark_;
  bool finished_ = false;
};

/// Process-wide resource summary (getrusage + /proc/self/statm). Available
/// on every tier.
struct ProcessResources {
  double user_seconds = 0.0;
  double sys_seconds = 0.0;
  long long max_rss_bytes = 0;
  long long current_rss_bytes = 0;  ///< 0 when /proc/self/statm is absent
  long long minor_faults = 0;
  long long major_faults = 0;
  bool ok = false;
};

ProcessResources capture_process_resources() noexcept;

/// ProcessResources + tier as ordered key/value rows for RunReport's
/// "resources" block (empty when the profiler is disabled).
std::vector<std::pair<std::string, std::string>> resource_report();

}  // namespace splice::obs
