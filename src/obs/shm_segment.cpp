#include "obs/shm_segment.h"

// glibc's <fcntl.h> declares the splice(2) syscall under _GNU_SOURCE,
// which collides with `namespace splice`. We never call it; rename the
// declaration out of the way for this TU.
#define splice splice_glibc_syscall_
#include <fcntl.h>
#undef splice

#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace splice::obs {

namespace {

/// Retry budget for a read colliding with writes. The writer's critical
/// section is a few hundred microseconds at most (one memcpy sweep), so a
/// still-odd generation after this many attempts means a wedged writer,
/// not contention.
constexpr int kReadRetries = 64;

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

ShmSegmentWriter::~ShmSegmentWriter() { close(); }

bool ShmSegmentWriter::create(const std::string& path, std::size_t capacity,
                              std::string* error) {
  close();
  if (capacity == 0 || capacity % sizeof(std::uint64_t) != 0) {
    if (error) *error = "capacity must be a positive multiple of 8";
    return false;
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) *error = errno_message("open");
    return false;
  }
  const std::size_t bytes = kShmHeaderBytes + capacity;
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    if (error) *error = errno_message("ftruncate");
    ::close(fd);
    return false;
  }
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    if (error) *error = errno_message("mmap");
    return false;
  }
  map_ = map;
  map_bytes_ = bytes;
  capacity_ = capacity;
  path_ = path;
  header_ = reinterpret_cast<ShmHeader*>(map);
  words_ = reinterpret_cast<std::atomic<std::uint64_t>*>(
      static_cast<char*>(map) + kShmHeaderBytes);
  // ftruncate zero-filled the file; publish the plain header fields first,
  // then release the magic so attachers never see a half-built header.
  header_->abi_version = kShmAbiVersion;
  header_->header_bytes = static_cast<std::uint32_t>(kShmHeaderBytes);
  header_->capacity = capacity;
  header_->writer_pid = static_cast<std::uint64_t>(::getpid());
  header_->generation.store(0, std::memory_order_relaxed);
  header_->payload_bytes.store(0, std::memory_order_relaxed);
  header_->heartbeat_ns.store(0, std::memory_order_relaxed);
  header_->period_ns.store(0, std::memory_order_relaxed);
  header_->flushes.store(0, std::memory_order_relaxed);
  header_->dropped.store(0, std::memory_order_relaxed);
  header_->scrape_port.store(0, std::memory_order_relaxed);
  header_->magic.store(kShmMagic, std::memory_order_release);
  return true;
}

bool ShmSegmentWriter::publish(const char* data, std::size_t n,
                               std::uint64_t now_ns) noexcept {
  if (header_ == nullptr) return false;
  header_->flushes.fetch_add(1, std::memory_order_relaxed);
  if (n > capacity_) {
    // The previous generation stays readable; the drop is visible to
    // readers so silent truncation can't masquerade as coverage.
    header_->dropped.fetch_add(1, std::memory_order_relaxed);
    header_->heartbeat_ns.store(now_ns, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t g = header_->generation.load(std::memory_order_relaxed);
  header_->generation.store(g + 1, std::memory_order_relaxed);
  // Pairs with the reader's acquire fence: any payload word stored after
  // this fence implies the odd generation above is visible, so a read that
  // overlapped this write cannot pass its generation check.
  std::atomic_thread_fence(std::memory_order_release);
  const std::size_t full = n / sizeof(std::uint64_t);
  for (std::size_t i = 0; i < full; ++i) {
    std::uint64_t w;
    std::memcpy(&w, data + i * sizeof(std::uint64_t), sizeof(w));
    words_[i].store(w, std::memory_order_relaxed);
  }
  const std::size_t tail = n - full * sizeof(std::uint64_t);
  if (tail != 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + full * sizeof(std::uint64_t), tail);
    words_[full].store(w, std::memory_order_relaxed);
  }
  header_->payload_bytes.store(n, std::memory_order_relaxed);
  header_->generation.store(g + 2, std::memory_order_release);
  header_->heartbeat_ns.store(now_ns, std::memory_order_relaxed);
  return true;
}

void ShmSegmentWriter::heartbeat(std::uint64_t now_ns) noexcept {
  if (header_ == nullptr) return;
  header_->heartbeat_ns.store(now_ns, std::memory_order_relaxed);
}

void ShmSegmentWriter::set_period_ns(std::uint64_t period_ns) noexcept {
  if (header_ == nullptr) return;
  header_->period_ns.store(period_ns, std::memory_order_relaxed);
}

void ShmSegmentWriter::set_scrape_port(std::uint16_t port) noexcept {
  if (header_ == nullptr) return;
  header_->scrape_port.store(port, std::memory_order_relaxed);
}

std::uint64_t ShmSegmentWriter::generation() const noexcept {
  return header_ == nullptr
             ? 0
             : header_->generation.load(std::memory_order_relaxed);
}

std::uint64_t ShmSegmentWriter::flushes() const noexcept {
  return header_ == nullptr
             ? 0
             : header_->flushes.load(std::memory_order_relaxed);
}

std::uint64_t ShmSegmentWriter::dropped() const noexcept {
  return header_ == nullptr
             ? 0
             : header_->dropped.load(std::memory_order_relaxed);
}

void ShmSegmentWriter::close() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
  }
  header_ = nullptr;
  words_ = nullptr;
  capacity_ = 0;
  map_bytes_ = 0;
  path_.clear();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

const char* shm_read_result_name(ShmReadResult r) noexcept {
  switch (r) {
    case ShmReadResult::kOk:
      return "ok";
    case ShmReadResult::kEmpty:
      return "empty";
    case ShmReadResult::kTorn:
      return "torn";
    case ShmReadResult::kNotAttached:
      return "not-attached";
  }
  return "?";
}

bool shm_writer_alive(const ShmSegmentInfo& info) noexcept {
  if (info.writer_pid == 0) return false;
  if (::kill(static_cast<pid_t>(info.writer_pid), 0) == 0) return true;
  // EPERM still proves the pid exists (owned by someone else).
  return errno == EPERM;
}

ShmSegmentReader::~ShmSegmentReader() { detach(); }

bool ShmSegmentReader::attach(const std::string& path, std::string* error) {
  detach();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error) *error = errno_message("open");
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    if (error) *error = errno_message("fstat");
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kShmHeaderBytes) {
    if (error) *error = "not a telemetry segment (file smaller than header)";
    ::close(fd);
    return false;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    if (error) *error = errno_message("mmap");
    return false;
  }
  const auto* header = reinterpret_cast<const ShmHeader*>(map);
  if (header->magic.load(std::memory_order_acquire) != kShmMagic) {
    if (error) *error = "not a telemetry segment (bad magic)";
    ::munmap(map, size);
    return false;
  }
  if (header->abi_version != kShmAbiVersion) {
    if (error) {
      *error = "telemetry segment ABI v" +
               std::to_string(header->abi_version) + " != expected v" +
               std::to_string(kShmAbiVersion);
    }
    ::munmap(map, size);
    return false;
  }
  if (header->header_bytes != kShmHeaderBytes ||
      header->capacity > size - kShmHeaderBytes) {
    if (error) *error = "telemetry segment geometry is inconsistent";
    ::munmap(map, size);
    return false;
  }
  map_ = map;
  map_bytes_ = size;
  header_ = header;
  capacity_ = header->capacity;
  words_ = reinterpret_cast<const std::atomic<std::uint64_t>*>(
      static_cast<const char*>(map) + kShmHeaderBytes);
  return true;
}

ShmReadResult ShmSegmentReader::read(std::string& out,
                                     ShmSegmentInfo* info) const noexcept {
  if (header_ == nullptr) return ShmReadResult::kNotAttached;
  for (int attempt = 0; attempt < kReadRetries; ++attempt) {
    const std::uint64_t g1 =
        header_->generation.load(std::memory_order_acquire);
    if (g1 == 0) return ShmReadResult::kEmpty;
    if ((g1 & 1) != 0) continue;  // mid-write; retry
    const std::uint64_t n =
        header_->payload_bytes.load(std::memory_order_relaxed);
    if (n > capacity_) continue;  // torn header; retry
    const std::size_t full = static_cast<std::size_t>(n) / sizeof(std::uint64_t);
    const std::size_t tail = static_cast<std::size_t>(n) % sizeof(std::uint64_t);
    out.resize(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < full; ++i) {
      const std::uint64_t w = words_[i].load(std::memory_order_relaxed);
      std::memcpy(out.data() + i * sizeof(std::uint64_t), &w, sizeof(w));
    }
    if (tail != 0) {
      const std::uint64_t w = words_[full].load(std::memory_order_relaxed);
      std::memcpy(out.data() + full * sizeof(std::uint64_t), &w, tail);
    }
    // Pairs with the writer's release fence (see header comment): if any
    // word above came from a newer write, g2 must differ from g1.
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t g2 =
        header_->generation.load(std::memory_order_relaxed);
    if (g1 != g2) continue;
    if (info != nullptr) {
      info->generation = g1;
      info->payload_bytes = n;
      info->heartbeat_ns =
          header_->heartbeat_ns.load(std::memory_order_relaxed);
      info->period_ns = header_->period_ns.load(std::memory_order_relaxed);
      info->flushes = header_->flushes.load(std::memory_order_relaxed);
      info->dropped = header_->dropped.load(std::memory_order_relaxed);
      info->scrape_port =
          header_->scrape_port.load(std::memory_order_relaxed);
      info->writer_pid = header_->writer_pid;
      info->capacity = capacity_;
    }
    return ShmReadResult::kOk;
  }
  return ShmReadResult::kTorn;
}

void ShmSegmentReader::detach() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
  }
  header_ = nullptr;
  words_ = nullptr;
  capacity_ = 0;
  map_bytes_ = 0;
}

}  // namespace splice::obs
