#include "obs/span.h"

#include <algorithm>
#include <string_view>

namespace splice::obs {

SpanCollector& SpanCollector::global() {
  static SpanCollector collector;
  return collector;
}

SpanCollector::SpanCollector() = default;

void SpanCollector::set_clock(const Clock* clock) noexcept {
  set_global_clock(clock);
}

const Clock& SpanCollector::clock() const noexcept { return global_clock(); }

SpanCollector::Buffer& SpanCollector::local_buffer() {
  thread_local struct Slot {
    SpanCollector* owner = nullptr;
    Buffer* buffer = nullptr;
  } slot;
  if (slot.owner != this) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<Buffer>());
    slot.owner = this;
    slot.buffer = buffers_.back().get();
  }
  return *slot.buffer;
}

void SpanCollector::record(const std::string& path, int depth,
                           std::uint64_t elapsed_ns) {
  (void)depth;  // depth is recomputed from the path at snapshot time
  Buffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  Node& node = buf.nodes[path];
  ++node.count;
  node.total_ns += elapsed_ns;
}

void SpanCollector::record(const std::string& path, int depth,
                           std::uint64_t elapsed_ns,
                           const ResourceDelta& res) {
  (void)depth;
  Buffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  Node& node = buf.nodes[path];
  ++node.count;
  node.total_ns += elapsed_ns;
  node.res.accumulate(res);
}

SpanSnapshot SpanCollector::snapshot() const {
  std::map<std::string, Node> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      for (const auto& [path, node] : buf->nodes) {
        Node& into = merged[path];
        into.count += node.count;
        into.total_ns += node.total_ns;
        into.res.accumulate(node.res);
      }
    }
  }
  SpanSnapshot snap;
  snap.stats.reserve(merged.size());
  for (const auto& [path, node] : merged) {
    SpanStat stat;
    stat.path = path;
    const auto slash = path.rfind('/');
    stat.name = slash == std::string::npos ? path : path.substr(slash + 1);
    stat.depth = static_cast<int>(
        std::count(path.begin(), path.end(), '/'));
    stat.count = node.count;
    stat.total_ns = node.total_ns;
    stat.res = node.res;
    snap.stats.push_back(std::move(stat));
  }
  // Preorder with name-sorted siblings. Raw lexicographic path order is
  // not quite preorder (span names contain '.', which sorts before '/'),
  // so compare componentwise: a parent path is a proper prefix of its
  // children's component sequences and sorts immediately before them.
  std::sort(snap.stats.begin(), snap.stats.end(),
            [](const SpanStat& a, const SpanStat& b) {
              std::size_t ai = 0, bi = 0;
              while (ai < a.path.size() && bi < b.path.size()) {
                const auto ae = a.path.find('/', ai);
                const auto be = b.path.find('/', bi);
                const std::string_view ac(
                    a.path.data() + ai,
                    (ae == std::string::npos ? a.path.size() : ae) - ai);
                const std::string_view bc(
                    b.path.data() + bi,
                    (be == std::string::npos ? b.path.size() : be) - bi);
                if (ac != bc) return ac < bc;
                if (ae == std::string::npos || be == std::string::npos) break;
                ai = ae + 1;
                bi = be + 1;
              }
              return a.path.size() < b.path.size();
            });
  return snap;
}

void SpanCollector::reset() {
  // Buffers stay registered (thread_local pointers remain valid); only
  // their contents are dropped.
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->nodes.clear();
  }
}

thread_local ObsSpan* ObsSpan::t_current_ = nullptr;

ObsSpan::ObsSpan(const char* name)
    : name_(name),
      parent_(nullptr),
      start_ns_(0),
      active_(MetricsRegistry::enabled()),
      profiled_(false) {
  if (!active_) return;
  parent_ = t_current_;
  t_current_ = this;
  profiled_ = ResourceProfiler::enabled();
  if (profiled_) ResourceProfiler::mark(mark_);
  start_ns_ = clock_now_ns();
}

ObsSpan::~ObsSpan() {
  if (!active_) return;
  const std::uint64_t end_ns = clock_now_ns();
  // Close the resource region *before* the path/record bookkeeping below:
  // its own allocations then land in the parent span's delta, keeping the
  // measured region tight around the span body.
  ResourceDelta res;
  if (profiled_) res = ResourceProfiler::delta(mark_);
  t_current_ = parent_;
  // Build the "/"-joined path root..self by walking the parent chain.
  int depth = 0;
  for (const ObsSpan* s = parent_; s != nullptr; s = s->parent_) ++depth;
  std::string path;
  std::vector<const char*> names(static_cast<std::size_t>(depth) + 1);
  int i = depth;
  for (const ObsSpan* s = this; s != nullptr; s = s->parent_) {
    names[static_cast<std::size_t>(i--)] = s->name_;
  }
  for (std::size_t j = 0; j < names.size(); ++j) {
    if (j != 0) path += '/';
    path += names[j];
  }
  if (profiled_) {
    SpanCollector::global().record(path, depth, end_ns - start_ns_, res);
  } else {
    SpanCollector::global().record(path, depth, end_ns - start_ns_);
  }
}

}  // namespace splice::obs
