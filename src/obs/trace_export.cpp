#include "obs/trace_export.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "obs/clock.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/linkstats.h"
#include "obs/slo.h"
#include "util/table.h"

namespace splice::obs {

namespace {

double cost_from_bits(std::uint32_t hi, std::uint32_t lo) {
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  double cost = 0.0;
  static_assert(sizeof(bits) == sizeof(cost));
  std::memcpy(&cost, &bits, sizeof(cost));
  return cost;
}

/// Chrome ts is in microseconds; keep sub-µs precision as a fraction.
std::string ts_us(std::uint64_t ns, std::uint64_t base_ns) {
  return json_double(static_cast<double>(ns - base_ns) / 1000.0);
}

std::string u64_str(std::uint64_t v) { return json_quote(std::to_string(v)); }

class EventWriter {
 public:
  explicit EventWriter(std::string& out) : out_(out) {}

  void begin_event() {
    if (!first_) out_ += ",\n";
    first_ = false;
    out_ += "  {";
    first_field_ = true;
  }
  void end_event() { out_ += "}"; }

  void field(const char* key, const std::string& raw) {
    if (!first_field_) out_ += ", ";
    first_field_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\": ";
    out_ += raw;
  }
  void str_field(const char* key, const std::string& s) {
    field(key, json_quote(s));
  }
  void int_field(const char* key, long long v) {
    field(key, std::to_string(v));
  }

 private:
  std::string& out_;
  bool first_ = true;
  bool first_field_ = true;
};

const char* phase_name(const RecorderSnapshot& rec, std::uint64_t key) {
  if (key < rec.names.size()) return rec.names[key].c_str();
  return "?";
}

const char* outcome_name(std::uint32_t outcome) {
  switch (outcome) {
    case 0:
      return "delivered";
    case 1:
      return "dead_end";
    case 2:
      return "ttl_expired";
  }
  return "?";
}

}  // namespace

TraceInputs capture_trace_inputs() {
  TraceInputs in;
  in.spans = SpanCollector::global().snapshot();
  in.recorder = FlightRecorder::global().drain();
  in.anomalies = AnomalyLedger::global().snapshot();
  if (RouteHealth::enabled()) {
    in.health_body = health_json_body(RouteHealth::global().snapshot());
  }
  if (SloEngine::enabled()) {
    in.slo_body =
        slo_json_body(SloEngine::global().peek(clock_now_ns()));
  }
  if (LinkStats::enabled()) {
    in.links_body = links_json_body(LinkStats::global().snapshot());
  }
  return in;
}

std::string trace_json(const TraceInputs& in) {
  std::string out = "{\n\"traceEvents\": [\n";
  EventWriter w(out);

  const auto add_process_name = [&](int pid, const char* name) {
    w.begin_event();
    w.str_field("name", "process_name");
    w.str_field("ph", "M");
    w.int_field("pid", pid);
    w.int_field("tid", 0);
    w.field("args", "{\"name\": " + json_quote(name) + "}");
    w.end_event();
  };
  add_process_name(1, "recorder");
  add_process_name(2, "spans");
  add_process_name(3, "walks");

  // Canonical event order first: walk events grouped by (key, seq), the
  // rest time-ordered. Also establishes the trace's time base.
  std::vector<RecorderEvent> events = in.recorder.events;
  sort_deterministic(events);
  std::uint64_t base_ns = ~0ULL;
  for (const RecorderEvent& ev : events) {
    if (ev.time_ns != 0) base_ns = std::min(base_ns, ev.time_ns);
  }
  if (base_ns == ~0ULL) base_ns = 0;

  // pid 1: phases, SPT repairs, trial markers — on their recording ring.
  for (const RecorderEvent& ev : events) {
    switch (static_cast<EventType>(ev.type)) {
      case EventType::kPhaseBegin:
      case EventType::kPhaseEnd: {
        w.begin_event();
        w.str_field("name", phase_name(in.recorder, ev.key));
        w.str_field("ph", ev.type == static_cast<std::uint16_t>(
                                         EventType::kPhaseBegin)
                              ? "B"
                              : "E");
        w.int_field("pid", 1);
        w.int_field("tid", ev.tid);
        w.field("ts", ts_us(ev.time_ns, base_ns));
        w.end_event();
        break;
      }
      case EventType::kSptRepair: {
        w.begin_event();
        w.str_field("name", "spt_repair");
        w.str_field("ph", "i");
        w.str_field("s", "t");
        w.int_field("pid", 1);
        w.int_field("tid", ev.tid);
        w.field("ts", ts_us(ev.time_ns, base_ns));
        w.field("args", "{\"edge\": " + std::to_string(ev.a) +
                            ", \"trees_repaired\": " + std::to_string(ev.b) +
                            ", \"trees_rebuilt\": " + std::to_string(ev.c) +
                            ", \"nodes_touched\": " + std::to_string(ev.d) +
                            ", \"trees_untouched\": " +
                            std::to_string(ev.flags) + "}");
        w.end_event();
        break;
      }
      case EventType::kEpochPublish: {
        w.begin_event();
        w.str_field("name", "epoch_publish");
        w.str_field("ph", "i");
        w.str_field("s", "t");
        w.int_field("pid", 1);
        w.int_field("tid", ev.tid);
        w.field("ts", ts_us(ev.time_ns, base_ns));
        w.field("args",
                "{\"epoch\": " + u64_str(ev.key) +
                    ", \"edge\": " + std::to_string(ev.a) +
                    ", \"dsts_patched\": " + std::to_string(ev.b) +
                    ", \"trees_touched\": " + std::to_string(ev.c) +
                    ", \"alive\": " +
                    ((ev.flags & 1u) != 0 ? "true" : "false") + "}");
        w.end_event();
        break;
      }
      case EventType::kEpochGrace: {
        const std::uint64_t lat =
            static_cast<std::uint64_t>(ev.a) |
            (static_cast<std::uint64_t>(ev.b) << 32);
        w.begin_event();
        w.str_field("name", "epoch_grace");
        w.str_field("ph", "i");
        w.str_field("s", "t");
        w.int_field("pid", 1);
        w.int_field("tid", ev.tid);
        w.field("ts", ts_us(ev.time_ns, base_ns));
        w.field("args", "{\"epoch\": " + u64_str(ev.key) +
                            ", \"latency_ns\": " + u64_str(lat) +
                            ", \"grace_spins\": " + std::to_string(ev.c) +
                            "}");
        w.end_event();
        break;
      }
      case EventType::kEpochWork: {
        const std::uint64_t work =
            static_cast<std::uint64_t>(ev.a) |
            (static_cast<std::uint64_t>(ev.b) << 32);
        w.begin_event();
        w.str_field("name", "epoch_work");
        w.str_field("ph", "i");
        w.str_field("s", "t");
        w.int_field("pid", 1);
        w.int_field("tid", ev.tid);
        w.field("ts", ts_us(ev.time_ns, base_ns));
        w.field("args", "{\"epoch\": " + u64_str(ev.key) +
                            ", \"work_ns\": " + u64_str(work) + "}");
        w.end_event();
        break;
      }
      case EventType::kSloBurnWarn:
      case EventType::kSloBurnPage: {
        const bool page =
            ev.type == static_cast<std::uint16_t>(EventType::kSloBurnPage);
        w.begin_event();
        w.str_field("name", page ? "slo_burn_page" : "slo_burn_warn");
        w.str_field("ph", "i");
        w.str_field("s", "g");
        w.int_field("pid", 1);
        w.int_field("tid", ev.tid);
        w.field("ts", ts_us(ev.time_ns, base_ns));
        w.field("args",
                "{\"slo\": " + u64_str(ev.key) + ", \"fast_burn\": " +
                    json_double(static_cast<double>(ev.a) / 1000.0) +
                    ", \"slow_burn\": " +
                    json_double(static_cast<double>(ev.b) / 1000.0) + "}");
        w.end_event();
        break;
      }
      case EventType::kEpochAdopt: {
        w.begin_event();
        w.str_field("name", "epoch_adopt");
        w.str_field("ph", "i");
        w.str_field("s", "t");
        w.int_field("pid", 1);
        w.int_field("tid", ev.tid);
        w.field("ts", ts_us(ev.time_ns, base_ns));
        w.field("args", "{\"epoch\": " + u64_str(ev.key) +
                            ", \"reader\": " + std::to_string(ev.a) + "}");
        w.end_event();
        break;
      }
      case EventType::kTrialBegin:
      case EventType::kTrialEnd: {
        w.begin_event();
        w.str_field("name", "trial " + std::to_string(ev.a));
        w.str_field("ph", ev.type == static_cast<std::uint16_t>(
                                         EventType::kTrialBegin)
                              ? "B"
                              : "E");
        w.int_field("pid", 1);
        w.int_field("tid", ev.tid);
        w.field("ts", ts_us(ev.time_ns, base_ns));
        w.end_event();
        break;
      }
      default:
        break;
    }
  }

  // pid 2: the aggregate span tree laid out in preorder — each node spans
  // its total, children packed left-to-right from the parent's start.
  {
    std::vector<std::uint64_t> cursor(1, 0);
    for (const SpanStat& s : in.spans.stats) {
      const auto depth = static_cast<std::size_t>(s.depth);
      if (cursor.size() <= depth) cursor.resize(depth + 1, 0);
      const std::uint64_t start = cursor[depth];
      cursor[depth] = start + s.total_ns;
      if (cursor.size() <= depth + 1) cursor.resize(depth + 2, 0);
      cursor[depth + 1] = start;
      w.begin_event();
      w.str_field("name", s.name);
      w.str_field("ph", "X");
      w.int_field("pid", 2);
      w.int_field("tid", 0);
      w.field("ts", ts_us(start, 0));
      w.field("dur", json_double(static_cast<double>(s.total_ns) / 1000.0));
      w.field("args", "{\"path\": " + json_quote(s.path) +
                          ", \"count\": " + std::to_string(s.count) +
                          ", \"total_ns\": " + std::to_string(s.total_ns) +
                          "}");
      w.end_event();
      // Resource counter tracks (profiled runs): step to the span's value
      // at its start and back to zero at its end, so the track reads as
      // per-span attribution rather than a running total.
      if (s.res.any()) {
        const auto counter = [&](const char* track, const char* series,
                                 long long value, std::uint64_t at) {
          w.begin_event();
          w.str_field("name", track);
          w.str_field("ph", "C");
          w.int_field("pid", 2);
          w.int_field("tid", 0);
          w.field("ts", ts_us(at, 0));
          w.field("args", std::string("{\"") + series +
                              "\": " + std::to_string(value) + "}");
          w.end_event();
        };
        const std::uint64_t end = start + s.total_ns;
        counter("span alloc_bytes", "bytes", s.res.alloc_bytes, start);
        counter("span alloc_bytes", "bytes", 0, end);
        counter("span allocs", "allocs", s.res.allocs, start);
        counter("span allocs", "allocs", 0, end);
        if (s.res.hw_valid) {
          counter("span cache_misses", "misses", s.res.cache_misses, start);
          counter("span cache_misses", "misses", 0, end);
          counter("span cycles", "cycles", s.res.cycles, start);
          counter("span cycles", "cycles", 0, end);
        }
      }
    }
  }

  // pid 3: sampled walks, one tid per walk id (dense, in canonical order).
  {
    std::map<std::uint64_t, int> walk_tid;
    const auto is_walk = [](const RecorderEvent& e) {
      return e.type >= static_cast<std::uint16_t>(EventType::kWalkBegin) &&
             e.type <= static_cast<std::uint16_t>(EventType::kWalkEnd);
    };
    for (const RecorderEvent& ev : events) {
      if (is_walk(ev)) walk_tid.emplace(ev.key, 0);
    }
    int next_tid = 0;
    for (auto& [key, tid] : walk_tid) tid = next_tid++;

    // One attempt at a time: buffer hops between a begin and its end, then
    // emit B, interpolated hop instants, E.
    struct Attempt {
      RecorderEvent begin;
      std::vector<RecorderEvent> hops;
      bool open = false;
    } cur;
    const auto flush = [&](const RecorderEvent& end) {
      const int tid = walk_tid[end.key];
      const std::uint64_t b_ns = cur.open ? cur.begin.time_ns : end.time_ns;
      const std::uint64_t e_ns = std::max(end.time_ns, b_ns);
      if (cur.open) {
        w.begin_event();
        w.str_field("name", "walk " + std::to_string(cur.begin.a) + "->" +
                                std::to_string(cur.begin.b) +
                                " k=" + std::to_string(cur.begin.c));
        w.str_field("ph", "B");
        w.int_field("pid", 3);
        w.int_field("tid", tid);
        w.field("ts", ts_us(b_ns, base_ns));
        w.field("args",
                "{\"src\": " + std::to_string(cur.begin.a) +
                    ", \"dst\": " + std::to_string(cur.begin.b) +
                    ", \"k\": " + std::to_string(cur.begin.c) +
                    ", \"header_hops\": " + std::to_string(cur.begin.d) +
                    ", \"attempt\": " + std::to_string(cur.begin.flags) +
                    ", \"walk_id\": " + u64_str(cur.begin.key) + "}");
        w.end_event();
      }
      // Hops are not timestamped on the record path; spread them evenly
      // across the attempt for the timeline view.
      const std::size_t n = cur.hops.size();
      for (std::size_t i = 0; i < n; ++i) {
        const RecorderEvent& h = cur.hops[i];
        const std::uint64_t ts =
            b_ns + (e_ns - b_ns) * (i + 1) / (n + 1);
        w.begin_event();
        w.str_field("name", "hop " + std::to_string(h.a) + "->" +
                                std::to_string(h.c) +
                                ((h.flags & kWalkFlagDeflected) != 0
                                     ? " (deflected)"
                                     : ""));
        w.str_field("ph", "i");
        w.str_field("s", "t");
        w.int_field("pid", 3);
        w.int_field("tid", tid);
        w.field("ts", ts_us(ts, base_ns));
        w.field("args",
                "{\"node\": " + std::to_string(h.a) +
                    ", \"slice\": " + std::to_string(h.b) +
                    ", \"next\": " + std::to_string(h.c) +
                    ", \"edge\": " + std::to_string(h.d) +
                    ", \"deflected\": " +
                    ((h.flags & kWalkFlagDeflected) != 0 ? "true" : "false") +
                    ", \"bits_consumed\": " +
                    std::to_string(h.flags >> kWalkFlagBitsShift) + "}");
        w.end_event();
      }
      if (cur.open) {
        w.begin_event();
        w.str_field("name", "walk " + std::to_string(cur.begin.a) + "->" +
                                std::to_string(cur.begin.b) +
                                " k=" + std::to_string(cur.begin.c));
        w.str_field("ph", "E");
        w.int_field("pid", 3);
        w.int_field("tid", tid);
        w.field("ts", ts_us(e_ns, base_ns));
        w.field("args",
                "{\"outcome\": " +
                    json_quote(outcome_name(end.a)) +
                    ", \"hops\": " + std::to_string(end.b) + ", \"cost\": " +
                    json_double(cost_from_bits(end.c, end.d)) +
                    ", \"deflected\": " +
                    ((end.flags & kWalkFlagDeflected) != 0 ? "true"
                                                           : "false") +
                    "}");
        w.end_event();
      }
      cur = Attempt{};
    };
    for (const RecorderEvent& ev : events) {
      switch (static_cast<EventType>(ev.type)) {
        case EventType::kWalkBegin:
          cur.begin = ev;
          cur.open = true;
          break;
        case EventType::kWalkHop:
          cur.hops.push_back(ev);
          break;
        case EventType::kWalkEnd:
          flush(ev);
          break;
        default:
          break;
      }
    }
  }

  out += "\n],\n";

  // Exact span aggregates (the pid-2 timeline is synthesized; this is the
  // ground truth splice_inspect ranks).
  out += "\"spliceSpans\": [";
  for (std::size_t i = 0; i < in.spans.stats.size(); ++i) {
    const SpanStat& s = in.spans.stats[i];
    if (i != 0) out += ",";
    out += "\n  {\"path\": " + json_quote(s.path) +
           ", \"depth\": " + std::to_string(s.depth) +
           ", \"count\": " + std::to_string(s.count) +
           ", \"total_ns\": " + std::to_string(s.total_ns);
    if (s.res.any()) {
      out += ", \"allocs\": " + std::to_string(s.res.allocs) +
             ", \"alloc_bytes\": " + std::to_string(s.res.alloc_bytes) +
             ", \"heap_peak_bytes\": " + std::to_string(s.res.peak_bytes);
      if (s.res.hw_valid) {
        out += ", \"cycles\": " + std::to_string(s.res.cycles) +
               ", \"instructions\": " + std::to_string(s.res.instructions) +
               ", \"cache_misses\": " + std::to_string(s.res.cache_misses) +
               ", \"branch_misses\": " + std::to_string(s.res.branch_misses);
      }
    }
    out += "}";
  }
  out += "\n],\n";

  // Per-epoch publication records: publish and grace events joined by
  // epoch key, reader adoptions counted per epoch. The ground truth for
  // splice_inspect epochs.
  {
    struct EpochRec {
      const RecorderEvent* pub = nullptr;
      const RecorderEvent* grace = nullptr;
      const RecorderEvent* work = nullptr;
      int adopts = 0;
    };
    std::map<std::uint64_t, EpochRec> epochs;
    for (const RecorderEvent& ev : events) {
      switch (static_cast<EventType>(ev.type)) {
        case EventType::kEpochPublish:
          epochs[ev.key].pub = &ev;
          break;
        case EventType::kEpochGrace:
          epochs[ev.key].grace = &ev;
          break;
        case EventType::kEpochWork:
          epochs[ev.key].work = &ev;
          break;
        case EventType::kEpochAdopt:
          ++epochs[ev.key].adopts;
          break;
        default:
          break;
      }
    }
    out += "\"spliceEpochs\": [";
    bool first_epoch = true;
    for (const auto& [epoch, rec] : epochs) {
      if (!first_epoch) out += ",";
      first_epoch = false;
      out += "\n  {\"epoch\": " + u64_str(epoch);
      if (rec.pub != nullptr) {
        out += ", \"publish_ts_ns\": " + u64_str(rec.pub->time_ns) +
               ", \"edge\": " + std::to_string(rec.pub->a) +
               ", \"dsts_patched\": " + std::to_string(rec.pub->b) +
               ", \"trees_touched\": " + std::to_string(rec.pub->c) +
               ", \"alive\": " +
               ((rec.pub->flags & 1u) != 0 ? "true" : "false");
      }
      if (rec.grace != nullptr) {
        const std::uint64_t lat =
            static_cast<std::uint64_t>(rec.grace->a) |
            (static_cast<std::uint64_t>(rec.grace->b) << 32);
        out += ", \"latency_ns\": " + u64_str(lat) +
               ", \"grace_spins\": " + std::to_string(rec.grace->c);
      }
      if (rec.work != nullptr) {
        const std::uint64_t work =
            static_cast<std::uint64_t>(rec.work->a) |
            (static_cast<std::uint64_t>(rec.work->b) << 32);
        out += ", \"work_ns\": " + u64_str(work);
      }
      out += ", \"adopts\": " + std::to_string(rec.adopts) + "}";
    }
    out += "\n],\n";
  }

  out += "\"spliceAnomalies\": [";
  for (std::size_t i = 0; i < in.anomalies.anomalies.size(); ++i) {
    const Anomaly& a = in.anomalies.anomalies[i];
    if (i != 0) out += ",";
    out += "\n  {\"kind\": " + json_quote(anomaly_kind_name(a.kind)) +
           ", \"run\": " + std::to_string(a.run) +
           ", \"seed\": " + u64_str(a.seed) + ", \"p\": " + json_double(a.p) +
           ", \"trial\": " + std::to_string(a.trial) +
           ", \"k\": " + std::to_string(a.k) +
           ", \"src\": " + std::to_string(a.src) +
           ", \"dst\": " + std::to_string(a.dst) +
           ", \"bits_lo\": " + u64_str(a.bits_lo) +
           ", \"bits_hi\": " + u64_str(a.bits_hi) +
           ", \"attempts\": " + std::to_string(a.attempts) +
           ", \"hops\": " + std::to_string(a.hops) +
           ", \"stretch\": " + json_double(a.stretch) +
           ", \"aux\": " + u64_str(a.aux) +
           ", \"variant\": " + std::to_string(a.variant) +
           ", \"t_ns\": " + u64_str(a.t_ns) +
           ", \"fib_epoch\": " + u64_str(a.fib_epoch) + "}";
  }
  out += "\n],\n";

  out += "\"spliceRuns\": [";
  for (std::size_t i = 0; i < in.anomalies.runs.size(); ++i) {
    const AnomalyRun& r = in.anomalies.runs[i];
    if (i != 0) out += ",";
    out += "\n  {\"index\": " + std::to_string(r.index) + ", \"params\": {";
    for (std::size_t j = 0; j < r.params.size(); ++j) {
      if (j != 0) out += ", ";
      out += json_quote(r.params[j].first) + ": " +
             json_quote(r.params[j].second);
    }
    out += "}}";
  }
  out += "\n],\n";

  if (!in.health_body.empty()) {
    out += "\"spliceHealth\": {\n" + in.health_body + "\n},\n";
  }
  if (!in.slo_body.empty()) {
    out += "\"spliceSlo\": {\n" + in.slo_body + "\n},\n";
  }
  if (!in.links_body.empty()) {
    out += "\"spliceLinks\": {\n" + in.links_body + "\n},\n";
  }

  out += "\"spliceMeta\": {";
  bool first = true;
  const auto meta_entry = [&](const std::string& k, const std::string& raw) {
    if (!first) out += ", ";
    first = false;
    out += json_quote(k) + ": " + raw;
  };
  for (const auto& [k, v] : in.meta) meta_entry(k, json_quote(v));
  for (const auto& [k, v] : in.anomalies.context) {
    meta_entry("context." + k, json_quote(v));
  }
  meta_entry("recorder_events", std::to_string(in.recorder.events.size()));
  meta_entry("recorder_dropped", std::to_string(in.recorder.dropped));
  meta_entry("anomaly_count",
             std::to_string(in.anomalies.anomalies.size()));
  meta_entry("anomaly_dropped", std::to_string(in.anomalies.dropped));
  out += "}\n}\n";
  return out;
}

bool write_trace(const TraceInputs& in, const std::string& path) {
  return write_file(path, trace_json(in));
}

}  // namespace splice::obs
