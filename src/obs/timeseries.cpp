#include "obs/timeseries.h"

namespace splice::obs {

namespace {

/// First absolute bucket of the window ending at `abs_now` (clamped at the
/// epoch so early reads never wrap below zero).
std::uint64_t window_start(std::uint64_t abs_now, int buckets) noexcept {
  const auto span = static_cast<std::uint64_t>(buckets - 1);
  return abs_now >= span ? abs_now - span : 0;
}

}  // namespace

void RollingSeriesArray::configure(std::size_t n, const WindowConfig& cfg) {
  SPLICE_EXPECTS(cfg.bucket_ns > 0);
  SPLICE_EXPECTS(cfg.buckets >= 1);
  cfg_ = cfg;
  n_ = n;
  const std::size_t cells = n * static_cast<std::size_t>(cfg.buckets);
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

std::uint64_t RollingSeriesArray::total(std::size_t i,
                                        std::uint64_t now_ns) const noexcept {
  SPLICE_EXPECTS(i < n_);
  const std::uint64_t abs_now = now_ns / cfg_.bucket_ns;
  std::uint64_t sum = 0;
  for (std::uint64_t abs = window_start(abs_now, cfg_.buckets);
       abs <= abs_now; ++abs) {
    sum += ts_detail::cell_read(cell(i, abs), abs);
  }
  return sum;
}

void RollingSeriesArray::sample(std::size_t i, std::uint64_t now_ns,
                                std::vector<std::uint64_t>& out) const {
  SPLICE_EXPECTS(i < n_);
  const std::uint64_t abs_now = now_ns / cfg_.bucket_ns;
  out.assign(static_cast<std::size_t>(cfg_.buckets), 0);
  const std::uint64_t start = window_start(abs_now, cfg_.buckets);
  for (std::uint64_t abs = start; abs <= abs_now; ++abs) {
    // Oldest first; buckets before the epoch stay zero.
    const std::size_t slot =
        out.size() - 1 - static_cast<std::size_t>(abs_now - abs);
    out[slot] = ts_detail::cell_read(cell(i, abs), abs);
  }
}

void RollingSeriesArray::reset() noexcept {
  const std::size_t cells = n_ * static_cast<std::size_t>(cfg_.buckets);
  for (std::size_t i = 0; i < cells; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

void RollingHistogram::configure(const WindowConfig& cfg, double lo,
                                 double hi, int bins) {
  SPLICE_EXPECTS(cfg.bucket_ns > 0);
  SPLICE_EXPECTS(cfg.buckets >= 1);
  SPLICE_EXPECTS(bins >= 1);
  SPLICE_EXPECTS(hi > lo);
  cfg_ = cfg;
  lo_ = lo;
  hi_ = hi;
  bins_ = bins;
  const std::size_t cells = static_cast<std::size_t>(cfg.buckets) *
                            static_cast<std::size_t>(bins);
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

void RollingHistogram::merged_into(std::uint64_t now_ns,
                                   Histogram& out) const {
  SPLICE_EXPECTS(bins_ >= 1);
  out.reset_shape(lo_, hi_, bins_);
  const std::uint64_t abs_now = now_ns / cfg_.bucket_ns;
  for (std::uint64_t abs = window_start(abs_now, cfg_.buckets);
       abs <= abs_now; ++abs) {
    for (int b = 0; b < bins_; ++b) {
      const auto c =
          static_cast<long long>(ts_detail::cell_read(cell(abs, b), abs));
      if (c != 0) out.add_count(b, c);
    }
  }
  // Midpoint-reconstructed sum: deterministic, and percentile queries (the
  // only consumers of rolling windows) never read it.
  double sum = 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(bins_);
  for (int b = 0; b < bins_; ++b) {
    sum += static_cast<double>(out.count(b)) *
           (lo_ + width * (static_cast<double>(b) + 0.5));
  }
  out.set_sum(sum);
}

Histogram RollingHistogram::merged(std::uint64_t now_ns) const {
  Histogram out(lo_, hi_, bins_);
  merged_into(now_ns, out);
  return out;
}

void RollingHistogram::reset() noexcept {
  const std::size_t cells = static_cast<std::size_t>(cfg_.buckets) *
                            static_cast<std::size_t>(bins_);
  for (std::size_t i = 0; i < cells; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace splice::obs
