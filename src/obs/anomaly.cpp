#include "obs/anomaly.h"

#include <algorithm>
#include <tuple>

#include "obs/clock.h"
#include "obs/health.h"

namespace splice::obs {

#if SPLICE_OBS
std::atomic<bool> AnomalyLedger::enabled_{false};
#endif

const char* anomaly_kind_name(AnomalyKind k) noexcept {
  switch (k) {
    case AnomalyKind::kTwoHopLoop:
      return "two_hop_loop";
    case AnomalyKind::kRevisitLoop:
      return "revisit_loop";
    case AnomalyKind::kTtlExpired:
      return "ttl_expired";
    case AnomalyKind::kHighStretch:
      return "high_stretch";
    case AnomalyKind::kMicroLoop:
      return "micro_loop";
    case AnomalyKind::kBlackhole:
      return "blackhole";
  }
  return "unknown";
}

AnomalyLedger& AnomalyLedger::global() {
  static AnomalyLedger instance;
  return instance;
}

std::uint32_t AnomalyLedger::begin_run(
    std::vector<std::pair<std::string, std::string>> params) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  AnomalyRun run;
  run.index = static_cast<std::uint32_t>(runs_.size());
  run.params = std::move(params);
  runs_.push_back(std::move(run));
  current_run_ = runs_.back().index;
  return current_run_;
}

void AnomalyLedger::add_context(const std::string& key,
                                const std::string& value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : context_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  context_.emplace_back(key, value);
}

void AnomalyLedger::record(const Anomaly& a) {
  if (!enabled()) return;
  // Live health hook: every anomaly kind degrades its destination's route
  // health, so the ledger's single entry point doubles as the scorer's
  // anomaly feed (kept outside the ledger mutex — the hook is lock-free).
  if (RouteHealth::enabled()) {
    RouteHealth::global().record_anomaly(clock_now_ns(), a.dst);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (anomalies_.size() >= capacity_.load(std::memory_order_relaxed)) {
    ++dropped_;
    return;
  }
  anomalies_.push_back(a);
  anomalies_.back().run = current_run_;
}

AnomalySnapshot AnomalyLedger::snapshot() const {
  AnomalySnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.anomalies = anomalies_;
    snap.runs = runs_;
    snap.context = context_;
    snap.dropped = dropped_;
  }
  // Canonical order: a pure function of the anomaly set, not of the
  // thread interleaving that recorded it.
  std::stable_sort(snap.anomalies.begin(), snap.anomalies.end(),
                   [](const Anomaly& x, const Anomaly& y) {
                     return std::tie(x.run, x.p, x.trial, x.k, x.src, x.dst,
                                     x.kind, x.variant) <
                            std::tie(y.run, y.p, y.trial, y.k, y.src, y.dst,
                                     y.kind, y.variant);
                   });
  return snap;
}

std::size_t AnomalyLedger::count(std::size_t run, AnomalyKind kind,
                                 std::uint32_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Anomaly& a : anomalies_) {
    if (run != kAnyRun && a.run != run) continue;
    if (static_cast<std::uint16_t>(kind) != 0 && a.kind != kind) continue;
    if (k != 0 && a.k != k) continue;
    ++n;
  }
  return n;
}

void AnomalyLedger::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  anomalies_.clear();
  runs_.clear();
  context_.clear();
  dropped_ = 0;
  current_run_ = 0;
}

}  // namespace splice::obs
