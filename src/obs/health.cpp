#include "obs/health.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/export.h"
#include "obs/slo.h"
#include "util/assert.h"

namespace splice::obs {

#if SPLICE_OBS
std::atomic<bool> RouteHealth::enabled_{false};
#endif

RouteHealth& RouteHealth::global() {
  static RouteHealth instance;
  return instance;
}

void RouteHealth::configure(std::uint32_t n_dsts, const HealthConfig& cfg) {
  SPLICE_EXPECTS(cfg.window.bucket_ns > 0);
  SPLICE_EXPECTS(cfg.window.buckets >= 1);
  cfg_ = cfg;
  n_dsts_ = n_dsts;
  dst_sent_.configure(n_dsts, cfg.window);
  dst_delivered_.configure(n_dsts, cfg.window);
  dst_anomalies_.configure(n_dsts, cfg.window);
  dst_churn_.configure(n_dsts, cfg.window);
  sent_.configure(cfg.window);
  delivered_.configure(cfg.window);
  anomalies_.configure(cfg.window);
  publishes_.configure(cfg.window);
  reconv_latency_us_.configure(cfg.window, cfg.latency_lo_us,
                               cfg.latency_hi_us, cfg.latency_bins);
  publish_work_us_.configure(cfg.window, cfg.latency_lo_us, cfg.latency_hi_us,
                             cfg.latency_bins);
}

void RouteHealth::record_outcome(std::uint64_t now_ns, std::uint32_t dst,
                                 bool delivered) noexcept {
  if (dst >= n_dsts_) return;
  dst_sent_.add(dst, now_ns, 1);
  if (delivered) dst_delivered_.add(dst, now_ns, 1);
}

void RouteHealth::record_fwd_batch(std::uint64_t now_ns, std::uint64_t total,
                                   std::uint64_t errors) noexcept {
  if (n_dsts_ == 0) return;
  sent_.add(now_ns, total);
  delivered_.add(now_ns, total - errors);
  if (SloEngine::enabled()) {
    SloEngine::global().record_fwd(now_ns, total, errors);
  }
}

void RouteHealth::record_anomaly(std::uint64_t now_ns,
                                 std::uint32_t dst) noexcept {
  if (n_dsts_ == 0) return;
  anomalies_.add(now_ns, 1);
  if (dst < n_dsts_) dst_anomalies_.add(dst, now_ns, 1);
}

void RouteHealth::record_publish(std::uint64_t now_ns,
                                 std::uint64_t latency_ns,
                                 std::uint64_t work_ns,
                                 std::span<const char> touched) noexcept {
  if (n_dsts_ == 0) return;
  publishes_.add(now_ns, 1);
  reconv_latency_us_.observe(now_ns, static_cast<double>(latency_ns) * 1e-3);
  publish_work_us_.observe(now_ns, static_cast<double>(work_ns) * 1e-3);
  const std::size_t n =
      std::min<std::size_t>(touched.size(), static_cast<std::size_t>(n_dsts_));
  for (std::size_t d = 0; d < n; ++d) {
    if (touched[d] != 0) dst_churn_.add(d, now_ns, 1);
  }
  if (SloEngine::enabled()) {
    SloEngine::global().record_publish(now_ns, latency_ns);
  }
}

int RouteHealth::score(std::uint64_t sent, std::uint64_t delivered,
                       std::uint64_t anomalies,
                       std::uint64_t churn) noexcept {
  std::uint64_t penalty = 0;
  if (sent > 0) {
    const std::uint64_t lost = sent > delivered ? sent - delivered : 0;
    penalty += 60 * lost / sent;
  }
  penalty += std::min<std::uint64_t>(25, 5 * anomalies);
  penalty += std::min<std::uint64_t>(15, 3 * churn);
  return penalty >= 100 ? 0 : static_cast<int>(100 - penalty);
}

HealthSnapshot RouteHealth::snapshot_at(std::uint64_t now_ns) const {
  HealthSnapshot snap;
  snap.now_ns = now_ns;
  snap.window = cfg_.window;
  if (n_dsts_ == 0) {
    snap.reconv_latency_us =
        Histogram(cfg_.latency_lo_us, cfg_.latency_hi_us, cfg_.latency_bins);
    snap.publish_work_us =
        Histogram(cfg_.latency_lo_us, cfg_.latency_hi_us, cfg_.latency_bins);
    return snap;
  }
  for (std::uint32_t d = 0; d < n_dsts_; ++d) {
    DstHealth row;
    row.dst = d;
    row.sent = dst_sent_.total(d, now_ns);
    row.delivered = dst_delivered_.total(d, now_ns);
    row.anomalies = dst_anomalies_.total(d, now_ns);
    row.churn = dst_churn_.total(d, now_ns);
    if (row.sent == 0 && row.anomalies == 0 && row.churn == 0) continue;
    row.score = score(row.sent, row.delivered, row.anomalies, row.churn);
    dst_sent_.sample(d, now_ns, row.sent_buckets);
    dst_delivered_.sample(d, now_ns, row.delivered_buckets);
    snap.dsts.push_back(std::move(row));
  }
  sent_.sample(now_ns, snap.sent_buckets);
  delivered_.sample(now_ns, snap.delivered_buckets);
  anomalies_.sample(now_ns, snap.anomaly_buckets);
  publishes_.sample(now_ns, snap.publish_buckets);
  snap.reconv_latency_us = reconv_latency_us_.merged(now_ns);
  snap.publish_work_us = publish_work_us_.merged(now_ns);
  snap.publishes = publishes_.total(now_ns);
  return snap;
}

HealthSnapshot RouteHealth::snapshot() const {
  return snapshot_at(clock_now_ns());
}

void RouteHealth::reset() {
  if (n_dsts_ == 0) return;
  dst_sent_.reset();
  dst_delivered_.reset();
  dst_anomalies_.reset();
  dst_churn_.reset();
  sent_.reset();
  delivered_.reset();
  anomalies_.reset();
  publishes_.reset();
  reconv_latency_us_.reset();
  publish_work_us_.reset();
}

namespace {

std::string u64_str(std::uint64_t v) { return json_quote(std::to_string(v)); }

std::string bucket_array(const std::vector<std::uint64_t>& buckets) {
  std::string out = "[";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(buckets[i]);
  }
  out += "]";
  return out;
}

std::string hist_body(const Histogram& h) {
  std::string out = "{\"lo\": " + json_double(h.lo()) +
                    ", \"hi\": " + json_double(h.hi()) +
                    ", \"total\": " + std::to_string(h.total()) +
                    ", \"counts\": [";
  for (int b = 0; b < h.bins(); ++b) {
    if (b != 0) out += ", ";
    out += std::to_string(h.count(b));
  }
  out += "]}";
  return out;
}

}  // namespace

std::string health_json_body(const HealthSnapshot& snap) {
  std::string out = "\"now_ns\": " + u64_str(snap.now_ns) +
                    ",\n\"window\": {\"bucket_ns\": " +
                    std::to_string(snap.window.bucket_ns) +
                    ", \"buckets\": " + std::to_string(snap.window.buckets) +
                    "},\n\"dsts\": [";
  for (std::size_t i = 0; i < snap.dsts.size(); ++i) {
    const DstHealth& d = snap.dsts[i];
    if (i != 0) out += ",";
    out += "\n  {\"dst\": " + std::to_string(d.dst) +
           ", \"score\": " + std::to_string(d.score) +
           ", \"sent\": " + std::to_string(d.sent) +
           ", \"delivered\": " + std::to_string(d.delivered) +
           ", \"anomalies\": " + std::to_string(d.anomalies) +
           ", \"churn\": " + std::to_string(d.churn) +
           ", \"sent_buckets\": " + bucket_array(d.sent_buckets) +
           ", \"delivered_buckets\": " + bucket_array(d.delivered_buckets) +
           "}";
  }
  out += "\n],\n\"sent_buckets\": " + bucket_array(snap.sent_buckets) +
         ",\n\"delivered_buckets\": " + bucket_array(snap.delivered_buckets) +
         ",\n\"anomaly_buckets\": " + bucket_array(snap.anomaly_buckets) +
         ",\n\"publish_buckets\": " + bucket_array(snap.publish_buckets) +
         ",\n\"publishes\": " + std::to_string(snap.publishes) +
         ",\n\"reconv_latency_us\": " + hist_body(snap.reconv_latency_us) +
         ",\n\"publish_work_us\": " + hist_body(snap.publish_work_us);
  return out;
}

}  // namespace splice::obs
