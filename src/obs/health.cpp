#include "obs/health.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/export.h"
#include "obs/slo.h"
#include "util/assert.h"

namespace splice::obs {

#if SPLICE_OBS
std::atomic<bool> RouteHealth::enabled_{false};
#endif

RouteHealth& RouteHealth::global() {
  static RouteHealth instance;
  return instance;
}

void RouteHealth::configure(std::uint32_t n_dsts, const HealthConfig& cfg) {
  SPLICE_EXPECTS(cfg.window.bucket_ns > 0);
  SPLICE_EXPECTS(cfg.window.buckets >= 1);
  cfg_ = cfg;
  n_dsts_ = n_dsts;
  dst_sent_.configure(n_dsts, cfg.window);
  dst_delivered_.configure(n_dsts, cfg.window);
  dst_anomalies_.configure(n_dsts, cfg.window);
  dst_churn_.configure(n_dsts, cfg.window);
  sent_.configure(cfg.window);
  delivered_.configure(cfg.window);
  anomalies_.configure(cfg.window);
  publishes_.configure(cfg.window);
  reconv_latency_us_.configure(cfg.window, cfg.latency_lo_us,
                               cfg.latency_hi_us, cfg.latency_bins);
  publish_work_us_.configure(cfg.window, cfg.latency_lo_us, cfg.latency_hi_us,
                             cfg.latency_bins);
}

void RouteHealth::record_outcome(std::uint64_t now_ns, std::uint32_t dst,
                                 bool delivered) noexcept {
  if (dst >= n_dsts_) return;
  dst_sent_.add(dst, now_ns, 1);
  if (delivered) dst_delivered_.add(dst, now_ns, 1);
}

void RouteHealth::record_fwd_batch(std::uint64_t now_ns, std::uint64_t total,
                                   std::uint64_t errors) noexcept {
  if (n_dsts_ == 0) return;
  sent_.add(now_ns, total);
  delivered_.add(now_ns, total - errors);
  if (SloEngine::enabled()) {
    SloEngine::global().record_fwd(now_ns, total, errors);
  }
}

void RouteHealth::record_anomaly(std::uint64_t now_ns,
                                 std::uint32_t dst) noexcept {
  if (n_dsts_ == 0) return;
  anomalies_.add(now_ns, 1);
  if (dst < n_dsts_) dst_anomalies_.add(dst, now_ns, 1);
}

void RouteHealth::record_publish(std::uint64_t now_ns,
                                 std::uint64_t latency_ns,
                                 std::uint64_t work_ns,
                                 std::span<const char> touched) noexcept {
  if (n_dsts_ == 0) return;
  publishes_.add(now_ns, 1);
  reconv_latency_us_.observe(now_ns, static_cast<double>(latency_ns) * 1e-3);
  publish_work_us_.observe(now_ns, static_cast<double>(work_ns) * 1e-3);
  const std::size_t n =
      std::min<std::size_t>(touched.size(), static_cast<std::size_t>(n_dsts_));
  for (std::size_t d = 0; d < n; ++d) {
    if (touched[d] != 0) dst_churn_.add(d, now_ns, 1);
  }
  if (SloEngine::enabled()) {
    SloEngine::global().record_publish(now_ns, latency_ns);
  }
}

int RouteHealth::score(std::uint64_t sent, std::uint64_t delivered,
                       std::uint64_t anomalies,
                       std::uint64_t churn) noexcept {
  std::uint64_t penalty = 0;
  if (sent > 0) {
    const std::uint64_t lost = sent > delivered ? sent - delivered : 0;
    penalty += 60 * lost / sent;
  }
  penalty += std::min<std::uint64_t>(25, 5 * anomalies);
  penalty += std::min<std::uint64_t>(15, 3 * churn);
  return penalty >= 100 ? 0 : static_cast<int>(100 - penalty);
}

void RouteHealth::snapshot_into(std::uint64_t now_ns,
                                HealthSnapshot& out) const {
  out.now_ns = now_ns;
  out.window = cfg_.window;
  if (n_dsts_ == 0) {
    out.dsts.clear();
    out.sent_buckets.clear();
    out.delivered_buckets.clear();
    out.anomaly_buckets.clear();
    out.publish_buckets.clear();
    out.reconv_latency_us.reset_shape(cfg_.latency_lo_us, cfg_.latency_hi_us,
                                      cfg_.latency_bins);
    out.publish_work_us.reset_shape(cfg_.latency_lo_us, cfg_.latency_hi_us,
                                    cfg_.latency_bins);
    out.publishes = 0;
    return;
  }
  // Grow-or-reuse row storage: under a stable active destination set the
  // loop rewrites rows in place and never allocates.
  std::size_t rows = 0;
  for (std::uint32_t d = 0; d < n_dsts_; ++d) {
    const std::uint64_t sent = dst_sent_.total(d, now_ns);
    const std::uint64_t delivered = dst_delivered_.total(d, now_ns);
    const std::uint64_t anomalies = dst_anomalies_.total(d, now_ns);
    const std::uint64_t churn = dst_churn_.total(d, now_ns);
    if (sent == 0 && anomalies == 0 && churn == 0) continue;
    if (rows == out.dsts.size()) out.dsts.emplace_back();
    DstHealth& row = out.dsts[rows];
    row.dst = d;
    row.sent = sent;
    row.delivered = delivered;
    row.anomalies = anomalies;
    row.churn = churn;
    row.score = score(sent, delivered, anomalies, churn);
    dst_sent_.sample(d, now_ns, row.sent_buckets);
    dst_delivered_.sample(d, now_ns, row.delivered_buckets);
    ++rows;
  }
  if (out.dsts.size() > rows) out.dsts.resize(rows);
  sent_.sample(now_ns, out.sent_buckets);
  delivered_.sample(now_ns, out.delivered_buckets);
  anomalies_.sample(now_ns, out.anomaly_buckets);
  publishes_.sample(now_ns, out.publish_buckets);
  reconv_latency_us_.merged_into(now_ns, out.reconv_latency_us);
  publish_work_us_.merged_into(now_ns, out.publish_work_us);
  out.publishes = publishes_.total(now_ns);
}

HealthSnapshot RouteHealth::snapshot_at(std::uint64_t now_ns) const {
  HealthSnapshot snap;
  snapshot_into(now_ns, snap);
  return snap;
}

HealthSnapshot RouteHealth::snapshot() const {
  return snapshot_at(clock_now_ns());
}

void RouteHealth::reset() {
  if (n_dsts_ == 0) return;
  dst_sent_.reset();
  dst_delivered_.reset();
  dst_anomalies_.reset();
  dst_churn_.reset();
  sent_.reset();
  delivered_.reset();
  anomalies_.reset();
  publishes_.reset();
  reconv_latency_us_.reset();
  publish_work_us_.reset();
}

namespace {

void append_u64_str(std::string& out, std::uint64_t v) {
  out += '"';
  json_append_u64(out, v);
  out += '"';
}

void append_bucket_array(std::string& out,
                         const std::vector<std::uint64_t>& buckets) {
  out += "[";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (i != 0) out += ", ";
    json_append_u64(out, buckets[i]);
  }
  out += "]";
}

void append_hist_body(std::string& out, const Histogram& h) {
  out += "{\"lo\": ";
  json_append_double(out, h.lo());
  out += ", \"hi\": ";
  json_append_double(out, h.hi());
  out += ", \"total\": ";
  json_append_i64(out, h.total());
  out += ", \"counts\": [";
  for (int b = 0; b < h.bins(); ++b) {
    if (b != 0) out += ", ";
    json_append_i64(out, h.count(b));
  }
  out += "]}";
}

}  // namespace

void health_json_append(std::string& out, const HealthSnapshot& snap) {
  out += "\"now_ns\": ";
  append_u64_str(out, snap.now_ns);
  out += ",\n\"window\": {\"bucket_ns\": ";
  json_append_u64(out, snap.window.bucket_ns);
  out += ", \"buckets\": ";
  json_append_i64(out, snap.window.buckets);
  out += "},\n\"dsts\": [";
  for (std::size_t i = 0; i < snap.dsts.size(); ++i) {
    const DstHealth& d = snap.dsts[i];
    if (i != 0) out += ",";
    out += "\n  {\"dst\": ";
    json_append_u64(out, d.dst);
    out += ", \"score\": ";
    json_append_i64(out, d.score);
    out += ", \"sent\": ";
    json_append_u64(out, d.sent);
    out += ", \"delivered\": ";
    json_append_u64(out, d.delivered);
    out += ", \"anomalies\": ";
    json_append_u64(out, d.anomalies);
    out += ", \"churn\": ";
    json_append_u64(out, d.churn);
    out += ", \"sent_buckets\": ";
    append_bucket_array(out, d.sent_buckets);
    out += ", \"delivered_buckets\": ";
    append_bucket_array(out, d.delivered_buckets);
    out += "}";
  }
  out += "\n],\n\"sent_buckets\": ";
  append_bucket_array(out, snap.sent_buckets);
  out += ",\n\"delivered_buckets\": ";
  append_bucket_array(out, snap.delivered_buckets);
  out += ",\n\"anomaly_buckets\": ";
  append_bucket_array(out, snap.anomaly_buckets);
  out += ",\n\"publish_buckets\": ";
  append_bucket_array(out, snap.publish_buckets);
  out += ",\n\"publishes\": ";
  json_append_u64(out, snap.publishes);
  out += ",\n\"reconv_latency_us\": ";
  append_hist_body(out, snap.reconv_latency_us);
  out += ",\n\"publish_work_us\": ";
  append_hist_body(out, snap.publish_work_us);
}

std::string health_json_body(const HealthSnapshot& snap) {
  std::string out;
  health_json_append(out, snap);
  return out;
}

}  // namespace splice::obs
