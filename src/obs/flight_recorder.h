// Flight recorder: per-thread fixed-size binary event rings for event-level
// tracing — the layer below obs/metrics.h's aggregates. Where the registry
// answers "how many / how long", the recorder answers "which packet, which
// slice, which hop".
//
// Record path. Each recording thread owns one SPSC ring (registered under a
// mutex on its first event, never touched by another producer). Recording
// is: one enabled() check, a thread-local ring lookup, one bounds check and
// a 48-byte store — no locks, no allocation. When the ring is full new
// events are *dropped* and counted; the recorder never blocks or reallocs
// on the hot path. When the recorder is disabled every instrumentation
// site costs one relaxed load + branch, and -DSPLICE_OBS=OFF compiles the
// hooks out entirely (the class stays available so tooling links).
//
// Draining. drain() snapshots and consumes every ring's published events.
// Producers may keep recording while a drain runs (head is released per
// event), but the intended discipline is to drain at quiescent points — a
// bench's emit(), a test's join — where no walk is mid-flight.
//
// Determinism contract (sampled packet walks). Whether a walk is captured
// is a pure function of its deterministic walk id — built from the trial
// substream seed (sim/trial_engine.h's trial_substream_seed) and the walk's
// (k, src, dst) — never of the thread running it. So the *set* of sampled
// walk events is bit-identical at every thread count; only their
// distribution across rings varies, and sort_deterministic() restores the
// canonical (key, seq) order. Wall-clock timestamps ride along for the
// trace view but sit outside the contract, like span timings. Ring
// overflow drops are the one escape hatch: a drop pattern depends on ring
// occupancy and therefore on threading — size rings so determinism-gated
// workloads do not drop (drops are always counted, never silent).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/rng.h"

namespace splice::obs {

/// Binary event record. 48 bytes, POD; field meaning depends on `type`.
enum class EventType : std::uint16_t {
  kPhaseBegin = 1,  ///< key=name id, time set, a=unused
  kPhaseEnd = 2,    ///< key=name id, time set
  kSptRepair = 3,   ///< a=edge, b=trees repaired, c=trees rebuilt,
                    ///< d=nodes touched, flags=trees untouched
  kTrialBegin = 4,  ///< key=a=trial index, time set
  kTrialEnd = 5,    ///< key=a=trial index, time set
  kWalkBegin = 6,   ///< key=walk id, a=src, b=dst, c=k, d=header splice
                    ///< hops, flags=attempt index
  kWalkHop = 7,     ///< key=walk id, a=node, b=slice, c=next, d=edge,
                    ///< flags bit0=deflected, bits 1..15=bits consumed
  kWalkEnd = 8,     ///< key=walk id, a=outcome, b=hops, c|d=cost bits,
                    ///< flags bit0=deflected, bits 1..15=attempt index
  kEpochPublish = 9,  ///< key=epoch, a=edge, b=dsts patched, c=trees
                      ///< repaired+rebuilt, flags bit0=link alive
  kEpochAdopt = 10,   ///< key=epoch (snapshot version), a=reader slot
  kEpochGrace = 11,   ///< key=epoch, a|b=lo|hi latency_ns (ingest->grace),
                      ///< c=grace spins
  kEpochWork = 12,    ///< key=epoch, a|b=lo|hi work_ns (publish work,
                      ///< grace wait excluded)
  kSloBurnWarn = 13,  ///< key=slo index, a=fast burn (milli), b=slow burn
  kSloBurnPage = 14,  ///< same encoding; page threshold crossed
};

struct RecorderEvent {
  std::uint64_t key = 0;      ///< deterministic stream key (see EventType)
  std::uint64_t time_ns = 0;  ///< wall clock; outside the determinism contract
  std::uint32_t seq = 0;      ///< per-key sequence number (walk events)
  std::uint32_t tid = 0;      ///< recording ring index (stable per thread)
  std::uint16_t type = 0;
  std::uint16_t flags = 0;
  std::uint32_t a = 0, b = 0, c = 0, d = 0;
};
static_assert(sizeof(RecorderEvent) == 48);

/// RecorderEvent::flags encoding for walk hops.
inline constexpr std::uint16_t kWalkFlagDeflected = 1u;
inline constexpr int kWalkFlagBitsShift = 1;

struct RecorderSnapshot {
  /// All drained events, ring by ring in registration order (per-ring
  /// publication order is preserved within each ring's run).
  std::vector<RecorderEvent> events;
  /// Interned phase-name table: names[key] for phase events.
  std::vector<std::string> names;
  /// Total events dropped on full rings since the last reset.
  std::uint64_t dropped = 0;
};

/// Canonical order for determinism comparisons and export: walk events by
/// (key, seq), everything else by (time, tid, type). Stable within ties.
void sort_deterministic(std::vector<RecorderEvent>& events);

class FlightRecorder {
 public:
  static FlightRecorder& global();

  /// Runtime switch; every hook opens with this relaxed load + branch.
  static bool enabled() noexcept {
#if SPLICE_OBS
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }
  static void set_enabled(bool on) noexcept {
#if SPLICE_OBS
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
  }

  /// Per-thread ring capacity in events (rounded up to a power of two).
  /// Applies to rings registered after the call; set before enabling.
  void set_ring_capacity(std::size_t events);
  std::size_t ring_capacity() const noexcept;

  /// Sampled-walk rate: capture 1 in `n` walks (1 = every walk, 0 = none).
  /// The decision is a pure hash of the walk id — see the header comment.
  void set_walk_sample_every(std::uint64_t n) noexcept;
  std::uint64_t walk_sample_every() const noexcept;
  bool sample_walk(std::uint64_t walk_id) const noexcept;

  /// Interns a phase name; ids are dense and stable until reset().
  std::uint32_t intern(const char* name);

  /// Appends one event to the calling thread's ring (drop + count if full).
  void record(RecorderEvent ev) noexcept;

  /// Number of registered per-thread rings (test hook: stays 0 while the
  /// recorder is disabled — the record path must not even allocate a ring).
  std::size_t ring_count() const;

  /// Snapshots and consumes all published events.
  RecorderSnapshot drain();

  /// Drops buffered events, drop counts and the name table. Rings stay
  /// registered (thread-local pointers remain valid).
  void reset();

  // Phase / repair / trial convenience hooks (timestamped).
  void phase_begin(std::uint32_t name_id) noexcept;
  void phase_end(std::uint32_t name_id) noexcept;
  void spt_repair(std::uint32_t edge, std::uint32_t repaired,
                  std::uint32_t rebuilt, std::uint32_t nodes_touched,
                  std::uint16_t untouched) noexcept;
  void trial_begin(std::uint32_t trial) noexcept;
  void trial_end(std::uint32_t trial) noexcept;

  // Live-publication hooks (timestamped; see fib_publisher.h). The epoch
  // value doubles as the snapshot version — the publisher advances both in
  // lockstep, so adopt events match publish events by key.
  void epoch_publish(std::uint64_t epoch, std::uint32_t edge,
                     std::uint32_t dsts_patched, std::uint32_t trees_touched,
                     bool alive) noexcept;
  void epoch_adopt(std::uint64_t epoch, std::uint32_t reader_slot) noexcept;
  void epoch_grace(std::uint64_t epoch, std::uint64_t latency_ns,
                   std::uint64_t grace_spins) noexcept;
  void epoch_work(std::uint64_t epoch, std::uint64_t work_ns) noexcept;

  /// SLO burn alert (obs/slo.h): burn rates carried in milli-units,
  /// saturated at ~4.3M× so the u32 encoding never wraps.
  void slo_burn(bool page, std::uint32_t slo, double fast_burn,
                double slow_burn) noexcept;

 private:
  FlightRecorder();

  struct Ring;
  Ring& local_ring();

#if SPLICE_OBS
  static std::atomic<bool> enabled_;
#endif

  mutable std::mutex mu_;  ///< guards ring registration + name interning
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::string> names_;
  std::atomic<std::size_t> ring_capacity_{1u << 16};
  std::atomic<std::uint64_t> walk_sample_every_{64};
};

// ---------------------------------------------------------------------------
// Sampled walk capture. The experiment loop arms an episode with WalkScope;
// while armed, the forwarding core's hooks record per-attempt begin/end and
// per-hop (node, slice, deflection, bits-consumed) events. Arming state is
// thread-local, so concurrent trials on other workers are unaffected.
// ---------------------------------------------------------------------------

/// Deterministic walk id for one (trial, k, src, dst) episode. `trial_key`
/// must itself be a pure function of the trial (use trial_substream_seed).
inline std::uint64_t walk_id(std::uint64_t trial_key, std::uint64_t k,
                             std::uint64_t src, std::uint64_t dst) noexcept {
  return hash_mix(trial_key, (src << 32) | (dst & 0xffffffffULL), k);
}

/// True while the current thread has a sampled walk armed. This is the
/// per-hop guard in the forwarding core: a thread-local load + branch.
bool walk_capture_active() noexcept;

void walk_packet_begin(std::uint32_t src, std::uint32_t dst, std::uint32_t k,
                       std::uint32_t header_hops) noexcept;
void walk_hop(std::uint32_t node, std::uint32_t next, std::uint32_t slice,
              std::uint32_t edge, bool deflected,
              std::uint32_t bits_consumed) noexcept;
void walk_packet_end(std::uint32_t outcome, std::uint32_t hops, double cost,
                     bool deflected) noexcept;

/// Arms sampled-walk capture for the enclosing scope when the recorder is
/// enabled and `walk_id` hashes into the sample. Nestable (inner scope
/// shadows, restores on exit); cheap no-op when the recorder is disabled.
class WalkScope {
 public:
  explicit WalkScope(std::uint64_t walk_id) noexcept;
  ~WalkScope() noexcept;

  WalkScope(const WalkScope&) = delete;
  WalkScope& operator=(const WalkScope&) = delete;

  bool armed() const noexcept { return armed_; }

 private:
  std::uint64_t prev_id_ = 0;
  std::uint32_t prev_seq_ = 0;
  std::uint32_t prev_attempt_ = 0;
  bool prev_armed_ = false;
  bool armed_ = false;
};

}  // namespace splice::obs
