// Snapshot exporters: render a MetricsSnapshot / SpanSnapshot as an aligned
// util/table report, a JSON object body, or Prometheus text exposition.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/table.h"

namespace splice::obs {

/// "metric | type | value" rows, histograms summarized as
/// total/sum/p50/p99 edges.
Table metrics_table(const MetricsSnapshot& snap);

/// "phase | count | total_ms | mean_us" rows, indented by tree depth.
Table spans_table(const SpanSnapshot& snap);

/// JSON object *bodies* (no surrounding braces), so callers can splice them
/// into larger documents. Doubles use shortest-round-trip formatting.
///
///   "counters": {..}, "gauges": {..}, "histograms": {..}
std::string metrics_json_body(const MetricsSnapshot& snap);
///   "spans": [{"path":.., "count":.., "total_ns":..}, ..]
std::string spans_json_body(const SpanSnapshot& snap);

/// Prometheus text exposition format. Metric names are sanitized
/// ('.', '-', '/' -> '_') and prefixed with "splice_"; histograms expand to
/// cumulative _bucket{le=...} series plus _sum and _count; span totals
/// export as splice_span_seconds_{sum,count}{path="..."}.
std::string to_prometheus(const MetricsSnapshot& snap,
                          const SpanSnapshot& spans);

/// JSON-escapes and double-formats shared with bench output.
std::string json_quote(const std::string& s);
std::string json_double(double v);

}  // namespace splice::obs
