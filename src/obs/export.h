// Snapshot exporters: render a MetricsSnapshot / SpanSnapshot as an aligned
// util/table report, a JSON object body, or Prometheus text exposition.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/table.h"

namespace splice::obs {

/// "metric | type | value" rows, histograms summarized as
/// total/sum/p50/p99 edges.
Table metrics_table(const MetricsSnapshot& snap);

/// "phase | count | total_ms | mean_us" rows, indented by tree depth.
Table spans_table(const SpanSnapshot& snap);

/// JSON object *bodies* (no surrounding braces), so callers can splice them
/// into larger documents. Doubles use shortest-round-trip formatting.
///
///   "counters": {..}, "gauges": {..}, "histograms": {..}
std::string metrics_json_body(const MetricsSnapshot& snap);
///   "spans": [{"path":.., "count":.., "total_ns":..}, ..]
std::string spans_json_body(const SpanSnapshot& snap);

/// Prometheus text exposition format. Metric names are sanitized
/// ('.', '-', '/' -> '_') and prefixed with "splice_"; histograms expand to
/// cumulative _bucket{le=...} series plus _sum and _count; span totals
/// export as splice_span_seconds_{sum,count}{path="..."}.
std::string to_prometheus(const MetricsSnapshot& snap,
                          const SpanSnapshot& spans);

/// JSON-escapes and double-formats shared with bench output.
std::string json_quote(const std::string& s);
std::string json_double(double v);

// ---------------------------------------------------------------------------
// Allocation-free append primitives. The telemetry agent's publish path
// (obs/agent.h) serializes every snapshot through these into one reusable
// buffer: numbers go through std::to_chars into stack arrays, so once the
// destination string's capacity is warm a flush never touches the heap.
// Byte-compatible with json_quote/json_double/std::to_string.
// ---------------------------------------------------------------------------

void json_append_u64(std::string& out, std::uint64_t v);
void json_append_i64(std::string& out, long long v);
void json_append_double(std::string& out, double v);    // json_double bytes
void json_append_quoted(std::string& out, std::string_view s);  // json_quote

/// metrics_json_body, appended in place (same bytes).
void metrics_json_append(std::string& out, const MetricsSnapshot& snap);

/// Validates Prometheus text-exposition conformance — the same rules
/// obs_export_test enforces on to_prometheus() output: every sample line
/// belongs to a #TYPE-declared family; per histogram series, finite bucket
/// edges strictly increase, cumulative counts never decrease, the +Inf
/// bucket comes last and equals the family's _count sample. Used by
/// `splice_inspect scrape` to validate a live endpoint. Returns true when
/// clean; otherwise false with the first violation in *error.
bool prometheus_lint(const std::string& exposition, std::string* error);

}  // namespace splice::obs
