#include "obs/provenance.h"

#include <thread>

// Baked in by src/obs/CMakeLists.txt; defaults cover builds that bypass it.
#ifndef SPLICE_GIT_SHA
#define SPLICE_GIT_SHA "unknown"
#endif
#ifndef SPLICE_BUILD_TYPE
#define SPLICE_BUILD_TYPE "unknown"
#endif
#ifndef SPLICE_CXX_FLAGS
#define SPLICE_CXX_FLAGS ""
#endif
#ifndef SPLICE_OBS
#define SPLICE_OBS 1
#endif

namespace splice::obs {

std::vector<std::pair<std::string, std::string>> build_provenance() {
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("git_sha", SPLICE_GIT_SHA);
#if defined(__clang__) || defined(__GNUC__)
  out.emplace_back("compiler", __VERSION__);
#else
  out.emplace_back("compiler", "unknown");
#endif
  out.emplace_back("build_type", SPLICE_BUILD_TYPE);
  out.emplace_back("cxx_flags", SPLICE_CXX_FLAGS);
  out.emplace_back("splice_obs", SPLICE_OBS ? "on" : "off");
  out.emplace_back("hardware_threads",
                   std::to_string(std::thread::hardware_concurrency()));
  return out;
}

}  // namespace splice::obs
