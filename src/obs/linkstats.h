// Per-link × per-slice topology attribution on the forwarding hot path —
// the "where" layer of the observability stack. Route health (obs/health.h)
// scores destinations; this layer attributes every committed hop, every
// §4.3 deflection and every dead-end drop to the (slice, link) that carried
// or killed it, which is the signal Path Splicing's load-balance/hotspot
// evaluation needs and ROADMAP item 5's adaptive slice selection will
// consume.
//
// Record path. Forwarding threads do NOT touch shared state per hop.
// Each thread owns a LinkScratch: cache-aligned dense arrays of plain
// 32-bit counters indexed by slice * n_links + edge (the CSR arc id),
// plus a touched-cell list so a flush visits only the cells the batch
// wrote. The kernels call hit()/drop() per committed hop — two or three
// stores on thread-private lines — and flush() once per batch (the
// observe_binned discipline): each touched cell is merged into the global
// k × n_links atomic accumulators with relaxed fetch_adds and folded into
// the per-edge rolling series under one clock reading. Steady state is
// allocation-free: the scratch grows once to k × n_links and is reused.
//
// Determinism contract. The global accumulators are integers and merges
// are commutative, so window totals and snapshot_at(now) at a quiescent
// point are bit-identical at every writer thread count (test-enforced at
// 1/2/8 threads). Per-link cost ("stretch-sum") is NOT accumulated as a
// double on the hot path — it is derived at snapshot time as
// weight[edge] × traversals, which equals the hop-by-hop sum exactly
// (one constant weight per edge) without admitting FP reassociation.
//
// Gating. Callers check LinkStats::enabled() (one relaxed load + branch;
// constant false under -DSPLICE_OBS=OFF, so the kernel hooks fold away).
// configure() before set_enabled(true), at run setup, never concurrently
// with writers. Hooks on out-of-range ids are dropped by the same valve
// the health scorer uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace splice::obs {

struct LinkStatsConfig {
  /// Window geometry of the per-edge traversal/drop sparkline series.
  WindowConfig window{250'000'000, 8};  ///< 8 × 250 ms = 2 s
};

/// One link's attribution totals. `slice_traversals` has one entry per
/// slice; `trav_buckets`/`drop_buckets` carry the rolling window (oldest
/// first) for sparkline rendering.
struct LinkRow {
  std::uint32_t edge = 0;
  std::int32_t src = -1;  ///< endpoint node ids (-1 when no topology set)
  std::int32_t dst = -1;
  double weight = 0.0;
  std::uint64_t traversals = 0;
  std::uint64_t deflections = 0;  ///< hops that landed here via §4.3 recovery
  std::uint64_t drops = 0;        ///< dead ends where this was the dead primary
  /// Stretch-sum contribution: weight × traversals (see header comment).
  double cost = 0.0;
  std::vector<std::uint64_t> slice_traversals;
  std::vector<std::uint64_t> trav_buckets;
  std::vector<std::uint64_t> drop_buckets;
};

struct LinkSnapshot {
  std::uint64_t now_ns = 0;
  WindowConfig window{};
  std::uint32_t k = 0;
  std::uint32_t n_links = 0;
  std::uint64_t total_traversals = 0;
  std::uint64_t total_deflections = 0;
  std::uint64_t total_drops = 0;
  /// Links with any recorded activity, ascending edge id (canonical).
  std::vector<LinkRow> links;
};

class LinkStats {
 public:
  static LinkStats& global();

  /// Runtime switch consulted (by callers) before every hook.
  static bool enabled() noexcept {
#if SPLICE_OBS
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }
  static void set_enabled(bool on) noexcept {
#if SPLICE_OBS
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
  }

  /// Sizes the k × n_links accumulators and the per-edge series. Not
  /// thread-safe — call before enabling, at run setup. Hooks with
  /// edge >= n_links or slice >= k are ignored (the unconfigured valve).
  void configure(std::uint32_t n_links, std::uint32_t k,
                 const LinkStatsConfig& cfg = {});

  /// Edge endpoint/weight metadata for snapshots (copied; spans sized
  /// n_links or empty). Obs stays graph-free: callers pass raw arrays.
  void set_topology(std::span<const std::int32_t> edge_src,
                    std::span<const std::int32_t> edge_dst,
                    std::span<const double> edge_weight);

  std::uint32_t n_links() const noexcept { return n_links_; }
  std::uint32_t k() const noexcept { return k_; }
  const LinkStatsConfig& config() const noexcept { return cfg_; }
  /// Bumped by configure(); LinkScratch instances resize lazily when their
  /// cached generation goes stale.
  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  // -- merge path (called by LinkScratch::flush) ---------------------------

  /// Relaxed commutative adds into cell `idx` = slice * n_links + edge.
  void merge_cell(std::size_t idx, std::uint64_t traversals,
                  std::uint64_t deflections, std::uint64_t drops) noexcept;
  /// Folds one batch's per-edge totals into the rolling sparkline series.
  void series_add(std::uint32_t edge, std::uint64_t now_ns,
                  std::uint64_t traversals, std::uint64_t drops) noexcept;

  // -- read side -----------------------------------------------------------

  /// Canonical snapshot of everything recorded since reset(), window ending
  /// at `now_ns`. Bit-identical across writer thread counts at quiescent
  /// points.
  LinkSnapshot snapshot_at(std::uint64_t now_ns) const;
  /// snapshot_at(clock_now_ns()).
  LinkSnapshot snapshot() const;

  /// snapshot_at(), rebuilt into `out` reusing its row storage — same
  /// values, allocation-free once the active link set is stable (the
  /// telemetry agent's steady-state publish path).
  void snapshot_into(std::uint64_t now_ns, LinkSnapshot& out) const;

  /// Zeroes every accumulator and series (not thread-safe against writers;
  /// flush all scratches first).
  void reset();

 private:
  LinkStats() = default;

#if SPLICE_OBS
  static std::atomic<bool> enabled_;
#endif

  LinkStatsConfig cfg_{};
  std::uint32_t n_links_ = 0;
  std::uint32_t k_ = 0;
  std::atomic<std::uint64_t> generation_{0};

  // cell = slice * n_links + edge; three planes of k × n_links counters.
  std::unique_ptr<std::atomic<std::uint64_t>[]> traversals_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> deflections_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> drops_;

  RollingSeriesArray trav_series_;  // per edge
  RollingSeriesArray drop_series_;  // per edge

  std::vector<std::int32_t> edge_src_;
  std::vector<std::int32_t> edge_dst_;
  std::vector<double> edge_weight_;
};

/// Per-thread batch accumulator for the forwarding kernels. Obtain via
/// acquire() at batch start (nullptr when attribution is off — the hooks
/// then cost one branch), call hit()/drop() per hop, flush() once at batch
/// end with a single clock reading.
class alignas(64) LinkScratch {
 public:
  /// The calling thread's scratch, resized to the current LinkStats
  /// configuration; nullptr when LinkStats is disabled.
  static LinkScratch* acquire();

  void hit(std::uint32_t slice, std::uint32_t edge, bool deflected) noexcept {
    const std::size_t i =
        static_cast<std::size_t>(slice) * n_links_ + edge;
    if (slice >= k_ || edge >= n_links_) return;
    if ((trav_[i] | defl_[i] | drop_[i]) == 0) {
      touched_.push_back(static_cast<std::uint32_t>(i));
    }
    ++trav_[i];
    if (deflected) ++defl_[i];
  }

  /// A dead end whose primary (pre-recovery) FIB entry pointed at `edge`
  /// in `slice` — the dead link the packet was dropped on.
  void drop(std::uint32_t slice, std::uint32_t edge) noexcept {
    const std::size_t i =
        static_cast<std::size_t>(slice) * n_links_ + edge;
    if (slice >= k_ || edge >= n_links_) return;
    if ((trav_[i] | defl_[i] | drop_[i]) == 0) {
      touched_.push_back(static_cast<std::uint32_t>(i));
    }
    ++drop_[i];
  }

  /// Merges every touched cell into the global accumulators and the rolling
  /// series (all under the one `now_ns`), then zeroes the scratch.
  void flush(std::uint64_t now_ns) noexcept;

 private:
  void sync_generation();

  std::uint32_t n_links_ = 0;
  std::uint32_t k_ = 0;
  std::uint64_t generation_ = ~0ULL;
  std::vector<std::uint32_t> trav_;
  std::vector<std::uint32_t> defl_;
  std::vector<std::uint32_t> drop_;
  std::vector<std::uint32_t> touched_;
};

/// JSON object *body* (no surrounding braces) for a LinkSnapshot — the
/// payload behind the trace export's "spliceLinks" section and the
/// splice_top links snapshot file. u64s that may exceed 2^53 are decimal
/// strings.
std::string links_json_body(const LinkSnapshot& snap);

/// links_json_body, appended in place (same bytes; allocation-free once
/// `out`'s capacity is warm).
void links_json_append(std::string& out, const LinkSnapshot& snap);

/// Prometheus exposition families (splice_link_traversals_total,
/// splice_link_deflections_total, splice_link_drops_total, splice_link_cost)
/// labeled by edge id and endpoints. Appended to the .prom export when
/// LinkStats is enabled.
std::string links_prometheus(const LinkSnapshot& snap);

}  // namespace splice::obs
