#include "obs/slo.h"

#include <algorithm>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "util/assert.h"

namespace splice::obs {

#if SPLICE_OBS
std::atomic<bool> SloEngine::enabled_{false};
#endif

const char* slo_state_name(SloState s) noexcept {
  switch (s) {
    case SloState::kOk:
      return "ok";
    case SloState::kWarn:
      return "warn";
    case SloState::kPage:
      return "page";
  }
  return "?";
}

SloEngine& SloEngine::global() {
  static SloEngine instance;
  return instance;
}

void SloEngine::configure(const SloConfig& cfg) {
  SPLICE_EXPECTS(cfg.fwd_objective > 0.0 && cfg.fwd_objective < 1.0);
  SPLICE_EXPECTS(cfg.reconv_objective > 0.0 && cfg.reconv_objective < 1.0);
  SPLICE_EXPECTS(cfg.fast_buckets >= 1 && cfg.fast_buckets <= cfg.slow.buckets);
  SPLICE_EXPECTS(cfg.warn_burn > 0.0 && cfg.page_burn >= cfg.warn_burn);
  cfg_ = cfg;
  for (std::size_t s = 0; s < kSloCount; ++s) {
    totals_[s].configure(cfg.slow);
    errors_[s].configure(cfg.slow);
    last_state_[s] = SloState::kOk;
  }
}

void SloEngine::record_fwd(std::uint64_t now_ns, std::uint64_t total,
                           std::uint64_t errors) noexcept {
  if (!totals_[0].configured()) return;
  totals_[0].add(now_ns, total);
  if (errors != 0) errors_[0].add(now_ns, errors);
}

void SloEngine::record_publish(std::uint64_t now_ns,
                               std::uint64_t latency_ns) noexcept {
  if (!totals_[1].configured()) return;
  totals_[1].add(now_ns, 1);
  if (latency_ns > cfg_.reconv_threshold_ns) errors_[1].add(now_ns, 1);
}

namespace {

/// Sum of a series' last `n` buckets ending at now_ns (the fast suffix of
/// the slow ring). The sample scratch is thread-local so evaluations from
/// the telemetry agent's steady-state publish path stay allocation-free.
std::uint64_t suffix_total(const RollingCounter& c, std::uint64_t now_ns,
                           int n) {
  thread_local std::vector<std::uint64_t> buckets;
  c.sample(now_ns, buckets);
  std::uint64_t sum = 0;
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(n), buckets.size());
  for (std::size_t i = buckets.size() - take; i < buckets.size(); ++i) {
    sum += buckets[i];
  }
  return sum;
}

double burn_rate(std::uint64_t errors, std::uint64_t total, double budget) {
  if (total == 0) return 0.0;
  return (static_cast<double>(errors) / static_cast<double>(total)) / budget;
}

}  // namespace

void SloEngine::status_into(std::size_t slo, std::uint64_t now_ns,
                            SloStatus& st) const {
  st.name = slo == 0 ? "fwd_success" : "reconv_latency";
  st.objective = slo == 0 ? cfg_.fwd_objective : cfg_.reconv_objective;
  const double budget = 1.0 - st.objective;
  st.slow_total = totals_[slo].total(now_ns);
  st.slow_errors = errors_[slo].total(now_ns);
  st.fast_total = suffix_total(totals_[slo], now_ns, cfg_.fast_buckets);
  st.fast_errors = suffix_total(errors_[slo], now_ns, cfg_.fast_buckets);
  st.fast_burn = burn_rate(st.fast_errors, st.fast_total, budget);
  st.slow_burn = burn_rate(st.slow_errors, st.slow_total, budget);
  st.budget_remaining = 1.0 - burn_rate(st.slow_errors, st.slow_total, budget);
  // Both windows must agree: the fast window proves the burn is current,
  // the slow window proves it is material.
  if (st.fast_burn >= cfg_.page_burn && st.slow_burn >= cfg_.page_burn) {
    st.state = SloState::kPage;
  } else if (st.fast_burn >= cfg_.warn_burn &&
             st.slow_burn >= cfg_.warn_burn) {
    st.state = SloState::kWarn;
  } else {
    st.state = SloState::kOk;
  }
}

void SloEngine::peek_into(std::uint64_t now_ns, SloSnapshot& out) const {
  out.now_ns = now_ns;
  if (!totals_[0].configured()) {
    out.slos.clear();
    return;
  }
  out.slos.resize(kSloCount);
  for (std::size_t s = 0; s < kSloCount; ++s) {
    status_into(s, now_ns, out.slos[s]);
  }
}

SloSnapshot SloEngine::peek(std::uint64_t now_ns) const {
  SloSnapshot snap;
  peek_into(now_ns, snap);
  return snap;
}

SloSnapshot SloEngine::evaluate(std::uint64_t now_ns) {
  SloSnapshot snap = peek(now_ns);
  for (std::size_t s = 0; s < snap.slos.size(); ++s) {
    const SloState cur = snap.slos[s].state;
    // Alert on upward transitions only; recovery clears silently so a
    // flapping burn does not spam the recorder.
    if (cur > last_state_[s]) {
#if SPLICE_OBS
      if (FlightRecorder::enabled()) {
        FlightRecorder::global().slo_burn(cur == SloState::kPage,
                                          static_cast<std::uint32_t>(s),
                                          snap.slos[s].fast_burn,
                                          snap.slos[s].slow_burn);
      }
#endif
    }
    last_state_[s] = cur;
  }
  return snap;
}

void SloEngine::reset() {
  if (!totals_[0].configured()) return;
  for (std::size_t s = 0; s < kSloCount; ++s) {
    totals_[s].reset();
    errors_[s].reset();
    last_state_[s] = SloState::kOk;
  }
}

void slo_json_append(std::string& out, const SloSnapshot& snap) {
  out += "\"now_ns\": \"";
  json_append_u64(out, snap.now_ns);
  out += "\",\n\"slos\": [";
  for (std::size_t i = 0; i < snap.slos.size(); ++i) {
    const SloStatus& s = snap.slos[i];
    if (i != 0) out += ",";
    out += "\n  {\"name\": ";
    json_append_quoted(out, s.name);
    out += ", \"objective\": ";
    json_append_double(out, s.objective);
    out += ", \"state\": ";
    json_append_quoted(out, slo_state_name(s.state));
    out += ", \"fast_total\": ";
    json_append_u64(out, s.fast_total);
    out += ", \"fast_errors\": ";
    json_append_u64(out, s.fast_errors);
    out += ", \"slow_total\": ";
    json_append_u64(out, s.slow_total);
    out += ", \"slow_errors\": ";
    json_append_u64(out, s.slow_errors);
    out += ", \"fast_burn\": ";
    json_append_double(out, s.fast_burn);
    out += ", \"slow_burn\": ";
    json_append_double(out, s.slow_burn);
    out += ", \"budget_remaining\": ";
    json_append_double(out, s.budget_remaining);
    out += "}";
  }
  out += "\n]";
}

std::string slo_json_body(const SloSnapshot& snap) {
  std::string out;
  slo_json_append(out, snap);
  return out;
}

std::string health_snapshot_document(const HealthSnapshot& health,
                                     const SloSnapshot& slo,
                                     const std::string& links_body) {
  std::string out = "{\n\"spliceHealth\": {\n" + health_json_body(health) +
                    "\n},\n\"spliceSlo\": {\n" + slo_json_body(slo) + "\n}";
  if (!links_body.empty()) {
    out += ",\n\"spliceLinks\": {\n" + links_body + "\n}";
  }
  out += "\n}\n";
  return out;
}

}  // namespace splice::obs
