// Low-overhead metrics registry: named counters, gauges and fixed-bin
// histograms the whole stack reports through.
//
// Hot-path design. Counters and histograms are sharded across
// cache-line-aligned cells; a thread picks its shard once (thread-local)
// and increments with relaxed atomics, so instrumented code on the
// parallel_for / TrialEngine hot paths never contends on a shared line.
// snapshot() merges the shards in fixed shard order into plain values.
//
// Cost when off. Every instrumentation macro starts with a single relaxed
// load + branch (`MetricsRegistry::enabled()`); compiling with
// -DSPLICE_OBS=0 removes even that (the macros expand to nothing). Handles
// are resolved once per call site via a function-local static, so the
// registry's mutex is touched only on the first enabled hit of each site.
//
// Determinism contract. For a fixed workload whose events are a pure
// function of the work items (not of the worker threads executing them),
// counter values, histogram bin counts and histogram sums over
// integer-valued samples are bit-identical at every thread count: integer
// sums are associative, and doubles summing integers below 2^53 are exact.
// Gauges are last-writer-wins and belong on single-threaded control paths.
// Wall-clock timing never enters the registry — it lives in obs/span.h,
// outside this contract.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/assert.h"
#include "util/histogram.h"

#ifndef SPLICE_OBS
#define SPLICE_OBS 1
#endif

namespace splice::obs {

/// Number of independent cells per metric. A thread is assigned one shard
/// for its lifetime; distinct threads may share a shard (relaxed atomics
/// keep that correct), they just contend a little.
inline constexpr int kShards = 16;

/// This thread's shard index in [0, kShards), assigned round-robin on
/// first use.
int this_thread_shard() noexcept;

/// Monotonically increasing event counter.
class Counter {
 public:
  void add(long long n) noexcept {
    cells_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Merged value across shards (fixed shard order; exact regardless).
  long long value() const noexcept {
    long long total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<long long> v{0};
  };
  Cell cells_[kShards];
};

/// Last-writer-wins scalar; set from control paths, not hot loops.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed-bin histogram with per-shard cells. Binning matches
/// Histogram::bin_index bit for bit, so the merged snapshot equals a serial
/// Histogram fed the same samples.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, int bins);

  void observe(double x) noexcept {
    const int shard = this_thread_shard();
    const int idx = Histogram::bin_index(lo_, hi_, bins_, x);
    counts_[static_cast<std::size_t>(shard) * stride_ +
            static_cast<std::size_t>(idx)]
        .fetch_add(1, std::memory_order_relaxed);
    atomic_add(sums_[shard].v, x);
  }

  /// Flushes a pre-binned batch in one pass: one relaxed add per non-empty
  /// bin plus one sum add, instead of per-sample atomics. `counts` must
  /// have been binned with Histogram::bin_index over this metric's bounds,
  /// and `sum` must be the plain left-to-right sum of the batch — then the
  /// merged result is bit-identical to per-sample observe() for
  /// integer-valued samples.
  void observe_binned(const long long* counts, int n_bins,
                      double sum) noexcept {
    SPLICE_EXPECTS(n_bins == bins_);
    const int shard = this_thread_shard();
    std::atomic<long long>* row =
        counts_.get() + static_cast<std::size_t>(shard) * stride_;
    for (int i = 0; i < n_bins; ++i) {
      if (counts[i] != 0) row[i].fetch_add(counts[i], std::memory_order_relaxed);
    }
    atomic_add(sums_[shard].v, sum);
  }

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  int bins() const noexcept { return bins_; }

  /// Deterministic merge: shard 0's histogram, then merge() of shards
  /// 1..kShards-1 in order.
  Histogram merged() const;

  /// merged(), rebuilt in place via Histogram::reset_shape — same bytes,
  /// allocation-free once `out`'s bin storage is warm.
  void merged_into(Histogram& out) const;

  void reset() noexcept;

 private:
  static void atomic_add(std::atomic<double>& a, double x) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + x,
                                    std::memory_order_relaxed)) {
    }
  }

  struct alignas(64) PaddedSum {
    std::atomic<double> v{0.0};
  };

  double lo_;
  double hi_;
  int bins_;
  std::size_t stride_;  ///< bins rounded up to a cache line of counters
  std::unique_ptr<std::atomic<long long>[]> counts_;
  PaddedSum sums_[kShards];
};

// ---------------------------------------------------------------------------
// Snapshots: plain merged values, name-sorted, ready for the exporters.
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  long long value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  /// Placeholder shape so samples are default-constructible (the in-place
  /// snapshot_into path resizes sample vectors); merged_into() reshapes.
  Histogram hist{0.0, 1.0, 1};
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// The process-wide registry. Metric handles returned by counter()/gauge()/
/// histogram() are stable for the registry's lifetime; reset() zeroes
/// values but never invalidates handles.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Runtime switch consulted by every instrumentation macro. Off by
  /// default; benches enable it via --metrics/--obs, tests explicitly.
  static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create. Thread-safe; call once per site and cache the handle.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bounds must match on every lookup of the same name.
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             int bins);

  /// Deterministic merge of every metric, name-sorted.
  MetricsSnapshot snapshot() const;

  /// snapshot(), rebuilt into `out` reusing its vectors, strings and bin
  /// storage — allocation-free once the metric set is stable (the telemetry
  /// agent's steady-state publish path).
  void snapshot_into(MetricsSnapshot& out) const;

  /// Zeroes all values (handles stay valid). Use at run boundaries.
  void reset();

 private:
  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace splice::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. One relaxed load + branch when the registry is
// disabled; nothing at all under -DSPLICE_OBS=0. `name` must be a string
// usable as a std::string (typically a literal).
// ---------------------------------------------------------------------------

#if SPLICE_OBS

#define SPLICE_OBS_COUNT(name, n)                                       \
  do {                                                                  \
    if (::splice::obs::MetricsRegistry::enabled()) {                    \
      static ::splice::obs::Counter& splice_obs_counter_ =              \
          ::splice::obs::MetricsRegistry::global().counter(name);       \
      splice_obs_counter_.add(static_cast<long long>(n));               \
    }                                                                   \
  } while (0)

#define SPLICE_OBS_GAUGE_SET(name, v)                                   \
  do {                                                                  \
    if (::splice::obs::MetricsRegistry::enabled()) {                    \
      static ::splice::obs::Gauge& splice_obs_gauge_ =                  \
          ::splice::obs::MetricsRegistry::global().gauge(name);         \
      splice_obs_gauge_.set(static_cast<double>(v));                    \
    }                                                                   \
  } while (0)

#define SPLICE_OBS_OBSERVE(name, lo, hi, bins, x)                       \
  do {                                                                  \
    if (::splice::obs::MetricsRegistry::enabled()) {                    \
      static ::splice::obs::HistogramMetric& splice_obs_hist_ =         \
          ::splice::obs::MetricsRegistry::global().histogram(name, lo,  \
                                                             hi, bins); \
      splice_obs_hist_.observe(static_cast<double>(x));                 \
    }                                                                   \
  } while (0)

#else

#define SPLICE_OBS_COUNT(name, n) ((void)0)
#define SPLICE_OBS_GAUGE_SET(name, v) ((void)0)
#define SPLICE_OBS_OBSERVE(name, lo, hi, bins, x) ((void)0)

#endif  // SPLICE_OBS
