#include "obs/run_report.h"

#include "obs/provenance.h"
#include "util/table.h"

namespace splice::obs {

RunReport RunReport::capture(std::string name) {
  RunReport r;
  r.name = std::move(name);
  r.provenance = build_provenance();
  r.metrics = MetricsRegistry::global().snapshot();
  r.spans = SpanCollector::global().snapshot();
  return r;
}

std::string RunReport::to_json() const {
  std::string out = "{\"report\": ";
  out += json_quote(name);
  out += ", \"params\": {";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_quote(params[i].first);
    out += ": ";
    out += json_quote(params[i].second);
  }
  out += "}, \"provenance\": {";
  for (std::size_t i = 0; i < provenance.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_quote(provenance[i].first);
    out += ": ";
    out += json_quote(provenance[i].second);
  }
  out += "}, ";
  out += metrics_json_body(metrics);
  out += ", ";
  out += spans_json_body(spans);
  out += "}\n";
  return out;
}

std::string RunReport::to_prometheus() const {
  return obs::to_prometheus(metrics, spans);
}

std::string RunReport::to_text() const {
  std::string out = "== run report: " + name + " ==\n";
  for (const auto& [k, v] : params) out += "  " + k + " = " + v + "\n";
  for (const auto& [k, v] : provenance) {
    out += "  [build] " + k + " = " + v + "\n";
  }
  out += "\n-- metrics --\n";
  out += metrics_table(metrics).to_text();
  if (!spans.stats.empty()) {
    out += "\n-- phases --\n";
    out += spans_table(spans).to_text();
  }
  return out;
}

bool write_run_report(const RunReport& report, const std::string& path) {
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  return write_file(path, prom ? report.to_prometheus() : report.to_json());
}

}  // namespace splice::obs
