#include "obs/run_report.h"

#include "obs/linkstats.h"
#include "obs/provenance.h"
#include "obs/resprof.h"
#include "util/table.h"

namespace splice::obs {

RunReport RunReport::capture(std::string name) {
  RunReport r;
  r.name = std::move(name);
  r.provenance = build_provenance();
  if (ResourceProfiler::enabled()) {
    // The tier is provenance in the strict sense: archived hardware-counter
    // numbers are only interpretable knowing which ladder rung produced
    // them (kPerf counters vs. rusage-only fallback).
    r.provenance.emplace_back("resource_tier",
                              to_string(ResourceProfiler::tier()));
    r.resources = resource_report();
  }
  r.metrics = MetricsRegistry::global().snapshot();
  r.spans = SpanCollector::global().snapshot();
  return r;
}

std::string RunReport::to_json() const {
  std::string out = "{\"report\": ";
  out += json_quote(name);
  out += ", \"params\": {";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_quote(params[i].first);
    out += ": ";
    out += json_quote(params[i].second);
  }
  out += "}, \"provenance\": {";
  for (std::size_t i = 0; i < provenance.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_quote(provenance[i].first);
    out += ": ";
    out += json_quote(provenance[i].second);
  }
  out += "}, ";
  if (!resources.empty()) {
    out += "\"resources\": {";
    for (std::size_t i = 0; i < resources.size(); ++i) {
      if (i != 0) out += ", ";
      out += json_quote(resources[i].first);
      out += ": ";
      out += json_quote(resources[i].second);
    }
    out += "}, ";
  }
  out += metrics_json_body(metrics);
  out += ", ";
  out += spans_json_body(spans);
  out += "}\n";
  return out;
}

std::string RunReport::to_prometheus() const {
  std::string out = obs::to_prometheus(metrics, spans);
  // Topology attribution rides along when armed: per-link counter families
  // labeled by edge id and endpoints (obs/linkstats.h).
  if (LinkStats::enabled()) {
    out += links_prometheus(LinkStats::global().snapshot());
  }
  return out;
}

std::string RunReport::to_text() const {
  std::string out = "== run report: " + name + " ==\n";
  for (const auto& [k, v] : params) out += "  " + k + " = " + v + "\n";
  for (const auto& [k, v] : provenance) {
    out += "  [build] " + k + " = " + v + "\n";
  }
  for (const auto& [k, v] : resources) {
    out += "  [res] " + k + " = " + v + "\n";
  }
  out += "\n-- metrics --\n";
  out += metrics_table(metrics).to_text();
  if (!spans.stats.empty()) {
    out += "\n-- phases --\n";
    out += spans_table(spans).to_text();
  }
  return out;
}

bool write_run_report(const RunReport& report, const std::string& path) {
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  return write_file(path, prom ? report.to_prometheus() : report.to_json());
}

}  // namespace splice::obs
