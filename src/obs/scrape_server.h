// Minimal HTTP/1.0 scrape endpoint for the telemetry agent: loopback TCP,
// blocking accept loop on one background thread, no third-party deps. One
// request per connection (Connection: close), GET /metrics serves whatever
// the handler renders (Prometheus text exposition in practice); everything
// else is 404. Binding port 0 picks an ephemeral port, reported by port()
// after start() returns — start() binds synchronously, so the endpoint is
// connectable before the caller proceeds.
//
// This is an operator surface, not a hot path: a scrape allocates freely.
// The stop path is a self-pipe wakeup into the poll() the accept loop
// blocks on, so shutdown is prompt without timeouts or signals.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace splice::obs {

class ScrapeServer {
 public:
  /// Renders the response body for GET /metrics. Called on the server
  /// thread; must be thread-safe against the process's writers.
  using Handler = std::function<std::string()>;

  ScrapeServer() = default;
  ~ScrapeServer();
  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  bool start(std::uint16_t port, Handler handler,
             std::string* error = nullptr);

  /// The bound port (resolved when `port` was 0); 0 when not running.
  std::uint16_t port() const noexcept { return port_; }
  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

  /// Wakes the accept loop, joins the thread and closes the socket.
  void stop();

 private:
  void serve_loop();
  void serve_one(int fd);

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  Handler handler_;
  std::thread thread_;
};

}  // namespace splice::obs
