// Churn -> anomaly root-cause correlation: the pure join over the three
// ledgers the live pipeline already exports —
//
//   spliceAnomalies — what failed (AnomalyLedger; each record now carries
//                     t_ns and the FIB epoch it was forwarded under);
//   spliceEpochs    — when each FIB snapshot was published and which edge
//                     event produced it (flight-recorder publication rows);
//   churn trace     — the generating event stream (recoverable from the
//                     run params, since generate_churn_trace is pure).
//
// correlate() resolves each anomaly to a CausalChain:
//   anomaly -> the epoch it was forwarded under -> the publish row (edge,
//   liveness, timestamp) that created that epoch -> the observation lag
//   (anomaly time - publish time) -> the repair epoch (first later publish
//   restoring the same edge) and the exposure window between them.
//
// Everything here is a pure function of its inputs: no clocks, no globals,
// no floating point — so chains are bit-identical across thread counts and
// replays whenever the input ledgers are (test-enforced). Rendering lives
// in splice_inspect why; this header stays tool- and graph-free.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace splice::obs {

/// One spliceEpochs publication row (decoded; fields absent in the trace
/// keep their has_* flag false).
struct EpochRecord {
  std::uint64_t epoch = 0;
  bool has_publish = false;
  std::uint64_t publish_ts_ns = 0;
  std::int64_t edge = -1;
  bool alive = false;  ///< link state the publish installed
  std::uint32_t dsts_patched = 0;
  bool has_latency = false;
  std::uint64_t latency_ns = 0;  ///< ingest -> grace complete (SLO)
};

/// The anomaly-side join key (decoded from one spliceAnomalies row).
struct AnomalyRef {
  std::uint64_t t_ns = 0;      ///< record() timestamp (0 = unknown)
  std::uint64_t fib_epoch = 0; ///< snapshot version forwarded under (0 = n/a)
};

struct CausalChain {
  std::size_t anomaly_index = 0;  ///< position in the canonical anomaly order
  std::uint64_t fib_epoch = 0;
  /// False when the epoch has no publish row (fib_epoch 0, the initial
  /// pre-churn FIB, or a trace that predates the publisher).
  bool cause_found = false;
  std::int64_t cause_edge = -1;
  bool cause_down = false;  ///< the causing publish took the edge down
  std::uint64_t publish_ts_ns = 0;
  std::uint64_t reconv_latency_ns = 0;
  /// Observation lag: anomaly t_ns - publish_ts_ns (valid when has_lag).
  bool has_lag = false;
  std::uint64_t lag_ns = 0;
  /// First later epoch whose publish restored the same edge.
  bool repaired = false;
  std::uint64_t repair_epoch = 0;
  std::uint64_t repair_ts_ns = 0;
  /// Exposure window: causing publish -> repairing publish.
  bool has_window = false;
  std::uint64_t window_ns = 0;
};

/// Joins anomalies to epochs. `epochs` need not be sorted (an internal
/// index is built); chains come back in anomaly input order, one per
/// anomaly, so output is canonical whenever the input order is.
std::vector<CausalChain> correlate(std::span<const EpochRecord> epochs,
                                   std::span<const AnomalyRef> anomalies);

/// Canonical JSON array of chains (determinism fixture + tooling payload).
std::string causal_chains_json(std::span<const CausalChain> chains);

}  // namespace splice::obs
