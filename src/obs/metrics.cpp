#include "obs/metrics.h"

namespace splice::obs {

namespace {

std::size_t counters_per_line() noexcept {
  return 64 / sizeof(std::atomic<long long>);
}

}  // namespace

int this_thread_shard() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local int shard =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<unsigned>(kShards));
  return shard;
}

HistogramMetric::HistogramMetric(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), bins_(bins) {
  SPLICE_EXPECTS(bins >= 1);
  SPLICE_EXPECTS(hi > lo);
  const std::size_t per_line = counters_per_line();
  stride_ = (static_cast<std::size_t>(bins) + per_line - 1) / per_line *
            per_line;
  counts_ = std::make_unique<std::atomic<long long>[]>(
      stride_ * static_cast<std::size_t>(kShards));
  reset();
}

void HistogramMetric::merged_into(Histogram& out) const {
  out.reset_shape(lo_, hi_, bins_);
  // Same deterministic merge order as merged(): counts are commutative
  // integer adds; the sum accumulates shard 0..kShards-1 left to right.
  double sum = 0.0;
  for (int shard = 0; shard < kShards; ++shard) {
    for (int i = 0; i < bins_; ++i) {
      const long long c = counts_[static_cast<std::size_t>(shard) * stride_ +
                                  static_cast<std::size_t>(i)]
                              .load(std::memory_order_relaxed);
      if (c != 0) out.add_count(i, c);
    }
    sum += sums_[shard].v.load(std::memory_order_relaxed);
  }
  out.set_sum(sum);
}

Histogram HistogramMetric::merged() const {
  Histogram out(lo_, hi_, bins_);
  merged_into(out);
  return out;
}

void HistogramMetric::reset() noexcept {
  for (std::size_t i = 0; i < stride_ * static_cast<std::size_t>(kShards);
       ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  for (PaddedSum& s : sums_) s.v.store(0.0, std::memory_order_relaxed);
}

std::atomic<bool> MetricsRegistry::enabled_{false};

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            double lo, double hi, int bins) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<HistogramMetric>(lo, hi, bins);
  } else {
    SPLICE_EXPECTS(slot->lo() == lo && slot->hi() == hi &&
                   slot->bins() == bins);
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->merged()});
  }
  return snap;
}

void MetricsRegistry::snapshot_into(MetricsSnapshot& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Grow-or-reuse: vectors only ever resize up while the metric set grows
  // (registries never shrink), and string assignment reuses capacity, so a
  // steady-state refresh performs zero allocations.
  out.counters.resize(counters_.size());
  std::size_t i = 0;
  for (const auto& [name, c] : counters_) {
    out.counters[i].name = name;
    out.counters[i].value = c->value();
    ++i;
  }
  out.gauges.resize(gauges_.size());
  i = 0;
  for (const auto& [name, g] : gauges_) {
    out.gauges[i].name = name;
    out.gauges[i].value = g->value();
    ++i;
  }
  out.histograms.resize(histograms_.size());
  i = 0;
  for (const auto& [name, h] : histograms_) {
    out.histograms[i].name = name;
    h->merged_into(out.histograms[i].hist);
    ++i;
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace splice::obs
