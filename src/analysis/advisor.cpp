#include "analysis/advisor.h"

#include <algorithm>

#include "graph/connectivity.h"
#include "sim/failure.h"
#include "util/assert.h"
#include "util/parallel.h"

namespace splice {

std::vector<LinkCriticality> rank_link_criticality(
    const Graph& g, const MultiInstanceRouting& mir, SliceId k,
    UnionSemantics semantics) {
  SPLICE_EXPECTS(k >= 1 && k <= mir.slice_count());
  const SplicedReliabilityAnalyzer analyzer(g, mir);
  std::vector<LinkCriticality> out;
  out.reserve(static_cast<std::size_t>(g.edge_count()));
  std::vector<char> alive(static_cast<std::size_t>(g.edge_count()), 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    alive[static_cast<std::size_t>(e)] = 0;
    LinkCriticality c;
    c.edge = e;
    c.pairs_cut_spliced = analyzer.disconnected_pairs(k, alive, semantics);
    c.pairs_cut_single_path =
        analyzer.disconnected_pairs(1, alive, semantics);
    c.pairs_cut_physical = disconnected_ordered_pairs(g, alive);
    out.push_back(c);
    alive[static_cast<std::size_t>(e)] = 1;
  }
  std::sort(out.begin(), out.end(),
            [](const LinkCriticality& a, const LinkCriticality& b) {
              if (a.pairs_cut_spliced != b.pairs_cut_spliced)
                return a.pairs_cut_spliced > b.pairs_cut_spliced;
              return a.edge < b.edge;
            });
  return out;
}

SliceBudgetResult advise_slice_budget(const Graph& g,
                                      const SliceBudgetConfig& cfg) {
  SPLICE_EXPECTS(cfg.max_k >= 1);
  SPLICE_EXPECTS(cfg.trials >= 1);
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{cfg.max_k, cfg.perturbation, cfg.seed, false});
  const SplicedReliabilityAnalyzer analyzer(g, mir);

  struct Acc {
    std::vector<double> per_k_sum;
    double best_sum = 0.0;
    int trials = 0;
  };
  const auto run_trial = [&](int trial, Acc& acc) {
    if (acc.per_k_sum.empty())
      acc.per_k_sum.assign(static_cast<std::size_t>(cfg.max_k), 0.0);
    Rng rng(hash_mix(cfg.seed ^ 0xad715e0ULL,
                     static_cast<std::uint64_t>(trial)));
    const auto alive = sample_alive_mask(g.edge_count(), cfg.p, rng);
    for (SliceId k = 1; k <= cfg.max_k; ++k) {
      acc.per_k_sum[static_cast<std::size_t>(k - 1)] +=
          analyzer.disconnected_fraction(k, alive);
    }
    acc.best_sum += static_cast<double>(disconnected_ordered_pairs(g, alive)) /
                    static_cast<double>(total_ordered_pairs(g));
    ++acc.trials;
  };
  const Acc merged = parallel_trials<Acc>(
      cfg.trials, cfg.threads, run_trial, [](Acc& into, const Acc& from) {
        if (into.per_k_sum.empty())
          into.per_k_sum.assign(from.per_k_sum.size(), 0.0);
        for (std::size_t i = 0; i < from.per_k_sum.size(); ++i)
          into.per_k_sum[i] += from.per_k_sum[i];
        into.best_sum += from.best_sum;
        into.trials += from.trials;
      });

  SliceBudgetResult result;
  const auto trials = static_cast<double>(std::max(1, merged.trials));
  result.best_possible = merged.best_sum / trials;
  result.per_k.reserve(static_cast<std::size_t>(cfg.max_k));
  result.k = cfg.max_k + 1;
  for (SliceId k = 1; k <= cfg.max_k; ++k) {
    const double frac =
        merged.per_k_sum[static_cast<std::size_t>(k - 1)] / trials;
    result.per_k.push_back(frac);
    if (result.k > cfg.max_k && frac <= cfg.target_disconnected) {
      result.k = k;
      result.achieved = frac;
    }
  }
  if (result.k > cfg.max_k && !result.per_k.empty()) {
    result.achieved = result.per_k.back();
  }
  return result;
}

}  // namespace splice
