// Operator-facing planning tools built on the splicing analyzers — the
// layer a network team adopting path splicing would actually drive:
//
//  * Link criticality ranking: which links, when they fail alone, cut the
//    most (spliced) connectivity? Surfaces the residual single points of
//    failure that even splicing cannot mask (Figure 1's cut argument).
//  * Slice-budget advisor: the smallest k whose spliced reliability meets
//    an operator target at a design failure rate — the "how many slices do
//    I deploy?" question §4.2's log-n analysis answers asymptotically.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/perturbation.h"
#include "splicing/reliability.h"

namespace splice {

struct LinkCriticality {
  EdgeId edge = kInvalidEdge;
  /// Ordered pairs disconnected when only this link fails, with splicing
  /// (the configured k) in place.
  long long pairs_cut_spliced = 0;
  /// The same under plain shortest-path routing (k = 1).
  long long pairs_cut_single_path = 0;
  /// Pairs physically disconnected (graph cut): the irreducible floor.
  long long pairs_cut_physical = 0;
};

/// Ranks every link by pairs_cut_spliced (descending, ties by edge id).
/// Links whose spliced impact equals the physical floor are fully masked
/// except for the inevitable; links above the floor are splicing gaps.
std::vector<LinkCriticality> rank_link_criticality(
    const Graph& g, const MultiInstanceRouting& mir, SliceId k,
    UnionSemantics semantics = UnionSemantics::kUndirectedLinks);

struct SliceBudgetConfig {
  /// Acceptable mean disconnected-pair fraction at the design point.
  double target_disconnected = 0.01;
  /// Design failure probability.
  double p = 0.03;
  int trials = 300;
  SliceId max_k = 16;
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::uint64_t seed = 1;
  int threads = 1;
};

struct SliceBudgetResult {
  /// Smallest k meeting the target; max_k + 1 when unreachable.
  SliceId k = 0;
  /// Mean disconnected fraction at that k.
  double achieved = 0.0;
  /// Best possible (underlying graph) at the design point — if the target
  /// is below this, no routing scheme can meet it.
  double best_possible = 0.0;
  /// Achieved fraction for every k in [1, max_k] (index k-1), so callers
  /// can plot the whole budget curve.
  std::vector<double> per_k;
};

/// Monte Carlo search for the smallest slice budget meeting the target.
SliceBudgetResult advise_slice_budget(const Graph& g,
                                      const SliceBudgetConfig& cfg);

}  // namespace splice
