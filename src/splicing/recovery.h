// Failure-recovery schemes (§4.3 and §5).
//
// End-system recovery: the sender notices its path is broken and retries
// with re-randomized forwarding bits — coin-flip mutation of the previous
// header in the paper's experiment; we also implement the fresh-random,
// never-revisit, bounded-switch and first-hop-biased generators discussed
// in §4.4/§5, plus the counter-header scheme.
//
// Network-based recovery: intermediate nodes deflect locally to another
// slice whose next hop is reachable over an alive link (no sender retries).
#pragma once

#include <string>

#include "dataplane/network.h"
#include "util/rng.h"

namespace splice {

enum class RecoveryScheme {
  /// Re-randomize by flipping each hop's slice with probability 1/2,
  /// starting from the previous header (paper's end-system scheme).
  kEndSystemCoinFlip,
  /// Draw an entirely fresh uniform header each trial.
  kEndSystemFresh,
  /// Fresh header that never revisits a slice (loop-free variant, §4.4).
  kEndSystemNoRevisit,
  /// Fresh header with at most `max_switches` slice changes (§4.4).
  kEndSystemBoundedSwitches,
  /// Coin-flip with higher flip probability on early hops (§5).
  kEndSystemFirstHopBiased,
  /// Counter header: arm the §5 single-number encoding with trial index.
  kEndSystemCounter,
  /// In-network deflection by routers; a single send, no retries.
  kNetworkDeflection,
};

std::string to_string(RecoveryScheme scheme);
RecoveryScheme parse_recovery_scheme(const std::string& name);

struct RecoveryConfig {
  RecoveryScheme scheme = RecoveryScheme::kEndSystemCoinFlip;
  /// Retry budget after the initial failed attempt; the paper deems a pair
  /// recoverable when five or fewer trials suffice.
  int max_trials = 5;
  /// Splice points in generated headers (paper: 20).
  int header_hops = 20;
  /// Per-hop flip probability of the coin-flip scheme.
  double flip_probability = 0.5;
  /// Switch budget of kEndSystemBoundedSwitches.
  int max_switches = 3;
  /// TTL for every attempt.
  int ttl = 255;
};

struct RecoveryResult {
  /// Did the *initial* (slice-0 / default path) attempt already succeed?
  bool initially_connected = false;
  /// Did any attempt (initial or retry) deliver?
  bool delivered = false;
  /// Number of retries used after the initial failure (0 when the initial
  /// attempt succeeded; counts only attempts actually sent).
  int trials_used = 0;
  /// The successful delivery trace (valid only when delivered).
  Delivery delivery;
};

/// Allocation-free recovery result: the trace of the successful attempt
/// lives in the caller's ForwardWorkspace, not in a per-episode vector.
struct FastRecoveryResult {
  /// Did the *initial* (slice-0 / default path) attempt already succeed?
  bool initially_connected = false;
  /// Did any attempt (initial or retry) deliver?
  bool delivered = false;
  /// Number of retries used after the initial failure (0 when the initial
  /// attempt succeeded; counts only attempts actually sent).
  int trials_used = 0;
  /// Summary of the last attempt sent; meaningful when delivered.
  ForwardSummary summary;
  /// Splicing header of the last attempt sent (the all-zero slice-0 header
  /// when no retry happened). Carried so anomaly records can name the exact
  /// forwarding bits that produced a loop or a blown stretch.
  SpliceHeader header;
};

/// Runs one recovery episode for (src, dst) on the given (possibly failed)
/// network. The initial attempt forwards on slice 0 — normal shortest-path
/// routing; retries follow the configured scheme.
RecoveryResult attempt_recovery(const DataPlaneNetwork& net, NodeId src,
                                NodeId dst, const RecoveryConfig& cfg,
                                Rng& rng);

/// Same episode, no forwarding allocations: each attempt's trace lands in
/// `ws.hops` (so on return with delivered == true, ws.hops is the successful
/// trace; otherwise it holds the last failed attempt's partial trace and
/// should be ignored). Consumes `rng` identically to attempt_recovery — the
/// two produce bit-identical episodes from equal rng states.
FastRecoveryResult attempt_recovery_fast(const DataPlaneNetwork& net,
                                         NodeId src, NodeId dst,
                                         const RecoveryConfig& cfg, Rng& rng,
                                         ForwardWorkspace& ws);

}  // namespace splice
