#include "splicing/recovery.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/assert.h"

namespace splice {

std::string to_string(RecoveryScheme scheme) {
  switch (scheme) {
    case RecoveryScheme::kEndSystemCoinFlip:
      return "end-system-coinflip";
    case RecoveryScheme::kEndSystemFresh:
      return "end-system-fresh";
    case RecoveryScheme::kEndSystemNoRevisit:
      return "end-system-no-revisit";
    case RecoveryScheme::kEndSystemBoundedSwitches:
      return "end-system-bounded-switches";
    case RecoveryScheme::kEndSystemFirstHopBiased:
      return "end-system-first-hop-biased";
    case RecoveryScheme::kEndSystemCounter:
      return "end-system-counter";
    case RecoveryScheme::kNetworkDeflection:
      return "network-deflection";
  }
  return "?";
}

RecoveryScheme parse_recovery_scheme(const std::string& name) {
  if (name == "end-system-coinflip" || name == "coinflip")
    return RecoveryScheme::kEndSystemCoinFlip;
  if (name == "end-system-fresh" || name == "fresh")
    return RecoveryScheme::kEndSystemFresh;
  if (name == "end-system-no-revisit" || name == "no-revisit")
    return RecoveryScheme::kEndSystemNoRevisit;
  if (name == "end-system-bounded-switches" || name == "bounded")
    return RecoveryScheme::kEndSystemBoundedSwitches;
  if (name == "end-system-first-hop-biased" || name == "first-hop")
    return RecoveryScheme::kEndSystemFirstHopBiased;
  if (name == "end-system-counter" || name == "counter")
    return RecoveryScheme::kEndSystemCounter;
  if (name == "network-deflection" || name == "network")
    return RecoveryScheme::kNetworkDeflection;
  throw std::invalid_argument("unknown recovery scheme: " + name);
}

namespace {

/// Header pinned to slice 0 for every hop — all slots zero, which is
/// exactly what the plain (k, hops) constructor builds.
SpliceHeader pinned_slice0(SliceId k, int hops) {
  return SpliceHeader(k, hops);
}

}  // namespace

FastRecoveryResult attempt_recovery_fast(const DataPlaneNetwork& net,
                                         NodeId src, NodeId dst,
                                         const RecoveryConfig& cfg, Rng& rng,
                                         ForwardWorkspace& ws) {
  SPLICE_EXPECTS(cfg.max_trials >= 0);
  const SliceId k = net.slice_count();
  FastRecoveryResult result;

  // Initial attempt: normal shortest-path forwarding (slice 0 everywhere).
  Packet initial;
  initial.src = src;
  initial.dst = dst;
  initial.header = pinned_slice0(k, cfg.header_hops);
  initial.ttl = cfg.ttl;

  ForwardingPolicy initial_policy;
  initial_policy.exhaust = ExhaustPolicy::kStayInCurrent;
  // Network deflection protects even the first packet — that is the whole
  // scheme (routers react, senders don't).
  if (cfg.scheme == RecoveryScheme::kNetworkDeflection)
    initial_policy.local_recovery = LocalRecovery::kDeflect;

  ForwardSummary s = net.forward_fast(initial, initial_policy, ws);
  if (s.delivered()) {
    // With deflection on, "initially connected" means no deflection was
    // needed anywhere along the path.
    result.initially_connected =
        cfg.scheme != RecoveryScheme::kNetworkDeflection || !s.deflected;
    result.delivered = true;
    result.summary = s;
    result.header = initial.header;
    return result;
  }

  if (cfg.scheme == RecoveryScheme::kNetworkDeflection) {
    // Routers already tried everything they could; the packet dead-ended.
    result.summary = s;
    result.header = initial.header;
    return result;
  }

  // End-system retries.
  SpliceHeader previous = pinned_slice0(k, cfg.header_hops);
  for (int trial = 1; trial <= cfg.max_trials; ++trial) {
    SpliceHeader next;
    Packet p;
    p.src = src;
    p.dst = dst;
    p.ttl = cfg.ttl;
    switch (cfg.scheme) {
      case RecoveryScheme::kEndSystemCoinFlip:
        next = previous.mutate_coinflip(rng, cfg.flip_probability);
        break;
      case RecoveryScheme::kEndSystemFresh:
        next = SpliceHeader::random(k, cfg.header_hops, rng);
        break;
      case RecoveryScheme::kEndSystemNoRevisit:
        next = SpliceHeader::random_no_revisit(k, cfg.header_hops, rng);
        break;
      case RecoveryScheme::kEndSystemBoundedSwitches:
        next = SpliceHeader::random_bounded_switches(k, cfg.header_hops,
                                                     cfg.max_switches, rng);
        break;
      case RecoveryScheme::kEndSystemFirstHopBiased:
        next = previous.mutate_first_hop_biased(rng);
        break;
      case RecoveryScheme::kEndSystemCounter:
        p.counter = CounterHeader(static_cast<std::uint32_t>(trial));
        next = pinned_slice0(k, cfg.header_hops);
        break;
      case RecoveryScheme::kNetworkDeflection:
        SPLICE_ASSERT(false);  // handled above
        break;
    }
    p.header = next;
    result.trials_used = trial;
    s = net.forward_fast(p, ForwardingPolicy{}, ws);
    if (s.delivered()) {
      result.delivered = true;
      result.summary = s;
      result.header = std::move(next);
      return result;
    }
    previous = std::move(next);
  }
  result.summary = s;
  result.header = std::move(previous);
  return result;
}

RecoveryResult attempt_recovery(const DataPlaneNetwork& net, NodeId src,
                                NodeId dst, const RecoveryConfig& cfg,
                                Rng& rng) {
  ForwardWorkspace ws;
  const FastRecoveryResult fast =
      attempt_recovery_fast(net, src, dst, cfg, rng, ws);
  RecoveryResult result;
  result.initially_connected = fast.initially_connected;
  result.delivered = fast.delivered;
  result.trials_used = fast.trials_used;
  if (fast.delivered) {
    result.delivery.outcome = ForwardOutcome::kDelivered;
    result.delivery.hops = std::move(ws.hops);
  }
  return result;
}

}  // namespace splice
