#include "splicing/reliability.h"

#include "util/assert.h"

namespace splice {

SplicedReliabilityAnalyzer::SplicedReliabilityAnalyzer(
    const Graph& g, const MultiInstanceRouting& mir)
    : n_(g.node_count()), k_max_(mir.slice_count()) {
  adj_.assign(static_cast<std::size_t>(n_),
              std::vector<std::vector<Adj>>(static_cast<std::size_t>(n_)));
  for (NodeId dst = 0; dst < n_; ++dst) {
    auto& adj_dst = adj_[static_cast<std::size_t>(dst)];
    for (SliceId s = 0; s < k_max_; ++s) {
      const RoutingInstance& inst = mir.slice(s);
      for (NodeId v = 0; v < n_; ++v) {
        if (v == dst) continue;
        const NodeId nh = inst.next_hop(v, dst);
        if (nh == kInvalidNode) continue;
        const EdgeId e = inst.next_hop_edge(v, dst);
        // Dedup identical arcs installed by multiple slices: keep the
        // lowest slice index so first-k queries see each arc at the
        // earliest k where some slice provides it. (Slices are processed in
        // ascending order, so the first occurrence wins.)
        auto& at_head = adj_dst[static_cast<std::size_t>(nh)];
        bool duplicate = false;
        for (const Adj& a : at_head) {
          if (a.incoming && a.other == v && a.edge == e) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        at_head.push_back(Adj{v, e, s, true});
        adj_dst[static_cast<std::size_t>(v)].push_back(Adj{nh, e, s, false});
      }
    }
  }
}

void SplicedReliabilityAnalyzer::reach_dst(NodeId dst, SliceId k,
                                           std::span<const char> edge_alive,
                                           UnionSemantics semantics,
                                           std::vector<char>& seen,
                                           std::vector<NodeId>& stack) const {
  const bool undirected = semantics == UnionSemantics::kUndirectedLinks;
  seen.assign(static_cast<std::size_t>(n_), 0);
  seen[static_cast<std::size_t>(dst)] = 1;
  stack.assign(1, dst);
  const auto& adj_dst = adj_[static_cast<std::size_t>(dst)];
  // BFS outward from dst. In directed semantics we may only cross arcs
  // whose forward direction points toward dst's side (incoming arcs,
  // walked in reverse); in undirected semantics any surviving union link
  // may be crossed.
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Adj& a : adj_dst[static_cast<std::size_t>(u)]) {
      if (a.slice >= k) continue;
      if (!undirected && !a.incoming) continue;
      if (!edge_alive.empty() &&
          !edge_alive[static_cast<std::size_t>(a.edge)])
        continue;
      auto& mark = seen[static_cast<std::size_t>(a.other)];
      if (!mark) {
        mark = 1;
        stack.push_back(a.other);
      }
    }
  }
}

long long SplicedReliabilityAnalyzer::disconnected_pairs(
    SliceId k, std::span<const char> edge_alive,
    UnionSemantics semantics) const {
  SPLICE_EXPECTS(k >= 1 && k <= k_max_);
  long long disconnected = 0;
  std::vector<char> seen;
  std::vector<NodeId> stack;
  for (NodeId dst = 0; dst < n_; ++dst) {
    reach_dst(dst, k, edge_alive, semantics, seen, stack);
    for (NodeId src = 0; src < n_; ++src) {
      if (src != dst && !seen[static_cast<std::size_t>(src)]) ++disconnected;
    }
  }
  return disconnected;
}

double SplicedReliabilityAnalyzer::disconnected_fraction(
    SliceId k, std::span<const char> edge_alive,
    UnionSemantics semantics) const {
  const long long total =
      static_cast<long long>(n_) * (static_cast<long long>(n_) - 1);
  if (total == 0) return 0.0;
  return static_cast<double>(disconnected_pairs(k, edge_alive, semantics)) /
         static_cast<double>(total);
}

std::vector<char> SplicedReliabilityAnalyzer::reachable_sources(
    NodeId dst, SliceId k, std::span<const char> edge_alive,
    UnionSemantics semantics) const {
  SPLICE_EXPECTS(dst >= 0 && dst < n_);
  SPLICE_EXPECTS(k >= 1 && k <= k_max_);
  std::vector<char> seen;
  std::vector<NodeId> stack;
  reach_dst(dst, k, edge_alive, semantics, seen, stack);
  return seen;
}

bool SplicedReliabilityAnalyzer::connected(NodeId src, NodeId dst, SliceId k,
                                           std::span<const char> edge_alive,
                                           UnionSemantics semantics) const {
  SPLICE_EXPECTS(src >= 0 && src < n_);
  SPLICE_EXPECTS(dst >= 0 && dst < n_);
  if (src == dst) return true;
  std::vector<char> seen;
  std::vector<NodeId> stack;
  reach_dst(dst, k, edge_alive, semantics, seen, stack);
  return seen[static_cast<std::size_t>(src)] != 0;
}

}  // namespace splice
