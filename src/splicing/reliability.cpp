#include "splicing/reliability.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/assert.h"

namespace splice {

namespace {

/// Unpacked arc used only while building one destination's bucket list.
struct BuildRec {
  NodeId node;     ///< the node whose bucket this record belongs to
  NodeId other;
  EdgeId edge;
  SliceId slice;
  std::uint8_t incoming;
};

}  // namespace

SplicedReliabilityAnalyzer::SplicedReliabilityAnalyzer(
    const Graph& g, const MultiInstanceRouting& mir)
    : n_(g.node_count()), k_max_(mir.slice_count()) {
  SPLICE_OBS_SPAN("analyzer.csr_build");
  const auto nn = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  offsets_.assign(nn + 1, 0);
  arcs_.reserve(nn);  // lower bound: one tree (2 arcs/edge) per destination

  // Per-destination O(arcs) build. Duplicates (the same directed arc
  // installed by several slices) are filtered with an epoch-stamped table
  // keyed by (edge, incoming, orientation); slices are visited in ascending
  // order, so the surviving record carries the smallest installing slice —
  // the same keep-lowest-slice rule as the old O(deg^2) per-insertion scan.
  // A stable per-node counting scatter then lays each bucket out
  // slice-ascending, which is all the first-k BFS truncation needs.
  std::vector<std::uint32_t> stamp(
      4 * static_cast<std::size_t>(g.edge_count()), 0);
  std::vector<BuildRec> recs;
  std::vector<std::uint32_t> bucket_pos(static_cast<std::size_t>(n_) + 1, 0);
  for (NodeId dst = 0; dst < n_; ++dst) {
    const auto epoch = static_cast<std::uint32_t>(dst) + 1;
    recs.clear();
    std::fill(bucket_pos.begin(), bucket_pos.end(), 0);
    auto emit = [&](NodeId node, NodeId other, EdgeId e, SliceId s,
                    std::uint8_t incoming) {
      const std::size_t key =
          (static_cast<std::size_t>(e) * 2 + incoming) * 2 +
          (node < other ? 0 : 1);
      if (stamp[key] == epoch) return;  // an earlier slice installed it
      stamp[key] = epoch;
      recs.push_back(BuildRec{node, other, e, s, incoming});
      ++bucket_pos[static_cast<std::size_t>(node) + 1];
    };
    for (SliceId s = 0; s < k_max_; ++s) {
      const RoutingInstance& inst = mir.slice(s);
      for (NodeId v = 0; v < n_; ++v) {
        if (v == dst) continue;
        const NodeId nh = inst.next_hop(v, dst);
        if (nh == kInvalidNode) continue;
        const EdgeId e = inst.next_hop_edge(v, dst);
        emit(nh, v, e, s, 1);
        emit(v, nh, e, s, 0);
      }
    }
    const std::size_t base = arcs_.size();
    SPLICE_ASSERT(base + recs.size() <=
                  std::numeric_limits<std::uint32_t>::max());
    for (NodeId v = 0; v < n_; ++v) {
      bucket_pos[static_cast<std::size_t>(v) + 1] +=
          bucket_pos[static_cast<std::size_t>(v)];
      offsets_[bucket(dst, v)] = static_cast<std::uint32_t>(
          base + bucket_pos[static_cast<std::size_t>(v)]);
    }
    arcs_.resize(base + recs.size());
    for (const BuildRec& rec : recs) {
      const std::size_t slot =
          base + bucket_pos[static_cast<std::size_t>(rec.node)]++;
      arcs_[slot] = Arc{rec.other, rec.edge,
                        (static_cast<std::uint32_t>(rec.slice) << 1) |
                            static_cast<std::uint32_t>(rec.incoming)};
    }
  }
  SPLICE_ASSERT(arcs_.size() <= std::numeric_limits<std::uint32_t>::max());
  offsets_[nn] = static_cast<std::uint32_t>(arcs_.size());
  SPLICE_OBS_COUNT("analyzer.builds", 1);
  SPLICE_OBS_GAUGE_SET("analyzer.arcs", static_cast<double>(arcs_.size()));
}

void SplicedReliabilityAnalyzer::reach_dst(NodeId dst, SliceId k,
                                           std::span<const char> edge_alive,
                                           UnionSemantics semantics,
                                           ReachWorkspace& ws) const {
  const bool undirected = semantics == UnionSemantics::kUndirectedLinks;
  ws.seen.assign(static_cast<std::size_t>(n_), 0);
  ws.seen[static_cast<std::size_t>(dst)] = 1;
  ws.stack.clear();
  ws.stack.push_back(dst);
  const char* alive = edge_alive.empty() ? nullptr : edge_alive.data();
  const Arc* arcs = arcs_.data();
  const std::uint32_t* off = offsets_.data() + bucket(dst, 0);
  const std::uint32_t limit = static_cast<std::uint32_t>(k) << 1;
  // BFS outward from dst. In directed semantics we may only cross arcs
  // whose forward direction points toward dst's side (incoming arcs,
  // walked in reverse); in undirected semantics any surviving union link
  // may be crossed.
  while (!ws.stack.empty()) {
    const NodeId u = ws.stack.back();
    ws.stack.pop_back();
    const std::uint32_t end = off[static_cast<std::size_t>(u) + 1];
    for (std::uint32_t i = off[static_cast<std::size_t>(u)]; i < end; ++i) {
      const Arc& a = arcs[i];
      if (a.slice_dir >= limit) break;  // slice-sorted: rest are > first k
      if (!undirected && (a.slice_dir & 1u) == 0) continue;
      if (alive && !alive[static_cast<std::size_t>(a.edge)]) continue;
      char& mark = ws.seen[static_cast<std::size_t>(a.other)];
      if (!mark) {
        mark = 1;
        ws.stack.push_back(a.other);
      }
    }
  }
}

long long SplicedReliabilityAnalyzer::disconnected_pairs(
    SliceId k, std::span<const char> edge_alive, UnionSemantics semantics,
    ReachWorkspace& ws) const {
  SPLICE_EXPECTS(k >= 1 && k <= k_max_);
  long long disconnected = 0;
  for (NodeId dst = 0; dst < n_; ++dst) {
    reach_dst(dst, k, edge_alive, semantics, ws);
    for (NodeId src = 0; src < n_; ++src) {
      if (src != dst && !ws.seen[static_cast<std::size_t>(src)])
        ++disconnected;
    }
  }
  return disconnected;
}

long long SplicedReliabilityAnalyzer::disconnected_pairs(
    SliceId k, std::span<const char> edge_alive,
    UnionSemantics semantics) const {
  ReachWorkspace ws;
  return disconnected_pairs(k, edge_alive, semantics, ws);
}

double SplicedReliabilityAnalyzer::disconnected_fraction(
    SliceId k, std::span<const char> edge_alive,
    UnionSemantics semantics) const {
  const long long total =
      static_cast<long long>(n_) * (static_cast<long long>(n_) - 1);
  if (total == 0) return 0.0;
  return static_cast<double>(disconnected_pairs(k, edge_alive, semantics)) /
         static_cast<double>(total);
}

void SplicedReliabilityAnalyzer::reachable_sources_into(
    NodeId dst, SliceId k, std::span<const char> edge_alive,
    UnionSemantics semantics, ReachWorkspace& ws) const {
  SPLICE_EXPECTS(dst >= 0 && dst < n_);
  SPLICE_EXPECTS(k >= 1 && k <= k_max_);
  reach_dst(dst, k, edge_alive, semantics, ws);
}

std::vector<char> SplicedReliabilityAnalyzer::reachable_sources(
    NodeId dst, SliceId k, std::span<const char> edge_alive,
    UnionSemantics semantics) const {
  ReachWorkspace ws;
  reachable_sources_into(dst, k, edge_alive, semantics, ws);
  return std::move(ws.seen);
}

bool SplicedReliabilityAnalyzer::connected(NodeId src, NodeId dst, SliceId k,
                                           std::span<const char> edge_alive,
                                           UnionSemantics semantics) const {
  SPLICE_EXPECTS(src >= 0 && src < n_);
  SPLICE_EXPECTS(dst >= 0 && dst < n_);
  if (src == dst) return true;
  ReachWorkspace ws;
  reach_dst(dst, k, edge_alive, semantics, ws);
  return ws.seen[static_cast<std::size_t>(src)] != 0;
}

}  // namespace splice
