// Spliced-path enumeration.
//
// The spliced union toward a destination offers an exponentially large set
// of paths (§1). This module makes them tangible: it enumerates distinct
// *simple* spliced paths for a pair (bounded by count and length, since
// exhaustive enumeration is exponential by design), and reconstructs, for
// any concrete path, a forwarding-bit header that realizes it — the
// inverse of Algorithm 1, useful for debugging and for deliberate
// multipath scheduling (§5).
#pragma once

#include <optional>
#include <vector>

#include "dataplane/splice_header.h"
#include "splicing/splicer.h"

namespace splice {

struct PathEnumOptions {
  /// Stop after this many paths.
  int max_paths = 100;
  /// Skip paths longer than this many hops (0 = 2 * node count).
  int max_hops = 0;
  /// Restrict to the first k slices (0 = all).
  SliceId use_k = 0;
  /// Only traverse arcs whose underlying link is alive in this mask
  /// (empty = all alive).
  std::vector<char> edge_alive;
};

/// All (bounded) simple paths src -> dst through the spliced union:
/// depth-first enumeration in deterministic (slice-id, hop) order. Each
/// element is the node sequence src..dst.
std::vector<std::vector<NodeId>> enumerate_spliced_paths(
    const Splicer& splicer, NodeId src, NodeId dst,
    const PathEnumOptions& opts = {});

/// Builds a header realizing `path` (a node sequence src..dst): for each
/// hop, picks the lowest slice whose next hop matches. Returns nullopt if
/// some hop is not realizable from any slice, or the path needs more hops
/// than the splicer's configured header capacity.
std::optional<SpliceHeader> header_for_path(const Splicer& splicer,
                                            std::span<const NodeId> path);

}  // namespace splice
