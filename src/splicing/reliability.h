// Reliability analysis of spliced routing (§2 definitions, §4.2 method).
//
// For a destination t, the spliced graph is the union over slices of each
// node's next-hop arc toward t. Two reachability semantics are supported:
//
//  * kUndirectedLinks — a pair (s, t) is connected iff s reaches t over the
//    surviving *links* of the union, ignoring arc direction. This is the
//    paper's §4.2 construction ("taking the union of k link-perturbed
//    shortest-path trees" and testing connectivity in the resulting graph);
//    it reproduces Figure 3 and the "(reliability)" curves of Figures 4-5.
//  * kDirectedForwarding — s must reach t following arcs forward, i.e. there
//    exists a forwarding-bit assignment that delivers. Strictly stronger;
//    actual data-plane recovery converges to this bound, not the undirected
//    one (the gap between the two is visible in Figs. 4-5 as the distance
//    between the "(recovery)" and "(reliability)" curves).
//
// The analyzer precomputes, per destination, the union adjacency annotated
// with slice index and underlying link, so a Monte Carlo trial answers "how
// many ordered pairs are disconnected with the first k slices under this
// failure mask?" with one BFS per destination.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "routing/multi_instance.h"

namespace splice {

enum class UnionSemantics {
  kUndirectedLinks,     ///< paper's §4.2 reliability construction
  kDirectedForwarding,  ///< exact forwarding reachability
};

class SplicedReliabilityAnalyzer {
 public:
  SplicedReliabilityAnalyzer(const Graph& g, const MultiInstanceRouting& mir);

  NodeId node_count() const noexcept { return n_; }
  SliceId slice_count() const noexcept { return k_max_; }

  /// Number of ordered (s, t) pairs with no surviving spliced path using the
  /// first `k` slices, under the liveness mask (1 = alive; empty = all
  /// alive).
  long long disconnected_pairs(
      SliceId k, std::span<const char> edge_alive = {},
      UnionSemantics semantics = UnionSemantics::kUndirectedLinks) const;

  /// Fraction of ordered pairs disconnected (0 when the graph has < 2
  /// nodes).
  double disconnected_fraction(
      SliceId k, std::span<const char> edge_alive = {},
      UnionSemantics semantics = UnionSemantics::kUndirectedLinks) const;

  /// Connectivity of one pair using the first k slices under the mask.
  bool connected(
      NodeId src, NodeId dst, SliceId k, std::span<const char> edge_alive = {},
      UnionSemantics semantics = UnionSemantics::kUndirectedLinks) const;

  /// Membership vector of sources with a surviving spliced path to `dst`
  /// (dst itself is marked). One BFS; use this to answer many
  /// same-destination queries per failure mask.
  std::vector<char> reachable_sources(
      NodeId dst, SliceId k, std::span<const char> edge_alive = {},
      UnionSemantics semantics = UnionSemantics::kUndirectedLinks) const;

 private:
  struct Adj {
    NodeId other;    ///< the node on the far side of this union arc
    EdgeId edge;     ///< underlying undirected link
    SliceId slice;   ///< smallest slice index that installs the arc
    bool incoming;   ///< true when the forward arc points *into* this node
  };

  void reach_dst(NodeId dst, SliceId k, std::span<const char> edge_alive,
                 UnionSemantics semantics, std::vector<char>& seen,
                 std::vector<NodeId>& stack) const;

  NodeId n_ = 0;
  SliceId k_max_ = 0;
  /// adj_[dst][node] = union arcs incident to `node` in the union toward
  /// dst, both directions listed.
  std::vector<std::vector<std::vector<Adj>>> adj_;
};

}  // namespace splice
