// Reliability analysis of spliced routing (§2 definitions, §4.2 method).
//
// For a destination t, the spliced graph is the union over slices of each
// node's next-hop arc toward t. Two reachability semantics are supported:
//
//  * kUndirectedLinks — a pair (s, t) is connected iff s reaches t over the
//    surviving *links* of the union, ignoring arc direction. This is the
//    paper's §4.2 construction ("taking the union of k link-perturbed
//    shortest-path trees" and testing connectivity in the resulting graph);
//    it reproduces Figure 3 and the "(reliability)" curves of Figures 4-5.
//  * kDirectedForwarding — s must reach t following arcs forward, i.e. there
//    exists a forwarding-bit assignment that delivers. Strictly stronger;
//    actual data-plane recovery converges to this bound, not the undirected
//    one (the gap between the two is visible in Figs. 4-5 as the distance
//    between the "(recovery)" and "(reliability)" curves).
//
// The analyzer precomputes, per destination, the union adjacency annotated
// with slice index and underlying link, so a Monte Carlo trial answers "how
// many ordered pairs are disconnected with the first k slices under this
// failure mask?" with one BFS per destination.
//
// Storage is one CSR structure over all destinations: a flat arc array and
// an (n*n + 1)-entry offset table indexed by (dst, node). Arcs within a
// (dst, node) bucket are sorted by slice, so restricting a query to the
// first k slices is a prefix truncation of the bucket — the `slice >= k`
// filter never touches the excluded arcs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "routing/multi_instance.h"

namespace splice {

enum class UnionSemantics {
  kUndirectedLinks,     ///< paper's §4.2 reliability construction
  kDirectedForwarding,  ///< exact forwarding reachability
};

/// Caller-owned scratch for the analyzer's BFS: the seen/stack buffers keep
/// their capacity across queries. One workspace per thread.
struct ReachWorkspace {
  std::vector<char> seen;
  std::vector<NodeId> stack;
};

class SplicedReliabilityAnalyzer {
 public:
  SplicedReliabilityAnalyzer(const Graph& g, const MultiInstanceRouting& mir);

  NodeId node_count() const noexcept { return n_; }
  SliceId slice_count() const noexcept { return k_max_; }

  /// Number of ordered (s, t) pairs with no surviving spliced path using the
  /// first `k` slices, under the liveness mask (1 = alive; empty = all
  /// alive).
  long long disconnected_pairs(
      SliceId k, std::span<const char> edge_alive = {},
      UnionSemantics semantics = UnionSemantics::kUndirectedLinks) const;

  /// Allocation-free variant for Monte Carlo loops.
  long long disconnected_pairs(SliceId k, std::span<const char> edge_alive,
                               UnionSemantics semantics,
                               ReachWorkspace& ws) const;

  /// Fraction of ordered pairs disconnected (0 when the graph has < 2
  /// nodes).
  double disconnected_fraction(
      SliceId k, std::span<const char> edge_alive = {},
      UnionSemantics semantics = UnionSemantics::kUndirectedLinks) const;

  /// Connectivity of one pair using the first k slices under the mask.
  bool connected(
      NodeId src, NodeId dst, SliceId k, std::span<const char> edge_alive = {},
      UnionSemantics semantics = UnionSemantics::kUndirectedLinks) const;

  /// Membership vector of sources with a surviving spliced path to `dst`
  /// (dst itself is marked). One BFS; use this to answer many
  /// same-destination queries per failure mask.
  std::vector<char> reachable_sources(
      NodeId dst, SliceId k, std::span<const char> edge_alive = {},
      UnionSemantics semantics = UnionSemantics::kUndirectedLinks) const;

  /// Same BFS into a reusable workspace: on return ws.seen is the membership
  /// vector (size node_count()). No allocations after warm-up.
  void reachable_sources_into(
      NodeId dst, SliceId k, std::span<const char> edge_alive,
      UnionSemantics semantics, ReachWorkspace& ws) const;

 private:
  /// One packed union arc. `slice_dir` encodes (slice << 1) | incoming, so
  /// bucket order by slice_dir is slice-ascending and the first-k filter is
  /// `slice_dir < (k << 1)` — a prefix of the bucket.
  struct Arc {
    NodeId other;            ///< the node on the far side of this union arc
    EdgeId edge;             ///< underlying undirected link
    std::uint32_t slice_dir; ///< smallest installing slice, and direction bit
  };

  std::size_t bucket(NodeId dst, NodeId node) const noexcept {
    return static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(node);
  }

  void reach_dst(NodeId dst, SliceId k, std::span<const char> edge_alive,
                 UnionSemantics semantics, ReachWorkspace& ws) const;

  NodeId n_ = 0;
  SliceId k_max_ = 0;
  /// CSR offsets: arcs of (dst, node) live in
  /// arcs_[offsets_[dst*n + node] .. offsets_[dst*n + node + 1]).
  std::vector<std::uint32_t> offsets_;
  std::vector<Arc> arcs_;
};

}  // namespace splice
