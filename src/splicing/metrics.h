// Path-quality metrics: stretch (§2 "small stretch" goal), hop inflation,
// and the per-slice stretch census quoted in §4.3 ("in any particular
// slice, 99% of all paths have stretch of less than 2.6").
#pragma once

#include <vector>

#include "dataplane/packet.h"
#include "graph/graph.h"
#include "routing/multi_instance.h"

namespace splice {

/// Stretch of a delivered trace: (trace latency under original weights) /
/// (shortest-path latency under original weights). Requires src != dst and
/// a delivered trace. `shortest` is d(src, dst) with original weights.
double trace_stretch(const Graph& g, const Delivery& d, Weight shortest);

/// Hop inflation: trace hops / shortest-path hop count.
double trace_hop_inflation(const Delivery& d, int shortest_hops);

/// All pairwise path stretches of one slice measured against original-
/// weight shortest paths: for every ordered reachable pair (s, t), the cost
/// of the slice's path evaluated with *original* weights divided by the true
/// shortest distance.
std::vector<double> slice_stretches(const Graph& g,
                                    const RoutingInstance& slice);

/// Pairwise original-weight shortest distances (flattened [src][dst]) —
/// the baseline denominator shared by stretch computations.
class ShortestPathOracle {
 public:
  explicit ShortestPathOracle(const Graph& g);

  Weight distance(NodeId src, NodeId dst) const noexcept {
    return dist_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(dst)];
  }
  int hops(NodeId src, NodeId dst) const noexcept {
    return hops_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(dst)];
  }
  NodeId node_count() const noexcept { return n_; }

 private:
  NodeId n_;
  std::vector<Weight> dist_;
  std::vector<int> hops_;
};

}  // namespace splice
