// Splicing-header overhead analysis (§3.2 encoding; §5 "the forwarding
// bits are simply reduced to a single number" and §4.4's observation that
// no-revisit schemes need far fewer distinct headers).
//
// Computes, for each encoding the paper discusses, the exact or
// information-theoretic header size in bits as a function of the slice
// count k and splice-point budget h, plus the size of the path space each
// encoding can address. This quantifies the §3.2 trade-off: opaque
// fixed-width bits are simple and fully general; restricted schemes
// (bounded switches, no-revisit, counter) shrink the header by orders of
// magnitude at the cost of path-space coverage.
#pragma once

#include <cstdint>

#include "graph/types.h"

namespace splice {

/// The §3.2 baseline: ceil(lg k) bits for each of h splice points.
int full_header_bits(SliceId k, int hops) noexcept;

/// Addressable headers of the full encoding: k^h, returned as log2 to
/// avoid overflow (0 when k == 1).
double full_header_log2_paths(SliceId k, int hops) noexcept;

/// Counter encoding (§5): a single integer in [0, max_value]; the hop that
/// sees a non-zero value deflects deterministically and decrements.
int counter_header_bits(std::uint32_t max_value) noexcept;

/// Exact number of no-revisit slice sequences of length h over k slices
/// (§4.4): sequences that never return to a previously *left* slice —
/// i.e. an ordered selection of segments. Returned as log2 of the count.
/// This is the information-theoretic size of an optimal no-revisit header.
double no_revisit_log2_sequences(SliceId k, int hops) noexcept;

/// Information-theoretic bits for a bounded-switch header: choose at most
/// `max_switches` switch positions among h-1 boundaries, a starting slice,
/// and a (different) slice per switch. log2 of the count.
double bounded_switch_log2_sequences(SliceId k, int hops,
                                     int max_switches) noexcept;

}  // namespace splice
