// Splicer: the top-level public API of the library.
//
// A Splicer owns one topology, runs the k-instance splicing control plane
// over it (perturbed link weights -> per-slice shortest-path trees ->
// forwarding tables), and exposes a data-plane network that forwards
// packets by the splicing header semantics of Algorithm 1. This is the
// object the examples and experiment harnesses construct.
//
//   Splicer splicer(topo::sprint(), {.slices = 5});
//   Rng rng(42);
//   auto header = splicer.make_random_header(rng);
//   Delivery d = splicer.send(src, dst, header);
#pragma once

#include <memory>

#include "dataplane/network.h"
#include "graph/digraph.h"
#include "graph/graph.h"
#include "routing/multi_instance.h"

namespace splice {

struct SplicerConfig {
  /// Number of routing slices, k >= 1.
  SliceId slices = 5;
  /// Link-weight perturbation used for slices >= 1 (slice 0 stays
  /// unperturbed unless perturb_first_slice). Default: the paper's headline
  /// degree-based Weight(0, 3).
  PerturbationConfig perturbation{PerturbationKind::kDegreeBased, 0.0, 3.0};
  /// Seed for all randomized control-plane state.
  std::uint64_t seed = 1;
  /// When true, slice 0 is perturbed too (paper default: false, so k = 1
  /// is exactly "normal" shortest-path routing).
  bool perturb_first_slice = false;
  /// Splice points encoded in generated headers (paper uses 20).
  int header_hops = SpliceHeader::kDefaultHops;
};

class Splicer {
 public:
  /// Builds the full control plane (k * n Dijkstra runs) and forwarding
  /// tables. The Splicer owns a private copy of the topology.
  Splicer(Graph topology, SplicerConfig cfg);

  const Graph& graph() const noexcept { return graph_; }
  const SplicerConfig& config() const noexcept { return cfg_; }
  SliceId slice_count() const noexcept { return cfg_.slices; }

  const MultiInstanceRouting& control_plane() const noexcept {
    return *control_;
  }
  const FibSet& fibs() const noexcept { return fibs_; }

  /// Mutable data plane: fail/restore links here.
  DataPlaneNetwork& network() noexcept { return network_; }
  const DataPlaneNetwork& network() const noexcept { return network_; }

  /// Sends one packet with the given header; convenience over network().
  Delivery send(NodeId src, NodeId dst, const SpliceHeader& header = {},
                const ForwardingPolicy& policy = {}) const;

  /// Header with a uniformly random slice for each of header_hops hops.
  SpliceHeader make_random_header(Rng& rng) const;

  /// Header pinned to a single slice for every hop (slice 0 reproduces
  /// "normal" shortest-path forwarding).
  SpliceHeader make_pinned_header(SliceId slice) const;

  /// Directed union toward `dst` of the first `k` slices' trees, keeping
  /// only arcs whose underlying link is alive (empty mask = all alive).
  /// This is the spliced graph whose reachability bounds what any header
  /// can achieve (§4.2).
  Digraph spliced_union(NodeId dst, SliceId k,
                        std::span<const char> edge_alive = {}) const;

  /// True iff some spliced path src -> dst exists using the first k slices
  /// under the mask (reachability in the spliced union).
  bool spliced_connected(NodeId src, NodeId dst, SliceId k,
                         std::span<const char> edge_alive = {}) const;

 private:
  Graph graph_;
  SplicerConfig cfg_;
  std::unique_ptr<MultiInstanceRouting> control_;
  FibSet fibs_;
  DataPlaneNetwork network_;
};

}  // namespace splice
