#include "splicing/splicer.h"

#include <vector>

#include "util/assert.h"

namespace splice {

Splicer::Splicer(Graph topology, SplicerConfig cfg)
    : graph_(std::move(topology)),
      cfg_(cfg),
      control_(std::make_unique<MultiInstanceRouting>(
          graph_, ControlPlaneConfig{cfg.slices, cfg.perturbation, cfg.seed,
                                     cfg.perturb_first_slice})),
      fibs_(control_->build_fibs()),
      network_(graph_, fibs_) {
  SPLICE_EXPECTS(cfg_.slices >= 1);
  SPLICE_EXPECTS(cfg_.header_hops >= 0);
  SPLICE_EXPECTS(bits_per_hop(cfg_.slices) * cfg_.header_hops <= 128);
}

Delivery Splicer::send(NodeId src, NodeId dst, const SpliceHeader& header,
                       const ForwardingPolicy& policy) const {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.header = header;
  return network_.forward(p, policy);
}

SpliceHeader Splicer::make_random_header(Rng& rng) const {
  return SpliceHeader::random(cfg_.slices, cfg_.header_hops, rng);
}

SpliceHeader Splicer::make_pinned_header(SliceId slice) const {
  SPLICE_EXPECTS(slice >= 0 && slice < cfg_.slices);
  std::vector<SliceId> seq(static_cast<std::size_t>(cfg_.header_hops), slice);
  return SpliceHeader::from_slices(cfg_.slices, seq);
}

Digraph Splicer::spliced_union(NodeId dst, SliceId k,
                               std::span<const char> edge_alive) const {
  SPLICE_EXPECTS(graph_.valid_node(dst));
  SPLICE_EXPECTS(k >= 1 && k <= cfg_.slices);
  SPLICE_EXPECTS(edge_alive.empty() ||
                 edge_alive.size() ==
                     static_cast<std::size_t>(graph_.edge_count()));
  Digraph u(graph_.node_count());
  for (SliceId s = 0; s < k; ++s) {
    const RoutingInstance& inst = control_->slice(s);
    for (NodeId v = 0; v < graph_.node_count(); ++v) {
      if (v == dst) continue;
      const NodeId nh = inst.next_hop(v, dst);
      if (nh == kInvalidNode) continue;
      const EdgeId e = inst.next_hop_edge(v, dst);
      if (!edge_alive.empty() && !edge_alive[static_cast<std::size_t>(e)])
        continue;
      u.add_arc_unique(v, nh);
    }
  }
  return u;
}

bool Splicer::spliced_connected(NodeId src, NodeId dst, SliceId k,
                                std::span<const char> edge_alive) const {
  if (src == dst) return true;
  const Digraph u = spliced_union(dst, k, edge_alive);
  return has_directed_path(u, src, dst);
}

}  // namespace splice
