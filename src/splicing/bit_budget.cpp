#include "splicing/bit_budget.h"

#include <algorithm>
#include <cmath>

#include "dataplane/splice_header.h"
#include "util/assert.h"

namespace splice {

namespace {

constexpr double kLog2E = 1.4426950408889634;

/// log2(n!) via lgamma.
double log2_factorial(int n) {
  SPLICE_EXPECTS(n >= 0);
  return std::lgamma(static_cast<double>(n) + 1.0) * kLog2E;
}

/// log2(C(n, r)); -inf when r out of range.
double log2_choose(int n, int r) {
  if (r < 0 || r > n) return -std::numeric_limits<double>::infinity();
  return log2_factorial(n) - log2_factorial(r) - log2_factorial(n - r);
}

/// log2(P(n, r)) = log2(n! / (n-r)!).
double log2_permutations(int n, int r) {
  if (r < 0 || r > n) return -std::numeric_limits<double>::infinity();
  return log2_factorial(n) - log2_factorial(n - r);
}

/// log2(2^a + 2^b) with -inf handling.
double log2_add(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log2(1.0 + std::exp2(lo - hi));
}

}  // namespace

int full_header_bits(SliceId k, int hops) noexcept {
  SPLICE_EXPECTS(k >= 1);
  SPLICE_EXPECTS(hops >= 0);
  return bits_per_hop(k) * hops;
}

double full_header_log2_paths(SliceId k, int hops) noexcept {
  SPLICE_EXPECTS(k >= 1);
  SPLICE_EXPECTS(hops >= 0);
  return static_cast<double>(hops) * std::log2(static_cast<double>(k));
}

int counter_header_bits(std::uint32_t max_value) noexcept {
  int bits = 0;
  while ((1ULL << bits) < static_cast<unsigned long long>(max_value) + 1ULL) {
    ++bits;
  }
  return bits;
}

double no_revisit_log2_sequences(SliceId k, int hops) noexcept {
  SPLICE_EXPECTS(k >= 1);
  SPLICE_EXPECTS(hops >= 1);
  // Sum over m = number of distinct slices used, in order: P(k, m) ordered
  // slice choices x C(hops-1, m-1) segment boundaries.
  double total = -std::numeric_limits<double>::infinity();
  const int m_max = std::min<int>(k, hops);
  for (int m = 1; m <= m_max; ++m) {
    const double term =
        log2_permutations(static_cast<int>(k), m) + log2_choose(hops - 1, m - 1);
    total = log2_add(total, term);
  }
  return total;
}

double bounded_switch_log2_sequences(SliceId k, int hops,
                                     int max_switches) noexcept {
  SPLICE_EXPECTS(k >= 1);
  SPLICE_EXPECTS(hops >= 1);
  SPLICE_EXPECTS(max_switches >= 0);
  // Sum over j switches: C(hops-1, j) switch positions x k starting slices
  // x (k-1)^j new-slice choices.
  double total = -std::numeric_limits<double>::infinity();
  const int j_max = std::min(max_switches, hops - 1);
  for (int j = 0; j <= j_max; ++j) {
    double term = log2_choose(hops - 1, j) + std::log2(static_cast<double>(k));
    if (j > 0) {
      if (k == 1) continue;  // no different slice to switch to
      term += static_cast<double>(j) * std::log2(static_cast<double>(k - 1));
    }
    total = log2_add(total, term);
  }
  return total;
}

}  // namespace splice
