#include "splicing/metrics.h"

#include "dataplane/network.h"
#include "graph/dijkstra.h"
#include "util/assert.h"

namespace splice {

double trace_stretch(const Graph& g, const Delivery& d, Weight shortest) {
  SPLICE_EXPECTS(d.delivered());
  SPLICE_EXPECTS(shortest > 0.0 && shortest < kInfiniteWeight);
  return trace_cost(g, d) / shortest;
}

double trace_hop_inflation(const Delivery& d, int shortest_hops) {
  SPLICE_EXPECTS(d.delivered());
  SPLICE_EXPECTS(shortest_hops > 0);
  return static_cast<double>(d.hop_count()) /
         static_cast<double>(shortest_hops);
}

std::vector<double> slice_stretches(const Graph& g,
                                    const RoutingInstance& slice) {
  const NodeId n = slice.node_count();
  const ShortestPathOracle oracle(g);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const Weight base = oracle.distance(s, t);
      if (base <= 0.0 || base >= kInfiniteWeight) continue;
      const Weight cost = slice.path_cost_original(g, s, t);
      if (cost >= kInfiniteWeight) continue;
      out.push_back(cost / base);
    }
  }
  return out;
}

ShortestPathOracle::ShortestPathOracle(const Graph& g) : n_(g.node_count()) {
  const auto cells =
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  dist_.assign(cells, kInfiniteWeight);
  hops_.assign(cells, -1);
  for (NodeId src = 0; src < n_; ++src) {
    const ShortestPaths sp = dijkstra(g, src);
    for (NodeId dst = 0; dst < n_; ++dst) {
      const auto cell =
          static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(dst);
      dist_[cell] = sp.dist[static_cast<std::size_t>(dst)];
      if (sp.reached(dst)) {
        int hops = 0;
        for (NodeId cur = dst; cur != src;
             cur = sp.parent[static_cast<std::size_t>(cur)])
          ++hops;
        hops_[cell] = hops;
      }
    }
  }
}

}  // namespace splice
