#include "splicing/path_enum.h"

#include <algorithm>

#include "util/assert.h"

namespace splice {

std::vector<std::vector<NodeId>> enumerate_spliced_paths(
    const Splicer& splicer, NodeId src, NodeId dst,
    const PathEnumOptions& opts) {
  const Graph& g = splicer.graph();
  SPLICE_EXPECTS(g.valid_node(src));
  SPLICE_EXPECTS(g.valid_node(dst));
  SPLICE_EXPECTS(opts.max_paths >= 0);
  const SliceId k = opts.use_k == 0 ? splicer.slice_count() : opts.use_k;
  SPLICE_EXPECTS(k >= 1 && k <= splicer.slice_count());
  const int max_hops =
      opts.max_hops > 0 ? opts.max_hops : 2 * g.node_count();

  // Per-node candidate next hops: the union of the k slices' next hops
  // toward dst, deduplicated, in ascending slice order (deterministic).
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::vector<NodeId>> succ(n);
  for (SliceId s = 0; s < k; ++s) {
    const RoutingInstance& inst = splicer.control_plane().slice(s);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == dst) continue;
      const NodeId nh = inst.next_hop(v, dst);
      if (nh == kInvalidNode) continue;
      const EdgeId e = inst.next_hop_edge(v, dst);
      if (!opts.edge_alive.empty() &&
          !opts.edge_alive[static_cast<std::size_t>(e)])
        continue;
      auto& list = succ[static_cast<std::size_t>(v)];
      if (std::find(list.begin(), list.end(), nh) == list.end())
        list.push_back(nh);
    }
  }

  std::vector<std::vector<NodeId>> out;
  if (src == dst) {
    out.push_back({src});
    return out;
  }

  std::vector<NodeId> stack{src};
  std::vector<char> on_path(n, 0);
  on_path[static_cast<std::size_t>(src)] = 1;

  // Iterative DFS with per-depth successor cursors.
  std::vector<std::size_t> cursor{0};
  while (!stack.empty() &&
         static_cast<int>(out.size()) < opts.max_paths) {
    const NodeId u = stack.back();
    auto& cur = cursor.back();
    const auto& nexts = succ[static_cast<std::size_t>(u)];
    if (cur >= nexts.size() ||
        static_cast<int>(stack.size()) > max_hops) {
      // Backtrack.
      on_path[static_cast<std::size_t>(u)] = 0;
      stack.pop_back();
      cursor.pop_back();
      continue;
    }
    const NodeId v = nexts[cur++];
    if (v == dst) {
      std::vector<NodeId> path = stack;
      path.push_back(dst);
      out.push_back(std::move(path));
      continue;
    }
    if (on_path[static_cast<std::size_t>(v)]) continue;  // keep it simple
    stack.push_back(v);
    cursor.push_back(0);
    on_path[static_cast<std::size_t>(v)] = 1;
  }
  return out;
}

std::optional<SpliceHeader> header_for_path(const Splicer& splicer,
                                            std::span<const NodeId> path) {
  SPLICE_EXPECTS(path.size() >= 1);
  const NodeId dst = path.back();
  const auto hops = static_cast<int>(path.size()) - 1;
  if (hops > splicer.config().header_hops) return std::nullopt;

  std::vector<SliceId> slices;
  slices.reserve(static_cast<std::size_t>(splicer.config().header_hops));
  for (int i = 0; i < hops; ++i) {
    const NodeId from = path[static_cast<std::size_t>(i)];
    const NodeId to = path[static_cast<std::size_t>(i) + 1];
    SliceId found = -1;
    for (SliceId s = 0; s < splicer.slice_count() && found < 0; ++s) {
      if (splicer.control_plane().slice(s).next_hop(from, dst) == to)
        found = s;
    }
    if (found < 0) return std::nullopt;
    slices.push_back(found);
  }
  // Pad with the final slice so header exhaustion keeps the packet on the
  // last tree (it is already at the destination by then anyway).
  while (static_cast<int>(slices.size()) < splicer.config().header_hops)
    slices.push_back(slices.empty() ? 0 : slices.back());
  return SpliceHeader::from_slices(splicer.slice_count(), slices);
}

}  // namespace splice
