// Embedded evaluation topologies.
//
// The paper evaluates on (1) the GEANT European research backbone
// (23 nodes / 37 links) and (2) the Sprint North-American backbone as
// inferred by Rocketfuel (52 nodes / 84 links). Neither raw dataset ships
// offline, so this module embeds reconstructions built from the published
// PoP maps: node = PoP with geographic coordinates, link weights
// proportional to great-circle latency (Rocketfuel's inferred weights are
// latency-derived as well). DESIGN.md documents the substitution; the
// reproduction depends on size, degree structure and weighted-shortest-path
// geometry, all of which the reconstructions preserve.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace splice::topo {

/// GEANT backbone reconstruction: exactly 23 nodes and 37 links.
Graph geant();

/// Sprint (Rocketfuel AS1239) backbone reconstruction: exactly 52 nodes and
/// 84 links.
Graph sprint();

/// Small hand-checkable fixture: the two-disjoint-paths graph of Figure 1.
Graph figure1();

/// Abilene/Internet2 backbone (11 nodes / 14 links) — a third real-world
/// topology used by the extension experiments and examples.
Graph abilene();

/// Exodus Communications (Rocketfuel AS3967) PoP-level reconstruction:
/// 22 PoPs, 37 links. Data-center-centric footprint: coastal metro
/// clusters joined by a sparse national core plus London/Tokyo.
Graph exodus();

/// AboveNet/MFN (Rocketfuel AS6461) PoP-level reconstruction: 22 PoPs,
/// 42 links. Denser mesh than Exodus, with a European triangle.
Graph abovenet();

/// Names of all registry topologies.
std::vector<std::string> registry_names();

/// Looks up a topology by registry name ("geant", "sprint", "abilene",
/// "figure1"). Throws std::out_of_range for unknown names.
Graph by_name(const std::string& name);

}  // namespace splice::topo
